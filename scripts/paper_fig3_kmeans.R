# The paper's Figure 3: "A simplified implementation of k-means",
# running unchanged on the FlashR engine (two listing typos repaired:
# line 4's assignment and the sweep margin — see crates/rlang docs).

kmeans <- function(X, C) {
  I <- NULL
  num.moves <- nrow(X)
  while (num.moves > 0) {
    D <- inner.prod(X, t(C), "euclidean", "+")
    old.I <- I
    I <- agg.row(D, "which.min")
    # Inform FlashR to save data during computation.
    I <- set.cache(I, TRUE)
    CNT <- groupby.row(rep.int(1, nrow(I)), I, "+")
    C <- sweep(groupby.row(X, I, "+"), 1, CNT, "/")
    if (!is.null(old.I))
      num.moves <- as.vector(sum(old.I != I))
    cat("moves:", num.moves, "\n")
  }
  C
}

# Two planted clusters in 8 dimensions.
n <- 200000
shift <- (runif.matrix(n, 1, seed = 1) > 0.5) * 8
X <- rnorm.matrix(n, 8, seed = 2) + shift
C0 <- matrix(runif.matrix(16, 1, seed = 3), nrow = 2)

C <- kmeans(X, C0)
cat("final centers (per-dimension range):", min(C), "to", max(C), "\n")
stopifnot(abs(min(C)) < 0.3, abs(max(C) - 8) < 0.3)
cat("k-means on the FlashR engine: OK\n")
