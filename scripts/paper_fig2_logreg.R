# The paper's Figure 2: "A simplified implementation of logistic
# regression using gradient descent with line search", with the
# line-search recomputation repair (see crates/rlang docs).

num.features <- 4
max.iters <- 10
X <- rnorm.matrix(50000, num.features, seed = 1)
truth <- matrix(c(1.5, -1, 0.5, 2), nrow = 1)
y <- sigmoid(X %*% t(truth)) > runif.matrix(50000, 1, seed = 2)

logistic.regression <- function(X, y) {
  grad <- function(X, y, w)
    (t(X) %*% (1/(1+exp(-X%*%t(w)))-y))/length(y)
  cost <- function(X, y, w)
    sum(y*(-X%*%t(w))+log(1+exp(X%*%t(w))))/length(y)
  theta <- matrix(rep(0, num.features), nrow=1)
  for (i in 1:max.iters) {
    g <- grad(X, y, theta)
    l <- cost(X, y, theta)
    eta <- 1
    delta <- 0.5 * (-g) %*% t(g)
    while (as.vector(cost(X, y, theta+eta*(-g))) > as.vector(l)+as.vector(delta)[1]*eta)
      eta <- eta * 0.2
    theta <- theta + (-g) * eta
    cat("iter", i, "logloss", as.vector(cost(X, y, theta)), "\n")
  }
  theta
}

theta <- logistic.regression(X, y)
cat("learned:", theta[1, 1], theta[1, 2], theta[1, 3], theta[1, 4], "\n")
cat("truth:   1.5 -1 0.5 2\n")
stopifnot(theta[1, 1] > 0, theta[1, 2] < 0, theta[1, 4] > theta[1, 3])
cat("logistic regression on the FlashR engine: OK\n")
