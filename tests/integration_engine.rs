//! Cross-crate engine integration: the FM programming surface driving the
//! fused executor, block matrices, and I/O, through the `flashr` facade.

use flashr::prelude::*;

fn ctx() -> FlashCtx {
    FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
}

#[test]
fn paper_table2_overrides_behave_like_r() {
    let ctx = ctx();
    let a = FM::seq(1000, 1.0, 1.0); // 1..=1000
    let b = FM::constant(1000, 1, 2.0);

    // C = A + B
    assert_eq!((&a + &b).sum().value(&ctx), 500500.0 + 2000.0);
    // C = pmin(A, B)
    assert_eq!(a.pmin(&b).sum().value(&ctx), 1.0 + 2.0 * 999.0);
    // C = sqrt(A)
    assert!((a.sqrt().sum().value(&ctx) - (1..=1000).map(|v| (v as f64).sqrt()).sum::<f64>()).abs() < 1e-9);
    // c = sum(A)
    assert_eq!(a.sum().value(&ctx), 500500.0);
    // c = any(A > 999), all(A > 0)
    assert_eq!(a.gt(&FM::constant(1000, 1, 999.0)).any_nz().value(&ctx), 1.0);
    assert_eq!(a.gt(&FM::zeros(1000, 1)).all_nz().value(&ctx), 1.0);
    // C = rowSums(cbind(A, B))
    let rs = FM::cbind(&[&a, &b]).row_sums();
    assert_eq!(rs.get(&ctx, 9, 0), 12.0);
    // unique / table on a small-alphabet column
    let m3 = a.binary_scalar(BinaryOp::Rem, 3.0, false);
    assert_eq!(m3.unique(&ctx), vec![0.0, 1.0, 2.0]);
}

#[test]
fn dag_fusion_counts_one_pass_for_logistic_cost_and_grad() {
    // The paper's Figure 2 inner loop: cost and gradient share the margin
    // computation and must evaluate in one pass.
    let ctx = ctx();
    let x = FM::rnorm(&ctx, 20_000, 8, 0.0, 1.0, 1).materialize(&ctx);
    let y = FM::runif(&ctx, 20_000, 1, 0.0, 1.0, 2).gt(&FM::constant(20_000, 1, 0.5)).cast(DType::F64).materialize(&ctx);
    let w = Dense::from_vec(8, 1, vec![0.1; 8]);

    let before = ctx.stats().snapshot();
    let margin = x.matmul(&FM::from_dense(w));
    let cost = margin.pmax(&FM::zeros(20_000, 1)).sum();
    let grad = x.crossprod_with(&margin.sigmoid().binary(BinaryOp::Sub, &y, false));
    let out = FM::materialize_multi(&ctx, &[&cost, &grad]);
    assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
    assert!(out[0].value(&ctx).is_finite());
    assert_eq!(out[1].to_dense(&ctx).rows(), 8);
}

#[test]
fn block_matrix_layer_composes_with_fm() {
    let ctx = ctx();
    let x = FM::rnorm(&ctx, 5000, 70, 0.0, 1.0, 12); // wider than one block
    let bm = BlockMat::from_fm(&x, 32);
    assert_eq!(bm.nblocks(), 3); // 32 + 32 + 6
    let whole = x.crossprod().to_dense(&ctx);
    let blocked = bm.crossprod(&ctx);
    assert!(whole.max_abs_diff(&blocked) < 1e-8);
}

#[test]
fn csv_io_feeds_the_engine() {
    let ctx = ctx();
    let path = std::env::temp_dir().join(format!("flashr-int-io-{}.csv", std::process::id()));
    let x = FM::runif(&ctx, 300, 4, -1.0, 1.0, 5);
    flashr::core::io::write_csv(&ctx, &x, &path, ',').unwrap();
    let y = flashr::core::io::read_csv(&ctx, &path, ',').unwrap();
    // Loaded data is row-major; results must match the generated matrix.
    let diff = (&x - &y).abs().max_all().value(&ctx);
    assert!(diff < 1e-12);
    std::fs::remove_file(path).unwrap();
}

#[test]
fn sparse_semi_external_composes_with_dense_results() {
    let dir = std::env::temp_dir().join(format!("flashr-int-sem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = Safs::open(SafsConfig::striped_under(&dir, 2)).unwrap();
    let a = flashr::sparse::CsrMatrix::random(300, 300, 6, 9);
    let b = Dense::from_fn(300, 4, |r, c| ((r * 2 + c) % 11) as f64 - 5.0);
    let sem = flashr::sparse::SemCsr::store(&safs, "adj", &a, 64);
    let got = sem.spmm(&b);
    let want = flashr::sparse::spmm(&a, &b);
    assert!(got.max_abs_diff(&want) < 1e-10);
}

#[test]
fn cumulative_ops_cross_partitions_and_modes() {
    let base = ctx();
    let x = FM::seq(1000, 1.0, 1.0);
    let want_last = 500500.0;
    for mode in [ExecMode::Eager, ExecMode::MemFuse, ExecMode::CacheFuse] {
        let c = base.with_mode(mode);
        let cs = x.cumsum_col().materialize(&c);
        assert_eq!(cs.get(&c, 999, 0), want_last, "mode {mode:?}");
        assert_eq!(cs.get(&c, 255, 0), (256 * 257 / 2) as f64, "partition boundary, {mode:?}");
    }
}

#[test]
fn mixed_dtype_promotion_through_the_stack() {
    let ctx = ctx();
    let ints = FM::seq(100, 0.0, 1.0).cast(DType::I32);
    let floats = FM::constant(100, 1, 0.5);
    let sum = ints.binary(BinaryOp::Add, &floats, false);
    assert_eq!(sum.dtype(), DType::F64);
    assert_eq!(sum.get(&ctx, 10, 0), 10.5);
    // Integer aggregation widens.
    let s = ints.sum();
    assert_eq!(s.value(&ctx), 4950.0);
    // Predicates give logical matrices.
    let flags = ints.lt(&FM::constant(100, 1, 50.0).cast(DType::I32));
    assert_eq!(flags.dtype(), DType::U8);
    assert_eq!(flags.sum().value(&ctx), 50.0);
}
