//! Property-based tests for the cost model and the plan optimizer:
//! the cost estimate must stay within a bounded factor of the engine's
//! actual byte counters, `cost_optimize` must never change results, and
//! the governor admission probe must be exact at the budget boundary.

use flashr::core::analysis::cost;
use flashr::core::exec::Target;
use flashr::prelude::*;
use proptest::prelude::*;

/// A naive row-major reference matrix.
#[derive(Debug, Clone)]
struct Ref {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Ref> {
    (8..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Ref { rows: r, cols: c, data })
    })
}

/// Two matrices sharing a row count (tall nodes in one DAG must agree
/// on the partition dimension).
fn arb_matrix_pair(max_rows: usize, max_cols: usize) -> impl Strategy<Value = (Ref, Ref)> {
    (8..=max_rows, 1..=max_cols, 1..=max_cols).prop_flat_map(|(r, c1, c2)| {
        (
            proptest::collection::vec(-100.0f64..100.0, r * c1),
            proptest::collection::vec(-100.0f64..100.0, r * c2),
        )
            .prop_map(move |(d1, d2)| {
                (Ref { rows: r, cols: c1, data: d1 }, Ref { rows: r, cols: c2, data: d2 })
            })
    })
}

/// A random elementwise program applied to X.
#[derive(Debug, Clone)]
enum Step {
    AddConst(f64),
    MulConst(f64),
    Abs,
    Square,
}

fn arb_program() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (-10.0f64..10.0).prop_map(Step::AddConst),
            (-3.0f64..3.0).prop_map(Step::MulConst),
            Just(Step::Abs),
            Just(Step::Square),
        ],
        1..6,
    )
}

fn apply_program(x: &FM, prog: &[Step]) -> FM {
    let mut cur = x.clone();
    for s in prog {
        cur = match s {
            Step::AddConst(v) => &cur + *v,
            Step::MulConst(v) => &cur * *v,
            Step::Abs => cur.abs(),
            Step::Square => cur.square(),
        };
    }
    cur
}

fn ctx_with(mode: ExecMode, cost_optimize: bool) -> FlashCtx {
    FlashCtx::with_config(
        CtxConfig { nthreads: 3, rows_per_part: 32, mode, cost_optimize, ..Default::default() },
        None,
    )
}

/// The exec target a pending FM would run as (mirrors the engine's own
/// mapping; test-local so the tests can price plans without running them).
fn target_of(fm: &FM) -> Target {
    match fm {
        FM::Sink { node } => Target::Sink(node.clone()),
        FM::Tall { node, .. } => Target::Tall {
            node: node.clone(),
            storage: flashr::core::exec::TargetStorage::Default,
        },
        FM::Small(_) => panic!("already materialized"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The cost model's predicted chunk bytes must track the engine's
    /// `node_chunk_bytes` counter within a bounded factor on random
    /// fused plans (the estimate is an upper bound, not an equality).
    #[test]
    fn predicted_chunk_bytes_within_bounded_factor(
        m in arb_matrix(200, 4),
        prog in arb_program(),
    ) {
        let ctx = ctx_with(ExecMode::CacheFuse, false);
        let x = FM::from_row_major(&ctx, m.rows as u64, m.cols, &m.data);
        let y = apply_program(&x, &prog);
        let s = y.sum();

        let est = cost::estimate(&ctx, &[target_of(&s)]);
        prop_assert!(est.chunk_bytes > 0, "plan must move bytes");

        let before = ctx.stats().snapshot();
        let _ = s.value(&ctx);
        let actual = before.delta(&ctx.stats().snapshot()).node_chunk_bytes;
        prop_assert!(actual > 0, "pass must produce chunks");

        let (hi, lo) = (est.chunk_bytes.max(actual), est.chunk_bytes.min(actual));
        prop_assert!(
            hi / lo.max(1) <= 8,
            "predicted {} vs actual {} drifted past 8x",
            est.chunk_bytes,
            actual
        );
    }

    /// `cost_optimize` must be invisible in results: for random programs
    /// over shared and disjoint leaves, every output (tall and sink,
    /// fused and eager — including the optimizer's eager pass
    /// reordering) is bit-identical with the optimizer on and off.
    #[test]
    fn cost_optimize_is_bit_identical(
        (m1, m2) in arb_matrix_pair(150, 3),
        prog in arb_program(),
    ) {
        for mode in [ExecMode::CacheFuse, ExecMode::MemFuse, ExecMode::Eager] {
            let mut outs: Vec<Vec<u64>> = Vec::new();
            for cost_optimize in [false, true] {
                let ctx = ctx_with(mode, cost_optimize);
                let x1 = FM::from_row_major(&ctx, m1.rows as u64, m1.cols, &m1.data);
                let x2 = FM::from_row_major(&ctx, m2.rows as u64, m2.cols, &m2.data);
                // y is reused (auto-cache candidate); the x1/x2/x1
                // target interleave makes the eager pass reorderer act.
                let y = apply_program(&x1, &prog);
                let a = &y * 2.0;
                let b = apply_program(&x2, &prog);
                let c = &y + 1.0;
                let done = FM::materialize_multi(&ctx, &[&a, &b.sum(), &c, &a.col_sums()]);
                let mut bits: Vec<u64> = Vec::new();
                bits.extend(done[0].to_vec(&ctx).iter().map(|v| v.to_bits()));
                bits.push(done[1].value(&ctx).to_bits());
                bits.extend(done[2].to_vec(&ctx).iter().map(|v| v.to_bits()));
                bits.extend(done[3].to_vec(&ctx).iter().map(|v| v.to_bits()));
                outs.push(bits);
            }
            prop_assert_eq!(&outs[0], &outs[1], "mode {:?} not bit-identical", mode);
        }
    }

    /// Governor admission is exact at the boundary: a pin of exactly the
    /// remaining budget is admitted, one byte more is rejected — and the
    /// optimizer's auto-cache decision follows the same line end to end.
    #[test]
    fn governor_budget_boundary_is_exact(m in arb_matrix(100, 3), slack in 0u64..2) {
        let reused_bytes = (m.rows * m.cols * 8) as u64;
        // slack 0: budget one byte short; slack 1: budget exactly fits.
        let budget = reused_bytes + slack - 1;
        let ctx = ctx_with(ExecMode::CacheFuse, true)
            .with_mem_budget(MemBudget::new(budget).with_cache_fraction(0.0));

        let gov = ctx.governor();
        prop_assert!(gov.would_admit(budget), "exactly-at-budget pin must be admitted");
        prop_assert!(!gov.would_admit(budget + 1), "one-byte-over pin must be rejected");

        let x = FM::from_row_major(&ctx, m.rows as u64, m.cols, &m.data);
        let y = &x + 1.0;
        let a = &y * 2.0;
        let b = &y + 3.0;
        let before = ctx.stats().snapshot();
        let _ = FM::materialize_multi(&ctx, &[&a, &b]);
        let d = before.delta(&ctx.stats().snapshot());
        if slack == 1 {
            prop_assert_eq!(d.opt_cache_bytes, reused_bytes, "fit: y must be auto-cached");
            prop_assert_eq!(d.opt_decisions, 1);
        } else {
            prop_assert_eq!(d.opt_cache_bytes, 0, "one byte short: y must not be cached");
            prop_assert_eq!(d.opt_decisions, 0);
        }
    }
}
