//! End-to-end algorithm runs on the synthetic evaluation datasets
//! (paper §4.1 algorithms × §4.2-shaped data), checking statistical
//! results rather than just shapes.

use flashr::data::{criteo_like, pagegraph_like};
use flashr::ml::*;
use flashr::prelude::*;

fn ctx() -> FlashCtx {
    FlashCtx::with_config(CtxConfig { rows_per_part: 1024, ..Default::default() }, None)
}

#[test]
fn correlation_on_criteo_features() {
    let ctx = ctx();
    let d = criteo_like(&ctx, 30_000, 8, 1);
    let c = correlation(&ctx, &d.x);
    for i in 0..8 {
        assert!((c.at(i, i) - 1.0).abs() < 1e-9);
        for j in 0..8 {
            assert_eq!(c.at(i, j), c.at(j, i));
            if i != j {
                assert!(c.at(i, j).abs() < 0.05, "independent features correlate");
            }
        }
    }
}

#[test]
fn pca_on_clustered_embedding_concentrates_variance() {
    let ctx = ctx();
    let d = pagegraph_like(&ctx, 20_000, 16, 4, 2);
    let r = pca(&ctx, &d.x, 16);
    // Cluster structure lives in a few directions: the top components
    // must dominate the (σ=1) noise floor.
    assert!(r.sdev[0] > 2.0 * r.sdev[8], "no variance concentration: {:?}", r.sdev);
    let total: f64 = r.sdev.iter().map(|s| s * s).sum();
    let top3: f64 = r.sdev[..3].iter().map(|s| s * s).sum();
    assert!(top3 / total > 0.3);
}

#[test]
fn classifiers_beat_chance_on_criteo() {
    let ctx = ctx();
    let d = criteo_like(&ctx, 20_000, 10, 3);
    let y = d.y.materialize(&ctx);
    let x = d.x.materialize(&ctx);

    let lr = logistic_regression(&ctx, &x, &y, &LogRegOptions { max_iters: 30, ..Default::default() });
    let lr_acc = accuracy(&ctx, &lr.predict(&x), &y);
    assert!(lr_acc > 0.70, "logreg accuracy {lr_acc}");

    let nb = naive_bayes(&ctx, &x, &y, 2);
    let nb_acc = accuracy(&ctx, &nb.predict(&x), &y);
    assert!(nb_acc > 0.65, "naive bayes accuracy {nb_acc}");

    let ld = lda(&ctx, &x, &y, 2);
    let ld_acc = accuracy(&ctx, &ld.predict(&x), &y);
    assert!(ld_acc > 0.70, "lda accuracy {ld_acc}");

    // The generating model is exactly logistic → LR should win or tie.
    assert!(lr_acc + 0.02 >= nb_acc, "lr {lr_acc} vs nb {nb_acc}");
}

#[test]
fn kmeans_recovers_planted_clusters() {
    let ctx = ctx();
    let k = 5;
    let d = pagegraph_like(&ctx, 30_000, 8, k, 7);
    let x = d.x.materialize(&ctx);
    let r = kmeans(&ctx, &x, &KmeansOptions { k, max_iters: 40, seed: 2 });
    assert_eq!(*r.moves.last().unwrap(), 0, "k-means did not converge: {:?}", r.moves);
    // Every planted center must be close to some found center.
    for t in 0..k {
        let best: f64 = (0..k)
            .map(|g| {
                (0..8)
                    .map(|j| (r.centers.at(g, j) - d.centers.at(t, j)).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min)
            / (8.0f64).sqrt();
        assert!(best < 0.5, "planted center {t} not recovered (err {best})");
    }
}

#[test]
fn gmm_matches_kmeans_structure_on_separated_data() {
    let ctx = ctx();
    let k = 3;
    let d = pagegraph_like(&ctx, 12_000, 6, k, 4);
    let x = d.x.materialize(&ctx);
    let model = gmm(&ctx, &x, &GmmOptions { k, max_iters: 60, seed: 5, ..Default::default() });
    assert!(model.iterations < 60, "gmm did not converge");
    // Means recover planted centers (up to permutation).
    for t in 0..k {
        let best: f64 = (0..k)
            .map(|g| {
                (0..6)
                    .map(|j| (model.means.at(g, j) - d.centers.at(t, j)).powi(2))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min)
            / (6.0f64).sqrt();
        assert!(best < 0.5, "component {t} not recovered (err {best})");
    }
    // Mixture weights near uniform (labels are balanced round-robin).
    for w in &model.weights {
        assert!((w - 1.0 / k as f64).abs() < 0.05, "weights {:?}", model.weights);
    }
}

#[test]
fn mvrnorm_feeds_lda_like_mass_pipelines() {
    // The MASS chain the paper runs through FlashR: sample two Gaussian
    // classes with mvrnorm, then classify them with lda.
    let ctx = ctx();
    let sigma = Dense::from_vec(2, 2, vec![1.0, 0.3, 0.3, 1.0]);
    let a = mvrnorm(&ctx, 5000, &[0.0, 0.0], &sigma, 1);
    let b = mvrnorm(&ctx, 5000, &[3.0, 3.0], &sigma, 2);
    let x = FM::rbind(&ctx, &a, &b);
    let y = FM::rbind(&ctx, &FM::zeros(5000, 1), &FM::ones(5000, 1));
    let model = lda(&ctx, &x, &y, 2);
    let acc = accuracy(&ctx, &model.predict(&x), &y);
    // Bayes rate for these classes is Φ(√(ΔᵀΣ⁻¹Δ)/2) ≈ 0.969.
    assert!(acc > 0.955, "accuracy {acc}");
    // Pooled covariance ≈ sigma.
    assert!(model.cov.max_abs_diff(&sigma) < 0.08);
}

#[test]
fn baselines_agree_with_flashr_numerically() {
    use flashr::baselines::{eagerml, rro};
    let ctx = ctx();
    let d = criteo_like(&ctx, 5000, 6, 9);
    let x = d.x.materialize(&ctx);

    // Eager engine: same numbers, more passes.
    let fused = correlation(&ctx, &x);
    let eager = eagerml::correlation_eager(&ctx, &x);
    assert!(fused.max_abs_diff(&eager) < 1e-9);

    // RRO model: same numbers, different execution model.
    let r = rro::rro_correlation(&x.to_dense(&ctx));
    assert!(fused.max_abs_diff(&r) < 1e-9);
}
