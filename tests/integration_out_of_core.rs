//! Out-of-core end-to-end runs: whole algorithms against the SSD-array
//! substrate, compared bit-for-bit-deterministic against in-memory runs,
//! plus memory-footprint and I/O-volume properties the paper claims.

use flashr::data::{criteo_like, pagegraph_like};
use flashr::ml::*;
use flashr::prelude::*;

fn em_ctx(tag: &str) -> FlashCtx {
    let dir = std::env::temp_dir().join(format!("flashr-ooc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = Safs::open(SafsConfig::striped_under(dir, 4)).unwrap();
    FlashCtx::with_config(
        CtxConfig { rows_per_part: 1024, storage: StorageClass::Em, ..Default::default() },
        Some(safs),
    )
}

fn im_ctx() -> FlashCtx {
    FlashCtx::with_config(CtxConfig { rows_per_part: 1024, ..Default::default() }, None)
}

#[test]
fn correlation_em_equals_im() {
    let im = im_ctx();
    let em = em_ctx("corr");
    let a = correlation(&im, &criteo_like(&im, 20_000, 8, 3).x.materialize(&im));
    let b = correlation(&em, &criteo_like(&em, 20_000, 8, 3).x.materialize(&em));
    assert!(a.max_abs_diff(&b) < 1e-12, "EM and IM disagree");
}

#[test]
fn logistic_regression_em_equals_im() {
    let im = im_ctx();
    let em = em_ctx("logreg");
    let opts = LogRegOptions { max_iters: 10, ..Default::default() };

    let di = criteo_like(&im, 10_000, 6, 5);
    let (xi, yi) = (di.x.materialize(&im), di.y.materialize(&im));
    let mi = logistic_regression(&im, &xi, &yi, &opts);

    let de = criteo_like(&em, 10_000, 6, 5);
    let (xe, ye) = (de.x.materialize(&em), de.y.materialize(&em));
    let me = logistic_regression(&em, &xe, &ye, &opts);

    assert_eq!(mi.iterations, me.iterations);
    for (a, b) in mi.weights.iter().zip(&me.weights) {
        assert!((a - b).abs() < 1e-9, "weights diverge: {a} vs {b}");
    }
}

#[test]
fn kmeans_em_equals_im() {
    let im = im_ctx();
    let em = em_ctx("kmeans");
    let opts = KmeansOptions { k: 4, max_iters: 25, seed: 3 };

    let xi = pagegraph_like(&im, 20_000, 8, 4, 11).x.materialize(&im);
    let ri = kmeans(&im, &xi, &opts);
    let xe = pagegraph_like(&em, 20_000, 8, 4, 11).x.materialize(&em);
    let re = kmeans(&em, &xe, &opts);

    assert_eq!(ri.iterations, re.iterations);
    assert_eq!(ri.moves, re.moves);
    assert!(ri.centers.max_abs_diff(&re.centers) < 1e-9);
}

#[test]
fn em_iterative_io_scales_with_iterations_not_memory() {
    // The paper's Table 6 claim: out-of-core execution touches the SSDs
    // once per iteration and keeps only sink results in memory.
    let em = em_ctx("io-scale");
    let n = 50_000u64;
    let p = 8usize;
    let x = pagegraph_like(&em, n, p, 4, 1).x.materialize(&em);
    let data_bytes = n * p as u64 * 8;

    let before = em.safs().unwrap().stats_snapshot();
    let r = kmeans(&em, &x, &KmeansOptions { k: 4, max_iters: 20, seed: 1 });
    let io = before.delta(&em.safs().unwrap().stats_snapshot());

    // Reads ≈ iterations × data (cached assignments add an n×8-byte
    // column per iteration); nothing is written back except the tiny
    // cached assignment column (kept in memory → zero writes).
    let max_expected = (r.iterations as u64 + 1) * (data_bytes + n * 8) * 2;
    assert!(io.read_bytes >= r.iterations as u64 * data_bytes, "too few reads");
    assert!(io.read_bytes <= max_expected, "read amplification: {} vs {}", io.read_bytes, max_expected);
    assert_eq!(io.write_bytes, 0, "fused k-means must not write intermediates");
}

#[test]
fn gmm_em_equals_im() {
    let im = im_ctx();
    let em = em_ctx("gmm");
    let opts = GmmOptions { k: 2, max_iters: 15, seed: 7, ..Default::default() };
    let xi = pagegraph_like(&im, 6000, 4, 2, 9).x.materialize(&im);
    let xe = pagegraph_like(&em, 6000, 4, 2, 9).x.materialize(&em);
    let mi = gmm(&im, &xi, &opts);
    let me = gmm(&em, &xe, &opts);
    assert_eq!(mi.iterations, me.iterations);
    assert!(mi.means.max_abs_diff(&me.means) < 1e-8);
    assert!((mi.loglike - me.loglike).abs() < 1e-10);
}

#[test]
fn throttled_array_still_produces_identical_results() {
    // Bandwidth emulation slows the run but must never change results.
    let dir = std::env::temp_dir().join(format!("flashr-ooc-throttle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SafsConfig::striped_under(dir, 2).with_throttle(ThrottleCfg {
        bytes_per_sec: 50.0 * 1024.0 * 1024.0,
        latency_us: 50.0,
    });
    let safs = Safs::open(cfg).unwrap();
    let em = FlashCtx::with_config(
        CtxConfig { rows_per_part: 1024, storage: StorageClass::Em, ..Default::default() },
        Some(safs),
    );
    let im = im_ctx();

    let a = correlation(&im, &FM::rnorm(&im, 8000, 4, 0.0, 1.0, 2).materialize(&im));
    let b = correlation(&em, &FM::rnorm(&em, 8000, 4, 0.0, 1.0, 2).materialize(&em));
    assert!(a.max_abs_diff(&b) < 1e-12);
}
