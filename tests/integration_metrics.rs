//! Model-quality integration: the metrics module scoring real models on
//! the synthetic evaluation datasets, in memory and out-of-core.

use flashr::data::{criteo_like, pagegraph_like};
use flashr::ml::*;
use flashr::prelude::*;

fn ctx() -> FlashCtx {
    FlashCtx::with_config(CtxConfig { rows_per_part: 1024, ..Default::default() }, None)
}

#[test]
fn logistic_probabilities_beat_chance_log_loss() {
    let ctx = ctx();
    let d = criteo_like(&ctx, 15_000, 8, 2);
    let (x, y) = (d.x.materialize(&ctx), d.y.materialize(&ctx));
    let m = logistic_regression(&ctx, &x, &y, &LogRegOptions { max_iters: 25, ..Default::default() });
    let ll = log_loss(&ctx, &y, &m.predict_proba(&x));
    // The p=8 criteo-like ground truth has modest signal; its Bayes
    // log-loss is ≈0.56. Chance is ln 2 ≈ 0.693.
    assert!(ll < 0.62, "log loss {ll}");
    // The reported training loss and the metric agree.
    assert!((ll - m.loss).abs() < 1e-9, "metric {ll} vs optimizer {l}", l = m.loss);
}

#[test]
fn kmeans_recovers_planted_partition_by_ari() {
    let ctx = ctx();
    let k = 4;
    let d = pagegraph_like(&ctx, 20_000, 8, k, 6);
    let x = d.x.materialize(&ctx);
    // Ground truth: row r belongs to component r % k.
    let truth = FM::seq(x.nrow(), 0.0, 1.0)
        .binary_scalar(BinaryOp::Rem, k as f64, false)
        .cast(DType::I64)
        .materialize(&ctx);
    let r = kmeans(&ctx, &x, &KmeansOptions { k, max_iters: 40, seed: 3 });
    let ari = adjusted_rand_index(&ctx, &truth, &r.assignments, k);
    assert!(ari > 0.98, "ARI {ari} on well-separated clusters");
}

#[test]
fn gmm_and_kmeans_agree_by_ari_on_separated_data() {
    let ctx = ctx();
    let k = 3;
    let d = pagegraph_like(&ctx, 9_000, 6, k, 8);
    let x = d.x.materialize(&ctx);
    let km = kmeans(&ctx, &x, &KmeansOptions { k, max_iters: 40, seed: 1 });
    let gm = gmm(&ctx, &x, &GmmOptions { k, max_iters: 40, seed: 2, ..Default::default() });
    let gm_assign = gm.predict(&x).materialize(&ctx);
    let ari = adjusted_rand_index(&ctx, &km.assignments, &gm_assign, k);
    assert!(ari > 0.97, "k-means and GMM disagree: ARI {ari}");
}

#[test]
fn confusion_matrix_diagonal_dominates_for_good_classifiers() {
    let ctx = ctx();
    let n = 12_000u64;
    let labels = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 3.0, false).materialize(&ctx);
    let x = FM::rnorm(&ctx, n, 3, 0.0, 1.0, 4)
        .binary(BinaryOp::Add, &(&labels.cast(DType::F64) * 5.0), false)
        .materialize(&ctx);
    let m = lda(&ctx, &x, &labels, 3);
    let pred = m.predict(&x).materialize(&ctx);
    let cm = confusion_matrix(&ctx, &labels, &pred, 3);
    let mut diag = 0.0;
    let mut total = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            total += cm.at(i, j);
            if i == j {
                diag += cm.at(i, j);
            }
        }
    }
    assert_eq!(total, n as f64, "confusion matrix must count every row");
    assert!(diag / total > 0.99, "diagonal fraction {}", diag / total);
}

#[test]
fn ridge_r2_on_em_matches_im() {
    let dir = std::env::temp_dir().join(format!("flashr-metrics-em-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = Safs::open(SafsConfig::striped_under(&dir, 2)).unwrap();
    let em = FlashCtx::with_config(
        CtxConfig { rows_per_part: 1024, storage: StorageClass::Em, ..Default::default() },
        Some(safs),
    );
    let im = ctx();

    let run = |c: &FlashCtx| -> (Vec<f64>, f64) {
        let x = FM::rnorm(c, 8000, 3, 0.0, 1.0, 9).materialize(c);
        let w = Dense::from_vec(3, 1, vec![1.0, -2.0, 0.5]);
        let y = x
            .matmul(&FM::from_dense(w))
            .binary(BinaryOp::Add, &FM::rnorm(c, 8000, 1, 0.0, 0.3, 10), false)
            .materialize(c);
        let m = ridge_regression(c, &x, &y, 1e-8);
        let r2 = r_squared(c, &y, &m.predict(&x));
        (m.weights, r2)
    };
    let (w_im, r2_im) = run(&im);
    let (w_em, r2_em) = run(&em);
    for (a, b) in w_im.iter().zip(&w_em) {
        assert!((a - b).abs() < 1e-9, "EM and IM ridge weights diverge");
    }
    assert!((r2_im - r2_em).abs() < 1e-9);
    assert!(r2_im > 0.95, "r2 {r2_im}");
}
