//! Property-based tests: for random programs and matrices, the three
//! engine modes, the two storage classes, all thread counts, and the
//! naive in-memory reference must agree.

use flashr::prelude::*;
use proptest::prelude::*;

/// A naive row-major reference matrix for oracle computations.
#[derive(Debug, Clone)]
struct Ref {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Ref {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }
}

fn ctx_with(threads: usize, rows_per_part: u64, mode: ExecMode) -> FlashCtx {
    FlashCtx::with_config(
        CtxConfig { nthreads: threads, rows_per_part, mode, ..Default::default() },
        None,
    )
}

/// Random matrix as both a Ref and the flat row-major data.
fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Ref> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Ref { rows: r, cols: c, data })
    })
}

/// A random elementwise program: a sequence of ops applied to X.
#[derive(Debug, Clone)]
enum Step {
    AddConst(f64),
    MulConst(f64),
    Abs,
    Square,
    PminConst(f64),
}

fn arb_program() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (-10.0f64..10.0).prop_map(Step::AddConst),
            (-3.0f64..3.0).prop_map(Step::MulConst),
            Just(Step::Abs),
            Just(Step::Square),
            (-50.0f64..50.0).prop_map(Step::PminConst),
        ],
        0..5,
    )
}

fn apply_program_fm(x: &FM, prog: &[Step]) -> FM {
    let mut cur = x.clone();
    for s in prog {
        cur = match s {
            Step::AddConst(v) => &cur + *v,
            Step::MulConst(v) => &cur * *v,
            Step::Abs => cur.abs(),
            Step::Square => cur.square(),
            Step::PminConst(v) => cur.binary_scalar(BinaryOp::Min, *v, false),
        };
    }
    cur
}

fn apply_program_ref(v: f64, prog: &[Step]) -> f64 {
    let mut cur = v;
    for s in prog {
        cur = match s {
            Step::AddConst(c) => cur + c,
            Step::MulConst(c) => cur * c,
            Step::Abs => cur.abs(),
            Step::Square => cur * cur,
            Step::PminConst(c) => cur.min(*c),
        };
    }
    cur
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn engine_modes_match_reference(m in arb_matrix(300, 5), prog in arb_program(),
                                    threads in 1usize..5, rpp_pow in 4u32..9) {
        let rows_per_part = 1u64 << rpp_pow;
        for mode in [ExecMode::Eager, ExecMode::MemFuse, ExecMode::CacheFuse] {
            let ctx = ctx_with(threads, rows_per_part, mode);
            let x = FM::from_row_major(&ctx, m.rows as u64, m.cols, &m.data);
            let y = apply_program_fm(&x, &prog);

            // Oracle: elementwise program, then sums.
            let mut want_total = 0.0;
            let mut want_cols = vec![0.0; m.cols];
            for r in 0..m.rows {
                for (c, wc) in want_cols.iter_mut().enumerate() {
                    let v = apply_program_ref(m.at(r, c), &prog);
                    want_total += v;
                    *wc += v;
                }
            }

            let out = FM::materialize_multi(&ctx, &[&y.sum(), &y.col_sums()]);
            let total = out[0].value(&ctx);
            let cols = out[1].to_vec(&ctx);
            let scale = want_total.abs().max(1.0);
            prop_assert!((total - want_total).abs() / scale < 1e-9,
                "{mode:?}: total {total} vs {want_total}");
            for (a, b) in cols.iter().zip(&want_cols) {
                prop_assert!((a - b).abs() / b.abs().max(1.0) < 1e-9, "{mode:?} col sums");
            }
        }
    }

    #[test]
    fn gramian_matches_naive(m in arb_matrix(200, 4)) {
        let ctx = ctx_with(4, 64, ExecMode::CacheFuse);
        let x = FM::from_row_major(&ctx, m.rows as u64, m.cols, &m.data);
        let g = x.crossprod().to_dense(&ctx);
        for i in 0..m.cols {
            for j in 0..m.cols {
                let want: f64 = (0..m.rows).map(|r| m.at(r, i) * m.at(r, j)).sum();
                prop_assert!((g.at(i, j) - want).abs() / want.abs().max(1.0) < 1e-9);
            }
        }
    }

    #[test]
    fn cumsum_matches_scan(m in arb_matrix(400, 3), rpp_pow in 4u32..8) {
        let ctx = ctx_with(3, 1u64 << rpp_pow, ExecMode::CacheFuse);
        let x = FM::from_row_major(&ctx, m.rows as u64, m.cols, &m.data);
        let cs = x.cumsum_col().materialize(&ctx);
        // Spot-check boundary rows: first, last, and partition seams.
        let mut checks: Vec<usize> = vec![0, m.rows - 1];
        let rpp = 1usize << rpp_pow;
        if m.rows > rpp {
            checks.push(rpp - 1);
            checks.push(rpp);
        }
        for &r in &checks {
            for c in 0..m.cols {
                let want: f64 = (0..=r).map(|rr| m.at(rr, c)).sum();
                let got = cs.get(&ctx, r as u64, c as u64);
                prop_assert!((got - want).abs() / want.abs().max(1.0) < 1e-9,
                    "cumsum({r},{c}) {got} vs {want}");
            }
        }
    }

    #[test]
    fn groupby_matches_naive(m in arb_matrix(300, 3), k in 1usize..6) {
        let ctx = ctx_with(4, 64, ExecMode::CacheFuse);
        let x = FM::from_row_major(&ctx, m.rows as u64, m.cols, &m.data);
        let labels = FM::seq(m.rows as u64, 0.0, 1.0)
            .binary_scalar(BinaryOp::Rem, k as f64, false)
            .cast(DType::I64);
        let g = x.groupby_row(&labels, AggOp::Sum, k).to_dense(&ctx);
        for grp in 0..k {
            for c in 0..m.cols {
                let want: f64 = (0..m.rows).filter(|r| r % k == grp).map(|r| m.at(r, c)).sum();
                prop_assert!((g.at(grp, c) - want).abs() / want.abs().max(1.0) < 1e-9);
            }
        }
    }

    #[test]
    fn transpose_laws_hold(m in arb_matrix(150, 4)) {
        let ctx = ctx_with(2, 64, ExecMode::CacheFuse);
        let x = FM::from_row_major(&ctx, m.rows as u64, m.cols, &m.data);
        // t(t(x)) == x
        let d = x.t().t().to_dense(&ctx);
        for r in 0..m.rows {
            for c in 0..m.cols {
                prop_assert_eq!(d.at(r, c), m.at(r, c));
            }
        }
        // rowSums(t(x)) == colSums(x)
        let a = x.t().row_sums().to_vec(&ctx);
        let b = x.col_sums().to_vec(&ctx);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((p - q).abs() < 1e-9);
        }
    }
}
