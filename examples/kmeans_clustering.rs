//! k-means on a PageGraph-shaped spectral embedding — the paper's
//! Figure 3 program: distances through the generalized `inner.prod`,
//! assignments via `agg.row(which.min)` with `set.cache`, centers via
//! `groupby.row`, one fused pass per iteration.
//!
//! ```sh
//! cargo run --release -p flashr --example kmeans_clustering
//! ```

use flashr::data::pagegraph_like;
use flashr::ml::{kmeans, KmeansOptions};
use flashr::prelude::*;
use std::time::Instant;

fn main() {
    let ctx = FlashCtx::in_memory();
    let n = 1_000_000u64;
    let p = 32usize; // the PageGraph-32ev embedding width
    let k = 10usize; // the paper's default cluster count

    println!("generating a {n}×{p} embedding with {k} planted clusters…");
    let d = pagegraph_like(&ctx, n, p, k, 3);
    let x = d.x.materialize(&ctx);

    let before = ctx.stats().snapshot();
    let t = Instant::now();
    let r = kmeans(&ctx, &x, &KmeansOptions { k, max_iters: 40, seed: 1 });
    let took = t.elapsed();
    let delta = before.delta(&ctx.stats().snapshot());

    println!("converged after {} iterations in {took:?}", r.iterations);
    println!("moves per iteration: {:?}", r.moves);
    println!(
        "engine: {} fused passes ({} I/O partitions, {} pcache chunks)",
        delta.passes, delta.parts, delta.pcache_chunks
    );

    // How well did we recover the planted centers? Match greedily.
    let mut unmatched: Vec<usize> = (0..k).collect();
    let mut total_err = 0.0;
    for g in 0..k {
        let (best_pos, best_err) = unmatched
            .iter()
            .enumerate()
            .map(|(pos, &t)| {
                let err: f64 = (0..p)
                    .map(|j| (r.centers.at(g, j) - d.centers.at(t, j)).powi(2))
                    .sum::<f64>()
                    .sqrt();
                (pos, err)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        total_err += best_err;
        unmatched.remove(best_pos);
    }
    println!("mean center-recovery error: {:.3} (noise σ = 1.0)", total_err / k as f64);

    let sizes = FM::ones(n, 1).groupby_row(&r.assignments, AggOp::Sum, k).to_dense(&ctx);
    let mut cluster_sizes: Vec<u64> = (0..k).map(|g| sizes.at(g, 0) as u64).collect();
    cluster_sizes.sort_unstable();
    println!("cluster sizes (sorted): {cluster_sizes:?}");
}
