//! Run the paper's own R listings (Figures 2 and 3) on the FlashR
//! engine through the bundled R interpreter — the paper's core promise:
//! existing R code, parallelized and scaled with little/no modification.
//!
//! ```sh
//! cargo run --release -p flashr --example paper_r_code
//! ```

use flashr::core::session::FlashCtx;
use flashr::rlang::Interp;
use std::time::Instant;

fn run_script(title: &str, path: &str) {
    println!("=== {title} ({path}) ===");
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (run from the repo root)"));
    // Cost optimizer on: reused uncached subtrees (W001) are auto-cached
    // rather than recomputed, which also keeps the scripts clean under a
    // `FLASHR_DENY_LINTS` gate (fixed lints are exempt from promotion).
    let mut interp = Interp::new(FlashCtx::in_memory().with_cost_optimize(true));
    let t = Instant::now();
    match interp.eval_str(&src) {
        Ok(_) => println!("--- completed in {:?}\n", t.elapsed()),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    run_script("Paper Figure 2 — logistic regression", "scripts/paper_fig2_logreg.R");
    run_script("Paper Figure 3 — k-means", "scripts/paper_fig3_kmeans.R");
    println!("Both of the paper's R programs executed on the FlashR engine.");
}
