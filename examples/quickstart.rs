//! Quickstart: lazy matrices, one-pass fusion, and out-of-core execution.
//!
//! ```sh
//! cargo run --release -p flashr --example quickstart
//! ```

use flashr::prelude::*;
use std::time::Instant;

fn main() {
    // ---------------------------------------------------------------
    // 1. In-memory: build a DAG, materialize it in one fused pass.
    // ---------------------------------------------------------------
    let ctx = FlashCtx::in_memory();
    let n = 2_000_000u64;
    let p = 16usize;

    // Lazy: no data exists yet.
    let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 42);
    let y = &(&x * 2.0) + 1.0; // still lazy

    let t = Instant::now();
    let results = FM::materialize_multi(
        &ctx,
        &[
            &y.col_means(), // agg.col sink
            &y.crossprod(), // Gramian sink
            &y.abs().sum(), // full-agg sink over a second elementwise op
        ],
    );
    let took = t.elapsed();

    let means = results[0].to_vec(&ctx);
    let gram = results[1].to_dense(&ctx);
    let abs_sum = results[2].value(&ctx);
    println!("== in-memory ==");
    println!("n = {n}, p = {p}; three sinks in one fused pass: {took:?}");
    println!("col mean[0]   = {:.4}  (expect ≈ 1.0)", means[0]);
    println!("gram[0][0]/n  = {:.4}  (expect ≈ E[(2z+1)²] = 5)", gram.at(0, 0) / n as f64);
    println!("mean |y|      = {:.4}", abs_sum / (n * p as u64) as f64);

    let s = ctx.stats().snapshot();
    println!(
        "engine: {} passes, {} partitions, {} pcache chunks, {} local / {} remote (simulated NUMA)",
        s.passes, s.parts, s.pcache_chunks, s.local_parts, s.remote_parts
    );

    // ---------------------------------------------------------------
    // 2. Out-of-core: same program, matrices on an SSD-array substrate.
    // ---------------------------------------------------------------
    let dir = std::env::temp_dir().join("flashr-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let em = FlashCtx::on_ssds(SafsConfig::striped_under(&dir, 4)).expect("SAFS open");

    let x_em = FM::rnorm(&em, n, p, 0.0, 1.0, 42).materialize(&em); // writes to "SSDs"
    let y_em = &(&x_em * 2.0) + 1.0; // same lazy program as above
    let t = Instant::now();
    let mean_em = y_em.col_means().to_vec(&em);
    let took_em = t.elapsed();

    let io = em.safs().unwrap().stats_snapshot();
    println!("\n== out-of-core ==");
    println!("same reduction over SSD-resident data: {took_em:?}");
    println!("col mean[0] = {:.4} (same value, different storage)", mean_em[0]);
    println!(
        "I/O: {:.1} MiB written, {:.1} MiB read across {} requests",
        io.write_bytes as f64 / (1 << 20) as f64,
        io.read_bytes as f64 / (1 << 20) as f64,
        io.read_reqs + io.write_reqs
    );
    let _ = std::fs::remove_dir_all(&dir);
}
