//! The PageGraph pipeline end-to-end: the paper's PageGraph-32ev dataset
//! is a spectral embedding of a web graph computed with semi-external
//! sparse matrix multiplication, then clustered. This example reproduces
//! that pipeline in miniature:
//!
//! 1. build a random graph with planted communities (sparse CSR),
//! 2. store it semi-externally on the emulated SSD array,
//! 3. compute an embedding by subspace (block power) iteration — each
//!    step a semi-external SpMM followed by in-memory orthonormalization,
//! 4. cluster the embedding with the FlashR k-means.
//!
//! ```sh
//! cargo run --release -p flashr --example spectral_embedding
//! ```

use flashr::linalg::{cholesky, solve_lower_transpose, Dense};
use flashr::ml::{kmeans, KmeansOptions};
use flashr::prelude::*;
use flashr::sparse::{CsrMatrix, SemCsr};
use std::time::Instant;

/// Random graph with `k` planted communities: edges fall inside the
/// community with high probability.
fn community_graph(n: usize, k: usize, avg_degree: usize, seed: u64) -> CsrMatrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut edges = Vec::new();
    let comm_size = n / k;
    for u in 0..n {
        let cu = u / comm_size.max(1);
        for _ in 0..avg_degree {
            let inside = next() % 10 < 9; // 90% intra-community edges
            let v = if inside {
                (cu * comm_size + (next() as usize % comm_size.max(1))).min(n - 1)
            } else {
                next() as usize % n
            };
            edges.push((u, v));
            edges.push((v, u)); // symmetrize
        }
    }
    // Normalized adjacency D^{-1/2} A D^{-1/2}: the spectral-clustering
    // operator whose leading eigenvectors separate communities.
    let mut deg = vec![0usize; n];
    for &(u, _) in &edges {
        deg[u] += 1;
    }
    let triplets: Vec<(usize, usize, f64)> = edges
        .into_iter()
        .map(|(u, v)| (u, v, 1.0 / ((deg[u].max(1) * deg[v].max(1)) as f64).sqrt()))
        .collect();
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Orthonormalize the columns of a tall dense matrix (Cholesky QR with a
/// tiny ridge: power iteration drives the block toward rank deficiency,
/// and the ridge keeps the factorization stable while the solve restores
/// independent directions).
fn orthonormalize(x: &mut Dense) {
    let mut g = flashr::linalg::syrk(x);
    let trace: f64 = (0..g.rows()).map(|i| g.at(i, i)).sum();
    let ridge = (trace / g.rows() as f64) * 1e-10 + 1e-12;
    for i in 0..g.rows() {
        let v = g.at(i, i);
        g.set(i, i, v + ridge);
    }
    let l = cholesky(&g).expect("ridged Gramian must factor");
    // X ← X L⁻ᵀ  (solve Lᵀ Q = Xᵀ row-wise: apply per row).
    let n = x.rows();
    let k = x.cols();
    for r in 0..n {
        let row = Dense::from_vec(k, 1, x.row(r).to_vec());
        let q = solve_lower_transpose(&l, &row);
        for c in 0..k {
            x.set(r, c, q.at(c, 0));
        }
    }
}

fn main() {
    let n = 20_000usize;
    let k = 4usize; // communities
    let dim = 8usize; // embedding width

    println!("building a {n}-vertex graph with {k} planted communities…");
    let graph = community_graph(n, k, 8, 1);
    println!("nnz = {}", graph.nnz());

    let dir = std::env::temp_dir().join("flashr-spectral-example");
    let _ = std::fs::remove_dir_all(&dir);
    let safs = Safs::open(SafsConfig::striped_under(&dir, 4)).expect("SAFS open");
    let sem = SemCsr::store(&safs, "graph", &graph, 2048);
    println!("graph stored semi-externally in {} row blocks", sem.nparts());

    // Subspace iteration: Q ← orth(A Q).
    let rounds = 20;
    let t = Instant::now();
    let mut q = Dense::from_fn(n, dim, |r, c| {
        let h = (r as u64 ^ (c as u64) << 32).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    });
    orthonormalize(&mut q);
    for _ in 0..rounds {
        // Shifted operator (A + I)/2: keeps the spectrum in [0, 1] so the
        // community eigenvectors (large positive eigenvalues) dominate
        // and oscillating negative modes die out.
        let aq = sem.spmm(&q);
        for (qv, av) in q.as_mut_slice().iter_mut().zip(aq.as_slice()) {
            *qv = 0.5 * (*qv + av);
        }
        orthonormalize(&mut q);
    }
    println!("embedding computed in {:?} ({rounds} semi-external SpMM rounds)", t.elapsed());

    // Spectral-clustering post-processing: drop the trivial leading
    // eigenvector (∝ √degree), keep the next k directions, normalize the
    // rows, then cluster with FlashR k-means.
    let ctx = FlashCtx::in_memory();
    let keep = k;
    let mut flat = Vec::with_capacity(n * keep);
    for r in 0..n {
        let row = &q.row(r)[1..=keep];
        let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
        flat.extend(row.iter().map(|v| v / norm));
    }
    let x = FM::from_row_major(&ctx, n as u64, keep, &flat);
    let r = kmeans(&ctx, &x, &KmeansOptions { k, max_iters: 60, seed: 5 });
    println!("k-means converged in {} iterations", r.iterations);

    // Score: majority label per planted community.
    let assign = r.assignments.to_vec(&ctx);
    let comm_size = n / k;
    let mut agree = 0usize;
    for c in 0..k {
        let mut counts = vec![0usize; k];
        for u in c * comm_size..((c + 1) * comm_size).min(n) {
            counts[assign[u] as usize] += 1;
        }
        agree += counts.iter().max().unwrap();
    }
    println!(
        "community recovery: {:.1}% of vertices in their community's majority cluster",
        100.0 * agree as f64 / n as f64
    );
    let _ = std::fs::remove_dir_all(&dir);
}
