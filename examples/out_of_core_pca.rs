//! Out-of-core PCA with an emulated SSD bandwidth — the paper's core
//! claim in miniature: with the DAG fused into one pass, the
//! external-memory run tracks the in-memory run because computation,
//! not I/O, is the bottleneck.
//!
//! ```sh
//! cargo run --release -p flashr --example out_of_core_pca
//! ```

use flashr::ml::pca;
use flashr::prelude::*;
use std::time::Instant;

fn main() {
    let n = 2_000_000u64;
    let p = 32usize;
    let ncomp = 5;

    // In-memory reference.
    let im = FlashCtx::in_memory();
    let x_im = FM::rnorm(&im, n, p, 0.0, 1.0, 9).materialize(&im);
    let t = Instant::now();
    let r_im = pca(&im, &x_im, ncomp);
    let im_time = t.elapsed();

    // External memory with a throttled (SATA-SSD-profile) array.
    let dir = std::env::temp_dir().join("flashr-pca-example");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SafsConfig::striped_under(&dir, 4).with_throttle(ThrottleCfg::sata_ssd());
    let em = FlashCtx::on_ssds(cfg).expect("SAFS open");
    let x_em = FM::rnorm(&em, n, p, 0.0, 1.0, 9).materialize(&em);

    let io_before = em.safs().unwrap().stats_snapshot();
    let t = Instant::now();
    let r_em = pca(&em, &x_em, ncomp);
    let em_time = t.elapsed();
    let io = io_before.delta(&em.safs().unwrap().stats_snapshot());

    println!("PCA of a {n}×{p} matrix, top {ncomp} components");
    println!("FlashR-IM: {im_time:?}");
    println!(
        "FlashR-EM: {em_time:?}  ({:.1} MiB streamed from an emulated 4×SATA-SSD array)",
        io.read_bytes as f64 / (1 << 20) as f64
    );
    println!("EM/IM slowdown: {:.2}×", em_time.as_secs_f64() / im_time.as_secs_f64());

    println!("\ncomponent standard deviations (IM vs EM — identical DAG, identical data):");
    for i in 0..ncomp {
        println!("  σ_{i}: {:.6} vs {:.6}", r_im.sdev[i], r_em.sdev[i]);
    }
    let max_diff =
        r_im.sdev.iter().zip(&r_em.sdev).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("max |Δσ| = {max_diff:.2e}");
    let _ = std::fs::remove_dir_all(&dir);
}
