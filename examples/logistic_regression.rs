//! Logistic regression on Criteo-shaped click data, in memory and
//! out-of-core (paper §4.1/§4.3 workload).
//!
//! ```sh
//! cargo run --release -p flashr --example logistic_regression
//! ```

use flashr::data::criteo_like;
use flashr::ml::{accuracy, logistic_regression, LogRegOptions};
use flashr::prelude::*;
use std::time::Instant;

fn run(ctx: &FlashCtx, label: &str, n: u64, p: usize) {
    let d = criteo_like(ctx, n, p, 7);
    // Out-of-core contexts materialize the generated data onto the array
    // first so training measures the streaming path.
    let x = d.x.materialize(ctx);
    let y = d.y.materialize(ctx);

    let t = Instant::now();
    let model =
        logistic_regression(ctx, &x, &y, &LogRegOptions { max_iters: 25, ..Default::default() });
    let took = t.elapsed();

    let acc = accuracy(ctx, &model.predict(&x), &y);
    println!("== {label} ==");
    println!("n = {n}, p = {p}");
    println!("L-BFGS: {} iterations, logloss {:.5}, {took:?}", model.iterations, model.loss);
    println!("training accuracy: {:.3}", acc);
    if let Some(truth) = &d.truth {
        let err: f64 = model
            .weights
            .iter()
            .zip(truth)
            .map(|(w, t)| (w - t) * (w - t))
            .sum::<f64>()
            .sqrt();
        println!("‖w − w*‖₂ = {err:.3} (ground-truth recovery)");
    }
    println!();
}

fn main() {
    let n = 500_000u64;
    let p = 40usize; // the Criteo feature count

    run(&FlashCtx::in_memory(), "FlashR-IM (in memory)", n, p);

    let dir = std::env::temp_dir().join("flashr-logreg-example");
    let _ = std::fs::remove_dir_all(&dir);
    let em = FlashCtx::on_ssds(SafsConfig::striped_under(&dir, 4)).expect("SAFS open");
    run(&em, "FlashR-EM (on SSDs)", n, p);
    let io = em.safs().unwrap().stats_snapshot();
    println!(
        "EM I/O totals: {:.1} MiB read, {:.1} MiB written",
        io.read_bytes as f64 / (1 << 20) as f64,
        io.write_bytes as f64 / (1 << 20) as f64
    );
    let _ = std::fs::remove_dir_all(&dir);
}
