//! I/O accounting.
//!
//! FlashR's evaluation reasons about the ratio of computation to I/O;
//! these counters are how the benchmarks (and tests) observe how many
//! bytes a DAG materialization actually moved — and, since the tracing
//! layer landed, what the *shape* of the latency distribution is and how
//! deep the per-disk queues run.

use crate::cache::CacheStatsSnapshot;
use crate::metrics::{Log2Histogram, Log2HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 latency buckets. Bucket `i` counts requests whose
/// latency in nanoseconds falls in `[2^i, 2^(i+1))` (bucket 0 also
/// absorbs 0 ns); the last bucket absorbs everything slower than
/// ~`2^39` ns (≈ 9 minutes).
pub const LAT_BUCKETS: usize = 40;

/// Lock-free log2-bucketed latency histogram: the I/O-latency
/// instantiation of the generic [`Log2Histogram`] — cheap enough to
/// stay always-on in the I/O threads.
pub type LatencyHisto = Log2Histogram<LAT_BUCKETS>;

/// Point-in-time copy of a [`LatencyHisto`].
pub type LatencyHistoSnapshot = Log2HistogramSnapshot<LAT_BUCKETS>;

/// Monotonic counters, updated by the I/O threads, plus queue-depth
/// gauges updated at submit/complete time.
#[derive(Debug, Default)]
pub struct IoStats {
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    read_reqs: AtomicU64,
    write_reqs: AtomicU64,
    read_nanos: AtomicU64,
    write_nanos: AtomicU64,
    read_lat: LatencyHisto,
    write_lat: LatencyHisto,
    /// Nanoseconds I/O threads spent blocked in the bandwidth throttle.
    throttle_wait_nanos: AtomicU64,
    /// Transient I/O errors the backend workers retried.
    io_retries: AtomicU64,
    /// Requests submitted but not yet completed (gauge).
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth` since the runtime started.
    max_queue_depth: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub read_reqs: u64,
    pub write_reqs: u64,
    pub read_nanos: u64,
    pub write_nanos: u64,
    pub read_lat: LatencyHistoSnapshot,
    pub write_lat: LatencyHistoSnapshot,
    /// Nanoseconds I/O threads spent blocked in the bandwidth throttle
    /// (0 when no throttle is configured).
    pub throttle_wait_nanos: u64,
    /// Transient I/O errors the backend workers retried (each eventual
    /// success or final failure is one request; this counts the extra
    /// attempts).
    pub io_retries: u64,
    /// In-flight requests at snapshot time (gauge, not delta-able).
    pub cur_queue_depth: u64,
    /// Deepest the queues have run since the runtime started (gauge).
    pub max_queue_depth: u64,
    /// Page-cache counters (all zero when no cache is installed).
    /// Populated by [`Safs::stats_snapshot`](crate::Safs::stats_snapshot);
    /// [`IoStats::snapshot`] itself knows nothing about the cache.
    pub cache: CacheStatsSnapshot,
}

impl IoStats {
    pub(crate) fn record_read(&self, bytes: u64, nanos: u64) {
        self.read_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.read_reqs.fetch_add(1, Ordering::Relaxed);
        self.read_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.read_lat.record(nanos);
    }

    pub(crate) fn record_write(&self, bytes: u64, nanos: u64) {
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.write_reqs.fetch_add(1, Ordering::Relaxed);
        self.write_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.write_lat.record(nanos);
    }

    /// The I/O thread slept in the throttle for this long.
    pub(crate) fn record_throttle_wait(&self, nanos: u64) {
        self.throttle_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A transient I/O error was retried.
    pub(crate) fn record_retry(&self) {
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A request entered an I/O queue.
    pub(crate) fn queue_enter(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A request left an I/O queue (completed or failed).
    pub(crate) fn queue_exit(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current in-flight request count (for queue-depth counter spans).
    pub(crate) fn depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            read_reqs: self.read_reqs.load(Ordering::Relaxed),
            write_reqs: self.write_reqs.load(Ordering::Relaxed),
            read_nanos: self.read_nanos.load(Ordering::Relaxed),
            write_nanos: self.write_nanos.load(Ordering::Relaxed),
            read_lat: self.read_lat.snapshot(),
            write_lat: self.write_lat.snapshot(),
            throttle_wait_nanos: self.throttle_wait_nanos.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            cur_queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            cache: CacheStatsSnapshot::default(),
        }
    }
}

impl IoStatsSnapshot {
    /// Counter movement between two snapshots (`later - self`).
    ///
    /// Ordering contract: `self` must be the *earlier* snapshot. Counters
    /// are monotonic, so passing them in order yields exact deltas; if the
    /// arguments are accidentally swapped the subtraction saturates to 0
    /// instead of panicking. The queue-depth gauges are not deltas: the
    /// result carries `later`'s values unchanged.
    pub fn delta(&self, later: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_bytes: later.read_bytes.saturating_sub(self.read_bytes),
            write_bytes: later.write_bytes.saturating_sub(self.write_bytes),
            read_reqs: later.read_reqs.saturating_sub(self.read_reqs),
            write_reqs: later.write_reqs.saturating_sub(self.write_reqs),
            read_nanos: later.read_nanos.saturating_sub(self.read_nanos),
            write_nanos: later.write_nanos.saturating_sub(self.write_nanos),
            read_lat: self.read_lat.delta(&later.read_lat),
            write_lat: self.write_lat.delta(&later.write_lat),
            throttle_wait_nanos: later.throttle_wait_nanos.saturating_sub(self.throttle_wait_nanos),
            io_retries: later.io_retries.saturating_sub(self.io_retries),
            cur_queue_depth: later.cur_queue_depth,
            max_queue_depth: later.max_queue_depth,
            cache: self.cache.delta(&later.cache),
        }
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::default();
        s.record_read(100, 5);
        s.record_read(50, 5);
        s.record_write(30, 1);
        let snap = s.snapshot();
        assert_eq!(snap.read_bytes, 150);
        assert_eq!(snap.read_reqs, 2);
        assert_eq!(snap.write_bytes, 30);
        assert_eq!(snap.write_reqs, 1);
        assert_eq!(snap.total_bytes(), 180);
        assert_eq!(snap.read_lat.count(), 2);
        assert_eq!(snap.write_lat.count(), 1);
    }

    #[test]
    fn delta_between_snapshots() {
        let s = IoStats::default();
        s.record_read(10, 1);
        let a = s.snapshot();
        s.record_read(25, 2);
        s.record_write(5, 1);
        let b = s.snapshot();
        let d = a.delta(&b);
        assert_eq!(d.read_bytes, 25);
        assert_eq!(d.write_bytes, 5);
        assert_eq!(d.read_reqs, 1);
        assert_eq!(d.read_lat.count(), 1);
    }

    #[test]
    fn swapped_delta_saturates_instead_of_panicking() {
        let s = IoStats::default();
        s.record_read(10, 1);
        let a = s.snapshot();
        s.record_read(10, 1);
        let b = s.snapshot();
        // Wrong order: later.delta(&earlier) must not underflow.
        let d = b.delta(&a);
        assert_eq!(d.read_bytes, 0);
        assert_eq!(d.read_reqs, 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(LatencyHisto::bucket_of(0), 0);
        assert_eq!(LatencyHisto::bucket_of(1), 0);
        assert_eq!(LatencyHisto::bucket_of(2), 1);
        assert_eq!(LatencyHisto::bucket_of(3), 1);
        assert_eq!(LatencyHisto::bucket_of(4), 2);
        assert_eq!(LatencyHisto::bucket_of(1023), 9);
        assert_eq!(LatencyHisto::bucket_of(1024), 10);
        assert_eq!(LatencyHisto::bucket_of(u64::MAX), LAT_BUCKETS - 1);
        // bounds are [2^i, 2^(i+1)) with bucket 0 starting at 0
        assert_eq!(LatencyHisto::bucket_bounds(0), (0, 2));
        assert_eq!(LatencyHisto::bucket_bounds(10), (1024, 2048));
        assert_eq!(LatencyHisto::bucket_bounds(LAT_BUCKETS - 1).1, u64::MAX);
        // every recordable value lands inside its bucket's bounds
        for nanos in [0u64, 1, 2, 7, 1 << 20, u64::MAX] {
            let b = LatencyHisto::bucket_of(nanos);
            let (lo, hi) = LatencyHisto::bucket_bounds(b);
            assert!(nanos >= lo && nanos < hi || b == LAT_BUCKETS - 1, "{nanos} in [{lo},{hi})");
        }
    }

    #[test]
    fn histogram_quantiles() {
        let h = LatencyHisto::default();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(1 << 20); // one slow outlier
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile_upper_ns(0.5), 128);
        assert_eq!(s.quantile_upper_ns(0.95), 128);
        assert_eq!(s.quantile_upper_ns(1.0), 1 << 21);
        assert_eq!(LatencyHistoSnapshot::default().quantile_upper_ns(0.5), 0);
    }

    #[test]
    fn queue_depth_gauges() {
        let s = IoStats::default();
        s.queue_enter();
        s.queue_enter();
        assert_eq!(s.snapshot().cur_queue_depth, 2);
        assert_eq!(s.snapshot().max_queue_depth, 2);
        s.queue_exit();
        let snap = s.snapshot();
        assert_eq!(snap.cur_queue_depth, 1);
        assert_eq!(snap.max_queue_depth, 2, "high-water mark persists");
    }
}
