//! I/O accounting.
//!
//! FlashR's evaluation reasons about the ratio of computation to I/O;
//! these counters are how the benchmarks (and tests) observe how many
//! bytes a DAG materialization actually moved.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters, updated by the I/O threads.
#[derive(Debug, Default)]
pub struct IoStats {
    read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    read_reqs: AtomicU64,
    write_reqs: AtomicU64,
    read_nanos: AtomicU64,
    write_nanos: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub read_reqs: u64,
    pub write_reqs: u64,
    pub read_nanos: u64,
    pub write_nanos: u64,
}

impl IoStats {
    pub(crate) fn record_read(&self, bytes: u64, nanos: u64) {
        self.read_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.read_reqs.fetch_add(1, Ordering::Relaxed);
        self.read_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64, nanos: u64) {
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.write_reqs.fetch_add(1, Ordering::Relaxed);
        self.write_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            read_reqs: self.read_reqs.load(Ordering::Relaxed),
            write_reqs: self.write_reqs.load(Ordering::Relaxed),
            read_nanos: self.read_nanos.load(Ordering::Relaxed),
            write_nanos: self.write_nanos.load(Ordering::Relaxed),
        }
    }
}

impl IoStatsSnapshot {
    /// Counter movement between two snapshots (`later - self`).
    pub fn delta(&self, later: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            read_bytes: later.read_bytes - self.read_bytes,
            write_bytes: later.write_bytes - self.write_bytes,
            read_reqs: later.read_reqs - self.read_reqs,
            write_reqs: later.write_reqs - self.write_reqs,
            read_nanos: later.read_nanos - self.read_nanos,
            write_nanos: later.write_nanos - self.write_nanos,
        }
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::default();
        s.record_read(100, 5);
        s.record_read(50, 5);
        s.record_write(30, 1);
        let snap = s.snapshot();
        assert_eq!(snap.read_bytes, 150);
        assert_eq!(snap.read_reqs, 2);
        assert_eq!(snap.write_bytes, 30);
        assert_eq!(snap.write_reqs, 1);
        assert_eq!(snap.total_bytes(), 180);
    }

    #[test]
    fn delta_between_snapshots() {
        let s = IoStats::default();
        s.record_read(10, 1);
        let a = s.snapshot();
        s.record_read(25, 2);
        s.record_write(5, 1);
        let b = s.snapshot();
        let d = a.delta(&b);
        assert_eq!(d.read_bytes, 25);
        assert_eq!(d.write_bytes, 5);
        assert_eq!(d.read_reqs, 1);
    }
}
