//! # flashr-safs
//!
//! A user-space storage substrate modelled on SAFS (Zheng et al., SC'13),
//! the filesystem FlashR uses to drive arrays of SSDs.
//!
//! The real SAFS stripes file data across many SSDs, issues asynchronous
//! direct I/O from dedicated per-device threads, and exposes the array as a
//! single high-throughput address space. This crate reproduces that
//! architecture at partition granularity:
//!
//! * a [`Safs`] runtime owns a set of *disks* (directories, which may be
//!   placed on distinct physical devices),
//! * a [`SafsFile`] is striped across all disks with a per-file permuted
//!   round-robin mapping (an even, deterministic "hash" placement, §3.2.1
//!   of the FlashR paper),
//! * every disk runs a pool of I/O threads draining a request queue, so
//!   reads and writes are asynchronous and overlap with computation,
//! * an optional [`ThrottleCfg`] emulates a configured device bandwidth,
//!   which lets benchmarks reproduce the paper's in-memory/external-memory
//!   performance ratios deterministically on any host.
//!
//! I/O is partition-granular: callers read and write whole I/O partitions
//! (the unit the FlashR scheduler dispatches to worker threads).
//!
//! ```
//! use flashr_safs::{Safs, SafsConfig};
//!
//! let dir = std::env::temp_dir().join("safs-doc-example");
//! let safs = Safs::open(SafsConfig::single_dir(&dir)).unwrap();
//! let file = safs.create("doc", 4096, 3).unwrap();
//! file.write_part(0, &vec![7u8; 4096]).unwrap();
//! let buf = file.read_part(0).unwrap();
//! assert!(buf.as_bytes().iter().all(|&b| b == 7));
//! file.delete().unwrap();
//! ```

mod aio;
pub mod backend;
mod cache;
mod config;
mod error;
mod file;
mod iobuf;
mod layout;
pub mod metrics;
mod runtime;
mod span;
mod stats;
mod throttle;

pub use aio::{IoReq, IoTicket};
pub use backend::{
    BackendKind, DirectBackend, RetryCfg, ShardStats, ShardStatsSnapshot, SimBackend,
    StorageBackend,
};
pub use cache::{CacheCfg, CacheStatsSnapshot, CachedFetch, PageCache, PendingRead};
pub use config::{SafsConfig, ThrottleCfg};
pub use error::{SafsError, SafsResult};
pub use file::SafsFile;
pub use iobuf::{IoBuf, Pod};
pub use layout::Striping;
pub use metrics::{Counter, Gauge, Log2Histogram, Log2HistogramSnapshot};
pub use runtime::Safs;
pub use span::{now_nanos, SpanArgs, SpanSink, NO_ARGS};
pub use stats::{IoStats, IoStatsSnapshot, LatencyHisto, LatencyHistoSnapshot, LAT_BUCKETS};
