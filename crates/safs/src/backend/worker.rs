//! The shard engine both backends delegate to: per-shard request queues
//! drained by dedicated worker threads (the aio-thread design of SAFS,
//! refactored out of the old `aio.rs` so the throttled and raw-speed
//! backends share one request lifecycle).
//!
//! A request's life on a worker:
//!
//! 1. dequeue (ends the `queue` span that began at submit time),
//! 2. the positional read/write, retried under [`RetryCfg`] while the
//!    error stays transient (each retry emits an `io-retry` span and
//!    bumps the shard's and the aggregate retry counters),
//! 3. optional throttle charge (Sim backend only),
//! 4. stats recording — aggregate [`IoStats`] *and* the shard's
//!    [`ShardStats`] — plus the `read`/`write`/`io-error` device span
//!    and per-shard queue-depth counter samples,
//! 5. completion delivery to the ticket.

use crate::aio::{IoOp, IoReq};
use crate::backend::{
    shard_depth_counter, with_retries, RetryCfg, ShardStats, ShardStatsSnapshot,
};
use crate::config::SafsConfig;
use crate::error::{SafsError, SafsResult};
use crate::span::{now_nanos, SpanSinkCell};
use crate::stats::IoStats;
use crate::throttle::Throttle;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime-owned state every worker shares, handed to the backend at
/// open time.
pub(crate) struct WorkerEnv {
    pub(crate) stats: Arc<IoStats>,
    pub(crate) span_sink: Arc<SpanSinkCell>,
    /// Injected transient read faults remaining (testing hook; see
    /// [`Safs::inject_read_faults`](crate::Safs::inject_read_faults)).
    pub(crate) faults: Arc<AtomicU64>,
}

/// Per-worker context cloned into each spawned thread.
struct WorkerCtx {
    shard: usize,
    stats: Arc<IoStats>,
    shard_stats: Arc<ShardStats>,
    throttle: Option<Arc<Throttle>>,
    retry: RetryCfg,
    span_sink: Arc<SpanSinkCell>,
    faults: Arc<AtomicU64>,
}

/// Queues, workers and stats for every shard of one backend instance.
pub(crate) struct ShardSet {
    /// Cleared on shutdown so workers observe disconnection.
    queues: Mutex<Vec<Sender<IoReq>>>,
    shard_stats: Vec<Arc<ShardStats>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<IoStats>,
    span_sink: Arc<SpanSinkCell>,
}

impl ShardSet {
    /// Spawn `cfg.io_threads_per_disk` workers per shard. `throttled`
    /// selects whether each shard gets its own bandwidth pacer from
    /// `cfg.throttle`; `flavor` lands in the thread names
    /// (`safs-<flavor>-s<shard>t<n>`), which become per-shard lanes in
    /// the timeline and flight recorder.
    pub(crate) fn open(
        cfg: &SafsConfig,
        throttled: bool,
        env: &WorkerEnv,
        flavor: &'static str,
    ) -> SafsResult<ShardSet> {
        let nshards = cfg.disks.len();
        let mut queues = Vec::with_capacity(nshards);
        let mut shard_stats = Vec::with_capacity(nshards);
        let mut threads = Vec::new();
        for shard in 0..nshards {
            let (tx, rx) = unbounded::<IoReq>();
            let stats = Arc::new(ShardStats::default());
            let throttle =
                if throttled { cfg.throttle.map(|t| Arc::new(Throttle::new(t))) } else { None };
            for t in 0..cfg.io_threads_per_disk {
                let ctx = WorkerCtx {
                    shard,
                    stats: env.stats.clone(),
                    shard_stats: stats.clone(),
                    throttle: throttle.clone(),
                    retry: cfg.retry,
                    span_sink: env.span_sink.clone(),
                    faults: env.faults.clone(),
                };
                let rx = rx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("safs-{flavor}-s{shard}t{t}"))
                    .spawn(move || worker_main(rx, ctx))
                    .map_err(|e| SafsError::io("spawning I/O thread", e))?;
                threads.push(handle);
            }
            queues.push(tx);
            shard_stats.push(stats);
        }
        Ok(ShardSet {
            queues: Mutex::new(queues),
            shard_stats,
            threads: Mutex::new(threads),
            stats: env.stats.clone(),
            span_sink: env.span_sink.clone(),
        })
    }

    pub(crate) fn nshards(&self) -> usize {
        self.shard_stats.len()
    }

    pub(crate) fn submit(&self, shard: usize, mut req: IoReq) {
        self.stats.queue_enter();
        self.shard_stats[shard].queue_enter();
        if let Some(sink) = self.span_sink.get() {
            req.submit_ns = now_nanos();
            sink.counter("io-queue-depth", req.submit_ns, self.stats.depth());
            sink.counter(shard_depth_counter(shard), req.submit_ns, self.shard_stats[shard].depth());
        }
        // The queue only disconnects at shutdown, which cannot happen
        // while a file (which holds an Arc to the runtime) is submitting.
        let tx = self.queues.lock()[shard].clone();
        tx.send(req).expect("I/O queue closed while runtime alive");
    }

    pub(crate) fn flush(&self) {
        // Completion barrier: every request visible in a shard's depth
        // gauge was submitted before this call; poll until all drain.
        while self.shard_stats.iter().any(|s| s.depth() > 0) {
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    pub(crate) fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shard_stats.iter().map(|s| s.snapshot()).collect()
    }

    pub(crate) fn shutdown(&self) {
        self.queues.lock().clear();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pop one injected fault, if any remain.
fn take_fault(faults: &AtomicU64) -> bool {
    faults.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1)).is_ok()
}

/// Body of one worker thread: drain the shard queue until all senders
/// drop.
fn worker_main(rx: Receiver<IoReq>, ctx: WorkerCtx) {
    while let Ok(req) = rx.recv() {
        let sink = ctx.span_sink.get();
        let device_ns = sink.as_ref().map(|_| now_nanos());
        let started = Instant::now();
        let is_read = matches!(req.op, IoOp::Read { .. });
        let mut nbytes = 0u64;
        let mut on_retry = |attempt: u32, _e: &std::io::Error| {
            ctx.stats.record_retry();
            ctx.shard_stats.record_retry();
            if let Some(s) = &sink {
                s.instant(
                    "io",
                    "io-retry",
                    now_nanos(),
                    [("attempt", attempt as u64), ("shard", ctx.shard as u64)],
                );
            }
        };
        let result = match req.op {
            IoOp::Read { mut buf } => {
                let r = with_retries(
                    ctx.retry,
                    || {
                        if take_fault(&ctx.faults) {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::Interrupted,
                                "injected transient fault",
                            ));
                        }
                        req.file.read_exact_at(buf.as_mut_bytes(), req.offset)
                    },
                    &mut on_retry,
                );
                match r {
                    Ok(()) => {
                        if let Some(t) = &ctx.throttle {
                            let waited = t.charge(buf.len() as u64);
                            ctx.stats.record_throttle_wait(waited.as_nanos() as u64);
                        }
                        nbytes = buf.len() as u64;
                        let nanos = started.elapsed().as_nanos() as u64;
                        ctx.stats.record_read(nbytes, nanos);
                        ctx.shard_stats.record_read(nbytes, nanos);
                        Ok(buf)
                    }
                    Err(e) => Err(SafsError::io(req.context, e)),
                }
            }
            IoOp::Write { buf } => {
                let r = with_retries(
                    ctx.retry,
                    || req.file.write_all_at(buf.as_bytes(), req.offset),
                    &mut on_retry,
                );
                match r {
                    Ok(()) => {
                        if let Some(t) = &ctx.throttle {
                            let waited = t.charge(buf.len() as u64);
                            ctx.stats.record_throttle_wait(waited.as_nanos() as u64);
                        }
                        nbytes = buf.len() as u64;
                        let nanos = started.elapsed().as_nanos() as u64;
                        ctx.stats.record_write(nbytes, nanos);
                        ctx.shard_stats.record_write(nbytes, nanos);
                        Ok(buf)
                    }
                    Err(e) => Err(SafsError::io(req.context, e)),
                }
            }
        };
        if let (Some(sink), Some(device_ns)) = (&sink, device_ns) {
            // The request's life splits into a queue span (submit → the
            // worker picks it up; attributed to this thread's track
            // because only here are both timestamps known) and a device
            // span (the blocking read/write itself, retries included).
            let end_ns = now_nanos();
            if req.submit_ns > 0 && req.submit_ns <= device_ns {
                sink.span(
                    "io",
                    "queue",
                    req.submit_ns,
                    device_ns,
                    [("bytes", nbytes), ("shard", ctx.shard as u64)],
                );
            }
            // Only a *final* failure — retries exhausted or a permanent
            // error — is an `io-error` span; that name is what triggers
            // the flight-recorder dump.
            let name = if result.is_ok() {
                if is_read {
                    "read"
                } else {
                    "write"
                }
            } else {
                "io-error"
            };
            sink.span("io", name, device_ns, end_ns, [("bytes", nbytes), ("shard", ctx.shard as u64)]);
            sink.counter("io-queue-depth", end_ns, ctx.stats.depth().saturating_sub(1));
            sink.counter(
                shard_depth_counter(ctx.shard),
                end_ns,
                ctx.shard_stats.depth().saturating_sub(1),
            );
        }
        // The submitter may have dropped its ticket; that's fine.
        let _ = req.done.send(result);
        ctx.shard_stats.queue_exit();
        ctx.stats.queue_exit();
    }
}
