//! The simulated aio-thread backend: the crate's original I/O engine,
//! now behind [`StorageBackend`].
//!
//! Each shard (emulated device) owns a request queue, a pool of worker
//! threads and — when [`SafsConfig::throttle`] is set — its own
//! [`Throttle`](crate::throttle) pacing completions to the configured
//! per-device bandwidth. Striping partitions across N shards therefore
//! scales aggregate emulated bandwidth by N, which is what makes the
//! shard-sweep benchmark's scaling curve deterministic on any host.

use super::worker::{ShardSet, WorkerEnv};
use super::{BackendKind, ShardStatsSnapshot, StorageBackend};
use crate::aio::IoReq;
use crate::config::SafsConfig;
use crate::error::SafsResult;

/// Simulated-device backend (throttled per-shard aio threads).
pub struct SimBackend {
    set: ShardSet,
}

impl SimBackend {
    pub(crate) fn open(cfg: &SafsConfig, env: WorkerEnv) -> SafsResult<SimBackend> {
        Ok(SimBackend { set: ShardSet::open(cfg, true, &env, "sim")? })
    }
}

impl StorageBackend for SimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sim
    }

    fn nshards(&self) -> usize {
        self.set.nshards()
    }

    fn submit(&self, shard: usize, req: IoReq) {
        self.set.submit(shard, req);
    }

    fn flush(&self) {
        self.set.flush();
    }

    fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.set.shard_stats()
    }

    fn shutdown(&self) {
        self.set.shutdown();
    }
}
