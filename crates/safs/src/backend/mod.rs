//! Pluggable storage backends and the sharded I/O layout.
//!
//! SAFS proper drives an SSD *array*: every device owns its own request
//! queue, its own I/O threads and its own statistics, and file data is
//! striped across all of them (Zheng et al., SC'13 §3). This module is
//! that architecture made explicit:
//!
//! * [`StorageBackend`] — the contract the runtime programs against:
//!   asynchronous submit/complete of partition-granular requests,
//!   addressed by *shard* (one SAFS root directory = one emulated
//!   device), a completion barrier ([`StorageBackend::flush`]) and
//!   per-shard statistics.
//! * [`SimBackend`] — the original simulated aio-thread engine
//!   (refactored out of `aio.rs`): per-shard worker threads with the
//!   per-shard bandwidth [`Throttle`](crate::throttle) emulation that
//!   makes the paper's scaling figures deterministic on any host.
//! * [`DirectBackend`] — a thread-pool backend for real files: the same
//!   per-shard queues and workers, but positional reads/writes run at
//!   host-device speed with no throttle in the path. (`O_DIRECT`-style:
//!   the request shapes are partition-granular and positional, but the
//!   open flag itself is not set — the crate has no libc dependency and
//!   [`IoBuf`](crate::IoBuf) makes no alignment guarantee.)
//!
//! Selection is per-runtime via [`SafsConfig::backend`](crate::SafsConfig)
//! or the `FLASHR_BACKEND` environment variable (`sim` | `direct`).
//!
//! Every shard keeps its own [`ShardStats`] — request/byte counters, a
//! [`LatencyHisto`] and queue-depth gauges — on top of the aggregate
//! [`IoStats`](crate::IoStats), so the timeline, the flight recorder
//! and the Prometheus exposition all see per-shard lanes.
//!
//! Transient device errors are retried with bounded exponential backoff
//! ([`RetryCfg`]); each retry is counted (`io_retries`) and emitted as
//! an `io-retry` span, and only the *final* failure surfaces as the
//! `io-error` span that triggers the flight-recorder dump.

mod direct;
mod sim;
mod worker;

pub use direct::DirectBackend;
pub use sim::SimBackend;
pub(crate) use worker::WorkerEnv;

use crate::aio::IoReq;
use crate::config::SafsConfig;
use crate::error::SafsResult;
use crate::metrics::{Counter, Gauge};
use crate::stats::{LatencyHisto, LatencyHistoSnapshot};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Which storage backend a runtime drives its shards with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Simulated aio-thread engine with per-shard bandwidth throttling
    /// (the default; deterministic device emulation for benchmarks).
    #[default]
    Sim,
    /// Thread-pool backend doing positional I/O against real files at
    /// host speed (no throttle emulation).
    Direct,
}

impl BackendKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Direct => "direct",
        }
    }

    /// Parse a backend name (case-insensitive). `aio` is accepted as an
    /// alias for `sim`, `odirect`/`o_direct` for `direct`.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sim" | "aio" | "throttled" => Some(BackendKind::Sim),
            "direct" | "odirect" | "o_direct" => Some(BackendKind::Direct),
            _ => None,
        }
    }

    /// The backend selected by `FLASHR_BACKEND`, or the default (`Sim`)
    /// when the variable is unset or unparseable.
    pub fn from_env() -> BackendKind {
        std::env::var("FLASHR_BACKEND").ok().and_then(|s| BackendKind::parse(&s)).unwrap_or_default()
    }
}

/// Bounded retry policy for transient backend I/O errors.
///
/// A worker re-attempts a failed read/write while the error is
/// transient (interrupted / would-block / timed-out) and attempts
/// remain, sleeping `base_backoff_us * 2^(attempt-1)` between tries.
/// `max_attempts == 1` disables retry entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryCfg {
    /// Total attempts per request, including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds; doubles per
    /// subsequent retry.
    pub base_backoff_us: u64,
}

impl Default for RetryCfg {
    fn default() -> Self {
        RetryCfg { max_attempts: 3, base_backoff_us: 100 }
    }
}

/// Whether an I/O error is worth retrying: spurious kernel-level
/// interruptions rather than hard device/media faults.
pub(crate) fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Run `attempt` under the retry policy. `on_retry(attempt_no, err)` is
/// called before each backoff sleep (attempt_no counts from 1); the
/// final error — transient or not — is returned unretried.
pub(crate) fn with_retries<T>(
    retry: RetryCfg,
    mut attempt: impl FnMut() -> io::Result<T>,
    mut on_retry: impl FnMut(u32, &io::Error),
) -> io::Result<T> {
    let max = retry.max_attempts.max(1);
    let mut backoff = Duration::from_micros(retry.base_backoff_us);
    for n in 1..=max {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) if n < max && is_transient(&e) => {
                on_retry(n, &e);
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on the final attempt")
}

/// Per-shard I/O counters: one instance per shard, updated by that
/// shard's workers only (plus queue-depth bumps from submitters).
#[derive(Debug, Default)]
pub struct ShardStats {
    read_reqs: Counter,
    write_reqs: Counter,
    read_bytes: Counter,
    write_bytes: Counter,
    retries: Counter,
    lat: LatencyHisto,
    queue_depth: Gauge,
    max_queue_depth: AtomicU64,
}

impl ShardStats {
    pub(crate) fn record_read(&self, bytes: u64, nanos: u64) {
        self.read_reqs.inc();
        self.read_bytes.add(bytes);
        self.lat.record(nanos);
    }

    pub(crate) fn record_write(&self, bytes: u64, nanos: u64) {
        self.write_reqs.inc();
        self.write_bytes.add(bytes);
        self.lat.record(nanos);
    }

    pub(crate) fn record_retry(&self) {
        self.retries.inc();
    }

    pub(crate) fn queue_enter(&self) {
        let depth = self.queue_depth.inc();
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    pub(crate) fn queue_exit(&self) {
        self.queue_depth.dec();
    }

    pub(crate) fn depth(&self) -> u64 {
        self.queue_depth.get()
    }

    pub fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            read_reqs: self.read_reqs.get(),
            write_reqs: self.write_reqs.get(),
            read_bytes: self.read_bytes.get(),
            write_bytes: self.write_bytes.get(),
            retries: self.retries.get(),
            lat: self.lat.snapshot(),
            cur_queue_depth: self.queue_depth.get(),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one shard's [`ShardStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStatsSnapshot {
    pub read_reqs: u64,
    pub write_reqs: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// Transient errors this shard's workers retried.
    pub retries: u64,
    /// Device latency of this shard's requests (reads and writes).
    pub lat: LatencyHistoSnapshot,
    /// In-flight requests at snapshot time (gauge, not delta-able).
    pub cur_queue_depth: u64,
    /// Deepest this shard's queue has run (gauge).
    pub max_queue_depth: u64,
}

impl ShardStatsSnapshot {
    /// Requests completed in either direction.
    pub fn requests(&self) -> u64 {
        self.read_reqs + self.write_reqs
    }

    /// Counter movement between two snapshots (`later - self`); same
    /// contract as [`IoStatsSnapshot::delta`](crate::IoStatsSnapshot::delta):
    /// gauges carry `later`'s values unchanged.
    pub fn delta(&self, later: &ShardStatsSnapshot) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            read_reqs: later.read_reqs.saturating_sub(self.read_reqs),
            write_reqs: later.write_reqs.saturating_sub(self.write_reqs),
            read_bytes: later.read_bytes.saturating_sub(self.read_bytes),
            write_bytes: later.write_bytes.saturating_sub(self.write_bytes),
            retries: later.retries.saturating_sub(self.retries),
            lat: self.lat.delta(&later.lat),
            cur_queue_depth: later.cur_queue_depth,
            max_queue_depth: later.max_queue_depth,
        }
    }
}

/// Counter-span name for one shard's queue depth. Span names must be
/// `&'static str`, so the first shards get fixed names and any overflow
/// shares one.
pub(crate) fn shard_depth_counter(shard: usize) -> &'static str {
    const NAMES: [&str; 8] = [
        "io-queue-depth-s0",
        "io-queue-depth-s1",
        "io-queue-depth-s2",
        "io-queue-depth-s3",
        "io-queue-depth-s4",
        "io-queue-depth-s5",
        "io-queue-depth-s6",
        "io-queue-depth-s7",
    ];
    NAMES.get(shard).copied().unwrap_or("io-queue-depth-s8plus")
}

/// The contract a storage backend fulfils for the runtime. One backend
/// instance serves one [`Safs`](crate::Safs); requests are addressed by
/// shard index (the striping layer's disk index).
pub trait StorageBackend: Send + Sync {
    /// Which implementation this is.
    fn kind(&self) -> BackendKind;

    /// Number of shards (== configured root directories).
    fn nshards(&self) -> usize;

    /// Enqueue a request on `shard`. Completion is delivered through the
    /// request's `done` channel; the caller observes it via
    /// [`IoTicket`](crate::IoTicket).
    fn submit(&self, shard: usize, req: IoReq);

    /// Completion barrier: block until every request submitted before
    /// this call has completed on every shard.
    fn flush(&self);

    /// Per-shard counters, in shard order.
    fn shard_stats(&self) -> Vec<ShardStatsSnapshot>;

    /// Close the queues and join the worker threads. Called exactly once
    /// when the runtime drops; submitting after shutdown panics.
    fn shutdown(&self);
}

/// Construct the backend selected by `cfg.backend`.
pub(crate) fn open_backend(
    cfg: &SafsConfig,
    env: WorkerEnv,
) -> SafsResult<Box<dyn StorageBackend>> {
    Ok(match cfg.backend {
        BackendKind::Sim => Box::new(SimBackend::open(cfg, env)?),
        BackendKind::Direct => Box::new(DirectBackend::open(cfg, env)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn backend_kind_parsing() {
        assert_eq!(BackendKind::parse("sim"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("AIO"), Some(BackendKind::Sim));
        assert_eq!(BackendKind::parse("direct"), Some(BackendKind::Direct));
        assert_eq!(BackendKind::parse(" ODirect "), Some(BackendKind::Direct));
        assert_eq!(BackendKind::parse("io_uring"), None);
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        let fails = AtomicU32::new(2);
        let mut retried = 0u32;
        let r = with_retries(
            RetryCfg { max_attempts: 3, base_backoff_us: 1 },
            || {
                if fails.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1)).is_ok() {
                    Err(io::Error::new(io::ErrorKind::Interrupted, "flaky"))
                } else {
                    Ok(42)
                }
            },
            |_, _| retried += 1,
        );
        assert_eq!(r.unwrap(), 42);
        assert_eq!(retried, 2);
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let mut retried = 0u32;
        let r: io::Result<()> = with_retries(
            RetryCfg { max_attempts: 3, base_backoff_us: 1 },
            || Err(io::Error::new(io::ErrorKind::Interrupted, "always")),
            |_, _| retried += 1,
        );
        assert!(r.is_err());
        assert_eq!(retried, 2, "two retries between three attempts");
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let mut retried = 0u32;
        let r: io::Result<()> = with_retries(
            RetryCfg { max_attempts: 5, base_backoff_us: 1 },
            || Err(io::Error::new(io::ErrorKind::UnexpectedEof, "short file")),
            |_, _| retried += 1,
        );
        assert!(r.is_err());
        assert_eq!(retried, 0, "UnexpectedEof is not transient");
    }

    #[test]
    fn shard_stats_snapshot_and_delta() {
        let s = ShardStats::default();
        s.queue_enter();
        s.record_read(100, 10);
        s.record_retry();
        let a = s.snapshot();
        assert_eq!(a.read_reqs, 1);
        assert_eq!(a.read_bytes, 100);
        assert_eq!(a.retries, 1);
        assert_eq!(a.cur_queue_depth, 1);
        s.record_write(50, 5);
        s.queue_exit();
        let b = s.snapshot();
        let d = a.delta(&b);
        assert_eq!(d.write_reqs, 1);
        assert_eq!(d.write_bytes, 50);
        assert_eq!(d.read_reqs, 0);
        assert_eq!(d.requests(), 1);
        assert_eq!(b.max_queue_depth, 1);
        assert_eq!(b.cur_queue_depth, 0);
    }

    #[test]
    fn shard_depth_counter_names_are_static_per_shard() {
        assert_eq!(shard_depth_counter(0), "io-queue-depth-s0");
        assert_eq!(shard_depth_counter(7), "io-queue-depth-s7");
        assert_eq!(shard_depth_counter(8), "io-queue-depth-s8plus");
        assert_eq!(shard_depth_counter(100), "io-queue-depth-s8plus");
    }
}
