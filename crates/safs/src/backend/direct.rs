//! The direct thread-pool backend: positional I/O against real files at
//! host-device speed.
//!
//! Same per-shard queues, workers, retry policy and statistics as
//! [`SimBackend`](super::SimBackend), but no bandwidth throttle sits in
//! the path — requests complete as fast as the underlying storage
//! allows, so placing each shard root on a distinct physical device
//! yields true parallel I/O. "`O_DIRECT`-style" refers to the request
//! shape (partition-granular positional reads/writes from dedicated
//! per-device threads, as SAFS issues them): the `O_DIRECT` open flag
//! itself is not set because the crate carries no libc dependency and
//! [`IoBuf`](crate::IoBuf) makes no sector-alignment guarantee.

use super::worker::{ShardSet, WorkerEnv};
use super::{BackendKind, ShardStatsSnapshot, StorageBackend};
use crate::aio::IoReq;
use crate::config::SafsConfig;
use crate::error::SafsResult;

/// Real-file thread-pool backend (no throttle emulation).
pub struct DirectBackend {
    set: ShardSet,
}

impl DirectBackend {
    pub(crate) fn open(cfg: &SafsConfig, env: WorkerEnv) -> SafsResult<DirectBackend> {
        Ok(DirectBackend { set: ShardSet::open(cfg, false, &env, "dir")? })
    }
}

impl StorageBackend for DirectBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Direct
    }

    fn nshards(&self) -> usize {
        self.set.nshards()
    }

    fn submit(&self, shard: usize, req: IoReq) {
        self.set.submit(shard, req);
    }

    fn flush(&self) {
        self.set.flush();
    }

    fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.set.shard_stats()
    }

    fn shutdown(&self) {
        self.set.shutdown();
    }
}
