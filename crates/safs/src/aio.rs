//! Asynchronous I/O engine: per-disk request queues drained by dedicated
//! I/O threads, mirroring SAFS's per-device I/O thread design.
//!
//! Compute threads submit partition-granular requests and continue working;
//! completion is observed through an [`IoTicket`]. This is what lets the
//! FlashR scheduler overlap reading partition `i+1` with computing on
//! partition `i` (paper §3.3).

use crate::error::{SafsError, SafsResult};
use crate::iobuf::IoBuf;
use crate::span::{now_nanos, SpanSinkCell};
use crate::stats::IoStats;
use crate::throttle::Throttle;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::sync::Arc;
use std::time::Instant;

/// What an I/O thread is asked to do with the byte range.
pub(crate) enum IoOp {
    /// Fill `buf` from the file (buf comes pre-sized to the read length).
    Read { buf: IoBuf },
    /// Write `buf` to the file.
    Write { buf: IoBuf },
}

/// One queued request against a strip file.
pub(crate) struct IoReq {
    pub file: Arc<File>,
    pub offset: u64,
    pub op: IoOp,
    pub done: Sender<SafsResult<IoBuf>>,
    pub context: String,
    /// Submission timestamp ([`now_nanos`]); stamped by the runtime only
    /// while a span sink is installed, 0 otherwise.
    pub submit_ns: u64,
}

/// Handle to a pending asynchronous request.
///
/// Dropping a ticket without waiting is allowed; the I/O still completes
/// (writes are not cancelled) and the result is discarded.
pub struct IoTicket {
    rx: Receiver<SafsResult<IoBuf>>,
}

impl IoTicket {
    pub(crate) fn new(rx: Receiver<SafsResult<IoBuf>>) -> Self {
        IoTicket { rx }
    }

    /// Block until the request completes. Returns the buffer: the data for
    /// reads, the original buffer back for writes (for reuse).
    pub fn wait(self) -> SafsResult<IoBuf> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(SafsError::io("I/O engine shut down", std::io::Error::other("channel closed")))
        })
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&mut self) -> Option<SafsResult<IoBuf>> {
        self.rx.try_recv().ok()
    }
}

/// Create a completion channel for one request.
pub(crate) fn completion() -> (Sender<SafsResult<IoBuf>>, IoTicket) {
    let (tx, rx) = bounded(1);
    (tx, IoTicket::new(rx))
}

/// Body of one I/O thread: drain the disk queue until all senders drop.
pub(crate) fn io_thread_main(
    rx: Receiver<IoReq>,
    stats: Arc<IoStats>,
    throttle: Option<Arc<Throttle>>,
    span_sink: Arc<SpanSinkCell>,
) {
    while let Ok(req) = rx.recv() {
        let sink = span_sink.get();
        let device_ns = sink.as_ref().map(|_| now_nanos());
        let started = Instant::now();
        let is_read = matches!(req.op, IoOp::Read { .. });
        let mut nbytes = 0u64;
        let result = match req.op {
            IoOp::Read { mut buf } => match req.file.read_exact_at(buf.as_mut_bytes(), req.offset) {
                Ok(()) => {
                    if let Some(t) = &throttle {
                        let waited = t.charge(buf.len() as u64);
                        stats.record_throttle_wait(waited.as_nanos() as u64);
                    }
                    nbytes = buf.len() as u64;
                    stats.record_read(nbytes, started.elapsed().as_nanos() as u64);
                    Ok(buf)
                }
                Err(e) => Err(SafsError::io(req.context, e)),
            },
            IoOp::Write { buf } => match req.file.write_all_at(buf.as_bytes(), req.offset) {
                Ok(()) => {
                    if let Some(t) = &throttle {
                        let waited = t.charge(buf.len() as u64);
                        stats.record_throttle_wait(waited.as_nanos() as u64);
                    }
                    nbytes = buf.len() as u64;
                    stats.record_write(nbytes, started.elapsed().as_nanos() as u64);
                    Ok(buf)
                }
                Err(e) => Err(SafsError::io(req.context, e)),
            },
        };
        if let (Some(sink), Some(device_ns)) = (&sink, device_ns) {
            // The request's life splits into a queue span (submit → the
            // I/O thread picks it up; attributed to this thread's track
            // because only here are both timestamps known) and a device
            // span (the blocking read/write itself).
            let end_ns = now_nanos();
            if req.submit_ns > 0 && req.submit_ns <= device_ns {
                sink.span("io", "queue", req.submit_ns, device_ns, [("bytes", nbytes), ("", 0)]);
            }
            let name = if result.is_ok() {
                if is_read {
                    "read"
                } else {
                    "write"
                }
            } else {
                "io-error"
            };
            sink.span("io", name, device_ns, end_ns, [("bytes", nbytes), ("", 0)]);
            sink.counter("io-queue-depth", end_ns, stats.depth().saturating_sub(1));
        }
        // The submitter may have dropped its ticket; that's fine.
        let _ = req.done.send(result);
        stats.queue_exit();
    }
}
