//! Asynchronous request and completion types shared by every storage
//! backend.
//!
//! Compute threads submit partition-granular requests and continue
//! working; completion is observed through an [`IoTicket`]. This is what
//! lets the FlashR scheduler overlap reading partition `i+1` with
//! computing on partition `i` (paper §3.3). The engine that services the
//! requests — per-shard queues drained by dedicated worker threads —
//! lives in [`crate::backend`].

use crate::error::{SafsError, SafsResult};
use crate::iobuf::IoBuf;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::fs::File;
use std::sync::Arc;

/// What a backend worker is asked to do with the byte range.
pub(crate) enum IoOp {
    /// Fill `buf` from the file (buf comes pre-sized to the read length).
    Read { buf: IoBuf },
    /// Write `buf` to the file.
    Write { buf: IoBuf },
}

/// One queued request against a strip file.
///
/// Public only so it can appear in [`StorageBackend::submit`]
/// (crate::StorageBackend::submit) signatures; the fields (and therefore
/// construction) are crate-private — requests are minted by
/// [`SafsFile`](crate::SafsFile) operations.
pub struct IoReq {
    pub(crate) file: Arc<File>,
    pub(crate) offset: u64,
    pub(crate) op: IoOp,
    pub(crate) done: Sender<SafsResult<IoBuf>>,
    pub(crate) context: String,
    /// Submission timestamp ([`now_nanos`](crate::now_nanos)); stamped
    /// at submit time only while a span sink is installed, 0 otherwise.
    pub(crate) submit_ns: u64,
}

/// Handle to a pending asynchronous request.
///
/// Dropping a ticket without waiting is allowed; the I/O still completes
/// (writes are not cancelled) and the result is discarded.
pub struct IoTicket {
    rx: Receiver<SafsResult<IoBuf>>,
}

impl IoTicket {
    pub(crate) fn new(rx: Receiver<SafsResult<IoBuf>>) -> Self {
        IoTicket { rx }
    }

    /// Block until the request completes. Returns the buffer: the data for
    /// reads, the original buffer back for writes (for reuse).
    pub fn wait(self) -> SafsResult<IoBuf> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(SafsError::io("I/O engine shut down", std::io::Error::other("channel closed")))
        })
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&mut self) -> Option<SafsResult<IoBuf>> {
        self.rx.try_recv().ok()
    }
}

/// Create a completion channel for one request.
pub(crate) fn completion() -> (Sender<SafsResult<IoBuf>>, IoTicket) {
    let (tx, rx) = bounded(1);
    (tx, IoTicket::new(rx))
}
