//! The SAFS runtime: disk set, I/O thread pools and file factory.

use crate::aio::{io_thread_main, IoReq};
use crate::cache::{CacheCfg, CacheStatsSnapshot, PageCache};
use crate::config::SafsConfig;
use crate::error::{SafsError, SafsResult};
use crate::file::{FileInner, SafsFile};
use crate::layout::Striping;
use crate::span::{now_nanos, SpanSink, SpanSinkCell};
use crate::stats::{IoStats, IoStatsSnapshot};
use crate::throttle::Throttle;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::fs;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running SAFS instance.
///
/// Cheap to clone; all clones (and all [`SafsFile`]s created from them)
/// share the same disks, I/O threads and statistics. The I/O threads shut
/// down when the last handle and the last file are dropped.
#[derive(Clone)]
pub struct Safs {
    inner: Arc<RtInner>,
}

pub(crate) struct RtInner {
    cfg: SafsConfig,
    queues: Vec<Sender<IoReq>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    stats: Arc<IoStats>,
    name_counter: AtomicU64,
    page_cache: Mutex<Option<Arc<PageCache>>>,
    span_sink: Arc<SpanSinkCell>,
}

impl Drop for RtInner {
    fn drop(&mut self) {
        // Close the queues first so the I/O threads observe disconnection,
        // then join them.
        self.queues.clear();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl RtInner {
    pub(crate) fn submit(&self, disk: usize, mut req: IoReq) {
        self.stats.queue_enter();
        if let Some(sink) = self.span_sink.get() {
            req.submit_ns = now_nanos();
            sink.counter("io-queue-depth", req.submit_ns, self.stats.depth());
        }
        // The queue only disconnects when RtInner is dropped, which cannot
        // happen while a file (which holds an Arc to us) is submitting.
        self.queues[disk].send(req).expect("I/O queue closed while runtime alive");
    }

    pub(crate) fn disk_dir(&self, disk: usize) -> &std::path::Path {
        &self.cfg.disks[disk]
    }

    pub(crate) fn ndisks(&self) -> usize {
        self.cfg.disks.len()
    }

    /// The installed page cache, if any (cheap clone of an `Arc`).
    pub(crate) fn page_cache(&self) -> Option<Arc<PageCache>> {
        self.page_cache.lock().clone()
    }

    /// The installed span sink, if any (one relaxed load when tracing is
    /// off).
    pub(crate) fn span_sink(&self) -> Option<Arc<dyn SpanSink>> {
        self.span_sink.get()
    }
}

/// Deterministic per-file striping seed derived from the file name.
fn name_seed(name: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

impl Safs {
    /// Start a runtime over the configured disks, creating the disk
    /// directories if needed and spawning the I/O threads.
    pub fn open(cfg: SafsConfig) -> SafsResult<Safs> {
        cfg.validate()?;
        for dir in &cfg.disks {
            fs::create_dir_all(dir)
                .map_err(|e| SafsError::io(format!("creating disk dir {}", dir.display()), e))?;
        }
        let stats = Arc::new(IoStats::default());
        let span_sink = Arc::new(SpanSinkCell::default());
        let mut queues = Vec::with_capacity(cfg.disks.len());
        let mut threads = Vec::new();
        for disk in 0..cfg.disks.len() {
            let (tx, rx) = unbounded::<IoReq>();
            queues.push(tx);
            let throttle = cfg.throttle.map(|t| Arc::new(Throttle::new(t)));
            for t in 0..cfg.io_threads_per_disk {
                let rx = rx.clone();
                let stats = stats.clone();
                let throttle = throttle.clone();
                let sink = span_sink.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("safs-io-d{disk}t{t}"))
                    .spawn(move || io_thread_main(rx, stats, throttle, sink))
                    .map_err(|e| SafsError::io("spawning I/O thread", e))?;
                threads.push(handle);
            }
        }
        let cache_cfg = cfg.cache;
        let safs = Safs {
            inner: Arc::new(RtInner {
                cfg,
                queues,
                threads: Mutex::new(threads),
                stats,
                name_counter: AtomicU64::new(0),
                page_cache: Mutex::new(None),
                span_sink,
            }),
        };
        safs.set_page_cache(cache_cfg);
        Ok(safs)
    }

    /// Install (or, with `None` / zero capacity, remove) the user-space
    /// page cache. Replacing a cache discards its resident data, so this
    /// is meant for session setup, not steady state.
    pub fn set_page_cache(&self, cfg: Option<CacheCfg>) {
        let cache = cfg.filter(|c| c.capacity_bytes > 0).map(|c| Arc::new(PageCache::new(c)));
        *self.inner.page_cache.lock() = cache;
    }

    /// Install (or, with `None`, remove) a receiver for I/O and cache
    /// lifecycle spans. The sink is shared with the I/O threads, so it
    /// takes effect immediately; with no sink installed the hot paths pay
    /// one relaxed atomic load.
    pub fn set_span_sink(&self, sink: Option<Arc<dyn SpanSink>>) {
        self.inner.span_sink.set(sink);
    }

    /// Capacity of the installed page cache in bytes (0 when none).
    pub fn page_cache_capacity(&self) -> u64 {
        self.inner.page_cache.lock().as_ref().map(|c| c.capacity_bytes()).unwrap_or(0)
    }

    /// Override (or, with `None`, restore) the page cache's readahead
    /// window without discarding resident data. No-op when no cache is
    /// installed. Meant for per-plan tuning: set before a pass, clear
    /// after.
    pub fn set_readahead_override(&self, parts: Option<u64>) {
        if let Some(c) = self.inner.page_cache.lock().as_ref() {
            c.set_readahead_override(parts);
        }
    }

    /// The readahead window currently in force (override if set, else the
    /// configured depth; 0 when no cache is installed).
    pub fn readahead_parts(&self) -> u64 {
        self.inner.page_cache.lock().as_ref().map(|c| c.effective_readahead()).unwrap_or(0)
    }

    /// Page-cache counters (all zero when no cache is installed).
    pub fn cache_stats_snapshot(&self) -> CacheStatsSnapshot {
        self.inner
            .page_cache
            .lock()
            .as_ref()
            .map(|c| c.stats_snapshot())
            .unwrap_or_default()
    }

    /// Per-shard page-cache counters in shard order (empty when no cache
    /// is installed). Feeds the metrics registry's `shard="<i>"` series.
    pub fn cache_shard_snapshots(&self) -> Vec<CacheStatsSnapshot> {
        self.inner
            .page_cache
            .lock()
            .as_ref()
            .map(|c| c.shard_snapshots())
            .unwrap_or_default()
    }

    /// Create a file of `nparts` equally sized partitions.
    pub fn create(&self, name: &str, part_bytes: u64, nparts: u64) -> SafsResult<SafsFile> {
        self.create_bytes(name, part_bytes, part_bytes.checked_mul(nparts).expect("file size overflow"))
    }

    /// Create a file of `total_bytes` split into `part_bytes` partitions
    /// (the last partition may be short).
    pub fn create_bytes(&self, name: &str, part_bytes: u64, total_bytes: u64) -> SafsResult<SafsFile> {
        if part_bytes == 0 {
            return Err(SafsError::Config("part_bytes must be > 0".into()));
        }
        if total_bytes == 0 {
            return Err(SafsError::Config("total_bytes must be > 0".into()));
        }
        let striping = Striping::new(self.inner.ndisks(), name_seed(name));
        FileInner::create(self.inner.clone(), name, part_bytes, total_bytes, striping)
    }

    /// Open a previously created file by name.
    pub fn open_file(&self, name: &str) -> SafsResult<SafsFile> {
        let striping = Striping::new(self.inner.ndisks(), name_seed(name));
        FileInner::open(self.inner.clone(), name, striping)
    }

    /// Whether a file of this name exists on the array.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.disk_dir(0).join(format!("{name}.meta")).exists()
    }

    /// A fresh unique file name with the given prefix (used by the matrix
    /// engine for anonymous temporaries).
    pub fn unique_name(&self, prefix: &str) -> String {
        let n = self.inner.name_counter.fetch_add(1, Ordering::Relaxed);
        format!("{prefix}-{}-{n}", std::process::id())
    }

    /// Aggregate I/O statistics since the runtime started, including the
    /// page cache's counters when one is installed.
    pub fn stats_snapshot(&self) -> IoStatsSnapshot {
        let mut snap = self.inner.stats.snapshot();
        if let Some(c) = self.inner.page_cache.lock().as_ref() {
            snap.cache = c.stats_snapshot();
        }
        snap
    }

    /// Scheduler hint: how many contiguous partitions to dispatch per batch.
    pub fn dispatch_batch(&self) -> usize {
        self.inner.cfg.dispatch_batch
    }

    /// Number of disks in the array.
    pub fn ndisks(&self) -> usize {
        self.inner.ndisks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cfg(tag: &str, ndisks: usize) -> SafsConfig {
        let dir = std::env::temp_dir().join(format!("safs-rt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        SafsConfig::striped_under(dir, ndisks)
    }

    #[test]
    fn open_creates_disk_dirs() {
        let cfg = tmp_cfg("dirs", 3);
        let disks = cfg.disks.clone();
        let _safs = Safs::open(cfg).unwrap();
        for d in &disks {
            assert!(d.is_dir());
        }
    }

    #[test]
    fn unique_names_are_unique() {
        let safs = Safs::open(tmp_cfg("names", 1)).unwrap();
        let a = safs.unique_name("tmp");
        let b = safs.unique_name("tmp");
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_empty_config() {
        let cfg = SafsConfig {
            disks: vec![],
            io_threads_per_disk: 1,
            dispatch_batch: 1,
            throttle: None,
            cache: None,
        };
        assert!(Safs::open(cfg).is_err());
    }

    #[test]
    fn shutdown_joins_threads() {
        let safs = Safs::open(tmp_cfg("shutdown", 2)).unwrap();
        let f = safs.create("x", 128, 2).unwrap();
        f.write_part(0, &[1u8; 128]).unwrap();
        drop(f);
        drop(safs); // must not hang
    }
}
