//! The SAFS runtime: shard set, storage backend and file factory.

use crate::aio::IoReq;
use crate::backend::{open_backend, BackendKind, ShardStatsSnapshot, StorageBackend, WorkerEnv};
use crate::cache::{CacheCfg, CacheStatsSnapshot, PageCache};
use crate::config::SafsConfig;
use crate::error::{SafsError, SafsResult};
use crate::file::{FileInner, SafsFile};
use crate::layout::Striping;
use crate::span::{SpanSink, SpanSinkCell};
use crate::stats::{IoStats, IoStatsSnapshot};
use parking_lot::Mutex;
use std::fs;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A running SAFS instance.
///
/// Cheap to clone; all clones (and all [`SafsFile`]s created from them)
/// share the same shards, backend workers and statistics. The workers
/// shut down when the last handle and the last file are dropped.
#[derive(Clone)]
pub struct Safs {
    inner: Arc<RtInner>,
}

pub(crate) struct RtInner {
    cfg: SafsConfig,
    backend: Box<dyn StorageBackend>,
    stats: Arc<IoStats>,
    name_counter: AtomicU64,
    page_cache: Mutex<Option<Arc<PageCache>>>,
    span_sink: Arc<SpanSinkCell>,
    /// Injected transient read faults remaining (testing hook).
    faults: Arc<AtomicU64>,
}

impl Drop for RtInner {
    fn drop(&mut self) {
        self.backend.shutdown();
    }
}

impl RtInner {
    pub(crate) fn submit(&self, shard: usize, req: IoReq) {
        self.backend.submit(shard, req);
    }

    pub(crate) fn disk_dir(&self, shard: usize) -> &std::path::Path {
        &self.cfg.disks[shard]
    }

    pub(crate) fn ndisks(&self) -> usize {
        self.cfg.disks.len()
    }

    /// The installed page cache, if any (cheap clone of an `Arc`).
    pub(crate) fn page_cache(&self) -> Option<Arc<PageCache>> {
        self.page_cache.lock().clone()
    }

    /// The installed span sink, if any (one relaxed load when tracing is
    /// off).
    pub(crate) fn span_sink(&self) -> Option<Arc<dyn SpanSink>> {
        self.span_sink.get()
    }
}

/// Deterministic per-file striping seed derived from the file name.
fn name_seed(name: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

impl Safs {
    /// Start a runtime over the configured shards, creating the shard
    /// root directories if needed and spawning the backend's worker
    /// threads.
    pub fn open(cfg: SafsConfig) -> SafsResult<Safs> {
        cfg.validate()?;
        for dir in &cfg.disks {
            fs::create_dir_all(dir)
                .map_err(|e| SafsError::io(format!("creating shard root {}", dir.display()), e))?;
        }
        let stats = Arc::new(IoStats::default());
        let span_sink = Arc::new(SpanSinkCell::default());
        let faults = Arc::new(AtomicU64::new(0));
        let backend = open_backend(
            &cfg,
            WorkerEnv { stats: stats.clone(), span_sink: span_sink.clone(), faults: faults.clone() },
        )?;
        let cache_cfg = cfg.cache;
        let safs = Safs {
            inner: Arc::new(RtInner {
                cfg,
                backend,
                stats,
                name_counter: AtomicU64::new(0),
                page_cache: Mutex::new(None),
                span_sink,
                faults,
            }),
        };
        safs.set_page_cache(cache_cfg);
        Ok(safs)
    }

    /// Install (or, with `None` / zero capacity, remove) the user-space
    /// page cache. Replacing a cache discards its resident data, so this
    /// is meant for session setup, not steady state.
    pub fn set_page_cache(&self, cfg: Option<CacheCfg>) {
        let cache = cfg.filter(|c| c.capacity_bytes > 0).map(|c| Arc::new(PageCache::new(c)));
        *self.inner.page_cache.lock() = cache;
    }

    /// Install (or, with `None`, remove) a receiver for I/O and cache
    /// lifecycle spans. The sink is shared with the backend workers, so it
    /// takes effect immediately; with no sink installed the hot paths pay
    /// one relaxed atomic load.
    pub fn set_span_sink(&self, sink: Option<Arc<dyn SpanSink>>) {
        self.inner.span_sink.set(sink);
    }

    /// Capacity of the installed page cache in bytes (0 when none).
    pub fn page_cache_capacity(&self) -> u64 {
        self.inner.page_cache.lock().as_ref().map(|c| c.capacity_bytes()).unwrap_or(0)
    }

    /// Override (or, with `None`, restore) the page cache's readahead
    /// window without discarding resident data. No-op when no cache is
    /// installed. Meant for per-plan tuning: set before a pass, clear
    /// after.
    pub fn set_readahead_override(&self, parts: Option<u64>) {
        if let Some(c) = self.inner.page_cache.lock().as_ref() {
            c.set_readahead_override(parts);
        }
    }

    /// The readahead window currently in force (override if set, else the
    /// configured depth; 0 when no cache is installed).
    pub fn readahead_parts(&self) -> u64 {
        self.inner.page_cache.lock().as_ref().map(|c| c.effective_readahead()).unwrap_or(0)
    }

    /// Page-cache counters (all zero when no cache is installed).
    pub fn cache_stats_snapshot(&self) -> CacheStatsSnapshot {
        self.inner
            .page_cache
            .lock()
            .as_ref()
            .map(|c| c.stats_snapshot())
            .unwrap_or_default()
    }

    /// Per-shard page-cache counters in shard order (empty when no cache
    /// is installed). Feeds the metrics registry's `shard="<i>"` series.
    pub fn cache_shard_snapshots(&self) -> Vec<CacheStatsSnapshot> {
        self.inner
            .page_cache
            .lock()
            .as_ref()
            .map(|c| c.shard_snapshots())
            .unwrap_or_default()
    }

    /// Create a file of `nparts` equally sized partitions.
    pub fn create(&self, name: &str, part_bytes: u64, nparts: u64) -> SafsResult<SafsFile> {
        self.create_bytes(name, part_bytes, part_bytes.checked_mul(nparts).expect("file size overflow"))
    }

    /// Create a file of `total_bytes` split into `part_bytes` partitions
    /// (the last partition may be short).
    pub fn create_bytes(&self, name: &str, part_bytes: u64, total_bytes: u64) -> SafsResult<SafsFile> {
        if part_bytes == 0 {
            return Err(SafsError::Config("part_bytes must be > 0".into()));
        }
        if total_bytes == 0 {
            return Err(SafsError::Config("total_bytes must be > 0".into()));
        }
        let striping = Striping::new(self.inner.ndisks(), name_seed(name));
        FileInner::create(self.inner.clone(), name, part_bytes, total_bytes, striping)
    }

    /// Open a previously created file by name.
    pub fn open_file(&self, name: &str) -> SafsResult<SafsFile> {
        let striping = Striping::new(self.inner.ndisks(), name_seed(name));
        FileInner::open(self.inner.clone(), name, striping)
    }

    /// Whether a file of this name exists on the array.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.disk_dir(0).join(format!("{name}.meta")).exists()
    }

    /// A fresh unique file name with the given prefix (used by the matrix
    /// engine for anonymous temporaries).
    pub fn unique_name(&self, prefix: &str) -> String {
        let n = self.inner.name_counter.fetch_add(1, Ordering::Relaxed);
        format!("{prefix}-{}-{n}", std::process::id())
    }

    /// Aggregate I/O statistics since the runtime started, including the
    /// page cache's counters when one is installed.
    pub fn stats_snapshot(&self) -> IoStatsSnapshot {
        let mut snap = self.inner.stats.snapshot();
        if let Some(c) = self.inner.page_cache.lock().as_ref() {
            snap.cache = c.stats_snapshot();
        }
        snap
    }

    /// Per-shard I/O counters in shard order: requests, bytes, retries,
    /// latency histogram and queue-depth gauges for each emulated device.
    pub fn shard_stats_snapshots(&self) -> Vec<ShardStatsSnapshot> {
        self.inner.backend.shard_stats()
    }

    /// Which storage backend this runtime drives.
    pub fn backend_kind(&self) -> BackendKind {
        self.inner.backend.kind()
    }

    /// Completion barrier: block until every request submitted before
    /// this call has completed on every shard.
    pub fn flush(&self) {
        self.inner.backend.flush();
    }

    /// Testing hook for the retry path: make the next `n` backend read
    /// attempts fail with a synthetic transient error (`Interrupted`).
    /// Faults are consumed per *attempt*, so with the default
    /// [`RetryCfg`](crate::RetryCfg) a single injected fault is absorbed
    /// by one retry while `max_attempts` consecutive faults surface as a
    /// final I/O error.
    pub fn inject_read_faults(&self, n: u64) {
        self.inner.faults.fetch_add(n, Ordering::Relaxed);
    }

    /// Scheduler hint: how many contiguous partitions to dispatch per batch.
    pub fn dispatch_batch(&self) -> usize {
        self.inner.cfg.dispatch_batch
    }

    /// Number of disks in the array.
    pub fn ndisks(&self) -> usize {
        self.inner.ndisks()
    }

    /// Number of shards (synonym for [`ndisks`](Safs::ndisks): one shard
    /// root per emulated device).
    pub fn nshards(&self) -> usize {
        self.inner.ndisks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RetryCfg;

    fn tmp_cfg(tag: &str, ndisks: usize) -> SafsConfig {
        let dir = std::env::temp_dir().join(format!("safs-rt-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        // Build the disk list explicitly so the CI shard-count override
        // cannot change what this test exercises.
        SafsConfig {
            disks: (0..ndisks).map(|d| dir.join(format!("disk{d}"))).collect(),
            ..SafsConfig::single_dir(&dir)
        }
    }

    #[test]
    fn open_creates_disk_dirs() {
        let cfg = tmp_cfg("dirs", 3);
        let disks = cfg.disks.clone();
        let _safs = Safs::open(cfg).unwrap();
        for d in &disks {
            assert!(d.is_dir());
        }
    }

    #[test]
    fn unique_names_are_unique() {
        let safs = Safs::open(tmp_cfg("names", 1)).unwrap();
        let a = safs.unique_name("tmp");
        let b = safs.unique_name("tmp");
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_empty_config() {
        let cfg = SafsConfig { disks: vec![], ..tmp_cfg("empty", 1) };
        assert!(matches!(Safs::open(cfg), Err(SafsError::NoShards)));
    }

    #[test]
    fn rejects_duplicate_roots() {
        let mut cfg = tmp_cfg("dup", 2);
        cfg.disks[1] = cfg.disks[0].clone();
        assert!(matches!(Safs::open(cfg), Err(SafsError::DuplicateShardRoot(_))));
    }

    #[test]
    fn shutdown_joins_threads() {
        let safs = Safs::open(tmp_cfg("shutdown", 2)).unwrap();
        let f = safs.create("x", 128, 2).unwrap();
        f.write_part(0, &[1u8; 128]).unwrap();
        drop(f);
        drop(safs); // must not hang
    }

    #[test]
    fn both_backends_roundtrip() {
        for (tag, kind) in [("bk-sim", BackendKind::Sim), ("bk-dir", BackendKind::Direct)] {
            let safs = Safs::open(tmp_cfg(tag, 2).with_backend(kind)).unwrap();
            assert_eq!(safs.backend_kind(), kind);
            let f = safs.create("m", 256, 3).unwrap();
            for p in 0..3u64 {
                f.write_part(p, &[p as u8 + 1; 256]).unwrap();
            }
            safs.flush();
            for p in 0..3u64 {
                assert_eq!(f.read_part(p).unwrap().as_bytes(), &[p as u8 + 1; 256][..]);
            }
        }
    }

    #[test]
    fn shard_stats_cover_all_shards() {
        let safs = Safs::open(tmp_cfg("shstats", 4)).unwrap();
        let f = safs.create("spread", 512, 16).unwrap();
        for p in 0..16u64 {
            f.write_part(p, &[7u8; 512]).unwrap();
        }
        for p in 0..16u64 {
            f.read_part(p).unwrap();
        }
        let shards = safs.shard_stats_snapshots();
        assert_eq!(shards.len(), 4);
        // Permuted round-robin striping spreads 16 partitions evenly.
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.read_reqs, 4, "shard {i}");
            assert_eq!(s.write_reqs, 4, "shard {i}");
            assert_eq!(s.read_bytes, 4 * 512, "shard {i}");
            assert_eq!(s.lat.count(), 8, "shard {i}");
        }
        let agg = safs.stats_snapshot();
        assert_eq!(shards.iter().map(|s| s.read_reqs).sum::<u64>(), agg.read_reqs);
        assert_eq!(shards.iter().map(|s| s.read_bytes).sum::<u64>(), agg.read_bytes);
    }

    #[test]
    fn injected_transient_faults_are_retried() {
        let safs = Safs::open(
            tmp_cfg("retry-ok", 1).with_retry(RetryCfg { max_attempts: 3, base_backoff_us: 1 }),
        )
        .unwrap();
        let f = safs.create("r", 128, 1).unwrap();
        f.write_part(0, &[5u8; 128]).unwrap();
        safs.inject_read_faults(2);
        let got = f.read_part(0).unwrap();
        assert_eq!(got.as_bytes(), &[5u8; 128][..]);
        let snap = safs.stats_snapshot();
        assert_eq!(snap.io_retries, 2);
        assert_eq!(safs.shard_stats_snapshots()[0].retries, 2);
    }

    #[test]
    fn exhausted_retries_surface_an_io_error() {
        let safs = Safs::open(
            tmp_cfg("retry-fail", 1).with_retry(RetryCfg { max_attempts: 2, base_backoff_us: 1 }),
        )
        .unwrap();
        let f = safs.create("r", 128, 1).unwrap();
        f.write_part(0, &[5u8; 128]).unwrap();
        safs.inject_read_faults(2);
        assert!(matches!(f.read_part(0), Err(SafsError::Io { .. })));
        assert_eq!(safs.stats_snapshot().io_retries, 1, "one retry between two attempts");
        // The fault budget is spent; the next read succeeds.
        assert_eq!(f.read_part(0).unwrap().as_bytes(), &[5u8; 128][..]);
    }
}
