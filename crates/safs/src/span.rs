//! Span emission hooks for the timeline tracing layer.
//!
//! The timeline collector itself lives above this crate (in
//! `flashr_core::trace::timeline`), but the events worth recording —
//! I/O request lifecycles, cache misses, single-flight waits, readahead
//! — happen down here. This module defines the narrow interface the two
//! layers share:
//!
//! * [`now_nanos`] — a process-wide monotonic clock. Every span in the
//!   process, whether emitted by an executor worker or an I/O thread,
//!   is timestamped against the same origin so the merged timeline
//!   lines up.
//! * [`SpanSink`] — the trait a collector implements. The SAFS runtime
//!   holds an optional sink ([`Safs::set_span_sink`](crate::Safs::set_span_sink));
//!   when none is installed the hot paths pay one relaxed atomic load.
//!
//! SAFS-side spans are reported as *completed* intervals (begin + end
//! timestamps delivered together at completion time) rather than
//! begin/end pairs: an I/O thread learns a request's submit time only
//! when the request reaches it, and completed intervals stay valid under
//! the out-of-order completion an async engine produces.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The process-wide monotonic clock origin.
static ORIGIN: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call in this process (monotonic).
pub fn now_nanos() -> u64 {
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Two optional `(name, value)` arguments carried by a span; a pair with
/// an empty name is unused.
pub type SpanArgs = [(&'static str, u64); 2];

/// No arguments.
pub const NO_ARGS: SpanArgs = [("", 0), ("", 0)];

/// Receiver for spans emitted below the engine (I/O threads, the page
/// cache, file front doors). Implemented by the core timeline collector;
/// events land on the calling thread's track.
pub trait SpanSink: Send + Sync {
    /// A completed interval `[begin_ns, end_ns]` (from [`now_nanos`]).
    fn span(&self, cat: &'static str, name: &'static str, begin_ns: u64, end_ns: u64, args: SpanArgs);

    /// A zero-duration marker.
    fn instant(&self, cat: &'static str, name: &'static str, ts_ns: u64, args: SpanArgs);

    /// A counter sample (e.g. queue depth) at `ts_ns`.
    fn counter(&self, name: &'static str, ts_ns: u64, value: u64);
}

/// Shared slot holding the installed sink. The `on` flag keeps the
/// disabled path to one relaxed load — no lock is touched until a sink
/// is installed.
#[derive(Default)]
pub(crate) struct SpanSinkCell {
    on: AtomicBool,
    sink: Mutex<Option<Arc<dyn SpanSink>>>,
}

impl SpanSinkCell {
    /// The installed sink, or `None` (cheaply) when tracing is off.
    pub(crate) fn get(&self) -> Option<Arc<dyn SpanSink>> {
        if !self.on.load(Ordering::Relaxed) {
            return None;
        }
        self.sink.lock().clone()
    }

    pub(crate) fn set(&self, sink: Option<Arc<dyn SpanSink>>) {
        let mut g = self.sink.lock();
        self.on.store(sink.is_some(), Ordering::Relaxed);
        *g = sink;
    }
}

impl std::fmt::Debug for SpanSinkCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SpanSinkCell(on={})", self.on.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }

    struct CountSink(std::sync::atomic::AtomicU64);
    impl SpanSink for CountSink {
        fn span(&self, _: &'static str, _: &'static str, _: u64, _: u64, _: SpanArgs) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn instant(&self, _: &'static str, _: &'static str, _: u64, _: SpanArgs) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn counter(&self, _: &'static str, _: u64, _: u64) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn cell_install_and_clear() {
        let cell = SpanSinkCell::default();
        assert!(cell.get().is_none());
        let sink = Arc::new(CountSink(std::sync::atomic::AtomicU64::new(0)));
        cell.set(Some(sink.clone()));
        let got = cell.get().expect("sink installed");
        got.counter("q", now_nanos(), 1);
        assert_eq!(sink.0.load(Ordering::Relaxed), 1);
        cell.set(None);
        assert!(cell.get().is_none());
    }
}
