//! Runtime configuration for the SAFS substrate.

use crate::backend::{BackendKind, RetryCfg};
use crate::cache::CacheCfg;
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Emulated device-bandwidth limit applied per disk.
///
/// The FlashR paper evaluates on a 24-SSD array capable of ~12 GB/s reads.
/// Reproductions run on arbitrary hosts, so instead of depending on the
/// physical device we optionally *throttle* completions to a configured
/// bandwidth. Setting `bytes_per_sec` well below the host's real storage
/// speed makes the external-memory/in-memory performance ratio a
/// deterministic function of the workload's computation-to-I/O ratio — the
/// quantity Figures 9 and 10 of the paper study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleCfg {
    /// Sustained bandwidth per disk, in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-request latency in microseconds (seek/command overhead).
    pub latency_us: f64,
}

impl ThrottleCfg {
    /// A profile resembling one SATA SSD of the paper's local array
    /// (~500 MB/s per device; 24 devices give the paper's ~12 GB/s).
    pub fn sata_ssd() -> Self {
        ThrottleCfg { bytes_per_sec: 500.0 * 1024.0 * 1024.0, latency_us: 60.0 }
    }

    /// A profile resembling one of the EC2 i3.16xlarge NVMe devices
    /// (8 devices, ~16 GB/s aggregate).
    pub fn nvme_ssd() -> Self {
        ThrottleCfg { bytes_per_sec: 2.0 * 1024.0 * 1024.0 * 1024.0, latency_us: 20.0 }
    }
}

/// `FLASHR_SAFS_SHARDS` override for [`SafsConfig::striped_under`]:
/// parseable positive integer or nothing.
fn shards_from_env() -> Option<usize> {
    std::env::var("FLASHR_SAFS_SHARDS").ok()?.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Configuration for a [`Safs`](crate::Safs) runtime.
#[derive(Debug, Clone)]
pub struct SafsConfig {
    /// One directory per shard (emulated device). Directories may live
    /// on distinct physical devices to get true parallel I/O.
    pub disks: Vec<PathBuf>,
    /// I/O threads servicing each shard's request queue.
    pub io_threads_per_disk: usize,
    /// Number of contiguous partitions a scheduler should dispatch as one
    /// batch (the "SAFS block size" of paper §3.3).
    pub dispatch_batch: usize,
    /// Optional bandwidth emulation, one throttle per shard (applied by
    /// the `Sim` backend only).
    pub throttle: Option<ThrottleCfg>,
    /// Optional user-space page cache (SA-cache, paper §3.2.1). `None`
    /// or a zero capacity leaves every read going straight to the
    /// device.
    pub cache: Option<CacheCfg>,
    /// Which storage backend drives the shards. Defaults to the value of
    /// `FLASHR_BACKEND` (`sim` | `direct`), falling back to `Sim`.
    pub backend: BackendKind,
    /// Bounded retry-with-backoff policy for transient I/O errors.
    pub retry: RetryCfg,
}

impl SafsConfig {
    /// All shards inside subdirectories of `root` (`disk0`, `disk1`, ...).
    ///
    /// The shard count honours the `FLASHR_SAFS_SHARDS` environment
    /// variable when set (CI uses it to run the whole test suite over a
    /// wider array); explicit layouts built from [`SafsConfig`] fields
    /// directly are never overridden.
    pub fn striped_under(root: impl AsRef<Path>, ndisks: usize) -> Self {
        let root = root.as_ref();
        let ndisks = shards_from_env().unwrap_or(ndisks).max(1);
        SafsConfig {
            disks: (0..ndisks).map(|d| root.join(format!("disk{d}"))).collect(),
            ..SafsConfig::defaults_for(vec![])
        }
    }

    /// A single-directory instance (no striping) — convenient for tests.
    pub fn single_dir(dir: impl AsRef<Path>) -> Self {
        SafsConfig::defaults_for(vec![dir.as_ref().to_path_buf()])
    }

    /// The default knobs around an explicit shard-root list.
    fn defaults_for(disks: Vec<PathBuf>) -> Self {
        SafsConfig {
            disks,
            io_threads_per_disk: 2,
            dispatch_batch: 4,
            throttle: None,
            cache: None,
            backend: BackendKind::from_env(),
            retry: RetryCfg::default(),
        }
    }

    /// Builder-style: set the throttle profile.
    pub fn with_throttle(mut self, t: ThrottleCfg) -> Self {
        self.throttle = Some(t);
        self
    }

    /// Builder-style: install a page cache at runtime open.
    pub fn with_cache(mut self, c: CacheCfg) -> Self {
        self.cache = Some(c);
        self
    }

    /// Builder-style: set I/O threads per disk.
    pub fn with_io_threads(mut self, n: usize) -> Self {
        self.io_threads_per_disk = n.max(1);
        self
    }

    /// Builder-style: set the dispatch batch ("block") size.
    pub fn with_dispatch_batch(mut self, n: usize) -> Self {
        self.dispatch_batch = n.max(1);
        self
    }

    /// Builder-style: pick the storage backend explicitly (overrides the
    /// `FLASHR_BACKEND` default).
    pub fn with_backend(mut self, b: BackendKind) -> Self {
        self.backend = b;
        self
    }

    /// Builder-style: set the transient-error retry policy.
    pub fn with_retry(mut self, r: RetryCfg) -> Self {
        self.retry = r;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), crate::SafsError> {
        if self.disks.is_empty() {
            return Err(crate::SafsError::NoShards);
        }
        let mut seen = HashSet::new();
        for d in &self.disks {
            if !seen.insert(d.clone()) {
                return Err(crate::SafsError::DuplicateShardRoot(d.clone()));
            }
            if d.exists() && !d.is_dir() {
                return Err(crate::SafsError::ShardRootNotDir(d.clone()));
            }
        }
        if self.io_threads_per_disk == 0 {
            return Err(crate::SafsError::Config("io_threads_per_disk must be >= 1".into()));
        }
        if self.retry.max_attempts == 0 {
            return Err(crate::SafsError::Config("retry.max_attempts must be >= 1".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SafsError;

    fn base(disks: Vec<PathBuf>) -> SafsConfig {
        SafsConfig { disks, ..SafsConfig::single_dir("unused") }
    }

    #[test]
    fn validate_rejects_zero_shards() {
        assert!(matches!(base(vec![]).validate(), Err(SafsError::NoShards)));
    }

    #[test]
    fn validate_rejects_duplicate_shard_roots() {
        let cfg = base(vec![PathBuf::from("/tmp/a"), PathBuf::from("/tmp/b"), PathBuf::from("/tmp/a")]);
        match cfg.validate() {
            Err(SafsError::DuplicateShardRoot(p)) => assert_eq!(p, PathBuf::from("/tmp/a")),
            other => panic!("expected DuplicateShardRoot, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_file_as_shard_root() {
        let file = std::env::temp_dir().join(format!("safs-cfg-notdir-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let cfg = base(vec![file.clone()]);
        match cfg.validate() {
            Err(SafsError::ShardRootNotDir(p)) => assert_eq!(p, file),
            other => panic!("expected ShardRootNotDir, got {other:?}"),
        }
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn validate_accepts_nonexistent_roots() {
        // Roots that don't exist yet are fine: `Safs::open` creates them.
        let cfg = base(vec![std::env::temp_dir().join("safs-cfg-not-yet-created")]);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_retry_attempts() {
        let mut cfg = base(vec![PathBuf::from("/tmp/one")]);
        cfg.retry.max_attempts = 0;
        assert!(matches!(cfg.validate(), Err(SafsError::Config(_))));
    }

    #[test]
    fn striped_under_names_disk_subdirs() {
        // Only meaningful when CI's FLASHR_SAFS_SHARDS override is unset.
        if std::env::var("FLASHR_SAFS_SHARDS").is_ok() {
            return;
        }
        let cfg = SafsConfig::striped_under("/tmp/root", 3);
        assert_eq!(cfg.disks.len(), 3);
        assert_eq!(cfg.disks[2], PathBuf::from("/tmp/root/disk2"));
    }
}
