//! Runtime configuration for the SAFS substrate.

use crate::cache::CacheCfg;
use std::path::{Path, PathBuf};

/// Emulated device-bandwidth limit applied per disk.
///
/// The FlashR paper evaluates on a 24-SSD array capable of ~12 GB/s reads.
/// Reproductions run on arbitrary hosts, so instead of depending on the
/// physical device we optionally *throttle* completions to a configured
/// bandwidth. Setting `bytes_per_sec` well below the host's real storage
/// speed makes the external-memory/in-memory performance ratio a
/// deterministic function of the workload's computation-to-I/O ratio — the
/// quantity Figures 9 and 10 of the paper study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleCfg {
    /// Sustained bandwidth per disk, in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-request latency in microseconds (seek/command overhead).
    pub latency_us: f64,
}

impl ThrottleCfg {
    /// A profile resembling one SATA SSD of the paper's local array
    /// (~500 MB/s per device; 24 devices give the paper's ~12 GB/s).
    pub fn sata_ssd() -> Self {
        ThrottleCfg { bytes_per_sec: 500.0 * 1024.0 * 1024.0, latency_us: 60.0 }
    }

    /// A profile resembling one of the EC2 i3.16xlarge NVMe devices
    /// (8 devices, ~16 GB/s aggregate).
    pub fn nvme_ssd() -> Self {
        ThrottleCfg { bytes_per_sec: 2.0 * 1024.0 * 1024.0 * 1024.0, latency_us: 20.0 }
    }
}

/// Configuration for a [`Safs`](crate::Safs) runtime.
#[derive(Debug, Clone)]
pub struct SafsConfig {
    /// One directory per emulated disk. Directories may live on distinct
    /// physical devices to get true parallel I/O.
    pub disks: Vec<PathBuf>,
    /// I/O threads servicing each disk's request queue.
    pub io_threads_per_disk: usize,
    /// Number of contiguous partitions a scheduler should dispatch as one
    /// batch (the "SAFS block size" of paper §3.3).
    pub dispatch_batch: usize,
    /// Optional bandwidth emulation.
    pub throttle: Option<ThrottleCfg>,
    /// Optional user-space page cache (SA-cache, paper §3.2.1). `None`
    /// or a zero capacity leaves every read going straight to the
    /// device.
    pub cache: Option<CacheCfg>,
}

impl SafsConfig {
    /// All disks inside subdirectories of `root` (`disk0`, `disk1`, ...).
    pub fn striped_under(root: impl AsRef<Path>, ndisks: usize) -> Self {
        let root = root.as_ref();
        SafsConfig {
            disks: (0..ndisks.max(1)).map(|d| root.join(format!("disk{d}"))).collect(),
            io_threads_per_disk: 2,
            dispatch_batch: 4,
            throttle: None,
            cache: None,
        }
    }

    /// A single-directory instance (no striping) — convenient for tests.
    pub fn single_dir(dir: impl AsRef<Path>) -> Self {
        SafsConfig {
            disks: vec![dir.as_ref().to_path_buf()],
            io_threads_per_disk: 2,
            dispatch_batch: 4,
            throttle: None,
            cache: None,
        }
    }

    /// Builder-style: set the throttle profile.
    pub fn with_throttle(mut self, t: ThrottleCfg) -> Self {
        self.throttle = Some(t);
        self
    }

    /// Builder-style: install a page cache at runtime open.
    pub fn with_cache(mut self, c: CacheCfg) -> Self {
        self.cache = Some(c);
        self
    }

    /// Builder-style: set I/O threads per disk.
    pub fn with_io_threads(mut self, n: usize) -> Self {
        self.io_threads_per_disk = n.max(1);
        self
    }

    /// Builder-style: set the dispatch batch ("block") size.
    pub fn with_dispatch_batch(mut self, n: usize) -> Self {
        self.dispatch_batch = n.max(1);
        self
    }

    pub(crate) fn validate(&self) -> Result<(), crate::SafsError> {
        if self.disks.is_empty() {
            return Err(crate::SafsError::Config("at least one disk directory required".into()));
        }
        if self.io_threads_per_disk == 0 {
            return Err(crate::SafsError::Config("io_threads_per_disk must be >= 1".into()));
        }
        Ok(())
    }
}
