//! Per-disk bandwidth emulation.
//!
//! Each disk gets one [`Throttle`]. Completions are delayed so that the
//! long-run throughput of the disk matches the configured profile, even
//! when several I/O threads service the same disk concurrently. The
//! implementation is a virtual-time pacer: each request reserves the next
//! `latency + bytes/bandwidth` window of the disk's timeline and sleeps
//! until its window closes.

use crate::config::ThrottleCfg;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug)]
pub(crate) struct Throttle {
    cfg: ThrottleCfg,
    /// The instant at which the emulated device becomes idle.
    next_free: Mutex<Instant>,
}

impl Throttle {
    pub(crate) fn new(cfg: ThrottleCfg) -> Self {
        Throttle { cfg, next_free: Mutex::new(Instant::now()) }
    }

    /// Account for a request of `bytes` and block until the emulated
    /// device would have completed it. Returns how long the calling
    /// thread actually slept, so callers can account throttle waits
    /// separately from device service time.
    pub(crate) fn charge(&self, bytes: u64) -> Duration {
        let service = Duration::from_secs_f64(
            self.cfg.latency_us * 1e-6 + bytes as f64 / self.cfg.bytes_per_sec,
        );
        let deadline = {
            let mut next_free = self.next_free.lock();
            let start = (*next_free).max(Instant::now());
            *next_free = start + service;
            *next_free
        };
        let now = Instant::now();
        if deadline > now {
            let wait = deadline - now;
            std::thread::sleep(wait);
            wait
        } else {
            Duration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustains_configured_bandwidth() {
        // 10 MB/s, no latency; 1 MB over 4 requests should take ~100ms.
        let t = Throttle::new(ThrottleCfg { bytes_per_sec: 10.0 * 1024.0 * 1024.0, latency_us: 0.0 });
        let start = Instant::now();
        for _ in 0..4 {
            t.charge(256 * 1024);
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.08, "elapsed {elapsed} too fast");
        assert!(elapsed < 0.5, "elapsed {elapsed} too slow");
    }

    #[test]
    fn concurrent_charges_serialize() {
        let t = std::sync::Arc::new(Throttle::new(ThrottleCfg {
            bytes_per_sec: 20.0 * 1024.0 * 1024.0,
            latency_us: 0.0,
        }));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || t.charge(512 * 1024));
            }
        });
        // 2 MB at 20 MB/s = 100 ms even with 4 concurrent threads.
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.08, "parallel charges bypassed the throttle: {elapsed}");
    }
}
