//! Striped, partition-granular files.

use crate::aio::{completion, IoOp, IoReq, IoTicket};
use crate::cache::{CachedFetch, Lookup, PageCache, PendingRead, SharedOutcome};
use crate::iobuf::IoBuf;
use crate::error::{SafsError, SafsResult};
use crate::layout::Striping;
use crate::runtime::RtInner;
use crate::span::now_nanos;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Page-cache identity for each `FileInner`; see `cache::CacheKey`.
static NEXT_FILE_UID: AtomicU64 = AtomicU64::new(1);

/// A file striped across the disk array, addressed by partition index.
///
/// Cloning yields another handle to the same file. All I/O goes through
/// the runtime's per-disk I/O threads; the synchronous methods are thin
/// wrappers that submit and wait.
#[derive(Clone)]
pub struct SafsFile {
    inner: Arc<FileInner>,
}

pub(crate) struct FileInner {
    rt: Arc<RtInner>,
    uid: u64,
    name: String,
    part_bytes: u64,
    total_bytes: u64,
    nparts: u64,
    striping: Striping,
    strips: Vec<Arc<File>>,
    deleted: AtomicBool,
    delete_on_drop: AtomicBool,
}

impl FileInner {
    fn strip_path(rt: &RtInner, name: &str, disk: usize) -> PathBuf {
        rt.disk_dir(disk).join(format!("{name}.s{disk}"))
    }

    fn meta_path(rt: &RtInner, name: &str) -> PathBuf {
        rt.disk_dir(0).join(format!("{name}.meta"))
    }

    pub(crate) fn create(
        rt: Arc<RtInner>,
        name: &str,
        part_bytes: u64,
        total_bytes: u64,
        striping: Striping,
    ) -> SafsResult<SafsFile> {
        let nparts = total_bytes.div_ceil(part_bytes);
        let mut strips = Vec::with_capacity(rt.ndisks());
        for disk in 0..rt.ndisks() {
            let path = Self::strip_path(&rt, name, disk);
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .map_err(|e| SafsError::io(format!("creating strip {}", path.display()), e))?;
            strips.push(Arc::new(f));
        }
        let meta = format!("part_bytes={part_bytes}\ntotal_bytes={total_bytes}\n");
        let meta_path = Self::meta_path(&rt, name);
        let mut mf = File::create(&meta_path)
            .map_err(|e| SafsError::io(format!("creating meta {}", meta_path.display()), e))?;
        mf.write_all(meta.as_bytes())
            .map_err(|e| SafsError::io("writing meta", e))?;
        Ok(SafsFile {
            inner: Arc::new(FileInner {
                rt,
                uid: NEXT_FILE_UID.fetch_add(1, Ordering::Relaxed),
                name: name.to_string(),
                part_bytes,
                total_bytes,
                nparts,
                striping,
                strips,
                deleted: AtomicBool::new(false),
                delete_on_drop: AtomicBool::new(false),
            }),
        })
    }

    pub(crate) fn open(rt: Arc<RtInner>, name: &str, striping: Striping) -> SafsResult<SafsFile> {
        let meta_path = Self::meta_path(&rt, name);
        let mut text = String::new();
        File::open(&meta_path)
            .map_err(|e| SafsError::io(format!("opening meta {}", meta_path.display()), e))?
            .read_to_string(&mut text)
            .map_err(|e| SafsError::io("reading meta", e))?;
        let mut part_bytes = None;
        let mut total_bytes = None;
        for line in text.lines() {
            if let Some(v) = line.strip_prefix("part_bytes=") {
                part_bytes = v.trim().parse::<u64>().ok();
            } else if let Some(v) = line.strip_prefix("total_bytes=") {
                total_bytes = v.trim().parse::<u64>().ok();
            }
        }
        let (part_bytes, total_bytes) = match (part_bytes, total_bytes) {
            (Some(p), Some(t)) if p > 0 && t > 0 => (p, t),
            _ => return Err(SafsError::Config(format!("corrupt meta file for '{name}'"))),
        };
        let nparts = total_bytes.div_ceil(part_bytes);
        let mut strips = Vec::with_capacity(rt.ndisks());
        for disk in 0..rt.ndisks() {
            let path = Self::strip_path(&rt, name, disk);
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .map_err(|e| SafsError::io(format!("opening strip {}", path.display()), e))?;
            strips.push(Arc::new(f));
        }
        Ok(SafsFile {
            inner: Arc::new(FileInner {
                rt,
                uid: NEXT_FILE_UID.fetch_add(1, Ordering::Relaxed),
                name: name.to_string(),
                part_bytes,
                total_bytes,
                nparts,
                striping,
                strips,
                deleted: AtomicBool::new(false),
                delete_on_drop: AtomicBool::new(false),
            }),
        })
    }

    fn remove_files(&self) {
        for disk in 0..self.rt.ndisks() {
            let _ = std::fs::remove_file(Self::strip_path(&self.rt, &self.name, disk));
        }
        let _ = std::fs::remove_file(Self::meta_path(&self.rt, &self.name));
    }
}

impl Drop for FileInner {
    fn drop(&mut self) {
        // Free any resident cache entries; nothing can read them again
        // since the uid dies with us.
        if let Some(cache) = self.rt.page_cache() {
            cache.invalidate_file(self.uid);
        }
        if self.delete_on_drop.load(Ordering::Relaxed) && !self.deleted.load(Ordering::Relaxed) {
            self.remove_files();
        }
    }
}

impl SafsFile {
    /// File name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of partitions.
    pub fn nparts(&self) -> u64 {
        self.inner.nparts
    }

    /// Size of a full partition in bytes.
    pub fn part_bytes(&self) -> u64 {
        self.inner.part_bytes
    }

    /// Total logical file size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.inner.total_bytes
    }

    /// Length of partition `part` (the last one may be short).
    pub fn part_len(&self, part: u64) -> SafsResult<usize> {
        let inner = &self.inner;
        if part >= inner.nparts {
            return Err(SafsError::PartOutOfRange { part, nparts: inner.nparts });
        }
        let start = part * inner.part_bytes;
        Ok((inner.total_bytes - start).min(inner.part_bytes) as usize)
    }

    /// Mark this file to be removed from the array when the last handle
    /// drops (used for anonymous temporaries).
    pub fn set_delete_on_drop(&self, v: bool) {
        self.inner.delete_on_drop.store(v, Ordering::Relaxed);
    }

    fn check_live(&self) -> SafsResult<()> {
        if self.inner.deleted.load(Ordering::Relaxed) {
            Err(SafsError::Deleted)
        } else {
            Ok(())
        }
    }

    /// Submit an asynchronous read of partition `part` into `buf` (which
    /// must be exactly `part_len(part)` bytes). The buffer travels through
    /// the I/O engine and comes back via [`IoTicket::wait`].
    pub fn read_part_async_into(&self, part: u64, buf: IoBuf) -> SafsResult<IoTicket> {
        self.check_live()?;
        let len = self.part_len(part)?;
        if buf.len() != len {
            return Err(SafsError::BadLength { part, expected: len, got: buf.len() });
        }
        let loc = self.inner.striping.locate(part);
        let (tx, ticket) = completion();
        self.inner.rt.submit(
            loc.disk,
            IoReq {
                file: self.inner.strips[loc.disk].clone(),
                offset: loc.slot * self.inner.part_bytes,
                op: IoOp::Read { buf },
                done: tx,
                context: format!("read {}[{part}]", self.inner.name),
                submit_ns: 0,
            },
        );
        Ok(ticket)
    }

    /// Asynchronous read of partition `part` with a freshly allocated buffer.
    pub fn read_part_async(&self, part: u64) -> SafsResult<IoTicket> {
        let len = self.part_len(part)?;
        self.read_part_async_into(part, IoBuf::zeroed(len))
    }

    /// Synchronous read of partition `part`.
    pub fn read_part(&self, part: u64) -> SafsResult<IoBuf> {
        self.read_part_async(part)?.wait()
    }

    /// Cache-aware fetch of partition `part` (the SA-cache front door).
    ///
    /// When the runtime has a page cache and the admission filter
    /// accepts this file, the read is served from — and published to —
    /// the cache: hits return immediately, concurrent misses of one
    /// partition coalesce onto a single device read, and sequential
    /// scans trigger bounded readahead. Without a cache (or for files
    /// too large to cache) this degrades to a plain
    /// [`read_part_async`](SafsFile::read_part_async).
    pub fn fetch_part_cached(&self, part: u64) -> SafsResult<CachedFetch> {
        let cache = match self.inner.rt.page_cache() {
            Some(c) => c,
            None => return Ok(CachedFetch::Direct(self.read_part_async(part)?)),
        };
        if !cache.admits(self.inner.total_bytes) {
            cache.note_bypass();
            return Ok(CachedFetch::Direct(self.read_part_async(part)?));
        }
        self.check_live()?;
        // Validate the range up-front so no placeholder is ever parked
        // for a partition that cannot be read.
        self.part_len(part)?;
        let key = (self.inner.uid, part);
        let sink = self.inner.rt.span_sink();
        loop {
            match cache.lookup(key) {
                Lookup::Hit(buf) => {
                    if let Some(s) = &sink {
                        s.instant("cache", "hit", now_nanos(), [("part", part), ("", 0)]);
                    }
                    self.issue_readahead(&cache, part);
                    return Ok(CachedFetch::Ready(buf));
                }
                Lookup::MustRead => {
                    if let Some(s) = &sink {
                        s.instant("cache", "miss", now_nanos(), [("part", part), ("", 0)]);
                    }
                    let ticket = match self.read_part_async(part) {
                        Ok(t) => t,
                        Err(e) => {
                            cache.abort(key);
                            return Err(e);
                        }
                    };
                    self.issue_readahead(&cache, part);
                    return Ok(CachedFetch::Pending(
                        PendingRead::new(cache, key, ticket).with_span(sink, "miss-wait"),
                    ));
                }
                Lookup::Adopted(ticket) => {
                    if let Some(s) = &sink {
                        s.instant("cache", "ra-adopt", now_nanos(), [("part", part), ("", 0)]);
                    }
                    self.issue_readahead(&cache, part);
                    return Ok(CachedFetch::Pending(
                        PendingRead::new(cache, key, ticket).with_span(sink, "ra-wait"),
                    ));
                }
                Lookup::Shared => {
                    let t0 = sink.as_ref().map(|_| now_nanos());
                    let outcome = cache.wait_shared(key);
                    if let (Some(s), Some(t0)) = (&sink, t0) {
                        s.span("cache", "shared-wait", t0, now_nanos(), [("part", part), ("", 0)]);
                    }
                    match outcome {
                        SharedOutcome::Ready(buf) => return Ok(CachedFetch::Ready(buf)),
                        SharedOutcome::Adopted(ticket) => {
                            return Ok(CachedFetch::Pending(
                                PendingRead::new(cache, key, ticket).with_span(sink, "ra-wait"),
                            ))
                        }
                        // The owning reader aborted; race for ownership again.
                        SharedOutcome::Gone => continue,
                    }
                }
            }
        }
    }

    /// Synchronous cache-aware read of partition `part`.
    pub fn read_part_cached(&self, part: u64) -> SafsResult<Arc<IoBuf>> {
        self.fetch_part_cached(part)?.wait()
    }

    /// Feed the sequential-access detector and submit whatever readahead
    /// it grants; each ticket is parked in the cache for the next reader
    /// of that partition to adopt.
    fn issue_readahead(&self, cache: &Arc<PageCache>, part: u64) {
        for p in cache.plan_readahead(self.inner.uid, part, self.inner.nparts) {
            let key = (self.inner.uid, p);
            match self.read_part_async(p) {
                Ok(ticket) => {
                    if let Some(s) = self.inner.rt.span_sink() {
                        s.instant("cache", "readahead", now_nanos(), [("part", p), ("", 0)]);
                    }
                    cache.park_readahead(key, ticket);
                }
                Err(_) => cache.abort(key),
            }
        }
    }

    /// Submit an asynchronous write of partition `part`. `buf` must be
    /// exactly `part_len(part)` bytes; it is handed back by `wait()`.
    pub fn write_part_async(&self, part: u64, buf: IoBuf) -> SafsResult<IoTicket> {
        self.check_live()?;
        let len = self.part_len(part)?;
        if buf.len() != len {
            return Err(SafsError::BadLength { part, expected: len, got: buf.len() });
        }
        // The partition is changing; a stale cached copy must not
        // survive the write.
        if let Some(cache) = self.inner.rt.page_cache() {
            cache.invalidate((self.inner.uid, part));
        }
        let loc = self.inner.striping.locate(part);
        let (tx, ticket) = completion();
        self.inner.rt.submit(
            loc.disk,
            IoReq {
                file: self.inner.strips[loc.disk].clone(),
                offset: loc.slot * self.inner.part_bytes,
                op: IoOp::Write { buf },
                done: tx,
                context: format!("write {}[{part}]", self.inner.name),
                submit_ns: 0,
            },
        );
        Ok(ticket)
    }

    /// Synchronous write of partition `part`.
    pub fn write_part(&self, part: u64, data: &[u8]) -> SafsResult<()> {
        self.write_part_async(part, IoBuf::from_bytes(data))?.wait().map(|_| ())
    }

    /// Delete the file from the array. Outstanding handles turn stale.
    pub fn delete(&self) -> SafsResult<()> {
        self.check_live()?;
        self.inner.deleted.store(true, Ordering::Relaxed);
        if let Some(cache) = self.inner.rt.page_cache() {
            cache.invalidate_file(self.inner.uid);
        }
        self.inner.remove_files();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Safs, SafsConfig};

    fn fresh(tag: &str, ndisks: usize) -> Safs {
        let dir = std::env::temp_dir().join(format!("safs-file-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Safs::open(SafsConfig::striped_under(dir, ndisks)).unwrap()
    }

    #[test]
    fn roundtrip_across_disks() {
        let safs = fresh("rt", 4);
        let f = safs.create("m", 1024, 17).unwrap();
        for p in 0..17u64 {
            let data: Vec<u8> = (0..1024u32).map(|i| ((i as u64 * 31 + p) % 251) as u8).collect();
            f.write_part(p, &data).unwrap();
        }
        for p in 0..17u64 {
            let got = f.read_part(p).unwrap();
            let got = got.as_bytes().to_vec();
            let want: Vec<u8> = (0..1024u32).map(|i| ((i as u64 * 31 + p) % 251) as u8).collect();
            assert_eq!(got, want, "partition {p}");
        }
    }

    #[test]
    fn short_last_partition() {
        let safs = fresh("short", 3);
        let f = safs.create_bytes("short", 100, 250).unwrap();
        assert_eq!(f.nparts(), 3);
        assert_eq!(f.part_len(0).unwrap(), 100);
        assert_eq!(f.part_len(2).unwrap(), 50);
        f.write_part(2, &[9u8; 50]).unwrap();
        assert_eq!(f.read_part(2).unwrap().as_bytes(), &[9u8; 50][..]);
    }

    #[test]
    fn rejects_bad_lengths_and_ranges() {
        let safs = fresh("bad", 2);
        let f = safs.create("b", 64, 2).unwrap();
        assert!(matches!(f.write_part(0, &[0u8; 63]), Err(SafsError::BadLength { .. })));
        assert!(matches!(f.read_part(5), Err(SafsError::PartOutOfRange { .. })));
    }

    #[test]
    fn reopen_preserves_contents() {
        let safs = fresh("reopen", 3);
        {
            let f = safs.create("persist", 256, 5).unwrap();
            for p in 0..5 {
                f.write_part(p, &vec![p as u8 + 1; 256]).unwrap();
            }
        }
        let f = safs.open_file("persist").unwrap();
        assert_eq!(f.nparts(), 5);
        for p in 0..5 {
            assert_eq!(f.read_part(p).unwrap().as_bytes(), vec![p as u8 + 1; 256].as_slice());
        }
    }

    #[test]
    fn async_reads_overlap() {
        let safs = fresh("async", 4);
        let f = safs.create("a", 4096, 32).unwrap();
        let mut writes = Vec::new();
        for p in 0..32u64 {
            writes.push(f.write_part_async(p, IoBuf::from_bytes(&vec![(p % 251) as u8; 4096])).unwrap());
        }
        for w in writes {
            w.wait().unwrap();
        }
        let tickets: Vec<_> = (0..32u64).map(|p| f.read_part_async(p).unwrap()).collect();
        for (p, t) in tickets.into_iter().enumerate() {
            let buf = t.wait().unwrap();
            assert!(buf.as_bytes().iter().all(|&b| b == (p % 251) as u8));
        }
    }

    #[test]
    fn delete_makes_handles_stale() {
        let safs = fresh("delete", 2);
        let f = safs.create("gone", 64, 1).unwrap();
        f.write_part(0, &[1u8; 64]).unwrap();
        f.delete().unwrap();
        assert!(matches!(f.read_part(0), Err(SafsError::Deleted)));
        assert!(!safs.exists("gone"));
    }

    #[test]
    fn delete_on_drop_removes_files() {
        let safs = fresh("dod", 2);
        {
            let f = safs.create("temp", 64, 1).unwrap();
            f.set_delete_on_drop(true);
            f.write_part(0, &[1u8; 64]).unwrap();
        }
        assert!(!safs.exists("temp"));
    }

    #[test]
    fn stats_observe_traffic() {
        let safs = fresh("stats", 2);
        let before = safs.stats_snapshot();
        let f = safs.create("s", 512, 4).unwrap();
        for p in 0..4 {
            f.write_part(p, &[0u8; 512]).unwrap();
        }
        for p in 0..4 {
            f.read_part(p).unwrap();
        }
        let d = before.delta(&safs.stats_snapshot());
        assert_eq!(d.write_bytes, 4 * 512);
        assert_eq!(d.read_bytes, 4 * 512);
        assert_eq!(d.read_reqs, 4);
    }
}
