//! Lock-free metric primitives: typed counter/gauge handles and a
//! log2-bucketed histogram generic over its bucket count.
//!
//! These are the storage cells behind both the SAFS-internal statistics
//! ([`IoStats`](crate::IoStats) latency histograms are
//! [`Log2Histogram`]s) and the engine-wide metrics registry in
//! `flashr_core::metrics`. They live in this crate — the bottom of the
//! dependency stack — so every layer can record into them; the registry,
//! exposition and scrape surface live upstream in core.
//!
//! Every recording operation is a handful of relaxed atomic ops with no
//! allocation and no locking, cheap enough to stay enabled in release
//! builds on the hottest paths (per-request I/O accounting, per-partition
//! executor bookkeeping).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// Handles are shared by reference (typically `Arc<Counter>` handed out
/// by the registry); recording is one relaxed `fetch_add`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, resident
/// bytes, budget). Stored as `u64`; `dec`/`sub` saturate at zero rather
/// than wrapping, so a racy underflow reads as empty, not as 2^64.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    #[inline]
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Raise the gauge to `v` if it is below (high-water marks).
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free log2-bucketed histogram with `N` buckets.
///
/// Bucket `i` counts observations whose value falls in `[2^i, 2^(i+1))`
/// (bucket 0 also absorbs 0); the last bucket absorbs everything from
/// `2^(N-1)` up to `u64::MAX`. Recording is two relaxed `fetch_add`s
/// (bucket + running sum) on a bucket selected by a leading-zeros
/// computation — cheap enough to stay always-on in the I/O threads.
///
/// The SAFS latency histograms are `Log2Histogram<40>` (≈ 9-minute
/// ceiling); the general-purpose registry histograms use `N = 64`, which
/// covers the full `u64` range exactly.
#[derive(Debug)]
pub struct Log2Histogram<const N: usize> {
    buckets: [AtomicU64; N],
    sum: AtomicU64,
}

impl<const N: usize> Default for Log2Histogram<N> {
    fn default() -> Self {
        Log2Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

impl<const N: usize> Log2Histogram<N> {
    /// Bucket index for a value.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        ((63 - value.leading_zeros()) as usize).min(N - 1)
    }

    /// Inclusive-exclusive bounds of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i >= N - 1 || i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
        (lo, hi)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copy out the bucket counts and running sum.
    pub fn snapshot(&self) -> Log2HistogramSnapshot<N> {
        let mut buckets = [0u64; N];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        Log2HistogramSnapshot { buckets, sum: self.sum.load(Ordering::Relaxed) }
    }
}

/// Point-in-time copy of a [`Log2Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2HistogramSnapshot<const N: usize> {
    pub buckets: [u64; N],
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
}

impl<const N: usize> Default for Log2HistogramSnapshot<N> {
    fn default() -> Self {
        Log2HistogramSnapshot { buckets: [0; N], sum: 0 }
    }
}

impl<const N: usize> Log2HistogramSnapshot<N> {
    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`.
    /// Returns 0 for an empty histogram.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Log2Histogram::<N>::bucket_bounds(i).1;
            }
        }
        Log2Histogram::<N>::bucket_bounds(N - 1).1
    }

    /// Bucket movement between two snapshots (`later - self`, saturating;
    /// `self` must be the earlier snapshot for exact deltas).
    pub fn delta(&self, later: &Log2HistogramSnapshot<N>) -> Log2HistogramSnapshot<N> {
        let mut buckets = [0u64; N];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = later.buckets[i].saturating_sub(self.buckets[i]);
        }
        Log2HistogramSnapshot { buckets, sum: later.sum.saturating_sub(self.sum) }
    }

    /// Pointwise sum of two snapshots. Merging is associative and
    /// commutative (bucket-wise and sum-wise addition), so shard- or
    /// lane-level snapshots can be aggregated in any order.
    pub fn merge(&self, other: &Log2HistogramSnapshot<N>) -> Log2HistogramSnapshot<N> {
        let mut buckets = [0u64; N];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].wrapping_add(other.buckets[i]);
        }
        Log2HistogramSnapshot { buckets, sum: self.sum.wrapping_add(other.sum) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type H64 = Log2Histogram<64>;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100); // saturates at zero instead of wrapping
        assert_eq!(g.get(), 0);
        g.fetch_max(7);
        g.fetch_max(3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries_powers_of_two() {
        // Exact powers of two open a new bucket; one below stays put.
        assert_eq!(H64::bucket_of(0), 0);
        assert_eq!(H64::bucket_of(1), 0);
        for i in 1..64usize {
            let p = 1u64 << i;
            assert_eq!(H64::bucket_of(p), i, "2^{i}");
            assert_eq!(H64::bucket_of(p - 1), i - 1, "2^{i}-1");
        }
        assert_eq!(H64::bucket_of(u64::MAX), 63);
        // With N < 64 the top bucket absorbs the tail.
        assert_eq!(Log2Histogram::<40>::bucket_of(u64::MAX), 39);
        assert_eq!(Log2Histogram::<40>::bucket_of(1u64 << 39), 39);
        // Bounds: [2^i, 2^(i+1)), last bucket capped at u64::MAX.
        assert_eq!(H64::bucket_bounds(0), (0, 2));
        assert_eq!(H64::bucket_bounds(10), (1024, 2048));
        assert_eq!(H64::bucket_bounds(63), (1u64 << 63, u64::MAX));
        // Every recordable value lands inside its bucket's bounds (modulo
        // the saturating last bucket).
        for v in [0u64, 1, 2, 7, 1 << 20, (1 << 40) + 3, u64::MAX] {
            let b = H64::bucket_of(v);
            let (lo, hi) = H64::bucket_bounds(b);
            assert!(v >= lo && (v < hi || b == 63), "{v} in [{lo},{hi})");
        }
    }

    #[test]
    fn concurrent_recording_sums_exactly() {
        let h = std::sync::Arc::new(H64::default());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count(), THREADS * PER_THREAD);
        // Sum of 0..80000 = n*(n-1)/2.
        let n = THREADS * PER_THREAD;
        assert_eq!(snap.sum, n * (n - 1) / 2);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = H64::default();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 5, 1 << 20]);
        let b = mk(&[2, 2, u64::MAX]);
        let c = mk(&[1 << 40, 7]);
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        assert_eq!(a.merge(&b).merge(&c).count(), a.count() + b.count() + c.count());
        let empty = Log2HistogramSnapshot::<64>::default();
        assert_eq!(a.merge(&empty), a, "empty snapshot is the identity");
    }

    #[test]
    fn sum_tracks_recorded_values() {
        let h = H64::default();
        h.record(100);
        h.record(28);
        let s = h.snapshot();
        assert_eq!(s.sum, 128);
        h.record(u64::MAX); // top bucket, sum wraps rather than panics
        assert_eq!(h.snapshot().buckets[63], 1);
    }
}
