//! SA-cache: a sharded user-space page cache for SAFS partitions.
//!
//! The original SAFS pairs asynchronous direct I/O with a scalable
//! user-space page cache (paper §3.2.1) so the iterative algorithms
//! FlashR targets — KMeans, GMM, logistic regression — serve the matrix
//! they re-read every iteration from RAM after the first pass. This
//! module reproduces that layer at partition granularity:
//!
//! * **Sharding.** Entries are distributed over shards by partition
//!   index (`part % shards`), the same round-robin placement the matrix
//!   engine uses to tag partitions with simulated NUMA nodes, so
//!   concurrent workers on different partitions contend on different
//!   locks and a shard's entries stay node-local.
//! * **CLOCK eviction.** Each shard runs a second-chance ring over its
//!   resident entries: a hit only sets a reference bit (no list
//!   splicing under the lock like LRU), and the clock hand gives every
//!   referenced entry one more revolution before eviction.
//! * **Single-flight misses.** Concurrent readers of one partition
//!   coalesce onto a single device read. The first becomes the
//!   *completer* and owns the I/O; the rest block on the shard condvar
//!   until the buffer is published (or adopt the in-flight ticket, see
//!   readahead below).
//! * **Readahead.** A per-file sequential-run detector grants a bounded
//!   window of asynchronous readahead through the normal
//!   [`IoTicket`](crate::IoTicket) path. Readahead tickets are *parked*
//!   inside in-flight entries and adopted by the next reader of that
//!   partition, which unifies readahead with the single-flight
//!   protocol: a partition is never read twice because readahead and a
//!   demand miss raced.
//! * **Admission.** Files larger than the cache capacity bypass the
//!   cache entirely, so one streaming pass over a huge matrix cannot
//!   evict an iterative hot set that fits. Capacity 0 means "no cache":
//!   the runtime never installs one and every read goes straight to the
//!   device, bit-identical to the pre-cache behaviour.
//!
//! Throttle interaction: the emulated-bandwidth throttle is charged by
//! the I/O threads when a request actually touches a device
//! (`aio::io_thread_main`). Cache hits never submit a request, so they
//! are never charged — a throttled external-memory benchmark observes
//! the cache's benefit instead of having the throttle hide it.

use crate::aio::IoTicket;
use crate::error::SafsResult;
use crate::iobuf::IoBuf;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: (per-process file uid, partition index). The uid is minted
/// per `FileInner` instance (see `file.rs`), so independently opened
/// handles never alias and a deleted file's entries cannot be revived.
pub(crate) type CacheKey = (u64, u64);

/// Page-cache tunables; see the module docs for the mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheCfg {
    /// Total capacity in bytes, split evenly across shards. 0 disables
    /// the cache (the runtime installs none).
    pub capacity_bytes: u64,
    /// Number of shards; match the context's simulated NUMA nodes.
    pub shards: usize,
    /// Partitions to read ahead once a sequential run is detected;
    /// 0 disables readahead.
    pub readahead_parts: u64,
    /// Consecutive in-order accesses before readahead triggers.
    pub seq_run: u64,
}

impl CacheCfg {
    /// A cache of `bytes` capacity with default sharding and readahead.
    pub fn with_capacity(bytes: u64) -> CacheCfg {
        CacheCfg { capacity_bytes: bytes, shards: 2, readahead_parts: 8, seq_run: 3 }
    }

    /// Builder-style: set the shard count (clamped to ≥ 1).
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Builder-style: set the readahead window and trigger run length.
    pub fn with_readahead(mut self, parts: u64, seq_run: u64) -> Self {
        self.readahead_parts = parts;
        self.seq_run = seq_run.max(1);
        self
    }
}

/// Monotonic page-cache counters (relaxed atomics, like [`IoStats`](crate::IoStats)).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    bypasses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    readahead_issued: AtomicU64,
    readahead_hits: AtomicU64,
}

/// Point-in-time copy of [`CacheStats`] plus the resident-bytes gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that became the owning device read.
    pub misses: u64,
    /// Lookups that blocked on another reader's in-flight I/O.
    pub coalesced: u64,
    /// Reads that skipped the cache via the admission filter.
    pub bypasses: u64,
    /// Buffers published into the cache.
    pub inserts: u64,
    /// Entries evicted by the CLOCK hand.
    pub evictions: u64,
    /// Entries dropped because their partition was rewritten or the
    /// file was deleted/dropped.
    pub invalidations: u64,
    /// Readahead requests submitted to the device.
    pub readahead_issued: u64,
    /// Parked readahead tickets adopted by a subsequent reader.
    pub readahead_hits: u64,
    /// Resident bytes at snapshot time (gauge, not delta-able).
    pub resident_bytes: u64,
}

impl CacheStats {
    fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            readahead_issued: self.readahead_issued.load(Ordering::Relaxed),
            readahead_hits: self.readahead_hits.load(Ordering::Relaxed),
            resident_bytes: 0,
        }
    }
}

impl CacheStatsSnapshot {
    /// Counter movement between two snapshots (`later - self`; same
    /// ordering contract as [`IoStatsSnapshot::delta`](crate::IoStatsSnapshot::delta):
    /// swapped arguments saturate to 0). The resident-bytes gauge
    /// carries `later`'s value unchanged.
    pub fn delta(&self, later: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: later.hits.saturating_sub(self.hits),
            misses: later.misses.saturating_sub(self.misses),
            coalesced: later.coalesced.saturating_sub(self.coalesced),
            bypasses: later.bypasses.saturating_sub(self.bypasses),
            inserts: later.inserts.saturating_sub(self.inserts),
            evictions: later.evictions.saturating_sub(self.evictions),
            invalidations: later.invalidations.saturating_sub(self.invalidations),
            readahead_issued: later.readahead_issued.saturating_sub(self.readahead_issued),
            readahead_hits: later.readahead_hits.saturating_sub(self.readahead_hits),
            resident_bytes: later.resident_bytes,
        }
    }

    /// Total lookups that did not bypass the cache.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.coalesced
    }

    /// Pointwise sum of two snapshots (shard aggregation; associative
    /// and commutative, so shards can be folded in any order).
    pub fn merge(&self, other: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            coalesced: self.coalesced + other.coalesced,
            bypasses: self.bypasses + other.bypasses,
            inserts: self.inserts + other.inserts,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            readahead_issued: self.readahead_issued + other.readahead_issued,
            readahead_hits: self.readahead_hits + other.readahead_hits,
            resident_bytes: self.resident_bytes + other.resident_bytes,
        }
    }
}

/// One cache entry.
enum Slot {
    /// Published data; `referenced` is the CLOCK second-chance bit.
    Resident { buf: Arc<IoBuf>, referenced: bool },
    /// A device read is outstanding. `ticket` is `Some` only for parked
    /// readahead — a demand reader keeps its own ticket and `complete`s
    /// or `abort`s this placeholder.
    InFlight { ticket: Option<IoTicket> },
}

#[derive(Default)]
struct ShardInner {
    map: HashMap<CacheKey, Slot>,
    /// CLOCK ring over resident keys. Invalidated keys go stale here and
    /// are discarded when the hand meets them.
    ring: Vec<CacheKey>,
    hand: usize,
    bytes: u64,
}

#[derive(Default)]
struct Shard {
    inner: Mutex<ShardInner>,
    cond: Condvar,
    /// Per-shard counters; shard-scoped so concurrent workers on
    /// different partitions never share a counter cache line, and so the
    /// metrics registry can expose per-shard series (`shard="0"`).
    /// Admission-filter bypasses are not shard-scoped and are accounted
    /// on shard 0.
    stats: CacheStats,
}

/// Per-file sequential-access detector state.
struct SeqState {
    next: u64,
    run: u64,
}

/// What a [`PageCache::lookup`] resolved to.
pub(crate) enum Lookup {
    /// Resident — serve from RAM.
    Hit(Arc<IoBuf>),
    /// Absent — the caller owns the miss: an in-flight placeholder now
    /// holds the key, and the caller must `complete` or `abort` it.
    MustRead,
    /// A parked readahead ticket was adopted — the caller waits on the
    /// device completion and publishes the result.
    Adopted(IoTicket),
    /// Another reader owns the in-flight read — call `wait_shared`.
    Shared,
}

/// How a [`PageCache::wait_shared`] ended.
pub(crate) enum SharedOutcome {
    /// The completer published the buffer.
    Ready(Arc<IoBuf>),
    /// A readahead ticket was parked while we waited; we adopted it.
    Adopted(IoTicket),
    /// The owning reader aborted — retry the lookup.
    Gone,
}

/// The user-space page cache. One instance lives on a [`Safs`](crate::Safs)
/// runtime and is shared by every file on the array.
pub struct PageCache {
    cfg: CacheCfg,
    shard_budget: u64,
    shards: Vec<Shard>,
    seq: Mutex<HashMap<u64, SeqState>>,
    /// Live per-plan readahead-window override (`u64::MAX` = none).
    /// Unlike replacing the cache via `set_page_cache`, flipping this
    /// keeps resident data, so a plan optimizer can tune the window for
    /// one pass and restore it afterwards.
    readahead_override: AtomicU64,
}

impl PageCache {
    /// Build a cache; `cfg.shards` is clamped to ≥ 1.
    pub fn new(cfg: CacheCfg) -> PageCache {
        let nshards = cfg.shards.max(1);
        PageCache {
            shard_budget: cfg.capacity_bytes / nshards as u64,
            shards: (0..nshards).map(|_| Shard::default()).collect(),
            seq: Mutex::new(HashMap::new()),
            cfg: CacheCfg { shards: nshards, ..cfg },
            readahead_override: AtomicU64::new(u64::MAX),
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes
    }

    /// Override (or, with `None`, restore) the readahead window without
    /// touching resident data.
    pub fn set_readahead_override(&self, parts: Option<u64>) {
        self.readahead_override.store(parts.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The readahead window currently in force: the live override if one
    /// is set, else the configured `readahead_parts`.
    pub fn effective_readahead(&self) -> u64 {
        match self.readahead_override.load(Ordering::Relaxed) {
            u64::MAX => self.cfg.readahead_parts,
            n => n,
        }
    }

    /// Aggregate counters across all shards plus the resident-bytes
    /// gauge.
    pub fn stats_snapshot(&self) -> CacheStatsSnapshot {
        self.shard_snapshots().iter().fold(CacheStatsSnapshot::default(), |a, s| a.merge(s))
    }

    /// Per-shard counters, in shard order, each with that shard's
    /// resident bytes (the metrics registry exposes these as
    /// `shard="<i>"` series).
    pub fn shard_snapshots(&self) -> Vec<CacheStatsSnapshot> {
        self.shards
            .iter()
            .map(|s| {
                let mut snap = s.stats.snapshot();
                snap.resident_bytes = s.inner.lock().bytes;
                snap
            })
            .collect()
    }

    fn shard(&self, key: CacheKey) -> &Shard {
        &self.shards[(key.1 % self.cfg.shards as u64) as usize]
    }

    /// Admission filter: only files whose hot set can actually fit are
    /// cached; larger files stream past the cache.
    pub(crate) fn admits(&self, file_bytes: u64) -> bool {
        file_bytes <= self.cfg.capacity_bytes
    }

    /// Count one admission-filter bypass (not shard-scoped; accounted on
    /// shard 0).
    pub(crate) fn note_bypass(&self) {
        self.shards[0].stats.bypasses.fetch_add(1, Ordering::Relaxed);
    }

    /// Resolve `key`: hit, owned miss, adopted readahead, or shared wait.
    pub(crate) fn lookup(&self, key: CacheKey) -> Lookup {
        let shard = self.shard(key);
        let mut g = shard.inner.lock();
        match g.map.get_mut(&key) {
            Some(Slot::Resident { buf, referenced }) => {
                *referenced = true;
                shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(buf.clone())
            }
            Some(Slot::InFlight { ticket }) => match ticket.take() {
                Some(t) => {
                    shard.stats.readahead_hits.fetch_add(1, Ordering::Relaxed);
                    Lookup::Adopted(t)
                }
                None => {
                    shard.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    Lookup::Shared
                }
            },
            None => {
                g.map.insert(key, Slot::InFlight { ticket: None });
                shard.stats.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::MustRead
            }
        }
    }

    /// Block until another reader's in-flight read resolves.
    pub(crate) fn wait_shared(&self, key: CacheKey) -> SharedOutcome {
        let shard = self.shard(key);
        let mut g = shard.inner.lock();
        loop {
            match g.map.get_mut(&key) {
                Some(Slot::Resident { buf, referenced }) => {
                    *referenced = true;
                    return SharedOutcome::Ready(buf.clone());
                }
                Some(Slot::InFlight { ticket }) => {
                    if let Some(t) = ticket.take() {
                        return SharedOutcome::Adopted(t);
                    }
                }
                None => return SharedOutcome::Gone,
            }
            shard.cond.wait(&mut g);
        }
    }

    /// Publish a completed read, evicting to budget, and wake waiters.
    pub(crate) fn complete(&self, key: CacheKey, buf: IoBuf) -> Arc<IoBuf> {
        let arc = Arc::new(buf);
        let len = arc.len() as u64;
        let shard = self.shard(key);
        {
            let mut g = shard.inner.lock();
            match g.map.insert(key, Slot::Resident { buf: arc.clone(), referenced: false }) {
                Some(Slot::Resident { buf: old, .. }) => {
                    // Replaced in place (benign race); the ring slot stands.
                    g.bytes = g.bytes - old.len() as u64 + len;
                }
                _ => {
                    g.bytes += len;
                    g.ring.push(key);
                }
            }
            shard.stats.inserts.fetch_add(1, Ordering::Relaxed);
            self.evict_locked(&mut g, key, &shard.stats);
        }
        shard.cond.notify_all();
        arc
    }

    /// CLOCK sweep to the shard budget. Never evicts `protect` (the key
    /// just inserted) and gives up after two full revolutions, so an
    /// over-budget single partition overshoots instead of spinning.
    fn evict_locked(&self, g: &mut ShardInner, protect: CacheKey, stats: &CacheStats) {
        let mut sweeps = 0usize;
        while g.bytes > self.shard_budget && !g.ring.is_empty() {
            if sweeps > 2 * g.ring.len() + 1 {
                break;
            }
            if g.hand >= g.ring.len() {
                g.hand = 0;
            }
            let k = g.ring[g.hand];
            if k == protect {
                g.hand += 1;
                sweeps += 1;
                continue;
            }
            let evict_len = match g.map.get_mut(&k) {
                Some(Slot::Resident { referenced, buf }) => {
                    if *referenced {
                        *referenced = false;
                        None
                    } else {
                        Some(buf.len() as u64)
                    }
                }
                // In-flight or invalidated: the ring entry is stale.
                _ => Some(u64::MAX),
            };
            match evict_len {
                None => {
                    g.hand += 1;
                    sweeps += 1;
                }
                Some(u64::MAX) => {
                    g.ring.swap_remove(g.hand);
                }
                Some(len) => {
                    g.map.remove(&k);
                    g.bytes -= len;
                    g.ring.swap_remove(g.hand);
                    stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Remove an in-flight placeholder (failed or abandoned read) and
    /// wake waiters so they retry.
    pub(crate) fn abort(&self, key: CacheKey) {
        let shard = self.shard(key);
        {
            let mut g = shard.inner.lock();
            if matches!(g.map.get(&key), Some(Slot::InFlight { .. })) {
                g.map.remove(&key);
            }
        }
        shard.cond.notify_all();
    }

    /// Feed the sequential detector with an access to `part` of file
    /// `uid` and return the partitions to read ahead. Placeholders for
    /// the returned partitions are already inserted; the caller submits
    /// the reads and parks each ticket with [`park_readahead`](Self::park_readahead).
    pub(crate) fn plan_readahead(&self, uid: u64, part: u64, nparts: u64) -> Vec<u64> {
        let depth = self.effective_readahead();
        if depth == 0 {
            return Vec::new();
        }
        let window = {
            let mut seq = self.seq.lock();
            let st = seq.entry(uid).or_insert(SeqState { next: u64::MAX, run: 0 });
            if part == st.next {
                st.run += 1;
            } else {
                st.run = 1;
            }
            st.next = part + 1;
            if st.run >= self.cfg.seq_run {
                depth
            } else {
                0
            }
        };
        let mut out = Vec::new();
        for p in part + 1..(part + 1 + window).min(nparts) {
            let key = (uid, p);
            let shard = self.shard(key);
            let mut g = shard.inner.lock();
            if let std::collections::hash_map::Entry::Vacant(e) = g.map.entry(key) {
                e.insert(Slot::InFlight { ticket: None });
                out.push(p);
            }
        }
        out
    }

    /// Park a submitted readahead ticket in its placeholder for the next
    /// reader to adopt. If the placeholder vanished (aborted) the ticket
    /// is dropped and the read completes into the void.
    pub(crate) fn park_readahead(&self, key: CacheKey, ticket: IoTicket) {
        let shard = self.shard(key);
        {
            let mut g = shard.inner.lock();
            if let Some(Slot::InFlight { ticket: slot }) = g.map.get_mut(&key) {
                if slot.is_none() {
                    *slot = Some(ticket);
                    shard.stats.readahead_issued.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        shard.cond.notify_all();
    }

    /// Drop a resident entry (its partition was rewritten). In-flight
    /// reads are left alone: a read racing a write has no defined
    /// ordering either way.
    pub(crate) fn invalidate(&self, key: CacheKey) {
        let shard = self.shard(key);
        let mut g = shard.inner.lock();
        let len = match g.map.get(&key) {
            Some(Slot::Resident { buf, .. }) => Some(buf.len() as u64),
            _ => None,
        };
        if let Some(len) = len {
            g.map.remove(&key);
            g.bytes -= len;
            shard.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            // The stale ring slot is discarded by the next clock sweep.
        }
    }

    /// Drop every resident entry and unclaimed readahead ticket of a
    /// file (deleted, or its last handle dropped). Placeholders owned by
    /// an active completer are left for it to resolve.
    pub(crate) fn invalidate_file(&self, uid: u64) {
        for shard in &self.shards {
            {
                let mut g = shard.inner.lock();
                let doomed: Vec<CacheKey> = g
                    .map
                    .iter()
                    .filter(|(k, slot)| {
                        k.0 == uid
                            && match slot {
                                Slot::Resident { .. } => true,
                                Slot::InFlight { ticket } => ticket.is_some(),
                            }
                    })
                    .map(|(k, _)| *k)
                    .collect();
                for k in doomed {
                    if let Some(Slot::Resident { buf, .. }) = g.map.remove(&k) {
                        g.bytes -= buf.len() as u64;
                    }
                    shard.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.cond.notify_all();
        }
        self.seq.lock().remove(&uid);
    }
}

/// A cache-aware partition read in progress, returned by
/// [`SafsFile::fetch_part_cached`](crate::SafsFile::fetch_part_cached).
pub enum CachedFetch {
    /// Served from the cache (hit, or coalesced onto another reader).
    Ready(Arc<IoBuf>),
    /// Bypassed the cache (no cache installed, or the admission filter
    /// rejected the file).
    Direct(IoTicket),
    /// A device read this caller completes into the cache.
    Pending(PendingRead),
}

impl CachedFetch {
    /// Block until the partition bytes are available.
    pub fn wait(self) -> SafsResult<Arc<IoBuf>> {
        match self {
            CachedFetch::Ready(buf) => Ok(buf),
            CachedFetch::Direct(ticket) => Ok(Arc::new(ticket.wait()?)),
            CachedFetch::Pending(p) => p.wait(),
        }
    }

    /// Whether the bytes are already available without blocking.
    pub fn is_ready(&self) -> bool {
        matches!(self, CachedFetch::Ready(_))
    }
}

/// An owned in-flight read whose completion publishes the partition into
/// the cache. Dropping without waiting clears the placeholder so blocked
/// readers retry instead of hanging.
pub struct PendingRead {
    cache: Arc<PageCache>,
    key: CacheKey,
    ticket: Option<IoTicket>,
    /// When tracing: where to report the blocking wait, and what to call
    /// it ("miss-wait" for demand misses, "ra-wait" for adopted
    /// readahead — the latter flags readahead that arrived late).
    span: Option<(Arc<dyn crate::span::SpanSink>, &'static str)>,
}

impl PendingRead {
    pub(crate) fn new(cache: Arc<PageCache>, key: CacheKey, ticket: IoTicket) -> PendingRead {
        PendingRead { cache, key, ticket: Some(ticket), span: None }
    }

    /// Attach a span sink; the blocking part of `wait()` is reported to
    /// it as a completed `cache`/`kind` span.
    pub(crate) fn with_span(
        mut self,
        sink: Option<Arc<dyn crate::span::SpanSink>>,
        kind: &'static str,
    ) -> PendingRead {
        self.span = sink.map(|s| (s, kind));
        self
    }

    /// Wait for the device, publish into the cache, wake coalesced
    /// readers. On failure the placeholder is cleared instead.
    pub fn wait(mut self) -> SafsResult<Arc<IoBuf>> {
        let ticket = self.ticket.take().expect("PendingRead waited twice");
        let t0 = self.span.as_ref().map(|_| crate::span::now_nanos());
        let result = ticket.wait();
        if let (Some((sink, kind)), Some(t0)) = (&self.span, t0) {
            sink.span("cache", kind, t0, crate::span::now_nanos(), [("part", self.key.1), ("", 0)]);
        }
        match result {
            Ok(buf) => Ok(self.cache.complete(self.key, buf)),
            Err(e) => {
                self.cache.abort(self.key);
                Err(e)
            }
        }
    }
}

impl Drop for PendingRead {
    fn drop(&mut self) {
        if self.ticket.is_some() {
            self.cache.abort(self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(len: usize, fill: u8) -> IoBuf {
        IoBuf::from_bytes(&vec![fill; len])
    }

    #[test]
    fn miss_then_hit() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_shards(1));
        let key = (1, 0);
        assert!(matches!(c.lookup(key), Lookup::MustRead));
        let published = c.complete(key, buf(64, 7));
        assert_eq!(published.as_bytes(), &[7u8; 64][..]);
        match c.lookup(key) {
            Lookup::Hit(b) => assert_eq!(b.as_bytes(), &[7u8; 64][..]),
            _ => panic!("expected hit"),
        }
        let s = c.stats_snapshot();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(s.resident_bytes, 64);
    }

    #[test]
    fn concurrent_miss_coalesces() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_shards(1));
        let key = (1, 3);
        assert!(matches!(c.lookup(key), Lookup::MustRead));
        // Second reader of the same partition shares the in-flight read.
        assert!(matches!(c.lookup(key), Lookup::Shared));
        c.complete(key, buf(32, 1));
        match c.wait_shared(key) {
            SharedOutcome::Ready(b) => assert_eq!(b.len(), 32),
            _ => panic!("expected published buffer"),
        }
        let s = c.stats_snapshot();
        assert_eq!(s.misses, 1, "one owner per partition");
        assert_eq!(s.coalesced, 1);
    }

    #[test]
    fn abort_unblocks_to_retry() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_shards(1));
        let key = (9, 0);
        assert!(matches!(c.lookup(key), Lookup::MustRead));
        c.abort(key);
        assert!(matches!(c.wait_shared(key), SharedOutcome::Gone));
        // The retry becomes the new owner.
        assert!(matches!(c.lookup(key), Lookup::MustRead));
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        // Budget for exactly two 64-byte partitions on one shard.
        let c = PageCache::new(CacheCfg::with_capacity(128).with_shards(1));
        for p in 0..2u64 {
            assert!(matches!(c.lookup((1, p)), Lookup::MustRead));
            c.complete((1, p), buf(64, p as u8));
        }
        // Touch partition 0 so its reference bit protects it.
        assert!(matches!(c.lookup((1, 0)), Lookup::Hit(_)));
        assert!(matches!(c.lookup((1, 2)), Lookup::MustRead));
        c.complete((1, 2), buf(64, 2));
        let s = c.stats_snapshot();
        assert_eq!(s.evictions, 1);
        assert!(s.resident_bytes <= 128);
        // The referenced partition survived; the untouched one did not.
        assert!(matches!(c.lookup((1, 0)), Lookup::Hit(_)));
        assert!(matches!(c.lookup((1, 1)), Lookup::MustRead));
    }

    #[test]
    fn admission_filter_by_size() {
        let c = PageCache::new(CacheCfg::with_capacity(1024));
        assert!(c.admits(1024));
        assert!(!c.admits(1025));
    }

    #[test]
    fn invalidate_drops_resident() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_shards(1));
        assert!(matches!(c.lookup((4, 0)), Lookup::MustRead));
        c.complete((4, 0), buf(16, 3));
        c.invalidate((4, 0));
        assert_eq!(c.stats_snapshot().resident_bytes, 0);
        assert!(matches!(c.lookup((4, 0)), Lookup::MustRead));
    }

    #[test]
    fn invalidate_file_sweeps_all_parts() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_shards(2));
        for p in 0..4u64 {
            assert!(matches!(c.lookup((7, p)), Lookup::MustRead));
            c.complete((7, p), buf(16, p as u8));
        }
        assert!(matches!(c.lookup((8, 0)), Lookup::MustRead));
        c.complete((8, 0), buf(16, 9));
        c.invalidate_file(7);
        let s = c.stats_snapshot();
        assert_eq!(s.resident_bytes, 16, "the other file's entry survives");
        assert!(matches!(c.lookup((8, 0)), Lookup::Hit(_)));
    }

    #[test]
    fn readahead_triggers_after_sequential_run() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_readahead(4, 3));
        assert!(c.plan_readahead(1, 0, 100).is_empty());
        assert!(c.plan_readahead(1, 1, 100).is_empty());
        // Third in-order access grants the window.
        assert_eq!(c.plan_readahead(1, 2, 100), vec![3, 4, 5, 6]);
        // Next step only extends by the new tail partition.
        assert_eq!(c.plan_readahead(1, 3, 100), vec![7]);
        // A random jump resets the run.
        assert!(c.plan_readahead(1, 42, 100).is_empty());
    }

    #[test]
    fn readahead_respects_file_end() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_readahead(8, 1));
        assert_eq!(c.plan_readahead(1, 8, 10), vec![9]);
    }

    #[test]
    fn snapshot_delta_saturates() {
        let c = PageCache::new(CacheCfg::with_capacity(1 << 20).with_shards(1));
        assert!(matches!(c.lookup((1, 0)), Lookup::MustRead));
        c.complete((1, 0), buf(8, 0));
        let a = c.stats_snapshot();
        let _ = c.lookup((1, 0));
        let b = c.stats_snapshot();
        assert_eq!(a.delta(&b).hits, 1);
        assert_eq!(b.delta(&a).hits, 0, "swapped order saturates");
    }
}
