//! 8-byte-aligned byte buffers for partition I/O.
//!
//! Matrix engines view partition bytes as typed element slices (`f64`,
//! `i64`, ...). A plain `Vec<u8>` does not guarantee the alignment those
//! views need, so all SAFS data moves through [`IoBuf`]: a byte buffer
//! backed by `u64` words, guaranteeing 8-byte alignment end-to-end.

/// A byte buffer with guaranteed 8-byte alignment.
#[derive(Debug, Clone, Default)]
pub struct IoBuf {
    words: Vec<u64>,
    len: usize,
}

impl IoBuf {
    /// A zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        IoBuf { words: vec![0u64; len.div_ceil(8)], len }
    }

    /// An empty buffer.
    pub fn new() -> Self {
        IoBuf::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut b = IoBuf::zeroed(data.len());
        b.as_mut_bytes().copy_from_slice(data);
        b
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Resize to `len` bytes, reusing the allocation when possible. New
    /// bytes are *not* guaranteed to be zero.
    pub fn resize(&mut self, len: usize) {
        let words = len.div_ceil(8);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
        self.len = len;
    }

    /// Byte view.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        debug_assert!(self.words.len() * 8 >= self.len, "word storage must cover len");
        // SAFETY: the words allocation covers at least `len` bytes and u8
        // has alignment 1.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// Mutable byte view.
    #[inline]
    pub fn as_mut_bytes(&mut self) -> &mut [u8] {
        debug_assert!(self.words.len() * 8 >= self.len, "word storage must cover len");
        // SAFETY: as above; `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }

    /// View the buffer as a slice of `T`.
    ///
    /// `T` must be one of the plain-old-data element types (alignment at
    /// most 8, no padding, any bit pattern valid); the buffer length must
    /// be an exact multiple of `size_of::<T>()`.
    #[inline]
    pub fn typed<T: Pod>(&self) -> &[T] {
        let size = size_of::<T>();
        assert!(align_of::<T>() <= 8);
        assert_eq!(self.len % size, 0, "buffer length {} not a multiple of {}", self.len, size);
        debug_assert_eq!(
            self.words.as_ptr() as usize % align_of::<T>(),
            0,
            "word storage must satisfy T's alignment"
        );
        debug_assert!(self.words.len() * 8 >= self.len, "word storage must cover len");
        // SAFETY: backing storage is 8-byte aligned, covers len bytes, and
        // T: Pod means any bit pattern is a valid T.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<T>(), self.len / size) }
    }

    /// Mutable typed view; see [`IoBuf::typed`].
    #[inline]
    pub fn typed_mut<T: Pod>(&mut self) -> &mut [T] {
        let size = size_of::<T>();
        assert!(align_of::<T>() <= 8);
        assert_eq!(self.len % size, 0, "buffer length {} not a multiple of {}", self.len, size);
        debug_assert_eq!(
            self.words.as_ptr() as usize % align_of::<T>(),
            0,
            "word storage must satisfy T's alignment"
        );
        debug_assert!(self.words.len() * 8 >= self.len, "word storage must cover len");
        // SAFETY: as in `typed`, plus uniqueness from `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<T>(), self.len / size) }
    }
}

/// Marker for plain-old-data element types safe to view in an [`IoBuf`].
///
/// # Safety
/// Implementors must be `Copy`, contain no padding or invalid bit
/// patterns, and have alignment at most 8.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_len() {
        let b = IoBuf::zeroed(13);
        assert_eq!(b.len(), 13);
        assert!(b.as_bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn typed_views_round_trip() {
        let mut b = IoBuf::zeroed(32);
        {
            let f = b.typed_mut::<f64>();
            f.copy_from_slice(&[1.5, -2.0, 3.25, 0.0]);
        }
        assert_eq!(b.typed::<f64>(), &[1.5, -2.0, 3.25, 0.0]);
        // Reinterpret as u64 words without tearing.
        assert_eq!(b.typed::<u64>().len(), 4);
    }

    #[test]
    fn alignment_is_eight() {
        for len in [1usize, 7, 8, 9, 4096] {
            let b = IoBuf::zeroed(len);
            assert_eq!(b.as_bytes().as_ptr() as usize % 8, 0, "len={len}");
        }
    }

    #[test]
    #[should_panic]
    fn typed_rejects_ragged_length() {
        let b = IoBuf::zeroed(10);
        let _ = b.typed::<f64>();
    }

    #[test]
    fn from_bytes_copies() {
        let b = IoBuf::from_bytes(&[1, 2, 3, 4, 5]);
        assert_eq!(b.as_bytes(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn resize_preserves_prefix() {
        let mut b = IoBuf::from_bytes(&[9, 8, 7]);
        b.resize(2);
        assert_eq!(b.as_bytes(), &[9, 8]);
        b.resize(16);
        assert_eq!(&b.as_bytes()[..2], &[9, 8]);
    }
}
