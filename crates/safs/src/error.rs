//! Error type shared by all SAFS operations.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Result alias used across the crate.
pub type SafsResult<T> = Result<T, SafsError>;

/// Errors surfaced by the SAFS runtime.
#[derive(Debug)]
pub enum SafsError {
    /// An underlying OS-level I/O failure, tagged with context.
    Io { context: String, source: io::Error },
    /// A request referenced a partition beyond the end of the file.
    PartOutOfRange { part: u64, nparts: u64 },
    /// A write buffer did not match the partition length.
    BadLength { part: u64, expected: usize, got: usize },
    /// The file was already deleted.
    Deleted,
    /// The configuration names no shard roots at all.
    NoShards,
    /// The same directory appears as more than one shard root (the
    /// striping layer assumes distinct roots; two shards sharing one
    /// would silently clobber each other's strips).
    DuplicateShardRoot(PathBuf),
    /// A configured shard root exists but is not a directory.
    ShardRootNotDir(PathBuf),
    /// Other configuration problems (zero partition size, ...).
    Config(String),
}

impl fmt::Display for SafsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafsError::Io { context, source } => write!(f, "I/O error ({context}): {source}"),
            SafsError::PartOutOfRange { part, nparts } => {
                write!(f, "partition {part} out of range (file has {nparts})")
            }
            SafsError::BadLength { part, expected, got } => {
                write!(f, "bad buffer length for partition {part}: expected {expected}, got {got}")
            }
            SafsError::Deleted => write!(f, "file was deleted"),
            SafsError::NoShards => {
                write!(f, "bad SAFS configuration: at least one shard root directory required")
            }
            SafsError::DuplicateShardRoot(p) => {
                write!(f, "bad SAFS configuration: duplicate shard root {}", p.display())
            }
            SafsError::ShardRootNotDir(p) => {
                write!(f, "bad SAFS configuration: shard root {} is not a directory", p.display())
            }
            SafsError::Config(msg) => write!(f, "bad SAFS configuration: {msg}"),
        }
    }
}

impl std::error::Error for SafsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SafsError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SafsError {
    pub(crate) fn io(context: impl Into<String>, source: io::Error) -> Self {
        SafsError::Io { context: context.into(), source }
    }
}
