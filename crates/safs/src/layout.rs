//! Striping math: which disk holds which partition, and where.
//!
//! FlashR "uses a hash function to map data to fully utilize the bandwidth
//! of all SSDs" (§3.2.1). We use a per-file *permuted round-robin*: a
//! deterministic pseudo-random permutation of the disks, rotated by a
//! per-file seed. This keeps placement perfectly even (every disk holds
//! ⌈nparts/ndisks⌉ or ⌊nparts/ndisks⌋ partitions), makes the strip offset
//! O(1) to compute, and still decorrelates column-subset access patterns
//! across files the way a hash does.

/// Placement of one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartLoc {
    /// Index of the disk holding the partition.
    pub disk: usize,
    /// Slot index within that disk's strip file.
    pub slot: u64,
}

/// Per-file striping function.
#[derive(Debug, Clone)]
pub struct Striping {
    perm: Vec<usize>,
    ndisks: usize,
}

impl Striping {
    /// Build the striping for a file with the given seed over `ndisks`.
    pub fn new(ndisks: usize, seed: u64) -> Self {
        assert!(ndisks >= 1, "need at least one disk");
        let mut perm: Vec<usize> = (0..ndisks).collect();
        // Deterministic Fisher–Yates driven by a splitmix64 stream.
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for i in (1..ndisks).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        Striping { perm, ndisks }
    }

    /// Number of disks in the stripe set.
    pub fn ndisks(&self) -> usize {
        self.ndisks
    }

    /// Where partition `part` lives.
    pub fn locate(&self, part: u64) -> PartLoc {
        let disk = self.perm[(part % self.ndisks as u64) as usize];
        PartLoc { disk, slot: part / self.ndisks as u64 }
    }

    /// How many partitions of a `nparts`-partition file land on `disk`.
    pub fn parts_on_disk(&self, nparts: u64, disk: usize) -> u64 {
        let pos = self.perm.iter().position(|&d| d == disk);
        match pos {
            Some(pos) => {
                let pos = pos as u64;
                let full = nparts / self.ndisks as u64;
                let rem = nparts % self.ndisks as u64;
                full + u64::from(pos < rem)
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn placement_is_even() {
        for ndisks in [1usize, 2, 3, 8, 24] {
            let s = Striping::new(ndisks, 42);
            let nparts = 1000u64;
            let mut counts: HashMap<usize, u64> = HashMap::new();
            for p in 0..nparts {
                *counts.entry(s.locate(p).disk).or_default() += 1;
            }
            let min = counts.values().copied().min().unwrap();
            let max = counts.values().copied().max().unwrap();
            assert!(max - min <= 1, "uneven placement for {ndisks} disks");
        }
    }

    #[test]
    fn slots_are_dense_per_disk() {
        let s = Striping::new(5, 7);
        let nparts = 103u64;
        let mut per_disk: HashMap<usize, Vec<u64>> = HashMap::new();
        for p in 0..nparts {
            let loc = s.locate(p);
            per_disk.entry(loc.disk).or_default().push(loc.slot);
        }
        for (disk, mut slots) in per_disk {
            slots.sort_unstable();
            for (i, slot) in slots.iter().enumerate() {
                assert_eq!(*slot, i as u64, "disk {disk} has a slot gap");
            }
            assert_eq!(slots.len() as u64, s.parts_on_disk(nparts, disk));
        }
    }

    #[test]
    fn different_seeds_permute_differently() {
        let a = Striping::new(8, 1);
        let b = Striping::new(8, 2);
        let differs = (0..8u64).any(|p| a.locate(p).disk != b.locate(p).disk);
        assert!(differs);
    }

    #[test]
    fn parts_on_disk_sums_to_total() {
        let s = Striping::new(7, 99);
        let nparts = 61u64;
        let total: u64 = (0..7).map(|d| s.parts_on_disk(nparts, d)).sum();
        assert_eq!(total, nparts);
    }
}
