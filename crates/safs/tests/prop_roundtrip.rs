//! Property tests: SAFS round-trips arbitrary partition geometries and
//! payloads across arbitrary disk counts.

use flashr_safs::{IoBuf, Safs, SafsConfig};
use proptest::prelude::*;

fn fresh(tag: u64, ndisks: usize) -> Safs {
    let dir = std::env::temp_dir().join(format!("safs-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Safs::open(SafsConfig::striped_under(dir, ndisks)).unwrap()
}

/// Deterministic payload for partition `p` of length `len`.
fn payload(p: u64, len: usize, salt: u8) -> Vec<u8> {
    (0..len).map(|i| ((i as u64 * 131 + p * 31 + salt as u64) % 251) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_any_geometry(
        ndisks in 1usize..6,
        part_bytes in 1u64..5000,
        total_mult in 1u64..40,
        tail in 0u64..5000,
        seed in 0u64..u64::MAX,
    ) {
        let total = (part_bytes * total_mult + tail % part_bytes.max(1)).max(1);
        let safs = fresh(seed, ndisks);
        let f = safs.create_bytes("prop", part_bytes, total).unwrap();
        prop_assert_eq!(f.nparts(), total.div_ceil(part_bytes));

        // Write all partitions (async), read them back (async).
        let mut writes = Vec::new();
        for p in 0..f.nparts() {
            let len = f.part_len(p).unwrap();
            writes.push(f.write_part_async(p, IoBuf::from_bytes(&payload(p, len, 7))).unwrap());
        }
        for w in writes {
            w.wait().unwrap();
        }
        for p in 0..f.nparts() {
            let len = f.part_len(p).unwrap();
            let got = f.read_part(p).unwrap();
            let want = payload(p, len, 7);
            prop_assert_eq!(got.as_bytes(), want.as_slice(), "partition {}", p);
        }
        f.delete().unwrap();
    }

    #[test]
    fn rewrites_are_last_writer_wins(parts in 1u64..20, seed in 0u64..u64::MAX) {
        let safs = fresh(seed ^ 0xABCD, 3);
        let f = safs.create("rw", 256, parts).unwrap();
        for p in 0..parts {
            f.write_part(p, &payload(p, 256, 1)).unwrap();
        }
        // Overwrite a strided subset.
        for p in (0..parts).step_by(2) {
            f.write_part(p, &payload(p, 256, 2)).unwrap();
        }
        for p in 0..parts {
            let want_salt = if p % 2 == 0 { 2 } else { 1 };
            let got = f.read_part(p).unwrap();
            let want = payload(p, 256, want_salt);
            prop_assert_eq!(got.as_bytes(), want.as_slice());
        }
        f.delete().unwrap();
    }

    #[test]
    fn reopen_sees_identical_content(parts in 1u64..12, seed in 0u64..u64::MAX) {
        let safs = fresh(seed ^ 0x1234, 2);
        {
            let f = safs.create("persist", 128, parts).unwrap();
            for p in 0..parts {
                f.write_part(p, &payload(p, 128, 9)).unwrap();
            }
        }
        let f = safs.open_file("persist").unwrap();
        prop_assert_eq!(f.nparts(), parts);
        for p in 0..parts {
            let got = f.read_part(p).unwrap();
            let want = payload(p, 128, 9);
            prop_assert_eq!(got.as_bytes(), want.as_slice());
        }
        f.delete().unwrap();
    }
}
