//! Concurrency and correctness stress for the SA-cache page cache
//! (ISSUE 3): bit-identical reads under contention, single-flight
//! coalescing, warm-cache zero-device-read scans, capacity-0
//! passthrough, admission bypass, readahead, and write invalidation.

use flashr_safs::{CacheCfg, Safs, SafsConfig, ThrottleCfg};
use std::sync::Arc;

fn tmp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("safs-cache-stress-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic partition payload: every byte derives from (part, idx).
fn pattern(part: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (part as usize * 31 + i * 7) as u8).collect()
}

fn make_file(safs: &Safs, name: &str, part_bytes: u64, nparts: u64) -> flashr_safs::SafsFile {
    let f = safs.create(name, part_bytes, nparts).unwrap();
    for p in 0..nparts {
        f.write_part(p, &pattern(p, part_bytes as usize)).unwrap();
    }
    f
}

/// A small deterministic PRNG (xorshift) — the stress test must not
/// depend on the `rand` crate's exact stream.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn concurrent_reads_are_bit_identical_and_evict() {
    const PART: u64 = 4096;
    const NPARTS: u64 = 8;
    const NFILES: u64 = 8;
    // Each file fits (8 parts ≤ 8-part capacity) so admission accepts,
    // but the working set is 8 files — plenty of CLOCK eviction churn.
    let cache = CacheCfg::with_capacity(NPARTS * PART).with_shards(2).with_readahead(0, u64::MAX);
    let safs = Safs::open(SafsConfig::striped_under(tmp_root("concurrent"), 2).with_cache(cache))
        .unwrap();
    let files: Vec<Arc<flashr_safs::SafsFile>> = (0..NFILES)
        .map(|i| Arc::new(make_file(&safs, &format!("x{i}"), PART, NPARTS)))
        .collect();

    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let files = &files;
            scope.spawn(move || {
                let mut rng = XorShift(0x9E3779B97F4A7C15 ^ (t + 1));
                for _ in 0..400 {
                    let file = &files[(rng.next() % NFILES) as usize];
                    let part = rng.next() % NPARTS;
                    let buf = file.read_part_cached(part).unwrap();
                    assert_eq!(buf.as_bytes(), &pattern(part, PART as usize)[..]);
                }
            });
        }
    });

    let c = safs.cache_stats_snapshot();
    assert!(c.hits > 0, "expected cache hits, got {c:?}");
    assert!(c.evictions > 0, "8-file working set over an 8-part cache must evict, got {c:?}");
    // Cached reads must agree with the direct device path.
    for file in &files {
        for part in 0..NPARTS {
            let direct = file.read_part(part).unwrap();
            let cached = file.read_part_cached(part).unwrap();
            assert_eq!(direct.as_bytes(), cached.as_bytes());
        }
    }
}

#[test]
fn single_flight_coalesces_concurrent_misses() {
    const PART: u64 = 64 * 1024; // large enough that reads take a while
    const NPARTS: u64 = 8;
    // Readahead disabled so device reads map 1:1 to demand misses.
    let cache = CacheCfg::with_capacity(NPARTS * PART).with_readahead(0, u64::MAX);
    let safs =
        Safs::open(SafsConfig::striped_under(tmp_root("coalesce"), 2).with_cache(cache)).unwrap();
    let file = Arc::new(make_file(&safs, "x", PART, NPARTS));
    let before = safs.stats_snapshot();

    // Many threads all demand the same small set of partitions at once.
    std::thread::scope(|scope| {
        for _ in 0..16 {
            let file = file.clone();
            scope.spawn(move || {
                for part in 0..NPARTS {
                    let buf = file.read_part_cached(part).unwrap();
                    assert_eq!(buf.as_bytes(), &pattern(part, PART as usize)[..]);
                }
            });
        }
    });

    let io = before.delta(&safs.stats_snapshot());
    let c = io.cache;
    assert_eq!(c.misses, NPARTS, "one miss per distinct partition, got {c:?}");
    assert_eq!(io.read_reqs, NPARTS, "one device read per distinct partition");
    assert!(c.coalesced + c.hits >= 15 * NPARTS, "other readers hit or coalesced: {c:?}");
}

#[test]
fn warm_cache_scan_issues_zero_device_reads() {
    const PART: u64 = 4096;
    const NPARTS: u64 = 32;
    let cache = CacheCfg::with_capacity(NPARTS * PART).with_shards(2);
    // Throttle on: cache hits must not be charged as device I/O
    // (ISSUE 3 satellite: ThrottleCfg interaction).
    let throttle = ThrottleCfg { bytes_per_sec: 64.0 * 1024.0 * 1024.0, latency_us: 5.0 };
    let safs = Safs::open(
        SafsConfig::striped_under(tmp_root("warm"), 2).with_cache(cache).with_throttle(throttle),
    )
    .unwrap();
    let file = make_file(&safs, "x", PART, NPARTS);

    // Cold scan: populates the cache.
    for p in 0..NPARTS {
        file.read_part_cached(p).unwrap();
    }
    let warm_before = safs.stats_snapshot();
    for p in 0..NPARTS {
        let buf = file.read_part_cached(p).unwrap();
        assert_eq!(buf.as_bytes(), &pattern(p, PART as usize)[..]);
    }
    let warm = warm_before.delta(&safs.stats_snapshot());
    assert_eq!(warm.read_reqs, 0, "warm scan must not touch the device: {warm:?}");
    assert_eq!(warm.read_bytes, 0);
    assert_eq!(warm.cache.hits, NPARTS);
}

#[test]
fn capacity_zero_is_passthrough() {
    const PART: u64 = 4096;
    const NPARTS: u64 = 16;
    let cache = CacheCfg::with_capacity(0);
    let safs =
        Safs::open(SafsConfig::striped_under(tmp_root("zerocap"), 2).with_cache(cache)).unwrap();
    assert_eq!(safs.page_cache_capacity(), 0, "zero capacity must install no cache");
    let file = make_file(&safs, "x", PART, NPARTS);

    let before = safs.stats_snapshot();
    for p in 0..NPARTS {
        let buf = file.read_part_cached(p).unwrap();
        assert_eq!(buf.as_bytes(), &pattern(p, PART as usize)[..]);
    }
    for p in 0..NPARTS {
        file.read_part_cached(p).unwrap();
    }
    let io = before.delta(&safs.stats_snapshot());
    // Every read goes to the device, exactly as without a cache.
    assert_eq!(io.read_reqs, 2 * NPARTS);
    assert_eq!(io.cache.hits + io.cache.misses + io.cache.coalesced, 0);
}

#[test]
fn oversized_file_bypasses_admission() {
    const PART: u64 = 4096;
    const NPARTS: u64 = 16;
    // Cache smaller than the file: a full-file scan would only churn, so
    // admission sends it straight to the device.
    let cache = CacheCfg::with_capacity(4 * PART);
    let safs =
        Safs::open(SafsConfig::striped_under(tmp_root("bypass"), 2).with_cache(cache)).unwrap();
    let file = make_file(&safs, "x", PART, NPARTS);

    let before = safs.stats_snapshot();
    for p in 0..NPARTS {
        file.read_part_cached(p).unwrap();
    }
    let io = before.delta(&safs.stats_snapshot());
    assert_eq!(io.cache.bypasses, NPARTS, "oversized file must bypass: {:?}", io.cache);
    assert_eq!(io.cache.hits + io.cache.misses, 0);
    assert_eq!(io.read_reqs, NPARTS);
}

#[test]
fn sequential_scan_triggers_readahead() {
    const PART: u64 = 4096;
    const NPARTS: u64 = 32;
    let cache = CacheCfg::with_capacity(NPARTS * PART).with_readahead(4, 3);
    let safs =
        Safs::open(SafsConfig::striped_under(tmp_root("readahead"), 2).with_cache(cache)).unwrap();
    let file = make_file(&safs, "x", PART, NPARTS);

    let before = safs.stats_snapshot();
    for p in 0..NPARTS {
        let buf = file.read_part_cached(p).unwrap();
        assert_eq!(buf.as_bytes(), &pattern(p, PART as usize)[..]);
    }
    let io = before.delta(&safs.stats_snapshot());
    assert!(io.cache.readahead_issued > 0, "sequential scan must issue readahead: {:?}", io.cache);
    assert!(io.cache.readahead_hits > 0, "the scan must adopt readahead tickets: {:?}", io.cache);
    // Readahead changes who issues the read, never how many bytes move.
    assert_eq!(io.read_reqs, NPARTS);
}

#[test]
fn write_invalidates_cached_partition() {
    const PART: u64 = 4096;
    let cache = CacheCfg::with_capacity(8 * PART);
    let safs =
        Safs::open(SafsConfig::striped_under(tmp_root("inval"), 2).with_cache(cache)).unwrap();
    let file = make_file(&safs, "x", PART, 4);

    let old = file.read_part_cached(1).unwrap();
    assert_eq!(old.as_bytes(), &pattern(1, PART as usize)[..]);
    let fresh = vec![0xABu8; PART as usize];
    file.write_part(1, &fresh).unwrap();
    let new = file.read_part_cached(1).unwrap();
    assert_eq!(new.as_bytes(), &fresh[..], "stale cache entry served after overwrite");
    assert!(safs.cache_stats_snapshot().invalidations > 0);
}
