//! Property tests: the storage backends are interchangeable. A file
//! written and read back under any shard count ∈ {1, 2, 4} and either
//! backend (throttle-simulated or raw-speed direct) is bit-identical to
//! the same file under every other combination — with and without a
//! deliberately undersized page cache forcing eviction churn on the
//! read path.

use flashr_safs::{BackendKind, CacheCfg, IoBuf, Safs, SafsConfig};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const BACKENDS: [BackendKind; 2] = [BackendKind::Sim, BackendKind::Direct];

/// A runtime with an explicit disk list (immune to the CI
/// `FLASHR_SAFS_SHARDS` override, which only rewrites `striped_under`
/// layouts) and an explicit backend (immune to `FLASHR_BACKEND`).
fn fresh(tag: &str, shards: usize, backend: BackendKind) -> Safs {
    let dir = std::env::temp_dir().join(format!(
        "safs-beq-{tag}-{shards}-{}-{}",
        backend.as_str(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = SafsConfig {
        disks: (0..shards).map(|d| dir.join(format!("disk{d}"))).collect(),
        ..SafsConfig::single_dir(&dir)
    }
    .with_backend(backend);
    Safs::open(cfg).unwrap()
}

/// Deterministic payload for partition `p` of length `len`.
fn payload(p: u64, len: usize, seed: u64) -> Vec<u8> {
    (0..len).map(|i| ((i as u64).wrapping_mul(167) ^ p.wrapping_mul(43) ^ seed) as u8).collect()
}

/// Write the matrix (async), flush, read every partition back.
fn write_and_read_back(safs: &Safs, part_bytes: u64, total: u64, seed: u64) -> Vec<Vec<u8>> {
    let f = safs.create_bytes("m", part_bytes, total).unwrap();
    let mut writes = Vec::new();
    for p in 0..f.nparts() {
        let len = f.part_len(p).unwrap();
        writes.push(f.write_part_async(p, IoBuf::from_bytes(&payload(p, len, seed))).unwrap());
    }
    for w in writes {
        w.wait().unwrap();
    }
    safs.flush();
    (0..f.nparts()).map(|p| f.read_part(p).unwrap().as_bytes().to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn all_shard_and_backend_combinations_are_bit_identical(
        part_bytes in 64u64..2048,
        nparts in 1u64..24,
        tail in 0u64..2048,
        seed in 0u64..u64::MAX,
    ) {
        let total = (part_bytes * nparts + tail % part_bytes).max(1);
        let reference = payload_matrix(part_bytes, total, seed);
        for shards in SHARD_COUNTS {
            for backend in BACKENDS {
                let safs = fresh("grid", shards, backend);
                let got = write_and_read_back(&safs, part_bytes, total, seed);
                prop_assert_eq!(
                    &got, &reference,
                    "shards={} backend={}", shards, backend.as_str()
                );
            }
        }
    }

    #[test]
    fn cached_reads_survive_eviction_churn_on_every_combination(
        nparts in 4u64..32,
        seed in 0u64..u64::MAX,
    ) {
        let part_bytes = 1024u64;
        let total = part_bytes * nparts;
        let reference = payload_matrix(part_bytes, total, seed);
        for shards in SHARD_COUNTS {
            for backend in BACKENDS {
                let safs = fresh("churn", shards, backend);
                // A cache holding only ~2 partitions: every scan past it
                // evicts, so reads mix hits, misses and re-reads.
                safs.set_page_cache(Some(CacheCfg::with_capacity(2 * part_bytes)));
                let f = safs.create_bytes("m", part_bytes, total).unwrap();
                for p in 0..f.nparts() {
                    let len = f.part_len(p).unwrap();
                    f.write_part(p, &payload(p, len, seed)).unwrap();
                }
                // Two interleaved scans (forward then strided) through
                // the cached path to churn the CLOCK hand.
                for pass in 0..2u64 {
                    for p in 0..f.nparts() {
                        let p = if pass == 0 { p } else { (p * 7) % f.nparts() };
                        let got = f.read_part_cached(p).unwrap();
                        prop_assert_eq!(
                            got.as_bytes(), reference[p as usize].as_slice(),
                            "pass={} part={} shards={} backend={}",
                            pass, p, shards, backend.as_str()
                        );
                    }
                }
            }
        }
    }
}

/// The reference bytes for every partition of the matrix.
fn payload_matrix(part_bytes: u64, total: u64, seed: u64) -> Vec<Vec<u8>> {
    let nparts = total.div_ceil(part_bytes);
    (0..nparts)
        .map(|p| {
            let len = if p == nparts - 1 && !total.is_multiple_of(part_bytes) {
                (total % part_bytes) as usize
            } else {
                part_bytes as usize
            };
            payload(p, len, seed)
        })
        .collect()
}

/// Reopening under a *different* shard count must not silently produce
/// garbage: the on-disk layout is owned by the shard set that wrote it,
/// and the metadata pins the geometry. This is a plain unit test (no
/// proptest) because the scenario is fixed.
#[test]
fn reopen_under_same_layout_is_identical_across_backends() {
    let part_bytes = 512u64;
    let total = part_bytes * 9;
    for shards in SHARD_COUNTS {
        let dir = std::env::temp_dir()
            .join(format!("safs-beq-reopen-{shards}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SafsConfig {
            disks: (0..shards).map(|d| dir.join(format!("disk{d}"))).collect(),
            ..SafsConfig::single_dir(&dir)
        };
        // Write with Sim…
        {
            let safs = Safs::open(cfg.clone().with_backend(BackendKind::Sim)).unwrap();
            let f = safs.create_bytes("m", part_bytes, total).unwrap();
            for p in 0..f.nparts() {
                f.write_part(p, &payload(p, part_bytes as usize, 3)).unwrap();
            }
        }
        // …reopen and read with Direct: same strips, same bytes.
        let safs = Safs::open(cfg.with_backend(BackendKind::Direct)).unwrap();
        let f = safs.open_file("m").unwrap();
        for p in 0..f.nparts() {
            assert_eq!(
                f.read_part(p).unwrap().as_bytes(),
                payload(p, part_bytes as usize, 3).as_slice(),
                "shards={shards} part={p}"
            );
        }
    }
}
