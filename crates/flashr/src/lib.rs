//! # FlashR for Rust
//!
//! A from-scratch Rust reproduction of *FlashR: Parallelize and Scale R
//! for Machine Learning using SSDs* (Zheng et al., PPoPP 2018): a
//! matrix-oriented programming framework that executes array programs in
//! parallel and out-of-core automatically.
//!
//! Write the algorithm as if the matrix were small; the engine evaluates
//! lazily, fuses the whole operation DAG into a single parallel pass,
//! performs two-level (I/O partition / processor cache) partitioning, and
//! streams from an SSD array when the data does not fit in memory.
//!
//! ```
//! use flashr::prelude::*;
//!
//! let ctx = FlashCtx::in_memory();
//! // 100k standard-normal points in 8 dimensions — lazy, nothing computed.
//! let x = FM::runif(&ctx, 100_000, 8, 0.0, 1.0, 42);
//! // colSums, the Gramian and a sum of squares — one fused pass.
//! let stats = FM::materialize_multi(&ctx, &[&x.col_sums(), &x.crossprod(), &x.square().sum()]);
//! assert_eq!(stats.len(), 3);
//! ```
//!
//! The workspace crates, re-exported here:
//!
//! * `core` ([`flashr_core`]) — matrices, GenOps, lazy DAG, the fused
//!   executor (`FM`, `FlashCtx`);
//! * `safs` ([`flashr_safs`]) — the SAFS-like SSD-array storage substrate;
//! * `linalg` ([`flashr_linalg`]) — dense kernels (GEMM, Cholesky, eigen…);
//! * `sparse` ([`flashr_sparse`]) — CSR + semi-external SpMM;
//! * `ml` ([`flashr_ml`]) — the paper's benchmark algorithms;
//! * `data` ([`flashr_data`]) — synthetic Criteo/PageGraph-shaped datasets;
//! * `baselines` ([`flashr_baselines`]) — the paper's comparators
//!   (per-op-materializing "MLlib-like", BLAS-only-parallel "RRO-like");
//! * `rlang` ([`flashr_rlang`]) — an interpreter for the R subset FlashR
//!   programs use: the paper's Figure 2/3 listings run verbatim.

pub use flashr_baselines as baselines;
pub use flashr_core as core;
pub use flashr_data as data;
pub use flashr_linalg as linalg;
pub use flashr_ml as ml;
pub use flashr_rlang as rlang;
pub use flashr_safs as safs;
pub use flashr_sparse as sparse;

/// The working set of names for FlashR programs.
pub mod prelude {
    pub use flashr_core::analysis::{AnalysisReport, Lint, PlanError, PlanErrorKind};
    pub use flashr_core::block::BlockMat;
    pub use flashr_core::fm::FM;
    pub use flashr_core::metrics::{FlightRecorder, MetricsHub, MetricsServer};
    pub use flashr_core::ops::{AggOp, BinaryOp, UnaryOp};
    pub use flashr_core::session::{CtxConfig, ExecMode, FlashCtx, MemBudget, MemGovernor, StorageClass};
    pub use flashr_core::stats::ExecStatsSnapshot;
    pub use flashr_core::trace::{
        CriticalPath, PassBreakdown, PassProfile, ProfileReport, Timeline, TraceLevel,
    };
    pub use flashr_core::{DType, Scalar};
    pub use flashr_linalg::Dense;
    pub use flashr_safs::{CacheCfg, CacheStatsSnapshot, Safs, SafsConfig, ThrottleCfg};
}
