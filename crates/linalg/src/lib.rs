//! # flashr-linalg
//!
//! The dense linear-algebra kernels FlashR needs. The paper delegates
//! floating-point matrix multiplication to BLAS (ATLAS) and the MASS-style
//! algorithms need small-matrix factorizations; this crate implements that
//! substrate from scratch:
//!
//! * [`Dense`] — a small row-major `f64` matrix used for DAG *sink* results
//!   (Gramians, cluster centers, covariances, ...). These are the matrices
//!   the paper keeps in memory because they are small (§3.4).
//! * [`gemm()`](gemm())/[`gemm_strided`] — cache-blocked general matrix multiply;
//!   the `Dense` front-end is rayon-parallel, the strided raw kernel is
//!   single-threaded because the FlashR executor already parallelizes
//!   across I/O partitions.
//! * [`syrk()`](syrk()) — symmetric rank-k update (`crossprod`).
//! * [`chol`] — Cholesky factorization, SPD solves, inverse, log-determinant.
//! * [`lu`] — LU with partial pivoting, general solves, determinant.
//! * [`eigen`] — symmetric eigendecomposition (cyclic Jacobi), the engine
//!   behind PCA and MASS's `mvrnorm`/`lda`.
//! * [`tri`] — triangular solves.

pub mod chol;
pub mod dense;
pub mod eigen;
pub mod gemm;
pub mod lu;
pub mod simd;
pub mod syrk;
pub mod tri;

pub use chol::{chol_inverse, chol_logdet, chol_solve, cholesky};
pub use dense::Dense;
pub use eigen::{eigen_sym, EigenSym};
pub use gemm::{gemm, gemm_strided, gemm_strided_level, matmul};
pub use lu::{lu_det, lu_factor, lu_solve, LuFactors};
pub use simd::SimdLevel;
pub use syrk::syrk;
pub use tri::{solve_lower, solve_lower_transpose, solve_upper};
