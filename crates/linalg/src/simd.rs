//! Runtime-dispatched SIMD micro-kernels for dense f64 math.
//!
//! This is the lowest layer of the SIMD kernel stack: the dispatch
//! *level* ([`SimdLevel`], selected once per process from `FLASHR_SIMD`
//! and CPU feature detection) plus the f64 micro-kernels the linalg
//! crate and the FlashR executor share — a multi-accumulator FMA dot
//! product, a fused-multiply-add axpy, and a register-blocked packed
//! GEMM micro-kernel (4×8 f64 tile, eight `__m256d` accumulators).
//!
//! Numerics policy (documented once, relied on everywhere):
//!
//! * `Off` reproduces the pre-SIMD serial loops bit-for-bit — the
//!   reference behavior for A/B and regression hunting.
//! * `Scalar` uses fixed-width lane blocks written to autovectorize on
//!   any target. Reductions carry eight independent f64 lane partials
//!   (folded in a fixed sequential order), so results are *deterministic
//!   per level* but differ from `Off` by reassociation.
//! * `Avx2` uses explicit `std::arch` AVX2+FMA paths. Element-wise
//!   kernels only use exactly-rounded instructions and are therefore
//!   bit-identical to the scalar loops; dot/gemm use FMA and multiple
//!   accumulators, which changes rounding within a documented ULP bound
//!   (see the property tests in `flashr-core/tests/simd_levels.rs`).
//!
//! Every kernel takes the level as an explicit argument so tests and
//! benches can compare levels inside one process; production call sites
//! resolve [`SimdLevel::active`] once at kernel-compile time.

use std::sync::OnceLock;

/// SIMD dispatch level for the compute kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Historic serial loops; the bit-exact reference.
    Off = 0,
    /// Portable fixed-width lane kernels (autovectorized).
    Scalar = 1,
    /// Explicit AVX2+FMA intrinsics.
    Avx2 = 2,
}

impl SimdLevel {
    /// Stable lowercase name, stamped into pass profiles, the bench
    /// `host` section, and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Off => "off",
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Whether this host can execute the AVX2+FMA kernels.
    pub fn avx2_supported() -> bool {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        {
            false
        }
    }

    /// Best level this host supports.
    pub fn detect() -> SimdLevel {
        if SimdLevel::avx2_supported() {
            SimdLevel::Avx2
        } else {
            SimdLevel::Scalar
        }
    }

    /// Every level runnable on this host, lowest first.
    pub fn available() -> Vec<SimdLevel> {
        let mut v = vec![SimdLevel::Off, SimdLevel::Scalar];
        if SimdLevel::avx2_supported() {
            v.push(SimdLevel::Avx2);
        }
        v
    }

    /// Resolve `FLASHR_SIMD` (`off|scalar|avx2|auto`; unset = `auto`).
    /// Forcing `avx2` on a host without it warns once and falls back to
    /// `scalar` rather than executing illegal instructions.
    pub fn from_env() -> SimdLevel {
        match std::env::var("FLASHR_SIMD") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "off" | "none" | "0" => SimdLevel::Off,
                "scalar" => SimdLevel::Scalar,
                "avx2" => {
                    if SimdLevel::avx2_supported() {
                        SimdLevel::Avx2
                    } else {
                        eprintln!(
                            "flashr: FLASHR_SIMD=avx2 requested but the CPU lacks avx2+fma; \
                             falling back to scalar"
                        );
                        SimdLevel::Scalar
                    }
                }
                "auto" | "" => SimdLevel::detect(),
                other => {
                    eprintln!("flashr: unknown FLASHR_SIMD value {other:?}; using auto");
                    SimdLevel::detect()
                }
            },
            Err(_) => SimdLevel::detect(),
        }
    }

    /// Process-wide level, resolved once on first use.
    pub fn active() -> SimdLevel {
        static ACTIVE: OnceLock<SimdLevel> = OnceLock::new();
        *ACTIVE.get_or_init(SimdLevel::from_env)
    }
}

// ------------------------------------------------------------------ dot

/// `sum_i a[i] * b[i]` over `min(len)` elements.
///
/// `Off` is the serial fold the Gramian sink historically used; `Scalar`
/// breaks the FP-add dependency chain with 8 lane partials; `Avx2` runs
/// four independent FMA accumulators (16 elements in flight).
pub fn dot_f64(level: SimdLevel, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    match level {
        SimdLevel::Off => {
            let mut s = 0.0;
            for (x, y) in a.iter().zip(b) {
                s += x * y;
            }
            s
        }
        SimdLevel::Scalar => dot_lanes(a, b),
        SimdLevel::Avx2 => {
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            if SimdLevel::avx2_supported() {
                // SAFETY: avx2+fma presence checked above.
                return unsafe { avx2::dot(a, b) };
            }
            dot_lanes(a, b)
        }
    }
}

fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for i in 0..8 {
            lanes[i] += xa[i] * xb[i];
        }
    }
    let mut s = 0.0;
    for l in lanes {
        s += l;
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

// ----------------------------------------------------------------- axpy

/// `dst[i] += alpha * src[i]`. Element-wise (no reassociation): `Off`
/// and `Scalar` are bit-identical; `Avx2` fuses the multiply-add.
pub fn axpy_f64(level: SimdLevel, dst: &mut [f64], src: &[f64], alpha: f64) {
    let n = dst.len().min(src.len());
    let (dst, src) = (&mut dst[..n], &src[..n]);
    if level == SimdLevel::Avx2 {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        if SimdLevel::avx2_supported() {
            // SAFETY: avx2+fma presence checked above.
            unsafe { avx2::axpy(dst, src, alpha) };
            return;
        }
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

// -------------------------------------------------- packed gemm kernel

/// Register tile height (rows of A per micro-kernel).
pub const MR: usize = 4;
/// Register tile width (columns of B per micro-kernel).
pub const NR: usize = 8;
/// k-panel depth kept resident in the packed buffers.
const KC: usize = 256;
/// Row-panel height packed per A block (L2-resident: 64×256×8 B).
const MC: usize = 64;
/// Column-panel width packed per B block (256×512×8 B).
const NC: usize = 512;

thread_local! {
    /// Packing scratch (A panel, B panel), reused across calls.
    static PACK: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// `C += alpha * A * B` over strided views, via packed panels and a
/// `MR`×`NR` register-blocked micro-kernel. Caller applies beta first.
///
/// Strides follow the BLIS convention: element `(i, j)` of a matrix `X`
/// lives at `x[i * rsx + j * csx]`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_packed_f64(
    level: SimdLevel,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    rsa: usize,
    csa: usize,
    b: &[f64],
    rsb: usize,
    csb: usize,
    c: &mut [f64],
    rsc: usize,
    csc: usize,
) {
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }
    let use_avx2 = level == SimdLevel::Avx2 && SimdLevel::avx2_supported();
    PACK.with(|p| {
        let (apack, bpack) = &mut *p.borrow_mut();
        apack.resize(MC * KC, 0.0);
        bpack.resize(KC * NC, 0.0);
        let mut k0 = 0;
        while k0 < k {
            let kc = KC.min(k - k0);
            let mut j0 = 0;
            while j0 < n {
                let nc = NC.min(n - j0);
                let nblk = nc.div_ceil(NR);
                // Pack B[k0..k0+kc, j0..j0+nc] into NR-wide column panels,
                // zero-padding the ragged rightmost panel.
                for jb in 0..nblk {
                    let panel = &mut bpack[jb * kc * NR..(jb + 1) * kc * NR];
                    for kk in 0..kc {
                        for jj in 0..NR {
                            let j = j0 + jb * NR + jj;
                            panel[kk * NR + jj] = if j < j0 + nc {
                                b[(k0 + kk) * rsb + j * csb]
                            } else {
                                0.0
                            };
                        }
                    }
                }
                let mut i0 = 0;
                while i0 < m {
                    let mc = MC.min(m - i0);
                    let mblk = mc.div_ceil(MR);
                    // Pack A[i0..i0+mc, k0..k0+kc] into MR-tall row panels.
                    for ib in 0..mblk {
                        let panel = &mut apack[ib * kc * MR..(ib + 1) * kc * MR];
                        for kk in 0..kc {
                            for ii in 0..MR {
                                let i = i0 + ib * MR + ii;
                                panel[kk * MR + ii] = if i < i0 + mc {
                                    a[i * rsa + (k0 + kk) * csa]
                                } else {
                                    0.0
                                };
                            }
                        }
                    }
                    for jb in 0..nblk {
                        let nr = NR.min(nc - jb * NR);
                        let bp = &bpack[jb * kc * NR..];
                        for ib in 0..mblk {
                            let mr = MR.min(mc - ib * MR);
                            let ap = &apack[ib * kc * MR..];
                            let coff = (i0 + ib * MR) * rsc + (j0 + jb * NR) * csc;
                            if use_avx2 {
                                #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                                // SAFETY: avx2+fma checked when computing
                                // `use_avx2`; coff + strides stay inside
                                // `c` for the real (mr, nr) tile.
                                unsafe {
                                    avx2::mk_4x8(
                                        kc,
                                        ap.as_ptr(),
                                        bp.as_ptr(),
                                        alpha,
                                        c.as_mut_ptr().add(coff),
                                        rsc,
                                        csc,
                                        mr,
                                        nr,
                                    );
                                }
                            } else {
                                mk_4x8_lanes(kc, ap, bp, alpha, &mut c[coff..], rsc, csc, mr, nr);
                            }
                        }
                    }
                    i0 += mc;
                }
                j0 += nc;
            }
            k0 += kc;
        }
    });
}

/// Portable micro-kernel: same `MR`×`NR` accumulator tile as the AVX2
/// path, plain mul+add (autovectorizes; no FMA so `Scalar` rounding is
/// independent of FMA availability).
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)]
fn mk_4x8_lanes(
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    alpha: f64,
    c: &mut [f64],
    rsc: usize,
    csc: usize,
    mr: usize,
    nr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    for kk in 0..kc {
        let bk = &bp[kk * NR..kk * NR + NR];
        let ak = &ap[kk * MR..kk * MR + MR];
        for i in 0..MR {
            let av = ak[i];
            for j in 0..NR {
                acc[i][j] += av * bk[j];
            }
        }
    }
    for i in 0..mr {
        for j in 0..nr {
            c[i * rsc + j * csc] += alpha * acc[i][j];
        }
    }
}

// --------------------------------------------------------- avx2 kernels

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Four independent FMA accumulators; fixed combine order so the
    /// result is deterministic for a given length.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
                acc1,
            );
            acc2 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 8)),
                _mm256_loadu_pd(bp.add(i + 8)),
                acc2,
            );
            acc3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 12)),
                _mm256_loadu_pd(bp.add(i + 12)),
                acc3,
            );
            i += 16;
        }
        while i + 4 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            i += 4;
        }
        let acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
        let mut t = [0.0f64; 4];
        _mm256_storeu_pd(t.as_mut_ptr(), acc);
        let mut s = ((t[0] + t[1]) + t[2]) + t[3];
        while i < n {
            s += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn axpy(dst: &mut [f64], src: &[f64], alpha: f64) {
        let n = dst.len();
        let (dp, sp) = (dst.as_mut_ptr(), src.as_ptr());
        let va = _mm256_set1_pd(alpha);
        let mut i = 0;
        while i + 8 <= n {
            let d0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(sp.add(i)), _mm256_loadu_pd(dp.add(i)));
            let d1 = _mm256_fmadd_pd(
                va,
                _mm256_loadu_pd(sp.add(i + 4)),
                _mm256_loadu_pd(dp.add(i + 4)),
            );
            _mm256_storeu_pd(dp.add(i), d0);
            _mm256_storeu_pd(dp.add(i + 4), d1);
            i += 8;
        }
        while i + 4 <= n {
            let d = _mm256_fmadd_pd(va, _mm256_loadu_pd(sp.add(i)), _mm256_loadu_pd(dp.add(i)));
            _mm256_storeu_pd(dp.add(i), d);
            i += 4;
        }
        while i < n {
            *dp.add(i) = alpha.mul_add(*sp.add(i), *dp.add(i));
            i += 1;
        }
    }

    /// 4×8 register tile: eight `__m256d` accumulators (4 rows × 2
    /// column vectors), 8 FMAs per k step. Packed panels: `ap` holds
    /// `MR` A values per k, `bp` holds `NR` B values per k, both
    /// zero-padded so the kernel is always full-width; the writeback
    /// masks to the real `(mr, nr)` tile.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn mk_4x8(
        kc: usize,
        ap: *const f64,
        bp: *const f64,
        alpha: f64,
        c: *mut f64,
        rsc: usize,
        csc: usize,
        mr: usize,
        nr: usize,
    ) {
        let mut acc: [[__m256d; 2]; 4] = [[_mm256_setzero_pd(); 2]; 4];
        for kk in 0..kc {
            let b0 = _mm256_loadu_pd(bp.add(kk * 8));
            let b1 = _mm256_loadu_pd(bp.add(kk * 8 + 4));
            let ak = ap.add(kk * 4);
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_pd(*ak.add(i));
                row[0] = _mm256_fmadd_pd(ai, b0, row[0]);
                row[1] = _mm256_fmadd_pd(ai, b1, row[1]);
            }
        }
        let mut t = [0.0f64; 8];
        for (i, row) in acc.iter().enumerate().take(mr) {
            _mm256_storeu_pd(t.as_mut_ptr(), row[0]);
            _mm256_storeu_pd(t.as_mut_ptr().add(4), row[1]);
            for (j, &v) in t.iter().enumerate().take(nr) {
                let p = c.add(i * rsc + j * csc);
                *p += alpha * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn level_names_and_order() {
        assert_eq!(SimdLevel::Off.name(), "off");
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert!(SimdLevel::Off < SimdLevel::Scalar && SimdLevel::Scalar < SimdLevel::Avx2);
        let avail = SimdLevel::available();
        assert!(avail.contains(&SimdLevel::Off) && avail.contains(&SimdLevel::Scalar));
        assert_eq!(avail.contains(&SimdLevel::Avx2), SimdLevel::avx2_supported());
    }

    #[test]
    fn dot_matches_serial_within_bound() {
        // Reassociation bound: |Δ| ≤ n · ε · Σ|aᵢbᵢ| (conservative; see
        // the numerics policy in the module docs).
        for n in [0usize, 1, 3, 7, 8, 15, 16, 17, 63, 64, 1000, 4097] {
            let a = pseudo(n, 3);
            let b = pseudo(n, 5);
            let want = dot_f64(SimdLevel::Off, &a, &b);
            let mag: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            let bound = (n.max(1) as f64) * f64::EPSILON * mag + f64::MIN_POSITIVE;
            for lvl in SimdLevel::available() {
                let got = dot_f64(lvl, &a, &b);
                assert!(
                    (got - want).abs() <= bound,
                    "n={n} level={} got={got} want={want}",
                    lvl.name()
                );
            }
        }
    }

    #[test]
    fn axpy_off_and_scalar_bit_identical() {
        let src = pseudo(1001, 7);
        let mut d0 = pseudo(1001, 9);
        let mut d1 = d0.clone();
        axpy_f64(SimdLevel::Off, &mut d0, &src, 1.37);
        axpy_f64(SimdLevel::Scalar, &mut d1, &src, 1.37);
        for (x, y) in d0.iter().zip(&d1) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn axpy_avx2_within_input_rounding_per_element() {
        if !SimdLevel::avx2_supported() {
            return;
        }
        let alpha = -0.73;
        let src = pseudo(517, 11);
        let orig = pseudo(517, 13);
        let mut d0 = orig.clone();
        let mut d1 = orig.clone();
        axpy_f64(SimdLevel::Off, &mut d0, &src, alpha);
        axpy_f64(SimdLevel::Avx2, &mut d1, &src, alpha);
        for i in 0..src.len() {
            // One fused rounding vs two: the absolute gap is bounded by a
            // rounding of the product `alpha*src` plus a rounding of the
            // result. (A per-result ULP bound would be wrong: when
            // `d ≈ -alpha*s` cancellation shrinks the result, not the gap.)
            let p = (alpha * src[i]).abs();
            let bound = f64::EPSILON * (p + d0[i].abs()) + f64::MIN_POSITIVE;
            assert!(
                (d0[i] - d1[i]).abs() <= bound,
                "i={i} x={} y={}",
                d0[i],
                d1[i]
            );
        }
    }

    #[test]
    fn packed_gemm_matches_naive_edge_sizes() {
        // Exercise ragged tiles in both dimensions and multi-panel k.
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (4, 8, 16),
            (5, 9, 17),
            (67, 130, 70),
            (12, 12, 300), // crosses the KC=256 panel boundary
        ] {
            let a = pseudo(m * k, 21);
            let b = pseudo(k * n, 22);
            let mut want = vec![0.0f64; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut s = 0.0;
                    for kk in 0..k {
                        s += a[i * k + kk] * b[kk * n + j];
                    }
                    want[i * n + j] = s;
                }
            }
            let mag: f64 = a.iter().map(|x| x.abs()).sum::<f64>().max(1.0);
            for lvl in SimdLevel::available() {
                if lvl == SimdLevel::Off {
                    continue; // packed path is only entered at >= Scalar
                }
                let mut c = vec![0.0f64; m * n];
                gemm_packed_f64(lvl, m, n, k, 1.0, &a, k, 1, &b, n, 1, &mut c, n, 1);
                for (got, w) in c.iter().zip(&want) {
                    assert!(
                        (got - w).abs() <= (k as f64) * f64::EPSILON * mag,
                        "m={m} n={n} k={k} level={} got={got} want={w}",
                        lvl.name()
                    );
                }
            }
        }
    }

    #[test]
    fn packed_gemm_strided_column_major_output() {
        let (m, n, k) = (10usize, 11usize, 6usize);
        let a = pseudo(m * k, 31); // row-major m×k
        let b = pseudo(k * n, 32); // row-major k×n
        for lvl in SimdLevel::available().into_iter().filter(|&l| l != SimdLevel::Off) {
            let mut c = vec![0.0f64; m * n]; // column-major: (i,j) at j*m+i
            gemm_packed_f64(lvl, m, n, k, 2.0, &a, k, 1, &b, n, 1, &mut c, 1, m);
            for i in 0..m {
                for j in 0..n {
                    let want: f64 = 2.0 * (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum::<f64>();
                    assert!((c[j * m + i] - want).abs() < 1e-12, "({i},{j}) level={}", lvl.name());
                }
            }
        }
    }
}
