//! Cholesky factorization and SPD solves.
//!
//! Used by `mvrnorm` (sampling), GMM (per-component precision and
//! log-determinant) and LDA (whitening by the pooled covariance).

use crate::dense::Dense;
use crate::tri::{solve_lower, solve_lower_transpose};

/// Lower-triangular Cholesky factor `L` with `L L^T = A`.
///
/// Returns `None` when `A` is not (numerically) positive definite.
pub fn cholesky(a: &Dense) -> Option<Dense> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    let mut l = Dense::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.at(i, j);
            for k in 0..j {
                sum -= l.at(i, k) * l.at(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l.set(i, i, sum.sqrt());
            } else {
                l.set(i, j, sum / l.at(j, j));
            }
        }
    }
    Some(l)
}

/// Solve `A X = B` for SPD `A` via its Cholesky factor.
pub fn chol_solve(l: &Dense, b: &Dense) -> Dense {
    let y = solve_lower(l, b);
    solve_lower_transpose(l, &y)
}

/// Inverse of SPD `A` from its Cholesky factor.
pub fn chol_inverse(l: &Dense) -> Dense {
    chol_solve(l, &Dense::eye(l.rows()))
}

/// `log det A` from the Cholesky factor of `A`.
pub fn chol_logdet(l: &Dense) -> f64 {
    (0..l.rows()).map(|i| l.at(i, i).ln()).sum::<f64>() * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, matmul};
    use crate::syrk::syrk;

    fn spd(n: usize, seed: u64) -> Dense {
        let mut s = seed;
        let b = Dense::from_fn(n + 3, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let mut g = syrk(&b);
        for i in 0..n {
            let v = g.at(i, i);
            g.set(i, i, v + 0.5);
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1usize, 2, 5, 20, 64] {
            let a = spd(n, n as u64);
            let l = cholesky(&a).expect("SPD must factor");
            let mut llt = Dense::zeros(n, n);
            gemm(1.0, &l, false, &l, true, 0.0, &mut llt);
            assert!(llt.max_abs_diff(&a) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn solve_and_inverse() {
        let a = spd(8, 9);
        let l = cholesky(&a).unwrap();
        let x0 = Dense::from_fn(8, 2, |r, c| (r as f64 + 1.0) * (c as f64 - 0.5));
        let b = matmul(&a, &x0);
        let x = chol_solve(&l, &b);
        assert!(x.max_abs_diff(&x0) < 1e-8);

        let inv = chol_inverse(&l);
        let prod = matmul(&a, &inv);
        assert!(prod.max_abs_diff(&Dense::eye(8)) < 1e-8);
    }

    #[test]
    fn logdet_matches_lu() {
        let a = spd(6, 17);
        let l = cholesky(&a).unwrap();
        let (lu, _, sign) = crate::lu::lu_factor(&a).unwrap();
        let det: f64 = sign * (0..6).map(|i| lu.at(i, i)).product::<f64>();
        assert!((chol_logdet(&l) - det.ln()).abs() < 1e-8);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = Dense::eye(3);
        a.set(2, 2, -1.0);
        assert!(cholesky(&a).is_none());
    }
}
