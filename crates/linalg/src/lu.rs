//! LU factorization with partial pivoting, general solves and determinants.

use crate::dense::Dense;

/// Packed LU factors plus the pivot vector; see [`lu_factor`].
pub type LuFactors = (Dense, Vec<usize>, f64);

/// Factor `A = P L U`, returning the packed factors (unit-lower L below
/// the diagonal, U on and above), the pivot permutation and the sign of
/// the permutation. Returns `None` for singular matrices.
pub fn lu_factor(a: &Dense) -> Option<LuFactors> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    let mut lu = a.clone();
    let mut piv: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for col in 0..n {
        // Pick the pivot.
        let mut best = col;
        let mut best_val = lu.at(col, col).abs();
        for r in col + 1..n {
            let v = lu.at(r, col).abs();
            if v > best_val {
                best = r;
                best_val = v;
            }
        }
        if best_val == 0.0 || !best_val.is_finite() {
            return None;
        }
        if best != col {
            for c in 0..n {
                let tmp = lu.at(col, c);
                lu.set(col, c, lu.at(best, c));
                lu.set(best, c, tmp);
            }
            piv.swap(col, best);
            sign = -sign;
        }
        let pivot = lu.at(col, col);
        for r in col + 1..n {
            let factor = lu.at(r, col) / pivot;
            lu.set(r, col, factor);
            if factor == 0.0 {
                continue;
            }
            for c in col + 1..n {
                let v = lu.at(r, c) - factor * lu.at(col, c);
                lu.set(r, c, v);
            }
        }
    }
    Some((lu, piv, sign))
}

/// Solve `A X = B` given the packed factors from [`lu_factor`].
pub fn lu_solve(factors: &LuFactors, b: &Dense) -> Dense {
    let (lu, piv, _) = factors;
    let n = lu.rows();
    assert_eq!(b.rows(), n, "rhs row mismatch");
    let m = b.cols();
    // Apply the permutation to B.
    let mut x = Dense::zeros(n, m);
    for (dst, &src) in piv.iter().enumerate() {
        for j in 0..m {
            x.set(dst, j, b.at(src, j));
        }
    }
    // Forward solve with unit-lower L.
    for i in 0..n {
        for k in 0..i {
            let lik = lu.at(i, k);
            if lik == 0.0 {
                continue;
            }
            for j in 0..m {
                let v = x.at(i, j) - lik * x.at(k, j);
                x.set(i, j, v);
            }
        }
    }
    // Back solve with U.
    for i in (0..n).rev() {
        for k in i + 1..n {
            let uik = lu.at(i, k);
            if uik == 0.0 {
                continue;
            }
            for j in 0..m {
                let v = x.at(i, j) - uik * x.at(k, j);
                x.set(i, j, v);
            }
        }
        let d = lu.at(i, i);
        for j in 0..m {
            let v = x.at(i, j) / d;
            x.set(i, j, v);
        }
    }
    x
}

/// Determinant via LU. Returns 0 for singular matrices.
pub fn lu_det(a: &Dense) -> f64 {
    match lu_factor(a) {
        Some((lu, _, sign)) => sign * (0..a.rows()).map(|i| lu.at(i, i)).product::<f64>(),
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn pseudo(n: usize, seed: u64) -> Dense {
        let mut s = seed;
        Dense::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn solve_roundtrip() {
        for n in [1usize, 3, 8, 25] {
            let a = pseudo(n, n as u64 + 100);
            let x0 = Dense::from_fn(n, 2, |r, c| r as f64 * 0.3 - c as f64);
            let b = matmul(&a, &x0);
            let f = lu_factor(&a).expect("random matrix should be nonsingular");
            let x = lu_solve(&f, &b);
            assert!(x.max_abs_diff(&x0) < 1e-7, "n={n}");
        }
    }

    #[test]
    fn det_of_known_matrices() {
        assert!((lu_det(&Dense::eye(4)) - 1.0).abs() < 1e-12);
        let m = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!((lu_det(&m) + 2.0).abs() < 1e-12);
        let sing = Dense::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert_eq!(lu_det(&sing), 0.0);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Dense::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let f = lu_factor(&a).unwrap();
        let b = Dense::from_vec(2, 1, vec![3.0, 5.0]);
        let x = lu_solve(&f, &b);
        assert!((x.at(0, 0) - 5.0).abs() < 1e-12);
        assert!((x.at(1, 0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let sing = Dense::from_vec(3, 3, vec![1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 1.0, 1.0, 1.0]);
        assert!(lu_factor(&sing).is_none());
    }
}
