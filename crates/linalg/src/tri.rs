//! Triangular solves against multiple right-hand sides.

use crate::dense::Dense;

/// Solve `L X = B` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &Dense, b: &Dense) -> Dense {
    let n = l.rows();
    assert_eq!(l.cols(), n, "L must be square");
    assert_eq!(b.rows(), n, "rhs row mismatch");
    let m = b.cols();
    let mut x = b.clone();
    for i in 0..n {
        let (above, below) = x.as_mut_slice().split_at_mut(i * m);
        let xrow = &mut below[..m];
        for k in 0..i {
            let lik = l.at(i, k);
            if lik == 0.0 {
                continue;
            }
            let xk = &above[k * m..(k + 1) * m];
            for j in 0..m {
                xrow[j] -= lik * xk[j];
            }
        }
        let d = l.at(i, i);
        assert!(d != 0.0, "singular triangular matrix at {i}");
        for v in xrow.iter_mut() {
            *v /= d;
        }
    }
    x
}

/// Solve `L^T X = B` for lower-triangular `L` (back substitution on Lᵀ).
pub fn solve_lower_transpose(l: &Dense, b: &Dense) -> Dense {
    let n = l.rows();
    assert_eq!(l.cols(), n, "L must be square");
    assert_eq!(b.rows(), n, "rhs row mismatch");
    let m = b.cols();
    let mut x = b.clone();
    for i in (0..n).rev() {
        // Row i of L^T is column i of L: entries l[k][i] for k >= i.
        for k in i + 1..n {
            let lki = l.at(k, i);
            if lki == 0.0 {
                continue;
            }
            for j in 0..m {
                let v = x.at(k, j);
                let cur = x.at(i, j);
                x.set(i, j, cur - lki * v);
            }
        }
        let d = l.at(i, i);
        assert!(d != 0.0, "singular triangular matrix at {i}");
        for j in 0..m {
            let cur = x.at(i, j);
            x.set(i, j, cur / d);
        }
    }
    x
}

/// Solve `U X = B` for upper-triangular `U` (back substitution).
pub fn solve_upper(u: &Dense, b: &Dense) -> Dense {
    let n = u.rows();
    assert_eq!(u.cols(), n, "U must be square");
    assert_eq!(b.rows(), n, "rhs row mismatch");
    let m = b.cols();
    let mut x = b.clone();
    for i in (0..n).rev() {
        for k in i + 1..n {
            let uik = u.at(i, k);
            if uik == 0.0 {
                continue;
            }
            for j in 0..m {
                let v = x.at(k, j);
                let cur = x.at(i, j);
                x.set(i, j, cur - uik * v);
            }
        }
        let d = u.at(i, i);
        assert!(d != 0.0, "singular triangular matrix at {i}");
        for j in 0..m {
            let cur = x.at(i, j);
            x.set(i, j, cur / d);
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;

    fn lower(n: usize, seed: u64) -> Dense {
        let mut s = seed;
        Dense::from_fn(n, n, |r, c| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            if r == c {
                2.0 + v.abs()
            } else if r > c {
                v
            } else {
                0.0
            }
        })
    }

    #[test]
    fn forward_substitution_roundtrip() {
        let l = lower(6, 1);
        let x0 = Dense::from_fn(6, 3, |r, c| (r + 2 * c) as f64 * 0.25 - 1.0);
        let b = matmul(&l, &x0);
        let x = solve_lower(&l, &b);
        assert!(x.max_abs_diff(&x0) < 1e-10);
    }

    #[test]
    fn transpose_substitution_roundtrip() {
        let l = lower(5, 2);
        let x0 = Dense::from_fn(5, 2, |r, c| (r as f64 - c as f64) * 0.5);
        let b = matmul(&l.transpose(), &x0);
        let x = solve_lower_transpose(&l, &b);
        assert!(x.max_abs_diff(&x0) < 1e-10);
    }

    #[test]
    fn upper_substitution_roundtrip() {
        let u = lower(7, 3).transpose();
        let x0 = Dense::from_fn(7, 1, |r, _| r as f64 + 0.5);
        let b = matmul(&u, &x0);
        let x = solve_upper(&u, &b);
        assert!(x.max_abs_diff(&x0) < 1e-10);
    }

    #[test]
    #[should_panic]
    fn singular_panics() {
        let mut l = lower(3, 4);
        l.set(1, 1, 0.0);
        let b = Dense::zeros(3, 1);
        let _ = solve_lower(&l, &b);
    }
}
