//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA in the paper is "eigenvalues on the Gramian matrix AᵀA" (§4.1); the
//! Gramian is p×p (small), so a robust O(p³)-per-sweep Jacobi is the right
//! tool. MASS's `mvrnorm` also draws samples through an eigendecomposition
//! of the covariance, which is why this lives in the shared kernel crate.

use crate::dense::Dense;

/// Result of [`eigen_sym`]: eigenvalues in descending order with matching
/// eigenvector columns.
#[derive(Debug, Clone)]
pub struct EigenSym {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Column `i` of `vectors` is the eigenvector for `values[i]`.
    pub vectors: Dense,
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Converges quadratically; we sweep until the off-diagonal Frobenius mass
/// falls below `1e-12 * ||A||_F` or 64 sweeps, whichever first.
pub fn eigen_sym(a: &Dense) -> EigenSym {
    let n = a.rows();
    assert_eq!(a.cols(), n, "matrix must be square");
    let mut m = a.clone();
    // Symmetrize defensively (callers pass Gramians that may carry
    // rounding asymmetry from parallel reductions).
    for i in 0..n {
        for j in 0..i {
            let s = 0.5 * (m.at(i, j) + m.at(j, i));
            m.set(i, j, s);
            m.set(j, i, s);
        }
    }
    let mut v = Dense::eye(n);

    let norm: f64 = m.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt();
    let tol = (norm * 1e-14).max(f64::MIN_POSITIVE);

    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += m.at(i, j) * m.at(i, j);
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.at(p, q);
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m.at(p, p);
                let aqq = m.at(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/cols p and q of M.
                for k in 0..n {
                    let mkp = m.at(k, p);
                    let mkq = m.at(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.at(p, k);
                    let mqk = m.at(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate the eigenvectors.
                for k in 0..n {
                    let vkp = v.at(k, p);
                    let vkq = v.at(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m.at(j, j).partial_cmp(&m.at(i, i)).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m.at(i, i)).collect();
    let vectors = Dense::from_fn(n, n, |r, c| v.at(r, order[c]));
    EigenSym { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, matmul};
    use crate::syrk::syrk;

    fn sym(n: usize, seed: u64) -> Dense {
        let mut s = seed;
        let b = Dense::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        Dense::from_fn(n, n, |r, c| 0.5 * (b.at(r, c) + b.at(c, r)))
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = Dense::zeros(3, 3);
        a.set(0, 0, 3.0);
        a.set(1, 1, -1.0);
        a.set(2, 2, 7.0);
        let e = eigen_sym(&a);
        assert!((e.values[0] - 7.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_holds() {
        for n in [2usize, 5, 17, 40] {
            let a = sym(n, n as u64 * 3 + 1);
            let e = eigen_sym(&a);
            // V diag(w) V^T == A
            let mut vd = e.vectors.clone();
            for r in 0..n {
                for c in 0..n {
                    let v = vd.at(r, c) * e.values[c];
                    vd.set(r, c, v);
                }
            }
            let mut rec = Dense::zeros(n, n);
            gemm(1.0, &vd, false, &e.vectors, true, 0.0, &mut rec);
            assert!(rec.max_abs_diff(&a) < 1e-8, "n={n}");
        }
    }

    #[test]
    fn vectors_are_orthonormal() {
        let a = sym(12, 99);
        let e = eigen_sym(&a);
        let mut vtv = Dense::zeros(12, 12);
        gemm(1.0, &e.vectors, true, &e.vectors, false, 0.0, &mut vtv);
        assert!(vtv.max_abs_diff(&Dense::eye(12)) < 1e-9);
    }

    #[test]
    fn gramian_eigenvalues_are_nonnegative_and_sorted() {
        let mut s = 5u64;
        let b = Dense::from_fn(50, 8, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        });
        let g = syrk(&b);
        let e = eigen_sym(&g);
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-10);
        }
        assert!(*e.values.last().unwrap() > -1e-9);
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = sym(6, 31);
        let e = eigen_sym(&a);
        // A v_0 == w_0 v_0
        let v0 = Dense::from_fn(6, 1, |r, _| e.vectors.at(r, 0));
        let av = matmul(&a, &v0);
        for r in 0..6 {
            assert!((av.at(r, 0) - e.values[0] * v0.at(r, 0)).abs() < 1e-8);
        }
    }
}
