//! Symmetric rank-k update: the `crossprod` kernel.

use crate::dense::Dense;
use crate::simd::{axpy_f64, SimdLevel};
use rayon::prelude::*;

/// `C = A^T A` for a (possibly tall) row-major `A`, exploiting symmetry.
///
/// This is the in-memory reference kernel; the FlashR engine computes the
/// same quantity out-of-core as an aggregation sink across I/O partitions
/// and only uses this for per-partition panels.
pub fn syrk(a: &Dense) -> Dense {
    let n = a.cols();
    let m = a.rows();
    // Accumulate per row-panel in parallel, then reduce.
    let level = SimdLevel::active();
    let panel = 512usize;
    let partials: Vec<Vec<f64>> = (0..m.div_ceil(panel))
        .into_par_iter()
        .map(|p| {
            let r0 = p * panel;
            let r1 = (r0 + panel).min(m);
            let mut acc = vec![0.0f64; n * n];
            for r in r0..r1 {
                let row = a.row(r);
                for i in 0..n {
                    let v = row[i];
                    if v == 0.0 {
                        continue;
                    }
                    let dst = &mut acc[i * n..(i + 1) * n];
                    // Upper triangle only: dst[i..n] += v * row[i..n].
                    axpy_f64(level, &mut dst[i..], &row[i..], v);
                }
            }
            acc
        })
        .collect();
    let mut c = vec![0.0f64; n * n];
    for part in partials {
        for (cv, pv) in c.iter_mut().zip(part) {
            *cv += pv;
        }
    }
    // Mirror to the lower triangle.
    for i in 0..n {
        for j in 0..i {
            c[i * n + j] = c[j * n + i];
        }
    }
    Dense::from_vec(n, n, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::gemm;

    fn pseudo(r: usize, c: usize, seed: u64) -> Dense {
        let mut s = seed;
        Dense::from_fn(r, c, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn matches_gemm() {
        for &(m, n) in &[(1usize, 1usize), (10, 3), (700, 17), (1025, 8)] {
            let a = pseudo(m, n, 5);
            let s = syrk(&a);
            let mut want = Dense::zeros(n, n);
            gemm(1.0, &a, true, &a, false, 0.0, &mut want);
            assert!(s.max_abs_diff(&want) < 1e-9, "m={m} n={n}");
        }
    }

    #[test]
    fn result_is_symmetric_and_psd_diag() {
        let a = pseudo(200, 6, 77);
        let s = syrk(&a);
        for i in 0..6 {
            assert!(s.at(i, i) >= 0.0);
            for j in 0..6 {
                assert_eq!(s.at(i, j), s.at(j, i));
            }
        }
    }
}
