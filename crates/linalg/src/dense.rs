//! Small row-major dense `f64` matrices.
//!
//! These hold the *sink* results of FlashR DAGs (Gramians, centers,
//! covariances) and all the p×p work of the MASS-style algorithms. They are
//! deliberately simple: row-major, owned storage, O(1) indexing.

use std::fmt;

/// A row-major dense matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Dense {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.at(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Dense {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Dense { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with `v`.
    pub fn filled(rows: usize, cols: usize, v: f64) -> Self {
        Dense { rows, cols, data: vec![v; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Dense::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a generator.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Dense { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Dense { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline(always)]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element write.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> Dense {
        let mut t = Dense::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.at(r, c));
            }
        }
        t
    }

    /// Extract column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.at(r, c)).collect()
    }

    /// Frobenius-norm distance to `other`.
    pub fn dist(&self, other: &Dense) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute element difference to `other`.
    pub fn max_abs_diff(&self, other: &Dense) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Elementwise scale in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self + other`, elementwise.
    pub fn add(&self, other: &Dense) -> Dense {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Dense { rows: self.rows, cols: self.cols, data }
    }

    /// `self - other`, elementwise.
    pub fn sub(&self, other: &Dense) -> Dense {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Dense { rows: self.rows, cols: self.cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Dense::from_fn(3, 4, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.at(0, 0), 0.0);
        assert_eq!(m.at(2, 3), 23.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.col(2), vec![2.0, 12.0, 22.0]);
    }

    #[test]
    fn eye_and_transpose() {
        let i = Dense::eye(3);
        assert_eq!(i.transpose(), i);
        let m = Dense::from_fn(2, 3, |r, c| (r + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        for r in 0..2 {
            for c in 0..3 {
                assert_eq!(m.at(r, c), t.at(c, r));
            }
        }
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Dense::filled(2, 2, 3.0);
        let b = Dense::eye(2);
        let s = a.add(&b);
        assert_eq!(s.at(0, 0), 4.0);
        assert_eq!(s.at(0, 1), 3.0);
        let d = s.sub(&a);
        assert_eq!(d.max_abs_diff(&b), 0.0);
        assert!((a.dist(&a)).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_checked() {
        let _ = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
