//! Cache-blocked general matrix multiplication.
//!
//! Two entry points:
//!
//! * [`gemm`] / [`matmul`] on [`Dense`] — rayon-parallel over row panels;
//!   used for in-memory p×p and p×k work (the role ATLAS plays in the
//!   paper).
//! * [`gemm_strided`] on raw strided buffers — single-threaded, used inside
//!   the FlashR executor where parallelism already comes from dispatching
//!   I/O partitions to threads; the strides let it consume partition
//!   buffers in either row- or column-major layout without copies.

use crate::dense::Dense;
use crate::simd::{self, SimdLevel};
use rayon::prelude::*;

/// Panel size along the k dimension; 64×8-byte elements keep a k-panel of
/// A and B inside L1.
const KC: usize = 256;
/// Row-panel height processed per rayon task.
const MC: usize = 64;

/// `C = alpha * op(A) * op(B) + beta * C` where `op` is optional transpose.
pub fn gemm(alpha: f64, a: &Dense, ta: bool, b: &Dense, tb: bool, beta: f64, c: &mut Dense) {
    let (m, ka) = if ta { (a.cols(), a.rows()) } else { (a.rows(), a.cols()) };
    let (kb, n) = if tb { (b.cols(), b.rows()) } else { (b.rows(), b.cols()) };
    assert_eq!(ka, kb, "inner dimensions disagree: {ka} vs {kb}");
    assert_eq!(c.rows(), m, "C row count mismatch");
    assert_eq!(c.cols(), n, "C col count mismatch");
    let k = ka;

    // Strides for op(A) and op(B) over the row-major storage.
    let (rsa, csa) = if ta { (1, a.cols()) } else { (a.cols(), 1) };
    let (rsb, csb) = if tb { (1, b.cols()) } else { (b.cols(), 1) };
    let adata = a.as_slice();
    let bdata = b.as_slice();
    let ncols = c.cols();

    c.as_mut_slice()
        .par_chunks_mut(MC * ncols)
        .enumerate()
        .for_each(|(chunk_idx, cchunk)| {
            let r0 = chunk_idx * MC;
            let rows_here = cchunk.len() / ncols;
            gemm_strided(
                rows_here,
                n,
                k,
                alpha,
                &adata[r0 * rsa..],
                rsa,
                csa,
                bdata,
                rsb,
                csb,
                beta,
                cchunk,
                ncols,
                1,
            );
        });
}

/// `A * B` as a fresh matrix.
pub fn matmul(a: &Dense, b: &Dense) -> Dense {
    let mut c = Dense::zeros(a.rows(), b.cols());
    gemm(1.0, a, false, b, false, 0.0, &mut c);
    c
}

/// Strided single-threaded GEMM:
/// `C[i*rsc + j*csc] = alpha * sum_k A[i*rsa + k*csa] * B[k*rsb + j*csb] + beta * C[..]`.
///
/// `m`, `n`, `k` are the logical dimensions. Buffers must be large enough
/// for the strided access pattern; this is checked with debug assertions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    rsa: usize,
    csa: usize,
    b: &[f64],
    rsb: usize,
    csb: usize,
    beta: f64,
    c: &mut [f64],
    rsc: usize,
    csc: usize,
) {
    gemm_strided_level(
        SimdLevel::active(),
        m,
        n,
        k,
        alpha,
        a,
        rsa,
        csa,
        b,
        rsb,
        csb,
        beta,
        c,
        rsc,
        csc,
    );
}

/// [`gemm_strided`] with an explicit SIMD dispatch level — the entry
/// point the kernel-bandwidth probe and the cross-level property tests
/// use to compare levels within one process.
#[allow(clippy::too_many_arguments)]
pub fn gemm_strided_level(
    level: SimdLevel,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    rsa: usize,
    csa: usize,
    b: &[f64],
    rsb: usize,
    csb: usize,
    beta: f64,
    c: &mut [f64],
    rsc: usize,
    csc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(m == 0 || n == 0 || (m - 1) * rsc + (n - 1) * csc < c.len());

    // Scale C by beta first.
    if beta == 0.0 {
        for i in 0..m {
            for j in 0..n {
                c[i * rsc + j * csc] = 0.0;
            }
        }
    } else if beta != 1.0 {
        for i in 0..m {
            for j in 0..n {
                c[i * rsc + j * csc] *= beta;
            }
        }
    }
    if k == 0 || alpha == 0.0 {
        return;
    }

    // Big-enough problems with SIMD enabled go through the packed
    // register-blocked micro-kernel: packing makes the inner loops
    // stride-oblivious, so the column-major partition buffers the
    // executor hands us are as fast as row-major ones.
    if level >= SimdLevel::Scalar && m >= simd::MR && n >= simd::NR {
        simd::gemm_packed_f64(level, m, n, k, alpha, a, rsa, csa, b, rsb, csb, c, rsc, csc);
        return;
    }

    // Tall-and-skinny (n < NR) with column-major A and C: axpy whole A
    // columns into C columns — contiguous streams, level-aware FMA.
    if level >= SimdLevel::Scalar && rsa == 1 && rsc == 1 {
        for j in 0..n {
            let cj = j * csc;
            for kk in 0..k {
                let bv = alpha * b[kk * rsb + j * csb];
                if bv == 0.0 {
                    continue;
                }
                simd::axpy_f64(level, &mut c[cj..cj + m], &a[kk * csa..kk * csa + m], bv);
            }
        }
        return;
    }

    // Reference path (and the `FLASHR_SIMD=off` behavior): contiguous C
    // rows and contiguous B rows get a vectorizable inner loop over j.
    let fast = csc == 1 && csb == 1;
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        for i in 0..m {
            let arow = i * rsa + k0 * csa;
            if fast {
                let crow = &mut c[i * rsc..i * rsc + n];
                for kk in 0..kb {
                    let aval = alpha * a[arow + kk * csa];
                    if aval == 0.0 {
                        continue;
                    }
                    let brow = &b[(k0 + kk) * rsb..(k0 + kk) * rsb + n];
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv += aval * bv;
                    }
                }
            } else {
                for kk in 0..kb {
                    let aval = alpha * a[arow + kk * csa];
                    if aval == 0.0 {
                        continue;
                    }
                    let boff = (k0 + kk) * rsb;
                    for j in 0..n {
                        c[i * rsc + j * csc] += aval * b[boff + j * csb];
                    }
                }
            }
        }
        k0 += kb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Dense, ta: bool, b: &Dense, tb: bool) -> Dense {
        let get_a = |i: usize, k: usize| if ta { a.at(k, i) } else { a.at(i, k) };
        let get_b = |k: usize, j: usize| if tb { b.at(j, k) } else { b.at(k, j) };
        let m = if ta { a.cols() } else { a.rows() };
        let k = if ta { a.rows() } else { a.cols() };
        let n = if tb { b.rows() } else { b.cols() };
        Dense::from_fn(m, n, |i, j| (0..k).map(|kk| get_a(i, kk) * get_b(kk, j)).sum())
    }

    fn pseudo(r: usize, c: usize, seed: u64) -> Dense {
        let mut s = seed;
        Dense::from_fn(r, c, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn matches_naive_all_transpose_combos() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 2), (17, 9, 13), (70, 33, 41)] {
            for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
                let a = if ta { pseudo(k, m, 7) } else { pseudo(m, k, 7) };
                let b = if tb { pseudo(n, k, 11) } else { pseudo(k, n, 11) };
                let mut c = Dense::zeros(m, n);
                gemm(1.0, &a, ta, &b, tb, 0.0, &mut c);
                let want = naive(&a, ta, &b, tb);
                assert!(
                    c.max_abs_diff(&want) < 1e-10,
                    "mismatch m={m} k={k} n={n} ta={ta} tb={tb}"
                );
            }
        }
    }

    #[test]
    fn alpha_beta_accumulate() {
        let a = pseudo(8, 6, 3);
        let b = pseudo(6, 5, 4);
        let c0 = pseudo(8, 5, 5);
        let mut c = c0.clone();
        gemm(2.0, &a, false, &b, false, 0.5, &mut c);
        let ab = naive(&a, false, &b, false);
        let want = Dense::from_fn(8, 5, |i, j| 2.0 * ab.at(i, j) + 0.5 * c0.at(i, j));
        assert!(c.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn strided_column_major_inputs() {
        // Treat buffers as column-major: element (i,j) at j*rows + i.
        let m = 7;
        let k = 4;
        let n = 3;
        let a = pseudo(m, k, 9);
        let b = pseudo(k, n, 10);
        // Column-major copies.
        let acm: Vec<f64> = (0..m * k).map(|idx| a.at(idx % m, idx / m)).collect();
        let bcm: Vec<f64> = (0..k * n).map(|idx| b.at(idx % k, idx / k)).collect();
        let mut c = vec![0.0; m * n];
        gemm_strided(m, n, k, 1.0, &acm, 1, m, &bcm, 1, k, 0.0, &mut c, n, 1);
        let want = naive(&a, false, &b, false);
        for i in 0..m {
            for j in 0..n {
                assert!((c[i * n + j] - want.at(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn large_k_crosses_panel_boundary() {
        let a = pseudo(5, KC * 2 + 7, 21);
        let b = pseudo(KC * 2 + 7, 4, 22);
        let mut c = Dense::zeros(5, 4);
        gemm(1.0, &a, false, &b, false, 0.0, &mut c);
        assert!(c.max_abs_diff(&naive(&a, false, &b, false)) < 1e-9);
    }

    #[test]
    fn matmul_shapes() {
        let a = pseudo(4, 6, 1);
        let b = pseudo(6, 2, 2);
        let c = matmul(&a, &b);
        assert_eq!((c.rows(), c.cols()), (4, 2));
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Dense::zeros(3, 4);
        let b = Dense::zeros(5, 2);
        let mut c = Dense::zeros(3, 2);
        gemm(1.0, &a, false, &b, false, 0.0, &mut c);
    }
}
