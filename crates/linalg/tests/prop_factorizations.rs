//! Property tests for the dense kernels: factorizations must reconstruct
//! their inputs and solves must invert multiplication, over random
//! matrices of arbitrary shape.

use flashr_linalg::*;
use proptest::prelude::*;

fn dense_strategy(max_n: usize) -> impl Strategy<Value = Dense> {
    (1..=max_n, 1..=max_n).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |v| Dense::from_vec(r, c, v))
    })
}

fn spd_strategy(max_n: usize) -> impl Strategy<Value = Dense> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, (n + 2) * n).prop_map(move |v| {
            let b = Dense::from_vec(n + 2, n, v);
            let mut g = syrk(&b);
            for i in 0..n {
                let d = g.at(i, i);
                g.set(i, i, d + 0.5);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn gemm_is_associative_with_scalars(a in dense_strategy(8), s in -3.0f64..3.0) {
        // (s·A)ᵀ (s·A) == s² · AᵀA
        let mut sa = a.clone();
        sa.scale(s);
        let left = syrk(&sa);
        let mut right = syrk(&a);
        right.scale(s * s);
        prop_assert!(left.max_abs_diff(&right) < 1e-8);
    }

    #[test]
    fn cholesky_reconstructs(a in spd_strategy(12)) {
        let l = cholesky(&a).expect("SPD inputs must factor");
        let mut rec = Dense::zeros(a.rows(), a.cols());
        gemm(1.0, &l, false, &l, true, 0.0, &mut rec);
        prop_assert!(rec.max_abs_diff(&a) < 1e-8, "LLᵀ ≠ A (diff {})", rec.max_abs_diff(&a));
    }

    #[test]
    fn chol_solve_inverts(a in spd_strategy(10)) {
        let n = a.rows();
        let l = cholesky(&a).unwrap();
        let x0 = Dense::from_fn(n, 2, |r, c| (r as f64 + 1.0) * (c as f64 - 0.5));
        let b = matmul(&a, &x0);
        let x = chol_solve(&l, &b);
        prop_assert!(x.max_abs_diff(&x0) < 1e-6);
    }

    #[test]
    fn eigen_reconstructs_and_is_orthonormal(a in spd_strategy(10)) {
        let n = a.rows();
        let e = eigen_sym(&a);
        // Orthonormal vectors.
        let mut vtv = Dense::zeros(n, n);
        gemm(1.0, &e.vectors, true, &e.vectors, false, 0.0, &mut vtv);
        prop_assert!(vtv.max_abs_diff(&Dense::eye(n)) < 1e-8);
        // Reconstruction.
        let mut vd = e.vectors.clone();
        for r in 0..n {
            for c in 0..n {
                let v = vd.at(r, c) * e.values[c];
                vd.set(r, c, v);
            }
        }
        let mut rec = Dense::zeros(n, n);
        gemm(1.0, &vd, false, &e.vectors, true, 0.0, &mut rec);
        prop_assert!(rec.max_abs_diff(&a) < 1e-7);
        // SPD ⇒ positive eigenvalues, sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        prop_assert!(*e.values.last().unwrap() > 0.0);
    }

    #[test]
    fn lu_solves_random_systems(n in 1usize..12, seed in 0u64..1000) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let a = Dense::from_fn(n, n, |r, c| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            // Diagonal dominance keeps the system well-conditioned.
            if r == c { v + 3.0 } else { v * 0.5 }
        });
        let x0 = Dense::from_fn(n, 1, |r, _| r as f64 - 1.5);
        let b = matmul(&a, &x0);
        let f = lu_factor(&a).expect("diagonally dominant ⇒ nonsingular");
        let x = lu_solve(&f, &b);
        prop_assert!(x.max_abs_diff(&x0) < 1e-7);
        // det(A) from LU is consistent with det(Aᵀ).
        let dt = lu_det(&a.transpose());
        let d = lu_det(&a);
        prop_assert!((d - dt).abs() <= 1e-6 * d.abs().max(1.0));
    }

    #[test]
    fn triangular_solves_roundtrip(a in spd_strategy(9)) {
        let l = cholesky(&a).unwrap();
        let n = a.rows();
        let x0 = Dense::from_fn(n, 3, |r, c| ((r * 3 + c) as f64).sin());
        let b = matmul(&l, &x0);
        prop_assert!(solve_lower(&l, &b).max_abs_diff(&x0) < 1e-7);
        let bu = matmul(&l.transpose(), &x0);
        prop_assert!(solve_lower_transpose(&l, &bu).max_abs_diff(&x0) < 1e-7);
        prop_assert!(solve_upper(&l.transpose(), &bu).max_abs_diff(&x0) < 1e-7);
    }
}
