//! "Revolution R Open-like" execution (paper §4.3, Figure 8).
//!
//! Revolution R Open parallelizes matrix multiplication through Intel MKL
//! and *nothing else*; all other R evaluation stays single-threaded. This
//! module reimplements the Figure 8 computations in that model: dense
//! in-memory matrices, single-threaded element-wise/aggregation loops,
//! and parallel GEMM (our rayon kernel standing in for MKL).

use flashr_core::gen::GenSpec;
use flashr_linalg::{chol_solve, cholesky, eigen_sym, gemm, Dense};

/// Parallel-BLAS `t(X) %*% X` (the one operation RRO parallelizes).
pub fn rro_crossprod(x: &Dense) -> Dense {
    let mut g = Dense::zeros(x.cols(), x.cols());
    gemm(1.0, x, true, x, false, 0.0, &mut g);
    g
}

/// Single-threaded standard-normal matrix (R's `rnorm` is sequential).
pub fn rro_rnorm(n: usize, p: usize, seed: u64) -> Dense {
    let spec = GenSpec::Rnorm { seed, mean: 0.0, sd: 1.0 };
    Dense::from_fn(n, p, |r, c| spec.value_at(r as u64, c))
}

/// MASS `mvrnorm` in the RRO model: sequential rnorm + eigen, parallel
/// GEMM for the p×p transform.
pub fn rro_mvrnorm(n: usize, mu: &[f64], sigma: &Dense, seed: u64) -> Dense {
    let p = mu.len();
    let eig = eigen_sym(sigma);
    let mut vd = eig.vectors.clone();
    for r in 0..p {
        for c in 0..p {
            let v = vd.at(r, c) * eig.values[c].max(0.0).sqrt();
            vd.set(r, c, v);
        }
    }
    let mut b = Dense::zeros(p, p);
    gemm(1.0, &vd, false, &eig.vectors, true, 0.0, &mut b);
    let z = rro_rnorm(n, p, seed);
    let mut x = Dense::zeros(n, p);
    gemm(1.0, &z, false, &b, false, 0.0, &mut x);
    // Single-threaded mean shift (element-wise stays sequential in RRO).
    for chunk in x.as_mut_slice().chunks_mut(p) {
        for (v, m) in chunk.iter_mut().zip(mu) {
            *v += m;
        }
    }
    x
}

/// Pearson correlation in the RRO model: BLAS Gramian, sequential rest.
pub fn rro_correlation(x: &Dense) -> Dense {
    let n = x.rows() as f64;
    let p = x.cols();
    let gram = rro_crossprod(x);
    let mut mu = vec![0.0; p];
    for r in 0..x.rows() {
        for (m, v) in mu.iter_mut().zip(x.row(r)) {
            *m += v;
        }
    }
    for m in &mut mu {
        *m /= n;
    }
    let sd: Vec<f64> = (0..p).map(|j| (gram.at(j, j) / n - mu[j] * mu[j]).max(0.0).sqrt()).collect();
    Dense::from_fn(p, p, |i, j| {
        if sd[i] == 0.0 || sd[j] == 0.0 {
            if i == j {
                1.0
            } else {
                f64::NAN
            }
        } else {
            ((gram.at(i, j) / n - mu[i] * mu[j]) / (sd[i] * sd[j])).clamp(-1.0, 1.0)
        }
    })
}

/// Fitted RRO-model LDA (same quantities as `flashr_ml::lda`).
pub struct RroLda {
    pub means: Dense,
    pub priors: Vec<f64>,
    pub cov: Dense,
    pub coef: Dense,
    pub intercepts: Vec<f64>,
}

/// MASS `lda` in the RRO model: sequential groupby, BLAS Gramian.
pub fn rro_lda(x: &Dense, y: &[f64], k: usize) -> RroLda {
    let n = x.rows();
    let p = x.cols();
    assert_eq!(y.len(), n);
    let gram = rro_crossprod(x);

    // Sequential per-class sums and counts.
    let mut sums = Dense::zeros(k, p);
    let mut counts = vec![0.0f64; k];
    for (r, &label) in y.iter().enumerate().take(n) {
        let g = label as usize;
        counts[g] += 1.0;
        for (j, v) in x.row(r).iter().enumerate() {
            let cur = sums.at(g, j);
            sums.set(g, j, cur + v);
        }
    }
    let means = Dense::from_fn(k, p, |g, j| sums.at(g, j) / counts[g].max(1.0));
    let priors: Vec<f64> = counts.iter().map(|c| c / n as f64).collect();

    let mut cov = gram;
    for (g, &count) in counts.iter().enumerate() {
        for i in 0..p {
            for j in 0..p {
                let v = cov.at(i, j) - count * means.at(g, i) * means.at(g, j);
                cov.set(i, j, v);
            }
        }
    }
    let denom = (n as f64 - k as f64).max(1.0);
    for i in 0..p {
        for j in 0..p {
            let v = cov.at(i, j) / denom + if i == j { 1e-9 } else { 0.0 };
            cov.set(i, j, v);
        }
    }
    let l = cholesky(&cov).expect("within covariance must be PD");
    let coef = chol_solve(&l, &means.transpose());
    let intercepts: Vec<f64> = (0..k)
        .map(|g| {
            let mut quad = 0.0;
            for j in 0..p {
                quad += means.at(g, j) * coef.at(j, g);
            }
            -0.5 * quad + priors[g].max(1e-300).ln()
        })
        .collect();
    RroLda { means, priors, cov, coef, intercepts }
}

impl RroLda {
    /// Sequential prediction (scores via BLAS, argmax sequential).
    pub fn predict(&self, x: &Dense) -> Vec<f64> {
        let k = self.intercepts.len();
        let mut scores = Dense::zeros(x.rows(), k);
        gemm(1.0, x, false, &self.coef, false, 0.0, &mut scores);
        (0..x.rows())
            .map(|r| {
                let mut best = 0usize;
                let mut best_v = f64::NEG_INFINITY;
                for c in 0..k {
                    let v = scores.at(r, c) + self.intercepts[c];
                    if v > best_v {
                        best_v = v;
                        best = c;
                    }
                }
                best as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::fm::FM;
    use flashr_core::session::{CtxConfig, FlashCtx};

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    #[test]
    fn rro_crossprod_matches_fm() {
        let ctx = ctx();
        let xf = FM::rnorm(&ctx, 1000, 3, 0.0, 1.0, 4);
        let xd = xf.to_dense(&ctx);
        let a = rro_crossprod(&xd);
        let b = xf.crossprod().to_dense(&ctx);
        assert!(a.max_abs_diff(&b) < 1e-8);
    }

    #[test]
    fn rro_correlation_matches_fm() {
        let ctx = ctx();
        let xf = FM::rnorm(&ctx, 2000, 3, 2.0, 1.5, 9);
        let xd = xf.to_dense(&ctx);
        let a = rro_correlation(&xd);
        let b = flashr_ml::correlation(&ctx, &xf);
        assert!(a.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn rro_mvrnorm_matches_fm_mvrnorm_exactly() {
        let ctx = ctx();
        let sigma = Dense::from_vec(2, 2, vec![2.0, 0.5, 0.5, 1.0]);
        let mu = [1.0, -1.0];
        // Same seed and same counter-based generator → identical samples.
        let a = rro_mvrnorm(500, &mu, &sigma, 11);
        let b = flashr_ml::mvrnorm(&ctx, 500, &mu, &sigma, 11).to_dense(&ctx);
        assert!(a.max_abs_diff(&b) < 1e-9);
    }

    #[test]
    fn rro_lda_matches_fm_lda() {
        let ctx = ctx();
        let n = 4000u64;
        let labels = FM::seq(n, 0.0, 1.0).binary_scalar(flashr_core::ops::BinaryOp::Rem, 2.0, false);
        let x = FM::rnorm(&ctx, n, 3, 0.0, 1.0, 19).binary(
            flashr_core::ops::BinaryOp::Add,
            &(&labels.cast(flashr_core::DType::F64) * 4.0),
            false,
        );
        let fm_model = flashr_ml::lda(&ctx, &x, &labels, 2);
        let rro_model = rro_lda(&x.to_dense(&ctx), &labels.to_vec(&ctx), 2);
        assert!(fm_model.means.max_abs_diff(&rro_model.means) < 1e-9);
        assert!(fm_model.cov.max_abs_diff(&rro_model.cov) < 1e-7);
        assert!(fm_model.coef.max_abs_diff(&rro_model.coef) < 1e-7);
    }
}
