//! # flashr-baselines
//!
//! Comparator implementations for the FlashR evaluation (paper §4.3).
//! The paper attributes FlashR's 3–20× wins over H2O / Spark MLlib to
//! (a) whole-DAG operation fusion vs. per-operation materialization and
//! (b) parallelizing *everything* rather than only BLAS calls. These
//! baselines implement exactly those two nulls on identical kernels, so
//! the speedup factor our benchmarks measure is the factor the paper
//! explains:
//!
//! * [`eagerml`] — "Spark MLlib / H2O-like": the same algorithm programs,
//!   executed with per-operation materialization (every matrix operation
//!   is a separate parallel pass; on EM contexts intermediates spill to
//!   the SSD array, like shuffle/cache traffic).
//! * [`rro`] — "Revolution R Open-like": single-threaded element-wise and
//!   aggregation code, with only the matrix multiplications parallelized
//!   (Revolution R parallelizes BLAS through MKL and nothing else).

pub mod eagerml;
pub mod rro;
