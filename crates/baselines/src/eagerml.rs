//! "Spark MLlib / H2O-like" execution: identical algorithm programs,
//! per-operation materialization.
//!
//! Spark materializes operations such as aggregation separately (paper
//! §4.3); running our algorithms under [`ExecMode::Eager`] reproduces
//! that execution model on identical kernels, isolating the fusion
//! effect the paper measures in Figures 7 and 10.

use flashr_core::fm::FM;
use flashr_core::session::{ExecMode, FlashCtx};
use flashr_linalg::Dense;
use flashr_ml::{
    correlation, gmm, kmeans, lda, logistic_regression, naive_bayes, pca, GmmModel, GmmOptions,
    KmeansOptions, KmeansResult, LdaModel, LogRegModel, LogRegOptions, NaiveBayesModel, PcaResult,
};

/// The eager-engine context this baseline runs under.
pub fn eager_ctx(ctx: &FlashCtx) -> FlashCtx {
    ctx.with_mode(ExecMode::Eager)
}

/// Correlation with per-op materialization.
pub fn correlation_eager(ctx: &FlashCtx, x: &FM) -> Dense {
    correlation(&eager_ctx(ctx), x)
}

/// PCA with per-op materialization.
pub fn pca_eager(ctx: &FlashCtx, x: &FM, ncomp: usize) -> PcaResult {
    pca(&eager_ctx(ctx), x, ncomp)
}

/// Naive Bayes with per-op materialization.
pub fn naive_bayes_eager(ctx: &FlashCtx, x: &FM, y: &FM, k: usize) -> NaiveBayesModel {
    naive_bayes(&eager_ctx(ctx), x, y, k)
}

/// Logistic regression with per-op materialization.
pub fn logistic_regression_eager(ctx: &FlashCtx, x: &FM, y: &FM, opts: &LogRegOptions) -> LogRegModel {
    logistic_regression(&eager_ctx(ctx), x, y, opts)
}

/// k-means with per-op materialization.
pub fn kmeans_eager(ctx: &FlashCtx, x: &FM, opts: &KmeansOptions) -> KmeansResult {
    kmeans(&eager_ctx(ctx), x, opts)
}

/// GMM with per-op materialization.
pub fn gmm_eager(ctx: &FlashCtx, x: &FM, opts: &GmmOptions) -> GmmModel {
    gmm(&eager_ctx(ctx), x, opts)
}

/// LDA with per-op materialization.
pub fn lda_eager(ctx: &FlashCtx, x: &FM, y: &FM, k: usize) -> LdaModel {
    lda(&eager_ctx(ctx), x, y, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    #[test]
    fn eager_correlation_matches_fused() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 3000, 3, 0.0, 1.0, 5);
        let fused = correlation(&ctx, &x);
        let eager = correlation_eager(&ctx, &x);
        assert!(fused.max_abs_diff(&eager) < 1e-9);
    }

    #[test]
    fn eager_uses_more_passes() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 2000, 3, 0.0, 1.0, 5).materialize(&ctx);
        let before = ctx.stats().snapshot();
        let _ = correlation(&ctx, &x);
        let fused_passes = before.delta(&ctx.stats().snapshot()).passes;

        let e = eager_ctx(&ctx);
        let before = e.stats().snapshot();
        let _ = correlation(&e, &x);
        let eager_passes = before.delta(&e.stats().snapshot()).passes;
        assert!(eager_passes > fused_passes, "eager {eager_passes} vs fused {fused_passes}");
    }

    #[test]
    fn eager_kmeans_matches_fused_centers() {
        let ctx = ctx();
        let labels = FM::seq(2000, 0.0, 1.0)
            .binary_scalar(flashr_core::ops::BinaryOp::Rem, 2.0, false)
            .cast(flashr_core::DType::F64);
        let x = FM::rnorm(&ctx, 2000, 2, 0.0, 0.3, 8)
            .binary(flashr_core::ops::BinaryOp::Add, &(&labels * 10.0), false);
        let opts = KmeansOptions { k: 2, max_iters: 20, seed: 1 };
        let fused = kmeans(&ctx, &x, &opts);
        let eager = kmeans_eager(&ctx, &x, &opts);
        assert!(fused.centers.max_abs_diff(&eager.centers) < 1e-6);
        assert_eq!(fused.iterations, eager.iterations);
    }

    #[test]
    fn eager_logreg_matches_fused_weights() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 3000, 3, 0.0, 1.0, 2);
        let w = Dense::from_vec(3, 1, vec![1.0, -1.0, 0.5]);
        let y = x
            .matmul(&FM::from_dense(w))
            .sigmoid()
            .gt(&FM::runif(&ctx, 3000, 1, 0.0, 1.0, 77))
            .cast(flashr_core::DType::F64);
        let opts = LogRegOptions { max_iters: 15, ..Default::default() };
        let a = logistic_regression(&ctx, &x, &y, &opts);
        let b = logistic_regression_eager(&ctx, &x, &y, &opts);
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            assert!((wa - wb).abs() < 1e-6);
        }
    }
}
