//! Static plan analyzer tests: shape/dtype inference vs actual execution,
//! CSE equivalence and pass reduction, rewrite idempotence, pre-flight
//! rejection of forged plans, and the lint catalogue.

use flashr_core::analysis::{cse, infer, PlanErrorKind};
use flashr_core::dag::{MapInput, MapOp, Node, NodeKind};
use flashr_core::dtype::DType;
use flashr_core::exec::{Target, TargetStorage};
use flashr_core::fm::FM;
use flashr_core::ops::{BinaryOp, UnaryOp};
use flashr_core::session::{CtxConfig, ExecMode, FlashCtx, StorageClass};
use flashr_linalg::Dense;
use flashr_safs::SafsConfig;
use std::sync::Arc;

fn im_ctx() -> FlashCtx {
    FlashCtx::with_config(CtxConfig { rows_per_part: 64, nthreads: 4, ..Default::default() }, None)
}

fn em_ctx(tag: &str) -> FlashCtx {
    let dir =
        std::env::temp_dir().join(format!("flashr-analysis-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = flashr_safs::Safs::open(SafsConfig::striped_under(dir, 2)).unwrap();
    FlashCtx::with_config(
        CtxConfig {
            rows_per_part: 64,
            nthreads: 2,
            storage: StorageClass::Em,
            ..Default::default()
        },
        Some(safs),
    )
}

fn tall_node(fm: &FM) -> Arc<Node> {
    match fm {
        FM::Tall { node, .. } => node.clone(),
        _ => panic!("expected a tall matrix"),
    }
}

/// Tiny deterministic PRNG so the "property" tests are reproducible
/// without a proptest dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Property (a): for randomized DAGs, the analyzer's inferred signature
/// matches both the recorded node signature and the shape the eager
/// engine actually produces.
#[test]
fn inference_matches_eager_execution_shapes() {
    let ctx = im_ctx().with_mode(ExecMode::Eager);
    for seed in 0..12u64 {
        let mut rng = Lcg(0x9e3779b97f4a7c15 ^ seed);
        let nrows = 64 * (1 + rng.below(4));
        let ncols = (1 + rng.below(3)) as usize;
        // Pool of same-height tall matrices the generator draws operands from.
        let mut pool: Vec<FM> =
            vec![FM::runif(&ctx, nrows, ncols, 0.5, 2.0, 1000 + seed)];
        for step in 0..10 {
            let a = pool[rng.below(pool.len() as u64) as usize].clone();
            let next = match rng.below(6) {
                0 => a.abs(),
                1 => a.abs().sqrt(),
                2 => &a + ((step + 1) as f64),
                3 => &a * 0.5,
                4 => a.row_sums(),
                5 => {
                    let b = pool[rng.below(pool.len() as u64) as usize].clone();
                    // Element-wise needs matching widths (or a 1-col rhs).
                    if b.ncol() == a.ncol() || b.ncol() == 1 {
                        &a + &b
                    } else {
                        &b + &a.row_sums()
                    }
                }
                _ => unreachable!(),
            };
            pool.push(next);
        }
        for fm in &pool {
            let node = tall_node(fm);
            // The plan passes the full verifier...
            fm.check(&ctx).expect("randomized DAG must verify");
            // ...per-node inference agrees with the recorded signature...
            let sig = infer::infer(&node).expect("inference succeeds");
            assert_eq!((sig.nrows, sig.ncols, sig.dtype), (node.nrows, node.ncols, node.dtype));
            // ...and with what the eager engine actually materializes.
            let m = fm.materialize(&ctx);
            assert_eq!(m.nrow(), sig.nrows, "seed {seed}: rows diverge from inference");
            assert_eq!(m.ncol(), sig.ncols as u64, "seed {seed}: cols diverge from inference");
        }
    }
}

/// Property (b): the CSE rewrite changes neither a single bit of the
/// results, while strictly reducing eager pass counts and EM bytes read.
#[test]
fn cse_is_bit_identical_and_saves_passes_and_bytes() {
    let em = em_ctx("cse-ab").with_mode(ExecMode::Eager);
    let x = FM::runif(&em, 1000, 2, 0.0, 1.0, 42).materialize(&em);

    let run = |ctx: &FlashCtx| {
        let dup = &x.sqrt() + &x.sqrt();
        let before_exec = ctx.stats().snapshot();
        let before_io = ctx.safs().unwrap().stats_snapshot();
        let total = dup.sum().value(ctx);
        let tall = (&x.sqrt() + &x.sqrt()).to_vec(ctx);
        let exec = before_exec.delta(&ctx.stats().snapshot());
        let io = before_io.delta(&ctx.safs().unwrap().stats_snapshot());
        (total, tall, exec.passes, io.read_bytes)
    };

    let (t_opt, v_opt, passes_opt, read_opt) = run(&em);
    let baseline = em.with_optimize(false);
    let (t_raw, v_raw, passes_raw, read_raw) = run(&baseline);

    assert_eq!(t_opt.to_bits(), t_raw.to_bits(), "CSE must be bit-identical");
    assert_eq!(v_opt.len(), v_raw.len());
    for (a, b) in v_opt.iter().zip(&v_raw) {
        assert_eq!(a.to_bits(), b.to_bits(), "CSE must be bit-identical");
    }
    assert!(
        passes_opt < passes_raw,
        "CSE must execute strictly fewer eager passes ({passes_opt} vs {passes_raw})"
    );
    assert!(
        read_opt < read_raw,
        "CSE must read strictly fewer bytes ({read_opt} vs {read_raw})"
    );
}

/// Property (c): the rewrite is idempotent — a second application finds
/// nothing left to merge or collapse.
#[test]
fn rewrite_is_idempotent() {
    let ctx = im_ctx();
    let x = FM::runif(&ctx, 256, 3, 0.0, 1.0, 7);
    let y = &x.sqrt() + &x.sqrt();
    let z = &y.abs() * 2.0;
    let targets = vec![
        Target::Tall { node: tall_node(&z), storage: TargetStorage::Default },
        Target::Sink(match &y.sum() {
            FM::Sink { node } => node.clone(),
            _ => unreachable!(),
        }),
    ];

    let first = cse::rewrite(&targets);
    assert!(first.merged > 0, "the duplicated sqrt must merge");
    let second = cse::rewrite(&first.targets);
    assert_eq!(second.merged, 0, "second rewrite must find nothing to merge");
    assert_eq!(second.collapsed, 0, "second rewrite must find nothing to collapse");
    assert_eq!(second.nodes_before, second.nodes_after);
    assert_eq!(first.nodes_after, second.nodes_after);
}

/// A forged mapply with disagreeing operand widths is rejected by
/// `FM::check` with a typed error naming the node — and without reading
/// a single partition from the SSDs.
#[test]
fn check_rejects_mismatched_mapply_before_any_io() {
    let em = em_ctx("badmap");
    let a = FM::runif(&em, 512, 3, 0.0, 1.0, 1).materialize(&em);
    let b = FM::runif(&em, 512, 2, 0.0, 1.0, 2).materialize(&em);
    let forged = Node::raw(
        NodeKind::Map {
            op: MapOp::Binary { op: BinaryOp::Add, swapped: false },
            inputs: vec![
                MapInput::Node(tall_node(&a)),
                MapInput::Node(tall_node(&b)),
            ],
        },
        512,
        3,
        DType::F64,
    );
    let forged_id = forged.id;
    let fm = FM::Tall { node: forged, transposed: false };

    let before = em.safs().unwrap().stats_snapshot();
    let before_passes = em.stats().snapshot();
    let err = fm.check(&em).expect_err("mismatched mapply dims must be rejected");
    assert_eq!(err.node, forged_id, "error must name the forged node");
    assert_eq!(err.kind, PlanErrorKind::ShapeMismatch);
    assert!(err.detail.contains("mapply"), "got: {}", err.detail);
    let io = before.delta(&em.safs().unwrap().stats_snapshot());
    assert_eq!(io.read_bytes, 0, "verification must not read any partition");
    assert_eq!(before_passes.delta(&em.stats().snapshot()).passes, 0);
}

/// A forged `inner.prod` with a bad inner dimension is likewise caught
/// up front.
#[test]
fn check_rejects_bad_inner_prod_dimension() {
    let ctx = im_ctx();
    let x = FM::runif(&ctx, 256, 3, 0.0, 1.0, 3);
    // 3-column input against a 4-row small operand: inner dim mismatch.
    let b = Arc::new(Dense::filled(4, 2, 1.0));
    let forged = Node::raw(
        NodeKind::Map {
            op: MapOp::InnerProd { b, f1: BinaryOp::Mul, f2: BinaryOp::Add },
            inputs: vec![MapInput::Node(tall_node(&x))],
        },
        256,
        2,
        DType::F64,
    );
    let forged_id = forged.id;
    let fm = FM::Tall { node: forged, transposed: false };
    let err = fm.check(&ctx).expect_err("bad inner dimension must be rejected");
    assert_eq!(err.node, forged_id);
    assert_eq!(err.kind, PlanErrorKind::ShapeMismatch);
    assert!(err.detail.contains("inner.prod"), "got: {}", err.detail);
}

/// A forged non-associative `inner.prod` combiner is a BadOperand.
#[test]
fn check_rejects_non_associative_combiner() {
    let ctx = im_ctx();
    let x = FM::runif(&ctx, 256, 3, 0.0, 1.0, 3);
    let b = Arc::new(Dense::filled(3, 2, 1.0));
    let forged = Node::raw(
        NodeKind::Map {
            op: MapOp::InnerProd { b, f1: BinaryOp::Mul, f2: BinaryOp::Sub },
            inputs: vec![MapInput::Node(tall_node(&x))],
        },
        256,
        2,
        DType::F64,
    );
    let forged_id = forged.id;
    let fm = FM::Tall { node: forged, transposed: false };
    let err = fm.check(&ctx).expect_err("non-associative combiner must be rejected");
    assert_eq!(err.node, forged_id);
    assert_eq!(err.kind, PlanErrorKind::BadOperand);
}

/// Operating on an unmaterialized sink yields a typed NotMaterialized
/// error from the fallible API (and a panic with the same rendering from
/// the infallible one).
#[test]
fn sink_misuse_is_a_typed_error() {
    let ctx = im_ctx();
    let s = FM::runif(&ctx, 256, 2, 0.0, 1.0, 4).sum();
    let err = s.try_cast(DType::F32).expect_err("casting a sink must fail");
    assert_eq!(err.kind, PlanErrorKind::NotMaterialized);
    let err = s.try_binary_scalar(BinaryOp::Add, 1.0, false).expect_err("sink + scalar must fail");
    assert_eq!(err.kind, PlanErrorKind::NotMaterialized);
    let err = s.try_unary(UnaryOp::Sqrt).expect_err("sqrt of a sink must fail");
    assert_eq!(err.kind, PlanErrorKind::NotMaterialized);
    let rendered = err.to_string();
    assert!(rendered.contains("not-materialized"), "got: {rendered}");
}

/// Lint catalogue: W001 reused-but-uncached, W002 oversized broadcast
/// row vector, W003 lossy cast chain.
#[test]
fn lints_fire_on_fusion_unfriendly_patterns() {
    let ctx = im_ctx();

    // W001: an uncached interior node feeding two consumers.
    let x = FM::runif(&ctx, 256, 2, 0.0, 1.0, 5);
    let shared = x.sqrt();
    let reused = &shared + &shared;
    let report = reused.check(&ctx).unwrap();
    assert!(
        report.lints.iter().any(|l| l.code == "W001"),
        "expected W001, got {:?}",
        report.lints
    );
    // set.cache silences it.
    shared.set_cache(true);
    let report = reused.check(&ctx).unwrap();
    assert!(!report.lints.iter().any(|l| l.code == "W001"));

    // W002: a broadcast row vector far beyond the Pcache-friendly size.
    let wide = FM::constant(256, 20_000, 1.0);
    let row = FM::Small(Dense::filled(1, 20_000, 2.0));
    let broadcast = &wide + &row;
    let report = broadcast.check(&ctx).unwrap();
    assert!(
        report.lints.iter().any(|l| l.code == "W002"),
        "expected W002, got {:?}",
        report.lints
    );

    // W003: a lossy f64 → i32 → f64 chain survives the rewrite and lints.
    let chained = x.cast(DType::I32).cast(DType::F64);
    let report = chained.check(&ctx).unwrap();
    assert!(
        report.lints.iter().any(|l| l.code == "W003"),
        "expected W003, got {:?}",
        report.lints
    );
}

/// The footprint estimate tracks leaf bytes and target bytes.
#[test]
fn footprint_estimate_reflects_plan_bytes() {
    let ctx = im_ctx();
    let x = FM::runif(&ctx, 1024, 2, 0.0, 1.0, 6).materialize(&ctx);
    let report = (&x + 1.0).check(&ctx).unwrap();
    let leaf_bytes = 1024 * 2 * 8;
    assert_eq!(report.footprint.read_bytes, leaf_bytes);
    assert_eq!(report.footprint.write_bytes, leaf_bytes, "the tall target is written back");
    assert_eq!(report.footprint.gen_bytes, 0);
    assert!(report.footprint.working_set_bytes > 0);

    // A generated input counts as generator bytes, not reads.
    let report = (&FM::constant(1024, 2, 1.0) + 1.0).sum().check(&ctx).unwrap();
    assert_eq!(report.footprint.read_bytes, 0);
    assert_eq!(report.footprint.gen_bytes, leaf_bytes);
    assert_eq!(report.footprint.write_bytes, 0, "a sink writes no tall output");
}

/// Cast simplification: a cast to the node's own dtype disappears, and
/// lossless widening chains collapse to a single cast.
#[test]
fn redundant_casts_collapse() {
    let ctx = im_ctx();
    let x = FM::runif(&ctx, 256, 2, 0.0, 1.0, 8);

    // The FM layer already refuses to build identity casts, so forge one
    // (as a corrupted plan would contain) and let the rewriter erase it.
    let forged = Node::raw(
        NodeKind::Map {
            op: MapOp::Cast(DType::F64),
            inputs: vec![MapInput::Node(tall_node(&x))],
        },
        256,
        2,
        DType::F64,
    );
    let fm = FM::Tall { node: forged, transposed: false };
    let report = (&fm + 1.0).check(&ctx).unwrap();
    assert!(report.collapsed >= 1, "identity cast must collapse: {report:?}");

    // A lossless widening chain (u8 → i32 → i64) folds to a single cast.
    let mask = x.gt(&FM::constant(256, 2, 0.5)); // u8 predicate
    let chained = mask.cast(DType::I32).cast(DType::I64);
    let report = chained.check(&ctx).unwrap();
    assert!(report.collapsed >= 1, "lossless cast chain must collapse: {report:?}");
    assert!(
        !report.lints.iter().any(|l| l.code == "W003"),
        "a lossless chain is not W003 material: {:?}",
        report.lints
    );

    // Results survive the collapse unchanged.
    let a = chained.cast(DType::F64).sum().value(&ctx);
    let b = mask.cast(DType::I64).cast(DType::F64).sum().value(&ctx);
    assert_eq!(a.to_bits(), b.to_bits());
}

/// `FM::explain` carries the analyzer summary so plans can be inspected
/// without running them.
#[test]
fn explain_includes_analysis_summary() {
    let ctx = im_ctx();
    let x = FM::runif(&ctx, 256, 2, 0.0, 1.0, 9);
    let text = (&x.sqrt() + &x.sqrt()).sum().explain(&ctx);
    assert!(text.contains("analysis:"), "missing analysis summary:\n{text}");
    assert!(text.contains("footprint:"), "missing footprint line:\n{text}");
    assert!(text.contains("merged"), "missing CSE counts:\n{text}");
}

/// Multi-sink materialization still works with the analyzer in the loop,
/// and `set.cache` handles installed on pre-rewrite nodes stay usable.
#[test]
fn cache_handles_survive_the_rewrite() {
    let ctx = im_ctx();
    let x = FM::runif(&ctx, 512, 2, 0.0, 1.0, 10);
    let y = x.sqrt();
    let dup = x.sqrt(); // merges with y under CSE
    dup.set_cache(true);
    let s = (&y + &dup).sum().value(&ctx);
    assert!(s.is_finite());
    // The duplicate handle's cache request was honoured through its
    // canonical representative.
    match &dup {
        FM::Tall { node, .. } => assert!(node.cached().is_some(), "cache must be installed"),
        _ => unreachable!(),
    }
}

/// W004: eager mode re-reads an EM leaf in several passes while the
/// page-cache budget cannot hold it; a sufficient memory budget (or a
/// fused mode) silences the lint.
#[test]
fn w004_flags_em_rescans_beyond_cache_budget() {
    let ctx = em_ctx("w004");
    let eager = ctx.with_mode(ExecMode::Eager);
    // An EM leaf consumed twice: two eager passes, two device scans.
    let x = FM::runif(&eager, 1024, 4, 0.0, 1.0, 2).materialize(&eager);
    let reused = &x.sqrt() + &x.square();
    let report = reused.check(&eager).unwrap();
    assert!(
        report.lints.iter().any(|l| l.code == "W004"),
        "expected W004 with no cache budget, got {:?}",
        report.lints
    );

    // Same plan under a budget that holds the leaf: no W004.
    let budgeted = eager.with_mem_budget(flashr_core::session::MemBudget::new(64 * 1024 * 1024));
    let x2 = FM::runif(&budgeted, 1024, 4, 0.0, 1.0, 2).materialize(&budgeted);
    let reused2 = &x2.sqrt() + &x2.square();
    let report = reused2.check(&budgeted).unwrap();
    assert!(
        !report.lints.iter().any(|l| l.code == "W004"),
        "a sufficient cache budget must silence W004: {:?}",
        report.lints
    );

    // Fused mode reads the leaf once per materialization: no W004.
    let report = reused.check(&ctx).unwrap();
    assert!(!report.lints.iter().any(|l| l.code == "W004"));
}

/// Property: `FM::check_json` always emits strict JSON. Randomized
/// chains — including non-finite scalar constants, reuse diamonds,
/// reductions and gramians, on both in-memory and EM contexts — must
/// parse under serde_json (which rejects bare `NaN`/`Infinity` tokens,
/// so every float either renders finite or as `null`), carry the
/// `report.lints` / `report.footprint` sections, and keep the cost
/// object's key set stable.
#[test]
fn check_json_round_trips_through_serde() {
    const COST_KEYS: [&str; 20] = [
        "cache_capacity",
        "calibrated",
        "chunk_bytes",
        "device_read_bytes",
        "device_read_bytes_raw",
        "em_leaves",
        "gen_bytes",
        "has_sink",
        "leaf_read_bytes",
        "mode",
        "pcache_step",
        "pcache_step_live",
        "predicted_compute_nanos",
        "predicted_read_nanos",
        "predicted_wall_nanos",
        "predicted_write_nanos",
        "reuse",
        "row_bytes_live",
        "row_bytes_total",
        "write_bytes",
    ];
    let im = im_ctx();
    let em = em_ctx("check-json");
    let mut rng = Lcg(0xC0FFEE);
    let consts = [0.5, -1.5, f64::NAN, f64::INFINITY];
    for case in 0..24u64 {
        let ctx = if case % 2 == 0 { &im } else { &em };
        let x = FM::rnorm(ctx, 256, 4, 0.0, 1.0, case + 1).materialize(ctx);
        let mut y = &x + 0.0;
        for _ in 0..1 + rng.below(5) {
            y = match rng.below(4) {
                0 => &y + consts[rng.below(4) as usize],
                1 => &y * consts[rng.below(4) as usize],
                2 => y.abs(),
                _ => y.sqrt(),
            };
        }
        let fm = match rng.below(4) {
            0 => y.sum(),
            1 => y.crossprod(),
            2 => &(&y * 2.0) + &y,
            _ => y,
        };
        let doc = fm.check_json(ctx);
        let v: serde_json::Value = serde_json::from_str(&doc)
            .unwrap_or_else(|e| panic!("case {case}: check_json is not strict JSON ({e}): {doc}"));
        assert_eq!(v["ok"].as_bool(), Some(true), "case {case}: {doc}");
        let report = v["report"].as_object().unwrap_or_else(|| panic!("case {case}: no report"));
        for key in ["nodes_before", "nodes_after", "merged", "collapsed", "lints", "footprint"] {
            assert!(report.contains_key(key), "case {case}: report lost key {key}");
        }
        for lint in v["report"]["lints"].as_array().expect("lints is an array") {
            for key in ["code", "node", "message"] {
                assert!(lint.get(key).is_some(), "case {case}: lint lost key {key}");
            }
        }
        let fp = v["report"]["footprint"].as_object().expect("footprint is an object");
        for key in ["read_bytes", "gen_bytes", "write_bytes", "working_set_bytes"] {
            assert!(fp.contains_key(key), "case {case}: footprint lost key {key}");
        }
        let cost = v["cost"].as_object().unwrap_or_else(|| panic!("case {case}: no cost"));
        let got: Vec<&str> = cost.keys().map(|s| s.as_str()).collect();
        assert_eq!(got, COST_KEYS, "case {case}: cost key set drifted");
    }
}
