//! Block matrices (paper §3.2.2) against the external-memory store, plus
//! wide-matrix paths that Fig. 4's 2-D partitioning is for.

use flashr_core::block::BlockMat;
use flashr_core::fm::FM;
use flashr_core::ops::{BinaryOp, UnaryOp};
use flashr_core::session::{CtxConfig, FlashCtx, StorageClass};
use flashr_safs::SafsConfig;

fn em_ctx(tag: &str) -> FlashCtx {
    let dir = std::env::temp_dir().join(format!("flashr-blockem-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = flashr_safs::Safs::open(SafsConfig::striped_under(dir, 3)).unwrap();
    FlashCtx::with_config(
        CtxConfig { rows_per_part: 256, storage: StorageClass::Em, ..Default::default() },
        Some(safs),
    )
}

fn im_ctx() -> FlashCtx {
    FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
}

#[test]
fn block_matrix_on_ssds_matches_memory() {
    let em = em_ctx("basic");
    let im = im_ctx();
    let n = 2000u64;
    let p = 70usize; // three 32-col blocks

    let bm_em = BlockMat::runif(&em, n, p, 32, 9).materialize(&em);
    let bm_im = BlockMat::runif(&im, n, p, 32, 9).materialize(&im);

    let cs_em = bm_em.col_sums(&em);
    let cs_im = bm_im.col_sums(&im);
    for (a, b) in cs_em.iter().zip(&cs_im) {
        assert!((a - b).abs() < 1e-9, "EM and IM block colSums disagree");
    }

    let g_em = bm_em.crossprod(&em);
    let g_im = bm_im.crossprod(&im);
    assert!(g_em.max_abs_diff(&g_im) < 1e-8);
}

#[test]
fn block_pipeline_stays_fused_per_block_group() {
    let ctx = im_ctx();
    let fmx = FM::rnorm(&ctx, 3000, 64, 0.0, 1.0, 3);
    let bm = BlockMat::from_fm(&fmx, 32).materialize(&ctx);
    let before = ctx.stats().snapshot();
    // All per-block colSums sinks materialize together: one pass.
    let _ = bm.col_sums(&ctx);
    assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
    // The full block-pair Gramian is also a single pass.
    let before = ctx.stats().snapshot();
    let _ = bm.crossprod(&ctx);
    assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
}

#[test]
fn block_elementwise_chain_on_em() {
    let em = em_ctx("chain");
    let bm = BlockMat::runif(&em, 1500, 40, 32, 4).materialize(&em);
    let y = bm.unary(UnaryOp::Square).binary_scalar(BinaryOp::Add, 1.0);
    let total = y.sum(&em);
    // E[u²] + 1 per element = 4/3.
    let mean = total / (1500.0 * 40.0);
    assert!((mean - 4.0 / 3.0).abs() < 0.01, "mean {mean}");
}

#[test]
fn wide_matrix_matmul_through_blocks() {
    let ctx = im_ctx();
    let p = 80usize;
    let fmx = FM::rnorm(&ctx, 1000, p, 0.0, 1.0, 5);
    let bm = BlockMat::from_fm(&fmx, 32);
    let b = flashr_linalg::Dense::from_fn(p, 3, |r, c| ((r + c) % 7) as f64 - 3.0);
    let blocked = bm.matmul(&b).to_dense(&ctx);
    let whole = fmx.matmul(&FM::from_dense(b)).to_dense(&ctx);
    assert!(blocked.max_abs_diff(&whole) < 1e-9);
}

#[test]
fn block_row_sums_on_em_match_whole() {
    let em = em_ctx("rowsums");
    let fmx = FM::runif(&em, 1200, 50, -1.0, 1.0, 8).materialize(&em);
    let bm = BlockMat::from_fm(&fmx, 16);
    let a = bm.row_sums().to_vec(&em);
    let b = fmx.row_sums().to_vec(&em);
    for (x, y) in a.iter().zip(&b) {
        assert!((x - y).abs() < 1e-9);
    }
}
