//! The panic-triggered flight recorder dump, in a binary of its own.
//!
//! The process-wide panic hook dumps *every* live recorder, so this test
//! must not share a process with other tests that build contexts — a
//! stray `#[should_panic]` elsewhere would consume this recorder's
//! once-only dump (or this panic would dump theirs).

use flashr_core::fm::FM;
use flashr_core::ops::BinaryOp;
use flashr_core::session::{CtxConfig, ExecMode, FlashCtx};
use serde_json::Value;

#[test]
fn panic_dumps_recent_exec_spans_and_metrics() {
    let cfg = CtxConfig {
        nthreads: 2,
        mode: ExecMode::CacheFuse,
        rows_per_part: 64,
        ..CtxConfig::default()
    };
    let ctx = FlashCtx::with_config(cfg, None);
    let path =
        std::env::temp_dir().join(format!("flashr-flight-panic-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    ctx.flight_recorder().set_dump_path(&path);

    // A materialization so the rings hold real exec spans…
    let x = FM::runif(&ctx, 1000, 4, 0.0, 1.0, 7);
    let _ = x.binary_scalar(BinaryOp::Mul, 2.0, false).sum().value(&ctx);
    assert!(!ctx.flight_recorder().dumped());

    // …then a panic anywhere in the process trips the hook.
    let unwound = std::panic::catch_unwind(|| panic!("materialization went sideways"));
    assert!(unwound.is_err());
    assert!(ctx.flight_recorder().dumped(), "panic hook should have dumped");

    let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).expect("dump written"))
        .expect("dump parses as JSON");
    assert_eq!(doc["reason"], "panic");
    assert!(doc["ts_ns"].as_u64().is_some(), "{doc}");
    let lanes = doc["lanes"].as_array().expect("lanes array");
    let exec_events: Vec<&Value> = lanes
        .iter()
        .flat_map(|l| l["events"].as_array().map(|e| e.iter()).into_iter().flatten())
        .filter(|e| e["cat"] == "exec")
        .collect();
    assert!(!exec_events.is_empty(), "expected at least one exec span in {doc}");
    // Task spans carry their partition and pass ids for post-mortems.
    assert!(
        exec_events
            .iter()
            .any(|e| e["name"] == "task" && e["args"]["pass"].as_u64() == Some(1)),
        "{doc}"
    );
    // The dump embeds a full metrics snapshot taken at dump time.
    let metrics_text = doc["metrics_text"].as_str().expect("metrics snapshot embedded");
    assert!(metrics_text.contains("flashr_exec_passes_total 1"), "{metrics_text}");
    assert!(metrics_text.contains("# TYPE flashr_exec_parts_total counter"), "{metrics_text}");
    let _ = std::fs::remove_file(&path);
}
