//! Engine-level tests: external memory, engine-mode equivalence, NUMA
//! counters and pass accounting.

use flashr_core::fm::FM;
use flashr_core::ops::{AggOp, BinaryOp};
use flashr_core::session::{CtxConfig, ExecMode, FlashCtx, StorageClass};
use flashr_safs::SafsConfig;

fn im_ctx(threads: usize) -> FlashCtx {
    FlashCtx::with_config(
        CtxConfig { rows_per_part: 128, nthreads: threads, ..Default::default() },
        None,
    )
}

fn em_ctx(tag: &str, threads: usize) -> FlashCtx {
    let dir = std::env::temp_dir().join(format!("flashr-engine-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = flashr_safs::Safs::open(SafsConfig::striped_under(dir, 4)).unwrap();
    FlashCtx::with_config(
        CtxConfig {
            rows_per_part: 128,
            nthreads: threads,
            storage: StorageClass::Em,
            ..Default::default()
        },
        Some(safs),
    )
}

/// A deterministic workload touching map, matmul, agg.row, sinks.
fn workload(ctx: &FlashCtx, n: u64) -> (f64, Vec<f64>, Vec<f64>) {
    let x = FM::runif(ctx, n, 4, 0.0, 1.0, 99);
    let y = (&(&x * 2.0) + 0.5).sqrt().materialize(ctx);
    let total = y.sum().value(ctx);
    let col_sums = y.col_sums().to_vec(ctx);
    let row_sums_head: Vec<f64> = y.row_sums().to_vec(ctx)[..8].to_vec();
    (total, col_sums, row_sums_head)
}

#[test]
fn em_matches_im_results() {
    let im = im_ctx(4);
    let em = em_ctx("em-vs-im", 4);
    let (t1, c1, r1) = workload(&im, 1000);
    let (t2, c2, r2) = workload(&em, 1000);
    assert!((t1 - t2).abs() < 1e-9);
    for (a, b) in c1.iter().zip(&c2) {
        assert!((a - b).abs() < 1e-9);
    }
    assert_eq!(r1, r2);
}

#[test]
fn em_materialization_actually_hits_the_ssds() {
    let em = em_ctx("traffic", 2);
    let before = em.safs().unwrap().stats_snapshot();
    let x = FM::runif(&em, 2000, 2, 0.0, 1.0, 1);
    let m = x.materialize(&em);
    let mid = em.safs().unwrap().stats_snapshot();
    assert!(before.delta(&mid).write_bytes >= 2000 * 2 * 8, "materialize must write to SSDs");
    let s = m.sum().value(&em);
    let after = em.safs().unwrap().stats_snapshot();
    assert!(mid.delta(&after).read_bytes >= 2000 * 2 * 8, "sum must read from SSDs");
    assert!(s > 0.0);
}

#[test]
fn all_three_engine_modes_agree() {
    let base = im_ctx(4);
    let x = FM::rnorm(&base, 3000, 3, 1.0, 2.0, 42);
    let mut results = Vec::new();
    for mode in [ExecMode::Eager, ExecMode::MemFuse, ExecMode::CacheFuse] {
        let ctx = base.with_mode(mode);
        // A DAG with shared subexpressions and multiple sinks.
        let centered = &x - 1.0;
        let sq = centered.square();
        let s1 = sq.sum().value(&ctx);
        let s2 = centered.crossprod().to_dense(&ctx);
        let s3 = centered.abs().col_sums().to_vec(&ctx);
        results.push((s1, s2, s3));
    }
    let (e, m, c) = (&results[0], &results[1], &results[2]);
    assert!((e.0 - m.0).abs() < 1e-6 && (m.0 - c.0).abs() < 1e-6);
    assert!(e.1.max_abs_diff(&m.1) < 1e-6 && m.1.max_abs_diff(&c.1) < 1e-6);
    for i in 0..3 {
        assert!((e.2[i] - m.2[i]).abs() < 1e-6 && (m.2[i] - c.2[i]).abs() < 1e-6);
    }
}

#[test]
fn eager_mode_runs_one_pass_per_op() {
    let fused = im_ctx(2);
    let eager = fused.with_mode(ExecMode::Eager);
    let x = FM::runif(&fused, 1000, 2, 0.0, 1.0, 7);

    let before = fused.stats().snapshot();
    ((&(&x + 1.0) * 2.0).sqrt()).sum().value(&fused);
    let fused_passes = before.delta(&fused.stats().snapshot()).passes;
    assert_eq!(fused_passes, 1, "cache-fuse must evaluate the whole DAG in one pass");

    let before = eager.stats().snapshot();
    ((&(&x + 1.0) * 2.0).sqrt()).sum().value(&eager);
    let eager_passes = before.delta(&eager.stats().snapshot()).passes;
    // +1, *2, sqrt → three op passes, plus the sink pass.
    assert!(eager_passes >= 4, "eager must materialize every op separately, got {eager_passes}");
}

#[test]
fn eager_em_mode_spills_intermediates_to_ssds() {
    let em = em_ctx("eager-spill", 2).with_mode(ExecMode::Eager);
    let x = FM::runif(&em, 2000, 2, 0.0, 1.0, 3).materialize(&em);
    let before = em.safs().unwrap().stats_snapshot();
    ((&(&x + 1.0) * 2.0).sqrt()).sum().value(&em);
    let d = before.delta(&em.safs().unwrap().stats_snapshot());
    // Three intermediates of 2000×2×8 bytes written + read back.
    let op_bytes = 2000 * 2 * 8;
    assert!(
        d.write_bytes >= 3 * op_bytes as u64,
        "eager EM must write intermediates (wrote {})",
        d.write_bytes
    );
}

#[test]
fn cache_fuse_em_moves_only_input_bytes() {
    let em = em_ctx("fuse-traffic", 2);
    let x = FM::runif(&em, 2000, 2, 0.0, 1.0, 3).materialize(&em);
    let before = em.safs().unwrap().stats_snapshot();
    ((&(&x + 1.0) * 2.0).sqrt()).sum().value(&em);
    let d = before.delta(&em.safs().unwrap().stats_snapshot());
    let input_bytes = 2000 * 2 * 8u64;
    assert_eq!(d.write_bytes, 0, "fused pass must not write intermediates");
    assert!(d.read_bytes >= input_bytes && d.read_bytes <= input_bytes * 2);
}

#[test]
fn numa_affinity_counters_favor_local() {
    let ctx = FlashCtx::with_config(
        CtxConfig { rows_per_part: 128, nthreads: 4, numa_nodes: 2, ..Default::default() },
        None,
    );
    let x = FM::runif(&ctx, 128 * 64, 2, 0.0, 1.0, 5);
    let before = ctx.stats().snapshot();
    x.sum().value(&ctx);
    let d = before.delta(&ctx.stats().snapshot());
    assert_eq!(d.parts, 64);
    assert!(d.local_parts >= d.remote_parts, "affinity scheduling should mostly hit local parts");
}

#[test]
fn cumsum_em_single_pass() {
    let em = em_ctx("cum", 4);
    let x = FM::constant(1000, 2, 1.0).materialize(&em);
    let before = em.stats().snapshot();
    let c = x.cumsum_col().materialize(&em);
    let d = before.delta(&em.stats().snapshot());
    assert_eq!(d.passes, 1, "cum.col must complete in a single pass");
    assert_eq!(c.get(&em, 999, 0), 1000.0);
    assert_eq!(c.get(&em, 500, 1), 501.0);
}

#[test]
fn groupby_and_kmeans_style_fusion_on_em() {
    let em = em_ctx("kmeans-ish", 4);
    // Points at 0 and 10; centers at 1 and 9.
    let half = 500u64;
    let x = FM::rbind(&em, &FM::constant(half, 1, 0.0), &FM::constant(half, 1, 10.0));
    let centers = flashr_linalg::Dense::from_vec(1, 2, vec![1.0, 9.0]);
    let d = x.inner_prod(centers, BinaryOp::EuclidSq, BinaryOp::Add);
    let assign = d.row_which_min();
    assign.set_cache(true);
    let counts = FM::ones(x.nrow(), 1).groupby_row(&assign, AggOp::Sum, 2);
    let sums = x.groupby_row(&assign, AggOp::Sum, 2);
    let out = FM::materialize_multi(&em, &[&counts, &sums]);
    let cnt = out[0].to_dense(&em);
    let sm = out[1].to_dense(&em);
    assert_eq!(cnt.at(0, 0), half as f64);
    assert_eq!(cnt.at(1, 0), half as f64);
    assert_eq!(sm.at(0, 0), 0.0);
    assert_eq!(sm.at(1, 0), 10.0 * half as f64);
}

#[test]
fn single_threaded_and_parallel_agree() {
    let c1 = im_ctx(1);
    let c8 = im_ctx(8);
    let (t1, s1, r1) = workload(&c1, 5000);
    let (t8, s8, r8) = workload(&c8, 5000);
    assert!((t1 - t8).abs() < 1e-7, "thread count must not change results");
    for (a, b) in s1.iter().zip(&s8) {
        assert!((a - b).abs() < 1e-7);
    }
    assert_eq!(r1, r8);
}

#[test]
fn set_cache_can_target_the_ssds() {
    let dir = std::env::temp_dir().join(format!("flashr-engine-cachestore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = flashr_safs::Safs::open(SafsConfig::striped_under(dir, 2)).unwrap();
    let ctx = FlashCtx::with_config(
        CtxConfig {
            rows_per_part: 128,
            storage: StorageClass::InMem,
            cache_storage: StorageClass::Em,
            ..Default::default()
        },
        Some(safs),
    );
    let x = FM::runif(&ctx, 1000, 2, 0.0, 1.0, 9);
    let y = &x * 2.0;
    y.set_cache(true);
    let before = ctx.safs().unwrap().stats_snapshot();
    let s1 = y.sum().value(&ctx);
    let wrote = before.delta(&ctx.safs().unwrap().stats_snapshot()).write_bytes;
    assert!(wrote >= 1000 * 2 * 8, "cache must have been written to the array ({wrote} bytes)");
    // Second use reads the cache back from the SSDs.
    let s2 = y.sum().value(&ctx);
    assert!((s1 - s2).abs() < 1e-9);
    match &y {
        FM::Tall { node, .. } => assert!(node.cached().unwrap().is_em(), "cache should live on SSDs"),
        _ => unreachable!(),
    }
}

#[test]
#[should_panic(expected = "share the partition dimension")]
fn mixing_dag_heights_in_one_pass_panics() {
    let ctx = im_ctx(2);
    let a = FM::runif(&ctx, 1000, 1, 0.0, 1.0, 1);
    let b = FM::runif(&ctx, 500, 1, 0.0, 1.0, 2);
    let _ = FM::materialize_multi(&ctx, &[&a.sum(), &b.sum()]);
}

#[test]
fn single_row_matrices_work() {
    let ctx = im_ctx(4);
    let x = FM::from_col_major(&ctx, 1, 3, &[1.0, 2.0, 3.0]);
    assert_eq!(x.sum().value(&ctx), 6.0);
    assert_eq!(x.row_sums().to_vec(&ctx), vec![6.0]);
    let g = x.crossprod().to_dense(&ctx);
    assert_eq!(g.at(0, 1), 2.0);
    assert_eq!(x.cumsum_col().to_vec(&ctx), vec![1.0, 2.0, 3.0]);
}

#[test]
fn more_threads_than_partitions_is_fine() {
    let ctx = FlashCtx::with_config(
        CtxConfig { rows_per_part: 1024, nthreads: 32, ..Default::default() },
        None,
    );
    let x = FM::seq(100, 1.0, 1.0); // one partition, 32 workers
    assert_eq!(x.sum().value(&ctx), 5050.0);
}
