//! Integration tests for the span-timeline layer: begin/end pairing and
//! nesting invariants, per-lane monotonic timestamps, the event budget,
//! allocation-free operation when tracing is off, span emission across
//! the exec/io/cache categories on an external-memory run, and the
//! Chrome-trace / profile-report JSON validated against a real parser.

use flashr_core::fm::FM;
use flashr_core::ops::{BinaryOp, UnaryOp};
use flashr_core::session::{CtxConfig, ExecMode, FlashCtx, StorageClass};
use flashr_core::trace::{json_escape, json_f64, EventKind, Timeline, TraceLevel};
use flashr_safs::{CacheCfg, SafsConfig};
use serde_json::Value;

fn ctx_with(mode: ExecMode, trace: TraceLevel) -> FlashCtx {
    let cfg = CtxConfig {
        nthreads: 2,
        mode,
        rows_per_part: 64,
        trace,
        ..CtxConfig::default()
    };
    FlashCtx::with_config(cfg, None)
}

/// gen -> x2 -> +1 -> sqrt, then a full-sum sink: one fused pass.
fn four_op_sum(ctx: &FlashCtx) -> f64 {
    let x = FM::runif(ctx, 1000, 4, 0.0, 1.0, 7);
    let y = x
        .binary_scalar(BinaryOp::Mul, 2.0, false)
        .binary_scalar(BinaryOp::Add, 1.0, false)
        .unary(UnaryOp::Sqrt);
    y.sum().value(ctx)
}

#[test]
fn off_level_records_zero_events() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Off);
    four_op_sum(&ctx);
    // No timeline is even allocated: the hot path pays one None check.
    assert!(ctx.tracer().timeline().is_none());
    assert_eq!(ctx.tracer().dropped_events(), 0);
    // The Chrome export is still a valid (empty) document.
    let doc = ctx.export_chrome_trace();
    let v: Value = serde_json::from_str(&doc).expect("empty trace doc parses");
    assert_eq!(v["traceEvents"].as_array().expect("traceEvents array").len(), 0);
    // No recorded passes => no critical-path rows either.
    let report = ctx.profile_report();
    assert!(report.critical_path.is_empty());
    assert_eq!(report.dropped_events, 0);
    assert_eq!(report.critical_path_table(), "");
}

#[test]
fn pass_levels_below_timeline_allocate_no_timeline() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Op);
    four_op_sum(&ctx);
    assert!(ctx.tracer().timeline().is_none());
    // But pass profiles alone still yield an aggregate breakdown.
    let report = ctx.profile_report();
    assert_eq!(report.critical_path.len(), 1);
    assert!(report.critical_path_table().contains("bound"));
}

#[test]
fn spans_pair_nest_and_stay_monotonic() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Timeline);
    four_op_sum(&ctx);
    let tl = ctx.tracer().timeline().expect("timeline level allocates one");
    let lanes = tl.snapshot();
    assert!(!lanes.is_empty());

    // The coordinator lane carries exactly one pass window.
    let coord = lanes.iter().find(|l| l.name == "coordinator").expect("coordinator lane");
    let pass_begin = coord
        .events
        .iter()
        .find(|e| e.kind == EventKind::Begin && e.name == "pass")
        .expect("pass begin");
    let pass_end = coord
        .events
        .iter()
        .find(|e| e.kind == EventKind::End && e.name == "pass")
        .expect("pass end");
    assert!(pass_begin.ts_ns <= pass_end.ts_ns);

    let mut saw_task = false;
    for lane in &lanes {
        // Begin/End events pair up like a well-formed bracket sequence
        // and their record-time timestamps never go backwards.
        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0u64;
        for ev in &lane.events {
            match ev.kind {
                EventKind::Begin => {
                    assert!(ev.ts_ns >= last_ts, "lane {} went backwards", lane.name);
                    last_ts = ev.ts_ns;
                    stack.push(ev.name.as_ref());
                }
                EventKind::End => {
                    assert!(ev.ts_ns >= last_ts, "lane {} went backwards", lane.name);
                    last_ts = ev.ts_ns;
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!("end '{}' without begin on lane {}", ev.name, lane.name)
                    });
                    assert_eq!(open, ev.name.as_ref(), "mismatched nesting on lane {}", lane.name);
                }
                _ => {}
            }
            if ev.kind == EventKind::Begin && ev.name == "task" {
                saw_task = true;
                // Every task span lives inside the pass window.
                assert!(ev.ts_ns >= pass_begin.ts_ns && ev.ts_ns <= pass_end.ts_ns);
                assert!(ev.args.contains(&("pass", 1)), "task tagged with its pass");
            }
        }
        assert!(stack.is_empty(), "unmatched begins {:?} on lane {}", stack, lane.name);
    }
    assert!(saw_task, "workers emitted task spans");
    assert_eq!(tl.dropped_events(), 0);
}

#[test]
fn event_budget_enforces_cap_and_counts_drops() {
    let tl = Timeline::new(8);
    let lane = tl.named_lane("w");
    for i in 0..20u64 {
        lane.counter("c", i, i);
    }
    assert_eq!(tl.total_events(), 8, "lane capped at its budget");
    assert_eq!(tl.dropped_events(), 12, "overflow counted, not silently lost");
}

#[test]
fn em_run_emits_spans_across_categories() {
    let dir = std::env::temp_dir().join(format!("flashr-timeline-em-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Explicit disks + backend pin the lane names below against the CI
    // `FLASHR_SAFS_SHARDS` / `FLASHR_BACKEND` overrides.
    let cfg = SafsConfig {
        disks: (0..2).map(|d| dir.join(format!("disk{d}"))).collect(),
        ..SafsConfig::single_dir(&dir)
    }
    .with_backend(flashr_safs::BackendKind::Sim);
    let safs = flashr_safs::Safs::open(cfg).unwrap();
    // A page cache so reads take the cached path (hit/miss instants).
    safs.set_page_cache(Some(CacheCfg::with_capacity(8 << 20)));
    let cfg = CtxConfig {
        nthreads: 2,
        rows_per_part: 64,
        storage: StorageClass::Em,
        trace: TraceLevel::Timeline,
        ..CtxConfig::default()
    };
    let ctx = FlashCtx::with_config(cfg, Some(safs));

    // Write a matrix to the SSD array, then read it back twice so the
    // second pass sees cache hits.
    let x = FM::runif(&ctx, 2000, 4, 0.0, 1.0, 11).materialize(&ctx);
    assert!(x.sum().value(&ctx).is_finite());
    assert!(x.sum().value(&ctx).is_finite());

    let tl = ctx.tracer().timeline().expect("timeline on");
    let lanes = tl.snapshot();
    let has = |cat: &str| lanes.iter().flat_map(|l| &l.events).any(|e| e.cat == cat);
    assert!(has("exec"), "executor spans recorded");
    assert!(has("io"), "SAFS I/O spans recorded");
    assert!(has("cache"), "page-cache spans recorded");
    // The I/O threads surface as their own named lanes, one group per
    // storage shard (`safs-<backend flavor>-s<shard>t<thread>`).
    assert!(lanes.iter().any(|l| l.name.starts_with("safs-sim-s0")), "shard 0 io lanes");
    assert!(lanes.iter().any(|l| l.name.starts_with("safs-sim-s1")), "shard 1 io lanes");

    // Per-pass critical-path rows ride in the profile report.
    let report = ctx.profile_report();
    assert!(!report.critical_path.is_empty());
    let table = report.critical_path_table();
    assert!(table.contains("bound"), "table: {table}");

    // The merged Chrome export parses and has >= 1 span per category.
    let doc = ctx.export_chrome_trace();
    let v: Value = serde_json::from_str(&doc).expect("chrome trace parses");
    let evs = v["traceEvents"].as_array().expect("traceEvents");
    for cat in ["exec", "io", "cache"] {
        assert!(
            evs.iter().any(|e| e["cat"].as_str() == Some(cat)),
            "no {cat} span in exported trace"
        );
    }
    // Report JSON also parses with a real parser, breakdown rows intact.
    let rj: Value = serde_json::from_str(&report.to_json()).expect("report json parses");
    let rows = rj["critical_path"].as_array().expect("critical_path array");
    assert!(!rows.is_empty());
    assert!(rows[0]["bound"].as_str().is_some());
    assert!(rows[0]["wall_nanos"].as_u64().is_some());

    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn json_escape_edge_cases_roundtrip() {
    // Control chars, quotes/backslashes, DEL, and non-BMP scalars must
    // all survive a real parser round-trip.
    for s in [
        "a\"b\\c\nd\u{1}e\u{7f}",
        "emoji \u{1F600} and beyond \u{10FFFF}",
        "tab\tret\rnl\n",
        "\u{0}\u{1f}",
        "plain ascii",
    ] {
        let mut out = String::new();
        json_escape(s, &mut out);
        let v: Value = serde_json::from_str(&out)
            .unwrap_or_else(|e| panic!("escaped {s:?} -> {out} unparsable: {e}"));
        assert_eq!(v.as_str(), Some(s), "round-trip of {s:?}");
    }
}

#[test]
fn json_f64_nonfinite_becomes_null() {
    for (x, null) in [
        (f64::NAN, true),
        (f64::INFINITY, true),
        (f64::NEG_INFINITY, true),
        (0.55, false),
        (-3.25, false),
        (0.0, false),
    ] {
        let mut out = String::new();
        json_f64(x, &mut out);
        let v: Value = serde_json::from_str(&out).expect("json_f64 output parses");
        assert_eq!(v.is_null(), null, "value {x}");
        if !null {
            assert!((v.as_f64().expect("number") - x).abs() < 1e-12);
        }
    }
}
