//! Transient I/O errors through the whole observability stack: bounded
//! retry-with-backoff in the backend workers, retry counters in the
//! metrics exposition, and the flight recorder dumping only when the
//! retry budget is exhausted — never for a retry that went on to
//! succeed.

use flashr_core::session::{CtxConfig, FlashCtx, StorageClass};
use flashr_safs::{RetryCfg, Safs, SafsConfig, SafsError};
use serde_json::Value;

fn em_ctx(tag: &str, retry: RetryCfg) -> (FlashCtx, Safs) {
    let dir = std::env::temp_dir().join(format!("flashr-io-retry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Explicit disk list so the CI shard-count override can't change the
    // geometry under the test.
    let cfg = SafsConfig {
        disks: (0..2).map(|d| dir.join(format!("disk{d}"))).collect(),
        ..SafsConfig::single_dir(&dir)
    }
    .with_retry(retry);
    let safs = Safs::open(cfg).unwrap();
    let ctx = FlashCtx::with_config(
        CtxConfig { nthreads: 2, rows_per_part: 64, storage: StorageClass::Em, ..CtxConfig::default() },
        Some(safs.clone()),
    );
    (ctx, safs)
}

#[test]
fn recovered_retries_count_but_do_not_dump() {
    let (ctx, safs) = em_ctx("ok", RetryCfg { max_attempts: 3, base_backoff_us: 1 });
    let f = safs.create("retry-ok", 4096, 4).unwrap();
    for p in 0..4 {
        f.write_part(p, &vec![p as u8; 4096]).unwrap();
    }
    // Two injected transient faults fit inside the 3-attempt budget, so
    // the read succeeds and the only trace is the retry counters.
    safs.inject_read_faults(2);
    for p in 0..4 {
        assert_eq!(f.read_part(p).unwrap().as_bytes(), &vec![p as u8; 4096][..]);
    }
    let snap = safs.stats_snapshot();
    assert_eq!(snap.io_retries, 2);
    assert_eq!(snap.read_reqs, 4, "retries are attempts, not extra requests");
    assert_eq!(
        safs.shard_stats_snapshots().iter().map(|s| s.retries).sum::<u64>(),
        2,
        "shard counters agree with the aggregate"
    );

    // The counter is visible in the Prometheus exposition, per shard too.
    let text = ctx.metrics_text();
    assert!(text.contains("flashr_io_retries_total 2"), "{text}");
    assert!(text.contains("flashr_io_shard_retries_total{shard="), "{text}");

    // …and in the profile-report JSON.
    let doc: Value = serde_json::from_str(&ctx.profile_report().to_json()).unwrap();
    assert_eq!(doc["io"]["io_retries"].as_u64(), Some(2), "{doc}");
    assert_eq!(doc["io_shards"].as_array().map(Vec::len), Some(2), "{doc}");

    // A recovered retry is not a fault: no flight-recorder dump.
    assert!(!ctx.flight_recorder().dumped());
}

#[test]
fn exhausted_retries_error_and_dump_flight_recorder() {
    let (ctx, safs) = em_ctx("fail", RetryCfg { max_attempts: 2, base_backoff_us: 1 });
    let path = std::env::temp_dir()
        .join(format!("flashr-io-retry-dump-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    ctx.flight_recorder().set_dump_path(&path);

    let f = safs.create("retry-fail", 4096, 1).unwrap();
    f.write_part(0, &vec![9u8; 4096]).unwrap();
    // Both attempts fail: the error surfaces to the caller and the
    // device emits an `io-error` span, which trips the recorder.
    safs.inject_read_faults(2);
    assert!(matches!(f.read_part(0), Err(SafsError::Io { .. })));
    assert!(ctx.flight_recorder().dumped(), "final failure must dump");

    let doc: Value =
        serde_json::from_str(&std::fs::read_to_string(&path).expect("dump written")).unwrap();
    assert_eq!(doc["reason"], "io-error");
    // The embedded metrics snapshot carries the retry counter: one retry
    // happened between the two failed attempts.
    let metrics = doc["metrics_text"].as_str().expect("metrics embedded");
    assert!(metrics.contains("flashr_io_retries_total 1"), "{metrics}");
    let _ = std::fs::remove_file(&path);
}
