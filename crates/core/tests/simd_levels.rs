//! Property tests for the SIMD dispatch levels (`FLASHR_SIMD`).
//!
//! The kernel layer promises two numerics contracts, checked here across
//! every dispatch level the host offers (`SimdLevel::available()`):
//!
//! * **Bit-identity** for all elementwise work and for every integer
//!   reduction: the AVX2 paths use only exactly-rounded instructions
//!   (add/sub/mul/div/sqrt/min/max and integer lanes), so switching
//!   `FLASHR_SIMD` may never change a single output bit.
//! * **Bounded reassociation** for float reductions and gemm: the lane
//!   kernels re-associate sums (8 f64 partials / register-blocked
//!   panels), which is allowed to drift from the strict left-to-right
//!   `off` fold by at most `n · ε · Σ|terms|` — the classic forward
//!   error bound for a length-`n` float summation with machine epsilon
//!   `ε` (Higham, *Accuracy and Stability of Numerical Algorithms*,
//!   §4.2). Anything beyond that bound is a kernel bug, not rounding.
//!
//! Chains are generated with a deterministic LCG, not proptest, so a
//! failure reproduces from the seed printed in the assert message.

use flashr_core::chunk::{BufPool, Chunk};
use flashr_core::dtype::{DType, Scalar};
use flashr_core::ops::fused_map::{ChainLink, ChainOpSpec, ChainOperand, FusedMapKernel};
use flashr_core::ops::simd::fold_col;
use flashr_core::ops::{AggOp, BinaryOp, UnaryOp};
use flashr_linalg::simd::{dot_f64, SimdLevel};
use flashr_linalg::gemm_strided_level;

/// Deterministic LCG (same multiplier as the bench probes).
fn lcg(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s
}

fn lcg_f64(s: &mut u64) -> f64 {
    (lcg(s) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
}

/// Levels to exercise: every one the host supports. `available()`
/// always contains Off and Scalar; Avx2 joins when the CPU has it.
fn levels() -> Vec<SimdLevel> {
    SimdLevel::available()
}

/// Forward error bound for a re-associated length-`n` summation:
/// `n · ε · Σ|x_i|`. Both sides of a comparison must sit within this of
/// each other since each is within half the bound of the true sum.
fn sum_bound(n: usize, abs_sum: f64) -> f64 {
    2.0 * n as f64 * f64::EPSILON * abs_sum
}

/// Run one chain at every level and return the raw output bytes.
fn run_chain_all_levels(links: &[ChainLink], base: &Chunk) -> Vec<(SimdLevel, Vec<u8>)> {
    levels()
        .into_iter()
        .map(|level| {
            let kernel = FusedMapKernel::compile_with_level(level, links);
            let mut pool = BufPool::new();
            let out = kernel.run(base, &[], &mut pool);
            (level, out.as_bytes().to_vec())
        })
        .collect()
}

fn assert_all_levels_identical(links: &[ChainLink], base: &Chunk, seed: u64) {
    let outs = run_chain_all_levels(links, base);
    let (l0, ref want) = outs[0];
    for (level, got) in &outs[1..] {
        assert_eq!(
            got, want,
            "chain output differs between {} and {} (seed {seed:#x}, links {links:?})",
            level.name(),
            l0.name(),
        );
    }
}

/// Random integer chain: every op here is exact on integers, so the
/// *values* (not just the rounding) must match across levels.
fn random_int_links(s: &mut u64, dtype: DType) -> Vec<ChainLink> {
    let n_links = 1 + (lcg(s) % 5) as usize;
    let mut links = Vec::with_capacity(n_links);
    for _ in 0..n_links {
        let c = (lcg(s) % 7) as i64 - 3;
        let scalar = match dtype {
            DType::I32 => Scalar::I32(c as i32),
            _ => Scalar::I64(c),
        };
        let op = match lcg(s) % 6 {
            0 => ChainOpSpec::Unary(UnaryOp::Neg),
            1 => ChainOpSpec::Unary(UnaryOp::Abs),
            2 => ChainOpSpec::Binary {
                op: BinaryOp::Add,
                swapped: lcg(s) & 1 == 0,
                operand: ChainOperand::Scalar(scalar),
            },
            3 => ChainOpSpec::Binary {
                op: BinaryOp::Mul,
                swapped: lcg(s) & 1 == 0,
                operand: ChainOperand::Scalar(scalar),
            },
            4 => ChainOpSpec::Binary {
                op: BinaryOp::Max,
                swapped: false,
                operand: ChainOperand::Scalar(scalar),
            },
            _ => ChainOpSpec::Binary {
                op: BinaryOp::Min,
                swapped: false,
                operand: ChainOperand::Scalar(scalar),
            },
        };
        links.push(ChainLink { op, in_dtype: dtype, out_dtype: dtype });
    }
    links
}

#[test]
fn integer_chains_bit_identical_across_levels() {
    let mut s = 0x5eed_0001u64;
    for trial in 0..32 {
        for &dtype in &[DType::I32, DType::I64] {
            let rows = 1 + (lcg(&mut s) % 2000) as usize; // odd sizes exercise tails
            let links = random_int_links(&mut s, dtype);
            let base = match dtype {
                DType::I32 => {
                    let v: Vec<i32> = (0..rows).map(|_| (lcg(&mut s) % 1000) as i32 - 500).collect();
                    Chunk::from_slice::<i32>(rows, 1, &v)
                }
                _ => {
                    let v: Vec<i64> = (0..rows).map(|_| (lcg(&mut s) % 1000) as i64 - 500).collect();
                    Chunk::from_slice::<i64>(rows, 1, &v)
                }
            };
            assert_all_levels_identical(&links, &base, s ^ trial);
        }
    }
}

#[test]
fn integer_reductions_bit_identical_across_levels() {
    let mut s = 0x5eed_0002u64;
    for _ in 0..32 {
        let rows = 1 + (lcg(&mut s) % 5000) as usize;
        let v: Vec<i64> = (0..rows).map(|_| (lcg(&mut s) % 2001) as i64 - 1000).collect();
        for &op in &[AggOp::Sum, AggOp::Min, AggOp::Max] {
            let want = fold_col::<i64>(SimdLevel::Off, op, op.identity(), &v);
            for level in levels() {
                let got = fold_col::<i64>(level, op, op.identity(), &v);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "i64 {op:?} differs at {} (n={rows})",
                    level.name()
                );
            }
        }
    }
}

#[test]
fn float_elementwise_bit_identical_across_levels() {
    // Covers the AVX2 explicit paths (mul/add/abs/sqrt/min/max/neg…):
    // all exactly-rounded, so float chains are bit-identical too.
    let mut s = 0x5eed_0003u64;
    let f = |op, in_dtype, out_dtype| ChainLink { op, in_dtype, out_dtype };
    for trial in 0..32 {
        let rows = 1 + (lcg(&mut s) % 3000) as usize;
        let n_links = 1 + (lcg(&mut s) % 5) as usize;
        let mut links = Vec::new();
        for _ in 0..n_links {
            let c = lcg_f64(&mut s) * 4.0;
            let op = match lcg(&mut s) % 8 {
                0 => ChainOpSpec::Unary(UnaryOp::Neg),
                1 => ChainOpSpec::Unary(UnaryOp::Abs),
                2 => ChainOpSpec::Unary(UnaryOp::Sqrt),
                3 => ChainOpSpec::Unary(UnaryOp::Square),
                4 => ChainOpSpec::Binary {
                    op: BinaryOp::Add,
                    swapped: lcg(&mut s) & 1 == 0,
                    operand: ChainOperand::Scalar(Scalar::F64(c)),
                },
                5 => ChainOpSpec::Binary {
                    op: BinaryOp::Mul,
                    swapped: lcg(&mut s) & 1 == 0,
                    operand: ChainOperand::Scalar(Scalar::F64(c)),
                },
                6 => ChainOpSpec::Binary {
                    op: BinaryOp::Max,
                    swapped: false,
                    operand: ChainOperand::Scalar(Scalar::F64(c)),
                },
                _ => ChainOpSpec::Binary {
                    op: BinaryOp::Div,
                    swapped: false,
                    operand: ChainOperand::Scalar(Scalar::F64(if c == 0.0 { 1.0 } else { c })),
                },
            };
            links.push(f(op, DType::F64, DType::F64));
        }
        let v: Vec<f64> = (0..rows).map(|_| lcg_f64(&mut s) * 100.0).collect();
        let base = Chunk::from_slice::<f64>(rows, 1, &v);
        assert_all_levels_identical(&links, &base, s ^ trial);
    }
}

#[test]
fn float_cast_chains_bit_identical_across_levels() {
    // Casts round; rounding is exact per element, so they too must be
    // bit-identical. f64 → f32 → f64 and f64 → i32 → f64 round trips.
    let mut s = 0x5eed_0004u64;
    for trial in 0..16 {
        let rows = 1 + (lcg(&mut s) % 2000) as usize;
        let links = vec![
            ChainLink { op: ChainOpSpec::Cast, in_dtype: DType::F64, out_dtype: DType::F32 },
            ChainLink { op: ChainOpSpec::Cast, in_dtype: DType::F32, out_dtype: DType::F64 },
            ChainLink { op: ChainOpSpec::Cast, in_dtype: DType::F64, out_dtype: DType::I32 },
            ChainLink { op: ChainOpSpec::Cast, in_dtype: DType::I32, out_dtype: DType::F64 },
        ];
        let v: Vec<f64> = (0..rows).map(|_| lcg_f64(&mut s) * 1000.0).collect();
        let base = Chunk::from_slice::<f64>(rows, 1, &v);
        assert_all_levels_identical(&links, &base, s ^ trial);
    }
}

#[test]
fn float_sum_within_reassociation_bound() {
    let mut s = 0x5eed_0005u64;
    for _ in 0..32 {
        let rows = 1 + (lcg(&mut s) % 20_000) as usize;
        let v: Vec<f64> = (0..rows).map(|_| lcg_f64(&mut s) * 1e6).collect();
        let abs_sum: f64 = v.iter().map(|x| x.abs()).sum();
        let bound = sum_bound(rows, abs_sum);
        let want = fold_col::<f64>(SimdLevel::Off, AggOp::Sum, 0.0, &v);
        for level in levels() {
            let got = fold_col::<f64>(level, AggOp::Sum, 0.0, &v);
            assert!(
                (got - want).abs() <= bound,
                "f64 sum at {}: |{got} - {want}| > bound {bound} (n={rows})",
                level.name()
            );
        }
        // Scalar and Avx2 share the 8-partial lane association, so they
        // are bit-identical to *each other* even where they drift from
        // the strict Off fold.
        let lanes = fold_col::<f64>(SimdLevel::Scalar, AggOp::Sum, 0.0, &v);
        for level in levels() {
            if level != SimdLevel::Off {
                let got = fold_col::<f64>(level, AggOp::Sum, 0.0, &v);
                assert_eq!(got.to_bits(), lanes.to_bits(), "lane sum differs at {}", level.name());
            }
        }
    }
}

#[test]
fn float_min_max_exact_across_levels() {
    // Min/max never round: every level must agree bit-for-bit.
    let mut s = 0x5eed_0006u64;
    for _ in 0..32 {
        let rows = 1 + (lcg(&mut s) % 20_000) as usize;
        let v: Vec<f64> = (0..rows).map(|_| lcg_f64(&mut s) * 1e6).collect();
        for &op in &[AggOp::Min, AggOp::Max] {
            let want = fold_col::<f64>(SimdLevel::Off, op, op.identity(), &v);
            for level in levels() {
                let got = fold_col::<f64>(level, op, op.identity(), &v);
                assert_eq!(got.to_bits(), want.to_bits(), "{op:?} differs at {}", level.name());
            }
        }
    }
}

#[test]
fn dot_within_reassociation_bound() {
    let mut s = 0x5eed_0007u64;
    for _ in 0..16 {
        let n = 1 + (lcg(&mut s) % 10_000) as usize;
        let a: Vec<f64> = (0..n).map(|_| lcg_f64(&mut s) * 100.0).collect();
        let b: Vec<f64> = (0..n).map(|_| lcg_f64(&mut s) * 100.0).collect();
        let abs_sum: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let bound = sum_bound(n, abs_sum);
        let want = dot_f64(SimdLevel::Off, &a, &b);
        for level in levels() {
            let got = dot_f64(level, &a, &b);
            assert!(
                (got - want).abs() <= bound,
                "dot at {}: |{got} - {want}| > bound {bound} (n={n})",
                level.name()
            );
        }
    }
}

#[test]
fn gemm_within_reassociation_bound() {
    // Each output element is a length-k dot product; the register-blocked
    // kernel re-associates it, so per-element error vs the naive triple
    // loop is bounded by `k · ε · Σ|a_il · b_lj|`.
    let mut s = 0x5eed_0008u64;
    for &(m, n, k) in &[(17usize, 13usize, 29usize), (64, 64, 64), (33, 47, 5)] {
        let a: Vec<f64> = (0..m * k).map(|_| lcg_f64(&mut s) * 10.0).collect();
        let b: Vec<f64> = (0..k * n).map(|_| lcg_f64(&mut s) * 10.0).collect();
        // Column-major: rs = 1, cs = rows.
        let naive = |i: usize, j: usize| -> (f64, f64) {
            let mut acc = 0.0;
            let mut abs = 0.0;
            for l in 0..k {
                let t = a[l * m + i] * b[j * k + l];
                acc += t;
                abs += t.abs();
            }
            (acc, abs)
        };
        for level in levels() {
            let mut c = vec![0.0f64; m * n];
            gemm_strided_level(level, m, n, k, 1.0, &a, 1, m, &b, 1, k, 0.0, &mut c, 1, m);
            for j in 0..n {
                for i in 0..m {
                    let (want, abs) = naive(i, j);
                    let got = c[j * m + i];
                    let bound = sum_bound(k, abs);
                    assert!(
                        (got - want).abs() <= bound,
                        "gemm[{i},{j}] at {}: |{got} - {want}| > bound {bound}",
                        level.name()
                    );
                }
            }
        }
    }
}
