//! The SA-cache + memory governor across the engine (ISSUE 3): warm
//! scans of an EM leaf hit the page cache instead of the device,
//! over-budget `set.cache` matrices spill to SAFS temporaries and
//! round-trip bit-identically, and a zero-size cache reproduces the
//! uncached read counts exactly.

use flashr_core::fm::FM;
use flashr_core::session::{CtxConfig, FlashCtx, MemBudget, StorageClass};
use flashr_safs::{CacheCfg, Safs, SafsConfig};

fn em_ctx(tag: &str, budget: Option<MemBudget>) -> FlashCtx {
    let dir = std::env::temp_dir().join(format!("flashr-cachetest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = Safs::open(SafsConfig::striped_under(dir, 2)).unwrap();
    FlashCtx::with_config(
        CtxConfig {
            rows_per_part: 256,
            storage: StorageClass::Em,
            mem_budget: budget,
            ..Default::default()
        },
        Some(safs),
    )
}

#[test]
fn warm_rescan_of_em_leaf_reads_no_device() {
    // Budget holds the whole input: after the cold pass, re-reads are
    // pure cache hits (the ISSUE's acceptance bar for iterative EM
    // workloads).
    let ctx = em_ctx("warm", Some(MemBudget::new(64 * 1024 * 1024)));
    let x = FM::runif(&ctx, 2048, 8, -1.0, 1.0, 42).materialize(&ctx);

    // Cold scan populates the cache.
    let cold_before = ctx.safs().unwrap().stats_snapshot();
    let first = x.col_sums().to_dense(&ctx);
    let cold = cold_before.delta(&ctx.safs().unwrap().stats_snapshot());
    assert!(cold.read_reqs > 0, "cold pass must read the device: {cold:?}");

    // Five warm re-materializations — an iterative algorithm's shape.
    let warm_before = ctx.safs().unwrap().stats_snapshot();
    for _ in 0..5 {
        let again = x.col_sums().to_dense(&ctx);
        assert!(again.max_abs_diff(&first) == 0.0, "cached reads changed the data");
    }
    let warm = warm_before.delta(&ctx.safs().unwrap().stats_snapshot());
    assert_eq!(warm.read_reqs, 0, "warm passes must be served by the cache: {warm:?}");
    assert!(warm.cache.hits > 0);
}

#[test]
fn over_budget_set_cache_spills_and_reloads() {
    // Pin budget of ~64 KiB (half of 128 KiB): a 2048x8 f64 cache
    // candidate (128 KiB) cannot pin and must spill to a SAFS temporary.
    let ctx = em_ctx("spill", Some(MemBudget::new(128 * 1024)));
    // The matrix itself lives in memory (leaf), only the set.cache
    // product is governed, so generate in-memory then cache a product.
    let x = FM::runif(&ctx, 2048, 8, -1.0, 1.0, 7);
    let y = x.square();
    y.set_cache(true);
    let ref_sum = y.sum().value(&ctx); // materializes and installs the cache

    match &y {
        FM::Tall { node, .. } => {
            let cached = node.cached().expect("set.cache result must be installed");
            assert!(cached.is_em(), "over-budget cache must spill to SAFS");
        }
        _ => unreachable!("square() of a tall matrix is tall"),
    }
    assert!(ctx.governor().spills() >= 1, "governor must record the spill");

    // The spilled matrix re-enters through the page cache and must be
    // bit-identical to the original computation.
    let reloaded = y.sum().value(&ctx);
    assert!(reloaded == ref_sum, "spill round-trip altered data");
}

#[test]
fn within_budget_set_cache_pins_in_memory() {
    let ctx = em_ctx("pin", Some(MemBudget::new(64 * 1024 * 1024)));
    let x = FM::runif(&ctx, 1024, 4, -1.0, 1.0, 3);
    let y = x.square();
    y.set_cache(true);
    let _ = y.sum().value(&ctx);
    match &y {
        FM::Tall { node, .. } => {
            assert!(!node.cached().unwrap().is_em(), "within-budget cache stays in memory");
        }
        _ => unreachable!(),
    }
    assert!(ctx.governor().pinned_bytes() >= 1024 * 4 * 8);
    assert_eq!(ctx.governor().spills(), 0);
}

#[test]
fn zero_capacity_cache_matches_uncached_read_counts() {
    // Two identical workloads: no cache configured vs. cache of size 0.
    // Their device read counts must agree exactly (ISSUE acceptance:
    // size 0 preserves today's behavior bit-identically).
    let run = |tag: &str, cache: Option<CacheCfg>| {
        let dir =
            std::env::temp_dir().join(format!("flashr-cache0-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = SafsConfig::striped_under(dir, 2);
        if let Some(c) = cache {
            cfg = cfg.with_cache(c);
        }
        let safs = Safs::open(cfg).unwrap();
        let ctx = FlashCtx::with_config(
            CtxConfig { rows_per_part: 256, storage: StorageClass::Em, ..Default::default() },
            Some(safs),
        );
        let x = FM::runif(&ctx, 2048, 8, -1.0, 1.0, 11).materialize(&ctx);
        let before = ctx.safs().unwrap().stats_snapshot();
        let s1 = x.col_sums().to_dense(&ctx);
        let s2 = x.col_sums().to_dense(&ctx);
        assert!(s1.max_abs_diff(&s2) == 0.0);
        let io = before.delta(&ctx.safs().unwrap().stats_snapshot());
        (io.read_reqs, io.read_bytes)
    };
    let uncached = run("none", None);
    let zero = run("zero", Some(CacheCfg::with_capacity(0)));
    assert_eq!(uncached, zero, "a zero-size cache must not change device traffic");
}
