//! Integration tests for the always-on metrics layer: engine counters
//! surfacing in the Prometheus exposition after a materialization,
//! allocation-free hot-path recording (checked with a counting global
//! allocator), the HTTP scrape listener end-to-end, and a forced flight
//! recorder dump carrying exec spans plus a metrics snapshot.
//!
//! The panic-triggered dump lives in its own binary
//! (`tests/flight_recorder.rs`): the panic hook dumps every live
//! recorder in the process, so it must not share a process with tests
//! that build contexts of their own.

use flashr_core::fm::FM;
use flashr_core::ops::BinaryOp;
use flashr_core::session::{CtxConfig, ExecMode, FlashCtx};
use flashr_core::metrics::serve::{MetricsServer, RenderFn};
use serde_json::Value;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// System allocator wrapped with a per-thread allocation counter, so a
/// test can assert that a code region allocates nothing on its thread
/// without being confused by concurrent test threads.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: the TLS slot may already be gone during thread
        // teardown; those allocations are not ours to count.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn small_ctx() -> FlashCtx {
    let cfg = CtxConfig {
        nthreads: 2,
        mode: ExecMode::CacheFuse,
        rows_per_part: 64,
        ..CtxConfig::default()
    };
    FlashCtx::with_config(cfg, None)
}

/// A two-op materialization so the exec counters move.
fn run_once(ctx: &FlashCtx) -> f64 {
    let x = FM::runif(ctx, 1000, 4, 0.0, 1.0, 7);
    x.binary_scalar(BinaryOp::Mul, 2.0, false).sum().value(ctx)
}

#[test]
fn handle_updates_are_visible_in_metrics_text() {
    let ctx = small_ctx();
    let reqs = ctx.metrics().counter("test_requests_total", "test counter", &[("op", "read")]);
    let depth = ctx.metrics().gauge("test_depth", "test gauge", &[]);
    let lat = ctx.metrics().histogram("test_latency_ns", "test histogram", &[]);
    reqs.add(3);
    depth.set(7);
    lat.record(100);
    lat.record(200_000);
    let text = ctx.metrics_text();
    assert!(text.contains("# TYPE test_requests_total counter"), "{text}");
    assert!(text.contains("test_requests_total{op=\"read\"} 3\n"), "{text}");
    assert!(text.contains("test_depth 7\n"), "{text}");
    assert!(text.contains("# TYPE test_latency_ns histogram"), "{text}");
    assert!(text.contains("test_latency_ns_count 2\n"), "{text}");
    assert!(text.contains("test_latency_ns_sum 200100\n"), "{text}");
    // Later updates show up on the next render without re-registering.
    reqs.inc();
    let text = ctx.metrics_text();
    assert!(text.contains("test_requests_total{op=\"read\"} 4\n"), "{text}");
}

#[test]
fn engine_counters_flow_into_the_exposition() {
    let ctx = small_ctx();
    run_once(&ctx);
    let text = ctx.metrics_text();
    // 1000 rows / 64 rows-per-part = 16 partitions in one pass.
    assert!(text.contains("flashr_exec_passes_total 1\n"), "{text}");
    assert!(text.contains("flashr_exec_parts_total 16\n"), "{text}");
    // The NUMA split accounts for every partition.
    let numa: u64 = ["local", "remote"]
        .iter()
        .map(|k| {
            let needle = format!("flashr_exec_parts_numa_total{{numa=\"{k}\"}} ");
            text.lines()
                .find_map(|l| l.strip_prefix(&needle))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(numa, 16, "{text}");
    // The always-on worker time breakdown moved.
    let compute = text
        .lines()
        .find_map(|l| l.strip_prefix("flashr_exec_compute_nanos_total "))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("compute nanos exported");
    assert!(compute > 0, "{text}");
    // The governor source reports even with no budget set.
    assert!(text.contains("flashr_mem_budget_bytes 0\n"), "{text}");
    // No '# TYPE' line repeats (one family header per name).
    let mut seen = std::collections::HashSet::new();
    for l in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        assert!(seen.insert(l.to_string()), "duplicate family header: {l}");
    }
}

#[test]
fn hot_path_recording_does_not_allocate() {
    let ctx = small_ctx();
    // Registration (interning, label clones) pays its allocations here.
    let c = ctx.metrics().counter("hot_total", "hot-path counter", &[("lane", "w0")]);
    let g = ctx.metrics().gauge("hot_depth", "hot-path gauge", &[]);
    let h = ctx.metrics().histogram("hot_ns", "hot-path histogram", &[]);
    // Warm up so lazy TLS or one-time setup is done.
    c.inc();
    g.set(1);
    h.record(1);
    let before = allocs_on_this_thread();
    for i in 0..10_000u64 {
        c.inc();
        c.add(2);
        g.set(i);
        h.record(i);
    }
    let after = allocs_on_this_thread();
    assert_eq!(after - before, 0, "hot-path recording must not allocate");
}

#[test]
fn scrape_listener_serves_the_context_exposition() {
    let ctx = small_ctx();
    run_once(&ctx);
    // Bind directly (not via FLASHR_METRICS_ADDR) so parallel tests in
    // this binary don't race over the env-claimed address.
    let hub = ctx.metrics().clone();
    let render: RenderFn = Arc::new(move || hub.render_text());
    let srv = MetricsServer::start("127.0.0.1:0", render).expect("bind scrape listener");
    let mut s = TcpStream::connect(srv.addr()).expect("connect");
    write!(s, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
    assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
    assert!(resp.contains("# TYPE flashr_exec_passes_total counter"), "{resp}");
    assert!(resp.contains("flashr_exec_passes_total 1\n"), "{resp}");
    assert!(resp.contains("flashr_metrics_scrapes_total"), "{resp}");
}

#[test]
fn forced_flight_dump_carries_exec_spans_and_metrics() {
    let ctx = small_ctx();
    run_once(&ctx);
    let path = std::env::temp_dir().join(format!("flashr-flight-forced-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    ctx.flight_recorder().set_dump_path(&path);
    let written = ctx.flight_recorder().dump_now("forced").expect("dump written");
    assert_eq!(written, path);
    let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).expect("dump readable"))
        .expect("dump parses as JSON");
    assert_eq!(doc["reason"], "forced");
    let lanes = doc["lanes"].as_array().expect("lanes array");
    let exec_events = lanes
        .iter()
        .flat_map(|l| l["events"].as_array().cloned().unwrap_or_default())
        .filter(|e| e["cat"] == "exec")
        .count();
    assert!(exec_events >= 1, "expected exec spans in {doc}");
    // Worker task spans and the coordinator pass span both survive.
    let names: Vec<String> = lanes
        .iter()
        .flat_map(|l| l["events"].as_array().cloned().unwrap_or_default())
        .filter_map(|e| e["name"].as_str().map(str::to_string))
        .collect();
    assert!(names.iter().any(|n| n == "task"), "{names:?}");
    assert!(names.iter().any(|n| n == "pass"), "{names:?}");
    let metrics_text = doc["metrics_text"].as_str().expect("metrics snapshot embedded");
    assert!(metrics_text.contains("flashr_exec_passes_total"), "{metrics_text}");
    // A second forced dump is refused (one dump per recorder).
    assert!(ctx.flight_recorder().dump_now("again").is_none());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flight_recorder_is_bounded_at_off_trace_level() {
    let ctx = small_ctx();
    assert!(ctx.tracer().timeline().is_none(), "trace defaults off in tests");
    for _ in 0..4 {
        run_once(&ctx);
    }
    let fr = ctx.flight_recorder();
    // Events were recorded even though tracing is off…
    assert!(fr.total_events() > 0);
    // …but every lane stays within the ring budget.
    let budget = std::env::var("FLASHR_FLIGHT_EVENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(flashr_core::metrics::flight::DEFAULT_EVENTS_PER_LANE);
    // 3 lanes max here (2 workers + coordinator).
    assert!(fr.total_events() <= budget * 3, "{} events", fr.total_events());
}
