//! Integration tests for the execution tracing layer: pass counters
//! across the Fig. 10 engine modes, `explain()` rendering, trace-level
//! gating, and the JSON metrics export.

use flashr_core::fm::FM;
use flashr_core::ops::{BinaryOp, UnaryOp};
use flashr_core::session::{CtxConfig, ExecMode, FlashCtx, StorageClass};
use flashr_core::trace::TraceLevel;
use flashr_safs::SafsConfig;

fn ctx_with(mode: ExecMode, trace: TraceLevel) -> FlashCtx {
    let cfg = CtxConfig {
        nthreads: 2,
        mode,
        rows_per_part: 64,
        trace,
        ..CtxConfig::default()
    };
    FlashCtx::with_config(cfg, None)
}

/// A 4-op DAG over one generated leaf: gen -> x2 -> +1 -> sqrt, then a
/// full-sum sink.
fn four_op_sum(ctx: &FlashCtx) -> f64 {
    let x = FM::runif(ctx, 1000, 4, 0.0, 1.0, 7);
    let y = x
        .binary_scalar(BinaryOp::Mul, 2.0, false)
        .binary_scalar(BinaryOp::Add, 1.0, false)
        .unary(UnaryOp::Sqrt);
    y.sum().value(ctx)
}

#[test]
fn pass_counters_across_engine_modes() {
    // Same DAG under all three Fig. 10 configurations; results agree and
    // the pass counters expose the engines' different data movement.
    let fused = ctx_with(ExecMode::CacheFuse, TraceLevel::Off);
    let memfuse = ctx_with(ExecMode::MemFuse, TraceLevel::Off);
    let eager = ctx_with(ExecMode::Eager, TraceLevel::Off);

    let a = fused.stats().snapshot();
    let v_fused = four_op_sum(&fused);
    let d_fused = a.delta(&fused.stats().snapshot());

    let a = memfuse.stats().snapshot();
    let v_memfuse = four_op_sum(&memfuse);
    let d_memfuse = a.delta(&memfuse.stats().snapshot());

    let a = eager.stats().snapshot();
    let v_eager = four_op_sum(&eager);
    let d_eager = a.delta(&eager.stats().snapshot());

    assert!((v_fused - v_memfuse).abs() < 1e-9);
    assert!((v_fused - v_eager).abs() < 1e-9);

    // Fused engines: the whole DAG is one pass.
    assert_eq!(d_fused.passes, 1, "cache-fuse runs one pass");
    assert_eq!(d_memfuse.passes, 1, "mem-fuse runs one pass");
    // Eager: one pass per interior op (scale, shift, sqrt) plus the sink.
    assert_eq!(d_eager.passes, 4, "eager runs one pass per op");
    // Eager moves strictly more partitions for the same answer.
    assert!(d_eager.parts > d_fused.parts);
    // All modes actually processed partitions (1000 rows / 64 = 16 parts).
    assert_eq!(d_fused.parts, 16);
    assert_eq!(d_memfuse.parts, 16);
    assert!(d_fused.pcache_chunks >= d_fused.parts);
}

#[test]
fn trace_off_records_nothing() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Off);
    four_op_sum(&ctx);
    assert!(ctx.tracer().passes().is_empty());
    let report = ctx.profile_report();
    assert!(report.passes.is_empty());
    // The always-on counters still flow into the report.
    assert_eq!(report.exec.passes, 1);
}

#[test]
fn trace_summary_records_no_passes() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Summary);
    four_op_sum(&ctx);
    assert!(ctx.tracer().passes().is_empty());
}

#[test]
fn trace_pass_records_profiles_without_ops() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Pass);
    four_op_sum(&ctx);
    let passes = ctx.tracer().passes();
    assert_eq!(passes.len(), 1);
    let p = &passes[0];
    assert_eq!(p.engine, "fused");
    assert_eq!(p.mode, "CacheFuse");
    assert_eq!(p.nparts, 16);
    assert_eq!(p.sinks, 1);
    assert_eq!(p.talls, 0);
    // gen + 3 maps + sink
    assert_eq!(p.nodes, 5);
    assert!(!p.workers.is_empty());
    assert_eq!(p.workers.iter().map(|w| w.parts).sum::<u64>(), 16);
    assert_eq!(p.pcache_chunks(), 16); // 4 f64 cols * 64 rows fits one chunk
    let (local, remote) = p.numa_split();
    assert_eq!(local + remote, 16);
    assert!(p.wall_nanos > 0);
    // Op timings require TraceLevel::Op.
    assert!(p.ops.is_empty());
}

#[test]
fn trace_op_records_per_node_timings() {
    // Chain fusion compiles scale -> shift -> sqrt into one kernel, so
    // the per-node trace shows gen + a single chain root standing in for
    // all three maps.
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Op);
    four_op_sum(&ctx);
    let passes = ctx.tracer().passes();
    assert_eq!(passes.len(), 1);
    let ops = &passes[0].ops;
    assert_eq!(ops.len(), 2, "ops: {ops:?}");
    let labels: Vec<&str> = ops.iter().map(|o| o.label.as_str()).collect();
    assert!(labels.contains(&"gen"), "labels: {labels:?}");
    let chain = ops.iter().find(|o| o.label.starts_with("chain[")).expect("chain profile");
    assert_eq!(chain.chain_len, 3, "three fused ops");
    assert!(chain.label.contains("mapply:Mul"), "label: {}", chain.label);
    assert!(chain.label.contains("sapply:Sqrt"), "label: {}", chain.label);
    assert!(chain.saved_bytes > 0, "interior chunks were skipped");
    for op in ops {
        assert_eq!(op.chunks, 16, "each node evaluates once per chunk range");
    }
}

#[test]
fn trace_op_unfused_shows_every_node() {
    // With chain fusion off the interpreter path evaluates each map
    // separately — the historical per-node trace shape.
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Op).with_fuse_chains(false);
    four_op_sum(&ctx);
    let passes = ctx.tracer().passes();
    assert_eq!(passes.len(), 1);
    let ops = &passes[0].ops;
    // gen, scale, shift, sqrt (the sink accumulates outside eval()).
    assert_eq!(ops.len(), 4);
    let labels: Vec<&str> = ops.iter().map(|o| o.label.as_str()).collect();
    assert!(labels.contains(&"gen"), "labels: {labels:?}");
    assert!(labels.iter().filter(|l| l.starts_with("mapply:")).count() >= 2, "labels: {labels:?}");
    assert!(labels.iter().any(|l| l.starts_with("sapply:")), "labels: {labels:?}");
    for op in ops {
        assert_eq!(op.chunks, 16, "each node evaluates once per chunk range");
        assert_eq!(op.chain_len, 0, "no chains when fusion is off");
    }
}

#[test]
fn eager_passes_are_labeled() {
    let ctx = ctx_with(ExecMode::Eager, TraceLevel::Pass);
    four_op_sum(&ctx);
    let passes = ctx.tracer().passes();
    assert_eq!(passes.len(), 4);
    assert_eq!(passes.iter().filter(|p| p.engine == "eager-step").count(), 3);
    assert_eq!(passes.iter().filter(|p| p.engine == "eager-target").count(), 1);
    // Pass ids are the context's monotonic pass counter.
    let ids: Vec<u64> = passes.iter().map(|p| p.pass_id).collect();
    assert_eq!(ids, vec![1, 2, 3, 4]);
}

#[test]
fn em_pass_profile_shows_io_and_compute() {
    let dir = std::env::temp_dir().join(format!("flashr-trace-em-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = flashr_safs::Safs::open(SafsConfig::striped_under(&dir, 2)).unwrap();
    let cfg = CtxConfig {
        nthreads: 2,
        rows_per_part: 64,
        storage: StorageClass::Em,
        trace: TraceLevel::Pass,
        ..CtxConfig::default()
    };
    let ctx = FlashCtx::with_config(cfg, Some(safs));

    // Materialize onto the SSD array, then aggregate it back off.
    let x = FM::runif(&ctx, 2000, 4, 0.0, 1.0, 11).materialize(&ctx);
    let s = x.sum().value(&ctx);
    assert!(s.is_finite());

    let passes = ctx.tracer().passes();
    assert_eq!(passes.len(), 2);
    // Pass 1 writes the EM matrix; pass 2 reads it back.
    let write_pass = &passes[0];
    let read_pass = &passes[1];
    assert_eq!(write_pass.talls, 1);
    assert_eq!(read_pass.sinks, 1);
    for p in [write_pass, read_pass] {
        assert!(
            p.io_wait_nanos() + p.compute_nanos() > 0,
            "EM pass must show nonzero io-wait+compute: {p:?}"
        );
    }
    // Reading EM leaves actually waits on the I/O threads.
    assert!(read_pass.io_wait_nanos() > 0, "EM read pass must wait on I/O");

    // The report carries SAFS I/O stats with populated histograms.
    let report = ctx.profile_report();
    let io = report.io.expect("EM context has I/O stats");
    assert!(io.read_reqs > 0 && io.write_reqs > 0);
    assert!(io.read_lat.count() > 0 && io.write_lat.count() > 0);
    assert!(io.max_queue_depth >= 1);
    drop(ctx);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explain_renders_the_pending_dag() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Off);
    let x = FM::runif(&ctx, 1000, 4, 0.0, 1.0, 7);
    let y = x.binary_scalar(BinaryOp::Mul, 2.0, false).binary_scalar(BinaryOp::Add, 1.0, false);
    let s = y.col_sums();

    let text = s.explain(&ctx);
    assert!(text.starts_with("plan: 4 nodes, 16 parts x 64 rows"), "got: {text}");
    assert!(text.contains("sink (slot 0):"), "got: {text}");
    assert!(text.contains("agg.col:Sum [1x4 F64]"), "got: {text}");
    assert!(text.contains("mapply:Add [1000x4 F64]"), "got: {text}");
    assert!(text.contains("mapply:Mul [1000x4 F64]"), "got: {text}");
    assert!(text.contains("gen [1000x4 F64]"), "got: {text}");
    // Indentation deepens along the chain.
    let sink_line = text.lines().find(|l| l.contains("agg.col")).unwrap();
    let gen_line = text.lines().find(|l| l.contains("gen")).unwrap();
    let indent = |l: &str| l.len() - l.trim_start().len();
    assert!(indent(gen_line) > indent(sink_line));

    // Materialized matrices have no pending DAG.
    let mat = y.materialize(&ctx);
    assert!(mat.explain(&ctx).contains("already materialized"));
}

#[test]
fn explain_dot_is_valid_dot() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Off);
    let x = FM::runif(&ctx, 1000, 4, 0.0, 1.0, 7);
    let leafed = x.materialize(&ctx); // a real leaf, drawn outside the cluster
    let s = leafed.binary_scalar(BinaryOp::Mul, 3.0, false).col_sums();

    let dot = s.explain_dot(&ctx);
    assert!(dot.starts_with("digraph flashr_plan {"), "got: {dot}");
    assert!(dot.trim_end().ends_with('}'), "got: {dot}");
    assert!(dot.contains("subgraph cluster_fused"), "got: {dot}");
    assert!(dot.contains("leaf"), "got: {dot}");
    assert!(dot.contains("->"), "got: {dot}");
    assert!(dot.contains("1000x4 F64"), "got: {dot}");
    // Balanced braces make it parseable DOT.
    assert_eq!(
        dot.chars().filter(|&c| c == '{').count(),
        dot.chars().filter(|&c| c == '}').count()
    );
    // Every edge endpoint is a declared node.
    for line in dot.lines().filter(|l| l.contains("->")) {
        let edge = line.trim().trim_end_matches(';');
        let (from, to) = edge.split_once(" -> ").expect("edge syntax");
        for id in [from, to] {
            assert!(
                dot.lines().any(|l| l.trim_start().starts_with(&format!("{id} ["))),
                "edge endpoint {id} not declared in: {dot}"
            );
        }
    }
}

#[test]
fn profile_report_json_parses() {
    let ctx = ctx_with(ExecMode::CacheFuse, TraceLevel::Op);
    four_op_sum(&ctx);
    let json = ctx.profile_report().to_json();
    let mut p = JsonParser { s: json.as_bytes(), i: 0 };
    p.skip_ws();
    assert!(p.value(), "invalid JSON at byte {}: {json}", p.i);
    p.skip_ws();
    assert_eq!(p.i, p.s.len(), "trailing garbage in JSON: {json}");
    assert!(json.contains("\"engine\":\"fused\""));
    assert!(json.contains("\"io\":null"));
    assert!(json.contains("\"ops\":["));
}

/// A minimal recursive-descent JSON syntax checker (tests only — the
/// point is validating the hand-rolled serializer without serde).
struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        self.skip_ws();
        if self.i >= self.s.len() {
            return false;
        }
        match self.s[self.i] {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.lit(b"true"),
            b'f' => self.lit(b"false"),
            b'n' => self.lit(b"null"),
            _ => self.number(),
        }
    }

    fn lit(&mut self, w: &[u8]) -> bool {
        if self.s[self.i..].starts_with(w) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    fn object(&mut self) -> bool {
        if !self.eat(b'{') {
            return false;
        }
        if self.eat(b'}') {
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() || !self.eat(b':') || !self.value() {
                return false;
            }
            if self.eat(b'}') {
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn array(&mut self) -> bool {
        if !self.eat(b'[') {
            return false;
        }
        if self.eat(b']') {
            return true;
        }
        loop {
            if !self.value() {
                return false;
            }
            if self.eat(b']') {
                return true;
            }
            if !self.eat(b',') {
                return false;
            }
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return true;
                }
                b'\\' => self.i += 2,
                _ => self.i += 1,
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        let start = self.i;
        while self.i < self.s.len()
            && matches!(self.s[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.i += 1;
        }
        self.i > start
    }
}
