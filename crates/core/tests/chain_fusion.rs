//! Randomized property tests for map-chain fusion: arbitrary chains of
//! unary / binary / cast links must be **bit-identical** between
//! `fuse_chains` on and off and between the fused and eager engines —
//! the fused kernels reuse the interpreter's element kernels, so any
//! bit difference is a wiring bug, not a rounding question.

use flashr_core::dtype::DType;
use flashr_core::fm::FM;
use flashr_core::ops::{BinaryOp, UnaryOp};
use flashr_core::session::{CtxConfig, ExecMode, FlashCtx};

/// Deterministic xorshift64 — no external RNG dependency.
fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn ctx(mode: ExecMode, nthreads: usize, fuse_chains: bool) -> FlashCtx {
    let cfg = CtxConfig {
        nthreads,
        mode,
        rows_per_part: 64,
        fuse_chains,
        ..CtxConfig::default()
    };
    FlashCtx::with_config(cfg, None)
}

const UNARIES: &[UnaryOp] = &[
    UnaryOp::Abs,
    UnaryOp::Sqrt,
    UnaryOp::Square,
    UnaryOp::Sigmoid,
    UnaryOp::Floor,
    UnaryOp::Neg,
    UnaryOp::Round,
    UnaryOp::Sign,
];

const SCALAR_OPS: &[(BinaryOp, f64)] = &[
    (BinaryOp::Add, 0.5),
    (BinaryOp::Mul, 1.5),
    (BinaryOp::Sub, 0.25),
    (BinaryOp::Div, 2.0),
    (BinaryOp::Max, 0.1),
    (BinaryOp::Min, 3.0),
];

const CASTS: &[DType] = &[DType::F32, DType::I32, DType::I64, DType::F64];

/// Append `len` random element-wise links to `x`. `y` is a materialized
/// same-shape operand (exercises chunk-operand links); the predicate arm
/// crosses the U8 dtype boundary mid-chain. Ends on a cast back to F64
/// so `to_vec` comparisons are uniform (elided when already F64).
fn random_chain(rng: &mut u64, x: &FM, y: &FM, len: usize) -> FM {
    let mut cur = x.clone();
    for _ in 0..len {
        cur = match xorshift(rng) % 6 {
            0 => {
                let u = UNARIES[(xorshift(rng) as usize) % UNARIES.len()];
                cur.unary(u)
            }
            1 => {
                let (op, s) = SCALAR_OPS[(xorshift(rng) as usize) % SCALAR_OPS.len()];
                cur.binary_scalar(op, s, xorshift(rng).is_multiple_of(2))
            }
            2 => {
                let stats: Vec<f64> = (0..cur.ncol()).map(|c| 0.25 + 0.5 * c as f64).collect();
                cur.sweep_cols(&stats, BinaryOp::Sub)
            }
            3 => cur.cast(CASTS[(xorshift(rng) as usize) % CASTS.len()]),
            4 => cur.binary(BinaryOp::Add, y, false),
            _ => cur.binary_scalar(BinaryOp::Gt, 0.4, false),
        };
    }
    cur.cast(DType::F64)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
    }
}

#[test]
fn random_chains_bit_identical_fused_vs_unfused_vs_eager() {
    let fused = ctx(ExecMode::CacheFuse, 2, true);
    let unfused = ctx(ExecMode::CacheFuse, 2, false);
    let eager = ctx(ExecMode::Eager, 2, true); // fuse flag is inert in eager mode
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    for trial in 0..20u64 {
        let x = FM::runif(&fused, 500, 3, -1.0, 1.0, 100 + trial);
        let y = FM::runif(&fused, 500, 3, 0.0, 1.0, 200 + trial).materialize(&fused);
        let len = 2 + (xorshift(&mut rng) % 7) as usize;
        let chain = random_chain(&mut rng, &x, &y, len);
        let a = chain.materialize(&fused).to_vec(&fused);
        let b = chain.materialize(&unfused).to_vec(&unfused);
        let c = chain.materialize(&eager).to_vec(&eager);
        assert_bits_eq(&a, &b, &format!("trial {trial} fused vs unfused"));
        assert_bits_eq(&a, &c, &format!("trial {trial} fused vs eager"));
    }
}

#[test]
fn random_chains_feeding_sinks_bit_identical() {
    // Sinks accumulate in pass order, so bit-identity across engines
    // needs matching chunking: fused-vs-unfused share the Pcache step
    // (fusion does not change it by design), and MemFuse-vs-Eager both
    // run whole-partition steps. Single-threaded so merge order is
    // deterministic too.
    let fused = ctx(ExecMode::CacheFuse, 1, true);
    let unfused = ctx(ExecMode::CacheFuse, 1, false);
    let mf_fused = ctx(ExecMode::MemFuse, 1, true);
    let eager = ctx(ExecMode::Eager, 1, false);
    let mut rng = 0xDEAD_BEEF_CAFE_F00Du64;
    for trial in 0..10u64 {
        let x = FM::runif(&fused, 700, 2, 0.0, 1.0, 300 + trial);
        let y = FM::runif(&fused, 700, 2, 0.0, 1.0, 400 + trial).materialize(&fused);
        let len = 3 + (xorshift(&mut rng) % 5) as usize;
        let chain = random_chain(&mut rng, &x, &y, len);
        let s_f = chain.sum().value(&fused);
        let s_u = chain.sum().value(&unfused);
        assert_eq!(s_f.to_bits(), s_u.to_bits(), "trial {trial}: {s_f} vs {s_u}");
        let s_m = chain.clone().sum().value(&mf_fused);
        let s_e = chain.sum().value(&eager);
        assert_eq!(s_m.to_bits(), s_e.to_bits(), "trial {trial}: {s_m} vs {s_e}");
    }
}

#[test]
fn fusion_reduces_chunk_allocations_and_bytes() {
    let fused = ctx(ExecMode::CacheFuse, 2, true);
    let unfused = ctx(ExecMode::CacheFuse, 2, false);
    let build = |x: &FM| {
        x.binary_scalar(BinaryOp::Mul, 2.0, false)
            .binary_scalar(BinaryOp::Add, 1.0, false)
            .unary(UnaryOp::Sqrt)
            .unary(UnaryOp::Square)
    };
    let x = FM::runif(&fused, 2000, 4, 0.0, 1.0, 42);

    let before = fused.stats().snapshot();
    let vf = build(&x).materialize(&fused).to_vec(&fused);
    let df = before.delta(&fused.stats().snapshot());

    let before = unfused.stats().snapshot();
    let vu = build(&x).materialize(&unfused).to_vec(&unfused);
    let du = before.delta(&unfused.stats().snapshot());

    assert_bits_eq(&vf, &vu, "fused vs unfused");
    assert!(
        df.node_chunks < du.node_chunks,
        "fused must allocate fewer chunks: {} vs {}",
        df.node_chunks,
        du.node_chunks
    );
    assert!(
        df.node_chunk_bytes < du.node_chunk_bytes,
        "fused must move fewer bytes: {} vs {}",
        df.node_chunk_bytes,
        du.node_chunk_bytes
    );
    assert!(df.fused_chains > 0, "chains must actually run fused");
    assert!(df.fused_saved_bytes > 0);
    assert_eq!(du.fused_chains, 0, "fuse_chains=false must not fuse");
    assert_eq!(du.fused_saved_bytes, 0);
}

#[test]
fn chain_crossing_predicate_boundary_fuses() {
    // gt → U8, cast back up, scale: three links spanning two dtype
    // boundaries compile into one kernel.
    let fused = ctx(ExecMode::CacheFuse, 2, true);
    let unfused = ctx(ExecMode::CacheFuse, 2, false);
    let x = FM::runif(&fused, 1000, 3, 0.0, 1.0, 7);
    let chain =
        x.binary_scalar(BinaryOp::Gt, 0.5, false).cast(DType::F64).binary_scalar(BinaryOp::Mul, 3.0, false);

    let before = fused.stats().snapshot();
    let a = chain.materialize(&fused).to_vec(&fused);
    let d = before.delta(&fused.stats().snapshot());
    assert!(d.fused_chains > 0, "predicate chain must fuse");

    let b = chain.materialize(&unfused).to_vec(&unfused);
    assert_bits_eq(&a, &b, "predicate chain");
}

#[test]
fn chain_root_feeding_both_tall_and_sink() {
    // The root has two consumers (tall target + sink input); the chain
    // still fuses — only *interior* links must be single-consumer — but
    // the direct-to-tall shortcut must not steal the sink's chunk.
    let fused = ctx(ExecMode::CacheFuse, 2, true);
    let unfused = ctx(ExecMode::CacheFuse, 2, false);
    let x = FM::runif(&fused, 900, 2, 0.0, 1.0, 13);
    let chain = x
        .binary_scalar(BinaryOp::Add, 0.25, false)
        .unary(UnaryOp::Sqrt)
        .binary_scalar(BinaryOp::Mul, 0.5, false);
    let total = chain.sum();

    let outs_f = FM::materialize_multi(&fused, &[&chain, &total]);
    let outs_u = FM::materialize_multi(&unfused, &[&chain, &total]);
    assert_bits_eq(
        &outs_f[0].to_vec(&fused),
        &outs_u[0].to_vec(&unfused),
        "tall output",
    );
    assert_eq!(
        outs_f[1].value(&fused).to_bits(),
        outs_u[1].value(&unfused).to_bits(),
        "sink output"
    );
}
