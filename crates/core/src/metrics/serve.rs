//! A minimal blocking HTTP scrape listener for the metrics hub.
//!
//! std-only by design (one `TcpListener`, one accept thread): flashr
//! takes no HTTP dependency for the sake of a scrape endpoint. The
//! listener answers `GET /metrics` with the Prometheus text exposition
//! and `GET /healthz` with `ok`; everything else is a 404. One request
//! per connection, `Connection: close` — exactly the shape Prometheus'
//! scraper (or `curl`) sends.
//!
//! Enabled by setting `FLASHR_METRICS_ADDR` (e.g. `127.0.0.1:9189`, or
//! port `0` to let the OS pick); [`claim_metrics_addr`] hands the value
//! to the first context that asks, so two contexts in one process don't
//! fight over the port.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Render callback handed to the server; returns the exposition body.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

static CLAIMED: AtomicBool = AtomicBool::new(false);

/// Claim the `FLASHR_METRICS_ADDR` bind address for this process. The
/// first caller gets it; later callers (a second `FlashCtx`) get `None`
/// so only one listener binds the configured port. The claim is
/// released when the claiming context drops ([`release_metrics_addr`]),
/// so sequentially-created contexts each get a listener.
pub fn claim_metrics_addr() -> Option<String> {
    let addr = std::env::var("FLASHR_METRICS_ADDR").ok()?;
    let addr = addr.trim();
    if addr.is_empty() || CLAIMED.swap(true, Ordering::SeqCst) {
        return None;
    }
    Some(addr.to_string())
}

/// Return the address claim after the claiming listener has shut down.
pub(crate) fn release_metrics_addr() {
    CLAIMED.store(false, Ordering::SeqCst);
}

/// The scrape listener: a bound socket plus its accept thread. Dropping
/// the server shuts the thread down.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` and serve `render()` on `GET /metrics`. `addr` may
    /// use port 0; the actual bound address is [`MetricsServer::addr`].
    pub fn start(addr: &str, render: RenderFn) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("flashr-metrics".to_string())
            .spawn(move || accept_loop(listener, render, stop2))?;
        Ok(MetricsServer { addr: bound, stop, thread: Some(thread) })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsServer({})", self.addr)
    }
}

fn accept_loop(listener: TcpListener, render: RenderFn, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Serve inline: scrapes are rare (seconds apart) and the body is
        // small, so one thread is plenty and keeps the footprint fixed.
        let _ = serve_one(stream, &render);
    }
}

/// Read one request head, answer it, close. Returns Err only on socket
/// trouble; malformed requests get a 400/404 response instead.
fn serve_one(mut stream: TcpStream, render: &RenderFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, ctype, body) = match (method, path.split('?').next().unwrap_or(path)) {
        ("GET", "/metrics") => ("200 OK", "text/plain; version=0.0.4; charset=utf-8", render()),
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", _) => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        _ => ("400 Bad Request", "text/plain; charset=utf-8", "bad request\n".to_string()),
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_health_and_404() {
        let render: RenderFn = Arc::new(|| "# TYPE t counter\nt 1\n".to_string());
        let srv = MetricsServer::start("127.0.0.1:0", render).expect("bind");
        let m = get(srv.addr(), "/metrics");
        assert!(m.starts_with("HTTP/1.1 200 OK\r\n"), "{m}");
        assert!(m.contains("text/plain; version=0.0.4"), "{m}");
        assert!(m.ends_with("# TYPE t counter\nt 1\n"), "{m}");
        let h = get(srv.addr(), "/healthz");
        assert!(h.starts_with("HTTP/1.1 200 OK\r\n"), "{h}");
        let nf = get(srv.addr(), "/nope");
        assert!(nf.starts_with("HTTP/1.1 404"), "{nf}");
        drop(srv); // join must not hang
    }

    #[test]
    fn port_zero_resolves_to_a_real_port() {
        let render: RenderFn = Arc::new(String::new);
        let srv = MetricsServer::start("127.0.0.1:0", render).expect("bind");
        assert_ne!(srv.addr().port(), 0);
    }
}
