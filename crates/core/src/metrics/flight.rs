//! The fault flight recorder: a bounded ring of recent span events per
//! lane, always on, dumped to JSON when something goes wrong.
//!
//! Where the [`crate::trace::timeline`] collector records *everything*
//! (and only at `FLASHR_TRACE=timeline`), the flight recorder keeps just
//! the last [`DEFAULT_EVENTS_PER_LANE`] events per thread — executor
//! task/pass spans, SAFS I/O and cache spans — at every trace level,
//! including off. When a worker panics, or the SAFS I/O threads surface
//! their first device error (the `io-error` span), the recorder writes
//! the rings plus a full metrics snapshot to a JSON file, so the state
//! leading up to a fault is preserved without anyone having re-run the
//! workload under tracing.
//!
//! Cost model: recording is one short per-lane mutex hold and a ring
//! push; the ring is pre-allocated, so steady-state recording does not
//! allocate. Events ride on the same [`SpanEvent`] type the timeline
//! uses, so a dump reads like a truncated trace.
//!
//! Dump triggers, first one wins (the `dumped` flag is claimed once per
//! recorder):
//!
//! * a panic anywhere in the process (a process-wide hook walks every
//!   live recorder);
//! * the first `io-error` span from the SAFS layer;
//! * an explicit [`FlightRecorder::dump_now`] (benches force a dump so
//!   CI can archive one as an artifact).
//!
//! The output path is, in priority order: the path set via
//! [`FlightRecorder::set_dump_path`], the `FLASHR_FLIGHT_OUT`
//! environment variable, or `flashr-flight-<pid>.json` in the
//! temporary directory.

use super::MetricsHub;
use crate::trace::timeline::{EventKind, SpanEvent};
use crate::trace::json_escape;
use flashr_safs::{now_nanos, SpanArgs, SpanSink};
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// Default ring capacity per lane (overridable via `FLASHR_FLIGHT_EVENTS`).
pub const DEFAULT_EVENTS_PER_LANE: usize = 256;

/// One thread's bounded ring of recent events.
pub struct FlightLane {
    name: String,
    ring: Mutex<VecDeque<SpanEvent>>,
    cap: usize,
}

impl FlightLane {
    fn push(&self, ev: SpanEvent) {
        let mut g = self.ring.lock();
        if g.len() >= self.cap {
            g.pop_front();
        }
        g.push_back(ev);
    }

    /// Record a completed interval `[begin_ns, end_ns]`.
    pub fn complete(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        begin_ns: u64,
        end_ns: u64,
        args: SpanArgs,
    ) {
        self.push(SpanEvent {
            ts_ns: begin_ns,
            dur_ns: end_ns.saturating_sub(begin_ns),
            kind: EventKind::Complete,
            cat,
            name: name.into(),
            args,
        });
    }

    /// Record a zero-duration marker now.
    pub fn instant(&self, cat: &'static str, name: impl Into<Cow<'static, str>>, args: SpanArgs) {
        self.push(SpanEvent {
            ts_ns: now_nanos(),
            dur_ns: 0,
            kind: EventKind::Instant,
            cat,
            name: name.into(),
            args,
        });
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-context flight recorder. Installed on the SAFS runtime as the
/// (always-on half of the) span sink and fed task/pass events by the
/// executors directly.
pub struct FlightRecorder {
    cap: usize,
    lanes: Mutex<Vec<Arc<FlightLane>>>,
    by_name: Mutex<HashMap<String, Arc<FlightLane>>>,
    dumped: AtomicBool,
    dump_path: Mutex<Option<PathBuf>>,
    metrics: Mutex<Option<Arc<MetricsHub>>>,
}

impl FlightRecorder {
    pub fn new(events_per_lane: usize) -> FlightRecorder {
        FlightRecorder {
            cap: events_per_lane.max(1),
            lanes: Mutex::new(Vec::new()),
            by_name: Mutex::new(HashMap::new()),
            dumped: AtomicBool::new(false),
            dump_path: Mutex::new(None),
            metrics: Mutex::new(None),
        }
    }

    /// Ring capacity from `FLASHR_FLIGHT_EVENTS`, defaulting to
    /// [`DEFAULT_EVENTS_PER_LANE`].
    pub fn with_env_budget() -> FlightRecorder {
        let cap = std::env::var("FLASHR_FLIGHT_EVENTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_EVENTS_PER_LANE);
        FlightRecorder::new(cap)
    }

    /// Attach the hub whose exposition is embedded in dumps.
    pub(crate) fn set_metrics(&self, hub: Arc<MetricsHub>) {
        *self.metrics.lock() = Some(hub);
    }

    /// Override the dump destination (takes precedence over
    /// `FLASHR_FLIGHT_OUT`).
    pub fn set_dump_path(&self, path: impl Into<PathBuf>) {
        *self.dump_path.lock() = Some(path.into());
    }

    /// The calling thread's lane (thread-name keyed, like the timeline).
    pub fn lane(&self) -> Arc<FlightLane> {
        match std::thread::current().name() {
            Some(n) => self.named_lane(n),
            None => {
                let n = self.lanes.lock().len();
                self.named_lane(&format!("thread-{n}"))
            }
        }
    }

    /// Get or create the lane with this name.
    pub fn named_lane(&self, name: &str) -> Arc<FlightLane> {
        if let Some(l) = self.by_name.lock().get(name) {
            return l.clone();
        }
        let lane = Arc::new(FlightLane {
            name: name.to_string(),
            ring: Mutex::new(VecDeque::with_capacity(self.cap)),
            cap: self.cap,
        });
        let mut by_name = self.by_name.lock();
        if let Some(l) = by_name.get(name) {
            return l.clone();
        }
        by_name.insert(name.to_string(), lane.clone());
        self.lanes.lock().push(lane.clone());
        lane
    }

    /// Total events currently held across all rings.
    pub fn total_events(&self) -> usize {
        self.lanes.lock().iter().map(|l| l.len()).sum()
    }

    /// Whether this recorder already wrote its dump.
    pub fn dumped(&self) -> bool {
        self.dumped.load(Ordering::SeqCst)
    }

    /// Force a dump now (benches archive one as a CI artifact). Returns
    /// the path written, or `None` if this recorder already dumped or no
    /// destination could be written.
    pub fn dump_now(&self, reason: &str) -> Option<PathBuf> {
        self.dump(reason)
    }

    fn dump(&self, reason: &str) -> Option<PathBuf> {
        if self.dumped.swap(true, Ordering::SeqCst) {
            return None;
        }
        let path = self
            .dump_path
            .lock()
            .clone()
            .or_else(|| {
                std::env::var_os("FLASHR_FLIGHT_OUT")
                    .filter(|p| !p.is_empty())
                    .map(PathBuf::from)
            })
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("flashr-flight-{}.json", std::process::id()))
            });
        let json = self.dump_json(reason);
        match std::fs::write(&path, json) {
            Ok(()) => {
                eprintln!("flashr: flight recorder dumped to {} ({reason})", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("flashr: flight recorder could not write {}: {e}", path.display());
                None
            }
        }
    }

    /// The dump document: reason, timestamp, every ring, and the full
    /// metrics exposition (when a hub is attached).
    pub fn dump_json(&self, reason: &str) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\"reason\":");
        json_escape(reason, &mut o);
        o.push_str(",\"ts_ns\":");
        o.push_str(&now_nanos().to_string());
        o.push_str(",\"pid\":");
        o.push_str(&std::process::id().to_string());
        o.push_str(",\"events_per_lane\":");
        o.push_str(&self.cap.to_string());
        o.push_str(",\"lanes\":[");
        let lanes = self.lanes.lock().clone();
        for (i, lane) in lanes.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"name\":");
            json_escape(&lane.name, &mut o);
            o.push_str(",\"events\":[");
            let ring = lane.ring.lock();
            for (j, ev) in ring.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                event_json(ev, &mut o);
            }
            drop(ring);
            o.push_str("]}");
        }
        o.push_str("],\"metrics_text\":");
        match self.metrics.lock().clone() {
            Some(hub) => json_escape(&hub.render_text(), &mut o),
            None => o.push_str("null"),
        }
        o.push('}');
        o
    }
}

fn event_json(ev: &SpanEvent, out: &mut String) {
    out.push_str("{\"ts_ns\":");
    out.push_str(&ev.ts_ns.to_string());
    out.push_str(",\"dur_ns\":");
    out.push_str(&ev.dur_ns.to_string());
    out.push_str(",\"kind\":");
    let kind = match ev.kind {
        EventKind::Begin => "begin",
        EventKind::End => "end",
        EventKind::Complete => "complete",
        EventKind::Instant => "instant",
        EventKind::Counter => "counter",
    };
    json_escape(kind, out);
    out.push_str(",\"cat\":");
    json_escape(ev.cat, out);
    out.push_str(",\"name\":");
    json_escape(&ev.name, out);
    out.push_str(",\"args\":{");
    let mut first = true;
    for (k, v) in ev.args.iter().filter(|(k, _)| !k.is_empty()) {
        if !first {
            out.push(',');
        }
        first = false;
        json_escape(k, out);
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
}

/// SAFS-side spans land on the calling thread's ring; the first
/// `io-error` span triggers the dump.
impl SpanSink for FlightRecorder {
    fn span(&self, cat: &'static str, name: &'static str, begin_ns: u64, end_ns: u64, args: SpanArgs) {
        self.lane().complete(cat, name, begin_ns, end_ns, args);
        if name == "io-error" {
            let _ = self.dump("io-error");
        }
    }

    fn instant(&self, cat: &'static str, name: &'static str, ts_ns: u64, args: SpanArgs) {
        self.lane().push(SpanEvent {
            ts_ns,
            dur_ns: 0,
            kind: EventKind::Instant,
            cat,
            name: Cow::Borrowed(name),
            args,
        });
        if name == "io-error" {
            let _ = self.dump("io-error");
        }
    }

    fn counter(&self, name: &'static str, ts_ns: u64, value: u64) {
        self.lane().push(SpanEvent {
            ts_ns,
            dur_ns: 0,
            kind: EventKind::Counter,
            cat: "counter",
            name: Cow::Borrowed(name),
            args: [("value", value), ("", 0)],
        });
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FlightRecorder({} lanes, {} events, dumped={})",
            self.lanes.lock().len(),
            self.total_events(),
            self.dumped()
        )
    }
}

/// A span sink that feeds the always-on flight recorder and, when
/// timeline tracing is active, the full [`crate::trace::Timeline`] too.
pub struct TeeSink {
    pub flight: Arc<FlightRecorder>,
    pub timeline: Option<Arc<crate::trace::Timeline>>,
}

impl SpanSink for TeeSink {
    fn span(&self, cat: &'static str, name: &'static str, begin_ns: u64, end_ns: u64, args: SpanArgs) {
        self.flight.span(cat, name, begin_ns, end_ns, args);
        if let Some(tl) = &self.timeline {
            tl.span(cat, name, begin_ns, end_ns, args);
        }
    }

    fn instant(&self, cat: &'static str, name: &'static str, ts_ns: u64, args: SpanArgs) {
        self.flight.instant(cat, name, ts_ns, args);
        if let Some(tl) = &self.timeline {
            tl.instant(cat, name, ts_ns, args);
        }
    }

    fn counter(&self, name: &'static str, ts_ns: u64, value: u64) {
        self.flight.counter(name, ts_ns, value);
        if let Some(tl) = &self.timeline {
            tl.counter(name, ts_ns, value);
        }
    }
}

fn recorders() -> &'static std::sync::Mutex<Vec<Weak<FlightRecorder>>> {
    static RECORDERS: OnceLock<std::sync::Mutex<Vec<Weak<FlightRecorder>>>> = OnceLock::new();
    RECORDERS.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Register a recorder with the process-wide panic hook (installed once,
/// chained onto whatever hook was there before). Every live recorder
/// dumps when any thread panics; the once-per-recorder flag keeps a
/// multi-context program from writing the same recorder twice.
pub(crate) fn register_panic_dump(rec: &Arc<FlightRecorder>) {
    if let Ok(mut g) = recorders().lock() {
        g.retain(|w| w.strong_count() > 0);
        g.push(Arc::downgrade(rec));
    }
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Never panic inside the hook (that aborts): skip the dump
            // if the registry lock is unavailable.
            if let Ok(g) = recorders().lock() {
                for w in g.iter() {
                    if let Some(r) = w.upgrade() {
                        let _ = r.dump("panic");
                    }
                }
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_safs::NO_ARGS;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let fr = FlightRecorder::new(4);
        let lane = fr.named_lane("w0");
        for i in 0..10u64 {
            lane.complete("exec", "task", i, i + 1, [("part", i), ("", 0)]);
        }
        assert_eq!(lane.len(), 4);
        let ring = lane.ring.lock();
        // Oldest events fell out; the survivors are the last four.
        assert_eq!(ring.front().unwrap().ts_ns, 6);
        assert_eq!(ring.back().unwrap().ts_ns, 9);
    }

    #[test]
    fn io_error_span_triggers_exactly_one_dump() {
        let dir = std::env::temp_dir()
            .join(format!("flashr-flight-unit-{}-{:?}", std::process::id(), std::thread::current().id()));
        let _ = std::fs::remove_file(&dir);
        let fr = FlightRecorder::new(8);
        fr.set_dump_path(&dir);
        fr.span("io", "read", 0, 5, NO_ARGS);
        assert!(!fr.dumped());
        fr.span("io", "io-error", 5, 6, [("disk", 1), ("", 0)]);
        assert!(fr.dumped());
        let text = std::fs::read_to_string(&dir).expect("dump written");
        assert!(text.contains("\"reason\":\"io-error\""));
        // Second error: no rewrite (content would differ if it re-dumped).
        fr.span("io", "io-error", 7, 8, NO_ARGS);
        let again = std::fs::read_to_string(&dir).expect("dump still there");
        assert_eq!(text, again);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn dump_json_shape_is_stable() {
        let fr = FlightRecorder::new(8);
        fr.named_lane("w0").instant("exec", "marker", [("pass", 2), ("", 0)]);
        let json = fr.dump_json("unit");
        assert!(json.contains("\"reason\":\"unit\""));
        assert!(json.contains("\"name\":\"w0\""));
        assert!(json.contains("\"kind\":\"instant\""));
        assert!(json.contains("\"pass\":2"));
        assert!(json.contains("\"metrics_text\":null"));
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }
}
