//! Scrape-time collectors over the engine's existing stat structs.
//!
//! The executors, the memory governor and the SAFS runtime already keep
//! lock-free counters ([`ExecStats`], the governor's atomics,
//! [`flashr_safs::IoStats`] and the per-shard cache stats); these sources
//! snapshot them into [`Sample`]s when the hub is scraped, so the hot
//! paths pay nothing beyond what they already paid. Each source owns its
//! own `Arc`/clone of the underlying struct — never the context — so the
//! hub creates no reference cycles.
//!
//! Naming follows Prometheus conventions: `flashr_` prefix, `_total`
//! counters, `_bytes`/`_ns` unit markers, static label names
//! (`op="read"|"write"`, `numa="local"|"remote"`, `shard="<n>"`,
//! `event="<cache event>"`).

use super::{MetricSource, Sample};
use crate::analysis::calibrate::CalibState;
use crate::session::MemGovernor;
use crate::stats::ExecStats;
use flashr_safs::Safs;
use std::sync::Arc;

/// Executor counters: passes, partitions, NUMA locality, fused-chain
/// savings and the worker time breakdown.
pub struct ExecStatsSource(pub Arc<ExecStats>);

impl MetricSource for ExecStatsSource {
    fn collect(&self, out: &mut Vec<Sample>) {
        let s = self.0.snapshot();
        out.push(Sample::counter(
            "flashr_exec_passes_total",
            "Materialization passes over the data.",
            vec![],
            s.passes,
        ));
        out.push(Sample::counter(
            "flashr_exec_parts_total",
            "I/O partitions processed across all passes and workers.",
            vec![],
            s.parts,
        ));
        out.push(Sample::counter(
            "flashr_exec_pcache_chunks_total",
            "Pcache chunks evaluated.",
            vec![],
            s.pcache_chunks,
        ));
        out.push(Sample::counter(
            "flashr_exec_parts_numa_total",
            "Partitions by whether the worker's NUMA node matched the partition's.",
            vec![("numa", "local".into())],
            s.local_parts,
        ));
        out.push(Sample::counter(
            "flashr_exec_parts_numa_total",
            "Partitions by whether the worker's NUMA node matched the partition's.",
            vec![("numa", "remote".into())],
            s.remote_parts,
        ));
        out.push(Sample::counter(
            "flashr_exec_nanos_total",
            "Wall nanoseconds spent inside materialization.",
            vec![],
            s.exec_nanos,
        ));
        out.push(Sample::counter(
            "flashr_exec_node_chunks_total",
            "Chunks freshly produced by node evaluation (memo hits excluded).",
            vec![],
            s.node_chunks,
        ));
        out.push(Sample::counter(
            "flashr_exec_node_chunk_bytes_total",
            "Bytes of freshly produced chunks.",
            vec![],
            s.node_chunk_bytes,
        ));
        out.push(Sample::counter(
            "flashr_exec_fused_chains_total",
            "Fused chain kernels executed.",
            vec![],
            s.fused_chains,
        ));
        out.push(Sample::counter(
            "flashr_exec_fused_saved_bytes_total",
            "Bytes of intermediate chunks chain fusion skipped allocating.",
            vec![],
            s.fused_saved_bytes,
        ));
        out.push(Sample::counter(
            "flashr_exec_io_wait_nanos_total",
            "Worker nanoseconds blocked waiting for partition reads.",
            vec![],
            s.io_wait_nanos,
        ));
        out.push(Sample::counter(
            "flashr_exec_compute_nanos_total",
            "Worker nanoseconds spent evaluating kernels.",
            vec![],
            s.compute_nanos,
        ));
        out.push(Sample::counter(
            "flashr_exec_write_stall_nanos_total",
            "Worker nanoseconds stalled on result write-back.",
            vec![],
            s.write_stall_nanos,
        ));
        out.push(Sample::counter(
            "flashr_exec_opt_decisions_total",
            "Plan decisions taken by the cost-based optimizer.",
            vec![],
            s.opt_decisions,
        ));
        out.push(Sample::counter(
            "flashr_exec_opt_cache_bytes_total",
            "Bytes of reused subtrees the optimizer auto-cached.",
            vec![],
            s.opt_cache_bytes,
        ));
        let level = crate::ops::simd::SimdLevel::active();
        out.push(Sample::gauge(
            "flashr_simd_level",
            "Active SIMD dispatch level (0=off, 1=scalar, 2=avx2); the label names it.",
            vec![("level", level.name().into())],
            level as u64,
        ));
    }
}

/// Memory-governor budget, pins and spill counters.
pub struct GovernorSource(pub MemGovernor);

impl MetricSource for GovernorSource {
    fn collect(&self, out: &mut Vec<Sample>) {
        out.push(Sample::gauge(
            "flashr_mem_budget_bytes",
            "Configured memory budget (0 = unlimited).",
            vec![],
            self.0.budget_bytes(),
        ));
        out.push(Sample::gauge(
            "flashr_mem_pinned_bytes",
            "Bytes currently pinned by materializations.",
            vec![],
            self.0.pinned_bytes(),
        ));
        out.push(Sample::counter(
            "flashr_mem_spills_total",
            "Chunks the governor pushed to external storage.",
            vec![],
            self.0.spills(),
        ));
        out.push(Sample::counter(
            "flashr_mem_overcommits_total",
            "Pins admitted above budget because nothing was evictable.",
            vec![],
            self.0.overcommits(),
        ));
    }
}

/// SAFS device I/O, queue depth, throttle and per-shard page-cache
/// counters.
pub struct SafsSource(pub Safs);

impl MetricSource for SafsSource {
    fn collect(&self, out: &mut Vec<Sample>) {
        let io = self.0.stats_snapshot();
        for (op, bytes, reqs, nanos, lat) in [
            ("read", io.read_bytes, io.read_reqs, io.read_nanos, &io.read_lat),
            ("write", io.write_bytes, io.write_reqs, io.write_nanos, &io.write_lat),
        ] {
            let l = || vec![("op", op.to_string())];
            out.push(Sample::counter(
                "flashr_io_bytes_total",
                "Bytes moved through the (emulated) SSD array.",
                l(),
                bytes,
            ));
            out.push(Sample::counter(
                "flashr_io_requests_total",
                "Requests completed by the I/O threads.",
                l(),
                reqs,
            ));
            out.push(Sample::counter(
                "flashr_io_nanos_total",
                "Device-side nanoseconds summed over requests.",
                l(),
                nanos,
            ));
            out.push(Sample::histogram(
                "flashr_io_latency_ns",
                "Per-request device latency (log2 buckets, nanoseconds).",
                l(),
                *lat,
            ));
        }
        out.push(Sample::counter(
            "flashr_io_throttle_wait_nanos_total",
            "Nanoseconds I/O threads slept in the bandwidth throttle.",
            vec![],
            io.throttle_wait_nanos,
        ));
        out.push(Sample::counter(
            "flashr_io_retries_total",
            "Transient I/O errors retried by the backend workers.",
            vec![],
            io.io_retries,
        ));
        out.push(Sample::gauge(
            "flashr_io_queue_depth",
            "Requests currently in flight across the I/O queues.",
            vec![],
            io.cur_queue_depth,
        ));
        out.push(Sample::gauge(
            "flashr_io_queue_depth_max",
            "Deepest the I/O queues have run since the runtime started.",
            vec![],
            io.max_queue_depth,
        ));
        // Per-shard (emulated device) lanes of the storage backend. The
        // `shard` label here names a *storage* shard — a SAFS root
        // directory — not a page-cache NUMA shard (those label the
        // `flashr_cache_*` families below).
        for (i, s) in self.0.shard_stats_snapshots().iter().enumerate() {
            let shard = i.to_string();
            let l = |op: &str| vec![("shard", shard.clone()), ("op", op.to_string())];
            for (op, reqs, bytes) in
                [("read", s.read_reqs, s.read_bytes), ("write", s.write_reqs, s.write_bytes)]
            {
                out.push(Sample::counter(
                    "flashr_io_shard_requests_total",
                    "Requests completed, by storage shard and direction.",
                    l(op),
                    reqs,
                ));
                out.push(Sample::counter(
                    "flashr_io_shard_bytes_total",
                    "Bytes moved, by storage shard and direction.",
                    l(op),
                    bytes,
                ));
            }
            out.push(Sample::counter(
                "flashr_io_shard_retries_total",
                "Transient I/O errors retried, by storage shard.",
                vec![("shard", shard.clone())],
                s.retries,
            ));
            out.push(Sample::histogram(
                "flashr_io_shard_latency_ns",
                "Per-request device latency by storage shard (log2 buckets, ns).",
                vec![("shard", shard.clone())],
                s.lat,
            ));
            out.push(Sample::gauge(
                "flashr_io_shard_queue_depth",
                "Requests in flight on this storage shard's queue.",
                vec![("shard", shard.clone())],
                s.cur_queue_depth,
            ));
            out.push(Sample::gauge(
                "flashr_io_shard_queue_depth_max",
                "Deepest this storage shard's queue has run.",
                vec![("shard", shard.clone())],
                s.max_queue_depth,
            ));
        }
        out.push(Sample::gauge(
            "flashr_cache_capacity_bytes",
            "Configured page-cache capacity (0 = no cache).",
            vec![],
            self.0.page_cache_capacity(),
        ));
        for (i, c) in self.0.cache_shard_snapshots().iter().enumerate() {
            let shard = i.to_string();
            let l = |event: &str| vec![("shard", shard.clone()), ("event", event.to_string())];
            const HELP: &str = "Page-cache events by shard and kind.";
            for (event, v) in [
                ("hit", c.hits),
                ("miss", c.misses),
                ("coalesced", c.coalesced),
                ("bypass", c.bypasses),
                ("insert", c.inserts),
                ("evict", c.evictions),
                ("invalidate", c.invalidations),
                ("readahead_issued", c.readahead_issued),
                ("readahead_hit", c.readahead_hits),
            ] {
                out.push(Sample::counter("flashr_cache_events_total", HELP, l(event), v));
            }
            out.push(Sample::gauge(
                "flashr_cache_resident_bytes",
                "Resident page-cache bytes by shard.",
                vec![("shard", shard.clone())],
                c.resident_bytes,
            ));
        }
    }
}

/// Cost-model calibration: the fitted throughput constants (defaults
/// when no history matched) and the context's rolling prediction error.
/// Registered on every context so the family set is stable whether or
/// not the knob is on; gauges are integer-valued, so rates export in
/// MiB/s and the absorption factor in thousandths.
pub struct CalibrationSource(pub Arc<CalibState>);

impl MetricSource for CalibrationSource {
    fn collect(&self, out: &mut Vec<Sample>) {
        use crate::analysis::calibrate::{
            DEFAULT_COMPUTE_GIB_S, DEFAULT_READ_GIB_S, DEFAULT_WRITE_GIB_S,
        };
        let cal = self.0.calibration.as_ref();
        let mib = |gib_s: f64| (gib_s * 1024.0).round() as u64;
        out.push(Sample::gauge(
            "flashr_calib_enabled",
            "1 when cost-model constants were fitted from profile history.",
            vec![],
            cal.is_some() as u64,
        ));
        out.push(Sample::gauge(
            "flashr_calib_records",
            "History records the calibration fit consumed.",
            vec![],
            cal.map(|c| c.records as u64).unwrap_or(0),
        ));
        let (read, write, stream, gemm) = match cal {
            Some(c) => (
                c.read_gib_s(),
                c.write_gib_s(),
                c.compute_gib_s_for("stream"),
                c.compute_gib_s_for("gemm"),
            ),
            None => (
                DEFAULT_READ_GIB_S,
                DEFAULT_WRITE_GIB_S,
                DEFAULT_COMPUTE_GIB_S,
                DEFAULT_COMPUTE_GIB_S,
            ),
        };
        const TP_HELP: &str =
            "Calibrated (or default) throughput constant by category, MiB/s.";
        for (kind, v) in [
            ("device_read", read),
            ("device_write", write),
            ("compute_stream", stream),
            ("compute_gemm", gemm),
        ] {
            out.push(Sample::gauge(
                "flashr_calib_throughput_mib_s",
                TP_HELP,
                vec![("kind", kind.into())],
                mib(v),
            ));
        }
        out.push(Sample::gauge(
            "flashr_calib_read_factor_milli",
            "Global device-read absorption factor (actual/predicted, thousandths).",
            vec![],
            cal.and_then(|c| c.read_factor_global)
                .map(|f| (f * 1000.0).round() as u64)
                .unwrap_or(1000),
        ));
        out.push(Sample::counter(
            "flashr_calib_predictions_total",
            "Materializations scored against their device-read prediction.",
            vec![],
            self.0.predictions(),
        ));
        out.push(Sample::gauge(
            "flashr_calib_prediction_error_bytes",
            "Rolling mean |predicted - actual| device-read bytes.",
            vec![],
            self.0.mean_error_bytes(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsHub;

    #[test]
    fn exec_source_exports_every_counter() {
        let stats = Arc::new(ExecStats::default());
        stats.add(&stats.passes, 2);
        stats.add(&stats.local_parts, 5);
        stats.add(&stats.remote_parts, 1);
        stats.add(&stats.io_wait_nanos, 77);
        let hub = MetricsHub::new();
        hub.register_source(Box::new(ExecStatsSource(stats)));
        let text = hub.render_text();
        assert!(text.contains("flashr_exec_passes_total 2\n"), "{text}");
        assert!(text.contains("flashr_exec_parts_numa_total{numa=\"local\"} 5\n"), "{text}");
        assert!(text.contains("flashr_exec_parts_numa_total{numa=\"remote\"} 1\n"), "{text}");
        assert!(text.contains("flashr_exec_io_wait_nanos_total 77\n"), "{text}");
        // One TYPE header even though the numa family has two series.
        assert_eq!(text.matches("# TYPE flashr_exec_parts_numa_total").count(), 1, "{text}");
    }

    #[test]
    fn calibration_source_exports_defaults_when_unfitted() {
        let hub = MetricsHub::new();
        hub.register_source(Box::new(CalibrationSource(Arc::new(CalibState::default()))));
        let text = hub.render_text();
        assert!(text.contains("flashr_calib_enabled 0\n"), "{text}");
        assert!(text.contains("flashr_calib_records 0\n"), "{text}");
        // 0.5 GiB/s default read rate → 512 MiB/s.
        assert!(
            text.contains("flashr_calib_throughput_mib_s{kind=\"device_read\"} 512\n"),
            "{text}"
        );
        assert!(text.contains("flashr_calib_read_factor_milli 1000\n"), "{text}");
        assert!(text.contains("flashr_calib_predictions_total 0\n"), "{text}");
        assert_eq!(text.matches("# TYPE flashr_calib_throughput_mib_s").count(), 1, "{text}");
    }
}
