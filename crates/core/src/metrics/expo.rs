//! Prometheus text-format (0.0.4) exposition.
//!
//! Hand-rolled like the JSON writer in [`crate::trace`]: flashr-core
//! takes no serialization dependency. Per family: one `# HELP` line, one
//! `# TYPE` line, then every series. Histograms expand to cumulative
//! `_bucket{le="..."}` lines ending at `le="+Inf"`, plus `_sum` and
//! `_count`, following the exposition-format spec. Durations are
//! nanoseconds throughout (families carry an `_ns` marker in their
//! names), so `le` bounds are the histogram's power-of-two upper bounds
//! printed as integers.

use super::{FamilySamples, LabelSet, SampleValue};
use flashr_safs::{LatencyHisto, LatencyHistoSnapshot, LAT_BUCKETS};

/// Render the grouped families to one exposition document.
pub fn render(families: &[FamilySamples]) -> String {
    let mut out = String::with_capacity(4096);
    for f in families {
        out.push_str("# HELP ");
        out.push_str(f.name);
        out.push(' ');
        escape_help(f.help, &mut out);
        out.push('\n');
        out.push_str("# TYPE ");
        out.push_str(f.name);
        out.push(' ');
        out.push_str(f.kind.as_str());
        out.push('\n');
        for (labels, value) in &f.series {
            match value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    series_line(f.name, labels, None, *v, &mut out);
                }
                SampleValue::Histogram(h) => histogram_lines(f.name, labels, h, &mut out),
            }
        }
    }
    out
}

/// One `name{labels} value` line; `extra` appends one more label pair
/// (the histogram `le`).
fn series_line(
    name: &str,
    labels: &LabelSet,
    extra: Option<(&str, &str)>,
    value: u64,
    out: &mut String,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(v, out);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(v, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// The cumulative bucket / sum / count expansion of one histogram series.
fn histogram_lines(name: &str, labels: &LabelSet, h: &LatencyHistoSnapshot, out: &mut String) {
    let bucket_name = format!("{name}_bucket");
    let mut cum = 0u64;
    for i in 0..LAT_BUCKETS {
        cum += h.buckets[i];
        let (_, hi) = LatencyHisto::bucket_bounds(i);
        let le = if i == LAT_BUCKETS - 1 { "+Inf".to_string() } else { hi.to_string() };
        series_line(&bucket_name, labels, Some(("le", &le)), cum, out);
    }
    series_line(&format!("{name}_sum"), labels, None, h.sum, out);
    series_line(&format!("{name}_count"), labels, None, cum, out);
}

/// HELP text: escape backslash and newline (spec rules for help lines).
fn escape_help(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Label values: escape backslash, double-quote and newline.
fn escape_label_value(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKind;

    #[test]
    fn counter_and_gauge_lines() {
        let fams = vec![
            FamilySamples {
                name: "a_total",
                help: "a counter",
                kind: MetricKind::Counter,
                series: vec![
                    (vec![], SampleValue::Counter(3)),
                    (vec![("op", "read".into())], SampleValue::Counter(5)),
                ],
            },
            FamilySamples {
                name: "b_bytes",
                help: "line1\nline2 with \\slash",
                kind: MetricKind::Gauge,
                series: vec![(vec![("q", "x\"y".into())], SampleValue::Gauge(9))],
            },
        ];
        let text = render(&fams);
        assert!(text.contains("# HELP a_total a counter\n"));
        assert!(text.contains("# TYPE a_total counter\n"));
        assert!(text.contains("\na_total 3\n"));
        assert!(text.contains("a_total{op=\"read\"} 5\n"));
        assert!(text.contains("# HELP b_bytes line1\\nline2 with \\\\slash\n"));
        assert!(text.contains("b_bytes{q=\"x\\\"y\"} 9\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = LatencyHisto::default();
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(u64::MAX); // top bucket
        let fams = vec![FamilySamples {
            name: "lat_ns",
            help: "h",
            kind: MetricKind::Histogram,
            series: vec![(
                vec![("op", "read".into())],
                SampleValue::Histogram(Box::new(h.snapshot())),
            )],
        }];
        let text = render(&fams);
        assert!(text.contains("lat_ns_bucket{op=\"read\",le=\"2\"} 1\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{op=\"read\",le=\"4\"} 3\n"), "{text}");
        assert!(text.contains("lat_ns_bucket{op=\"read\",le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("lat_ns_count{op=\"read\"} 4\n"), "{text}");
        let sum = u64::MAX.wrapping_add(6); // fetch_add wraps
        assert!(text.contains(&format!("lat_ns_sum{{op=\"read\"}} {sum}\n")), "{text}");
        // Cumulative counts never decrease down the bucket list.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
    }
}
