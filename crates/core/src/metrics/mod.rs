//! Always-on metrics: a typed handle registry, Prometheus text
//! exposition, a scrape listener and a fault flight recorder.
//!
//! The engine already counts everything the paper's evaluation cares
//! about — passes, partition claims, device bytes, cache hits, queue
//! depths — but those counters lived in per-layer structs reachable only
//! from Rust. This module gives every [`crate::session::FlashCtx`] one
//! uniform surface over them:
//!
//! * [`MetricsHub`] — a per-context registry of typed
//!   [`Counter`]/[`Gauge`]/[`Log2Histogram`] handles (the same lock-free
//!   primitives the SAFS latency histograms are built from) plus
//!   [`MetricSource`] collectors that snapshot the engine's existing
//!   stat structs at scrape time. Handle updates are one relaxed
//!   `fetch_add` — cheap enough to stay enabled in release builds.
//! * [`expo`] — Prometheus text-format (0.0.4) exposition, hand-rolled
//!   like the JSON writer in [`crate::trace`] (no new dependencies).
//! * [`serve`] — a minimal std-only blocking HTTP listener answering
//!   `GET /metrics`, enabled per process via `FLASHR_METRICS_ADDR`.
//! * [`flight`] — the flight recorder: a bounded ring of recent span
//!   events per lane, recorded even at `FLASHR_TRACE=off`, dumped to a
//!   JSON file on panic or on the first device I/O error.
//!
//! Label values are dynamic strings but label *names* are static; series
//! are interned get-or-create, so the label-handling cost is paid once
//! at handle creation, never on the hot path.

pub mod expo;
pub mod flight;
pub mod serve;
pub mod sources;

pub use flashr_safs::{Counter, Gauge, Log2Histogram, Log2HistogramSnapshot};
pub use flight::FlightRecorder;
pub use serve::MetricsServer;

use flashr_safs::{LatencyHisto, LatencyHistoSnapshot};
use parking_lot::Mutex;
use std::sync::Arc;

/// A label set: static names, owned values (`shard="3"`, `op="read"`).
pub type LabelSet = Vec<(&'static str, String)>;

/// What a metric family is, for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One collected value for exposition.
#[derive(Debug, Clone)]
pub enum SampleValue {
    Counter(u64),
    Gauge(u64),
    // Boxed: the 40-bucket snapshot is ~an order of magnitude larger
    // than the scalar variants, and most samples are scalars.
    Histogram(Box<LatencyHistoSnapshot>),
}

impl SampleValue {
    fn kind(&self) -> MetricKind {
        match self {
            SampleValue::Counter(_) => MetricKind::Counter,
            SampleValue::Gauge(_) => MetricKind::Gauge,
            SampleValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One series sample a [`MetricSource`] emits at scrape time.
#[derive(Debug, Clone)]
pub struct Sample {
    pub name: &'static str,
    pub help: &'static str,
    pub labels: LabelSet,
    pub value: SampleValue,
}

impl Sample {
    pub fn counter(name: &'static str, help: &'static str, labels: LabelSet, v: u64) -> Sample {
        Sample { name, help, labels, value: SampleValue::Counter(v) }
    }

    pub fn gauge(name: &'static str, help: &'static str, labels: LabelSet, v: u64) -> Sample {
        Sample { name, help, labels, value: SampleValue::Gauge(v) }
    }

    pub fn histogram(
        name: &'static str,
        help: &'static str,
        labels: LabelSet,
        snap: LatencyHistoSnapshot,
    ) -> Sample {
        Sample { name, help, labels, value: SampleValue::Histogram(Box::new(snap)) }
    }
}

/// A collector that snapshots live engine state (an [`crate::stats::ExecStats`],
/// a SAFS runtime, the memory governor) into samples at scrape time.
/// Sources hold their own clones/`Arc`s — never the context — so the
/// hub creates no reference cycles.
pub trait MetricSource: Send + Sync {
    fn collect(&self, out: &mut Vec<Sample>);
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LatencyHisto>),
}

impl Handle {
    fn sample(&self) -> SampleValue {
        match self {
            Handle::Counter(c) => SampleValue::Counter(c.get()),
            Handle::Gauge(g) => SampleValue::Gauge(g.get()),
            Handle::Histogram(h) => SampleValue::Histogram(Box::new(h.snapshot())),
        }
    }
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    series: Vec<(LabelSet, Handle)>,
}

/// Grouped samples ready for exposition (one `# HELP`/`# TYPE` header,
/// then every series of the family).
pub struct FamilySamples {
    pub name: &'static str,
    pub help: &'static str,
    pub kind: MetricKind,
    pub series: Vec<(LabelSet, SampleValue)>,
}

/// The per-context metrics registry: typed handles plus scrape-time
/// collectors, rendered to Prometheus text by [`MetricsHub::render_text`].
///
/// Registration takes a lock; recording through a handle does not — hot
/// paths call `counter("x", ...)` once, keep the `Arc<Counter>`, and pay
/// one relaxed atomic add per event thereafter.
pub struct MetricsHub {
    families: Mutex<Vec<Family>>,
    sources: Mutex<Vec<Box<dyn MetricSource>>>,
    scrapes: Counter,
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub::new()
    }
}

impl MetricsHub {
    pub fn new() -> MetricsHub {
        MetricsHub {
            families: Mutex::new(Vec::new()),
            sources: Mutex::new(Vec::new()),
            scrapes: Counter::new(),
        }
    }

    /// Get or create the counter series `name{labels}`. Counter families
    /// should follow Prometheus convention and end in `_total`.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        match self.handle(name, help, MetricKind::Counter, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("family {name} kind checked"),
        }
    }

    /// Get or create the gauge series `name{labels}`.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        match self.handle(name, help, MetricKind::Gauge, labels, || {
            Handle::Gauge(Arc::new(Gauge::new()))
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("family {name} kind checked"),
        }
    }

    /// Get or create the log2-bucketed histogram series `name{labels}`
    /// (same [`flashr_safs::LAT_BUCKETS`]-bucket shape as the SAFS
    /// latency histograms).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<LatencyHisto> {
        match self.handle(name, help, MetricKind::Histogram, labels, || {
            Handle::Histogram(Arc::new(LatencyHisto::default()))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("family {name} kind checked"),
        }
    }

    fn handle(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let labels: LabelSet = labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        let mut families = self.families.lock();
        let fam = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(f.kind, kind, "metric {name} registered with two kinds");
                f
            }
            None => {
                families.push(Family { name, help, kind, series: Vec::new() });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, h)) = fam.series.iter().find(|(l, _)| *l == labels) {
            return clone_handle(h);
        }
        let h = make();
        let out = clone_handle(&h);
        fam.series.push((labels, h));
        out
    }

    /// Install a scrape-time collector.
    pub fn register_source(&self, src: Box<dyn MetricSource>) {
        self.sources.lock().push(src);
    }

    /// Times the exposition has been rendered (scrapes plus explicit
    /// [`MetricsHub::render_text`] calls) — the hub's own meta-metric,
    /// exported as `flashr_metrics_scrapes_total`.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.get()
    }

    /// Collect every family (handles first, then sources, then the
    /// hub's meta-metric), grouped for exposition.
    pub fn gather(&self) -> Vec<FamilySamples> {
        let mut out: Vec<FamilySamples> = Vec::new();
        {
            let families = self.families.lock();
            for f in families.iter() {
                out.push(FamilySamples {
                    name: f.name,
                    help: f.help,
                    kind: f.kind,
                    series: f.series.iter().map(|(l, h)| (l.clone(), h.sample())).collect(),
                });
            }
        }
        let mut samples = Vec::new();
        for src in self.sources.lock().iter() {
            src.collect(&mut samples);
        }
        samples.push(Sample::counter(
            "flashr_metrics_scrapes_total",
            "Times this context's metrics exposition was rendered.",
            Vec::new(),
            // render_text() bumps the counter before gathering, so the
            // render in flight is already included.
            self.scrapes.get(),
        ));
        for s in samples {
            let kind = s.value.kind();
            match out.iter_mut().find(|f| f.name == s.name) {
                Some(f) => {
                    debug_assert_eq!(f.kind, kind, "metric {} emitted with two kinds", s.name);
                    f.series.push((s.labels, s.value));
                }
                None => out.push(FamilySamples {
                    name: s.name,
                    help: s.help,
                    kind,
                    series: vec![(s.labels, s.value)],
                }),
            }
        }
        out
    }

    /// Render the full Prometheus text-format (0.0.4) exposition.
    pub fn render_text(&self) -> String {
        self.scrapes.inc();
        expo::render(&self.gather())
    }
}

fn clone_handle(h: &Handle) -> Handle {
    match h {
        Handle::Counter(c) => Handle::Counter(c.clone()),
        Handle::Gauge(g) => Handle::Gauge(g.clone()),
        Handle::Histogram(hh) => Handle::Histogram(hh.clone()),
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsHub({} families, {} sources, {} scrapes)",
            self.families.lock().len(),
            self.sources.lock().len(),
            self.scrapes.get()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_interned_per_series() {
        let hub = MetricsHub::new();
        let a = hub.counter("x_total", "h", &[("op", "read")]);
        let b = hub.counter("x_total", "h", &[("op", "read")]);
        let c = hub.counter("x_total", "h", &[("op", "write")]);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        a.add(3);
        c.inc();
        let fams = hub.gather();
        let fam = fams.iter().find(|f| f.name == "x_total").expect("family");
        assert_eq!(fam.series.len(), 2);
    }

    #[test]
    #[should_panic(expected = "two kinds")]
    fn kind_mismatch_panics() {
        let hub = MetricsHub::new();
        let _ = hub.counter("y_total", "h", &[]);
        let _ = hub.gauge("y_total", "h", &[]);
    }

    #[test]
    fn sources_merge_into_existing_families() {
        struct Src;
        impl MetricSource for Src {
            fn collect(&self, out: &mut Vec<Sample>) {
                out.push(Sample::counter("z_total", "h", vec![("op", "b".into())], 7));
            }
        }
        let hub = MetricsHub::new();
        hub.counter("z_total", "h", &[("op", "a")]).add(1);
        hub.register_source(Box::new(Src));
        let fams = hub.gather();
        let fam = fams.iter().find(|f| f.name == "z_total").expect("family");
        assert_eq!(fam.series.len(), 2);
    }

    #[test]
    fn scrape_counter_counts_renders() {
        let hub = MetricsHub::new();
        assert_eq!(hub.scrapes(), 0);
        let text = hub.render_text();
        assert!(text.contains("flashr_metrics_scrapes_total 1"), "{text}");
        let text = hub.render_text();
        assert!(text.contains("flashr_metrics_scrapes_total 2"), "{text}");
    }
}
