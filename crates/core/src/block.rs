//! Block matrices (paper §3.2.2).
//!
//! FlashR stores a tall matrix with many columns as a sequence of
//! tall-and-skinny blocks of at most 32 columns, each a separate TAS
//! matrix. Combined with I/O partitioning this gives 2-D partitioning:
//! every (I/O partition × column block) tile fits in memory, and
//! operations decompose into TAS operations per block.
//!
//! [`BlockMat`] implements that decomposition on top of [`FM`]:
//! element-wise maps apply per block; `rowSums`/`matmul` combine partial
//! per-block results with lazy adds (still one fused pass);
//! `colSums`/`crossprod` assemble per-block sink results.

use crate::dtype::DType;
use crate::fm::FM;
use crate::ops::{AggOp, BinaryOp, UnaryOp};
use crate::session::FlashCtx;
use flashr_linalg::Dense;

/// Default block width (paper: 32 columns).
pub const DEFAULT_BLOCK_COLS: usize = 32;

/// A tall matrix stored as ≤`block_cols`-wide TAS blocks.
#[derive(Debug, Clone)]
pub struct BlockMat {
    blocks: Vec<FM>,
    nrows: u64,
    ncols: usize,
    block_cols: usize,
}

impl BlockMat {
    /// Split a wide tall [`FM`] into blocks (lazy column selections).
    pub fn from_fm(x: &FM, block_cols: usize) -> BlockMat {
        assert!(block_cols >= 1);
        assert!(x.is_tall(), "block matrices wrap tall matrices");
        let ncols = x.ncol() as usize;
        let nrows = x.nrow();
        let mut blocks = Vec::new();
        let mut c0 = 0;
        while c0 < ncols {
            let c1 = (c0 + block_cols).min(ncols);
            blocks.push(x.cols(&(c0..c1).collect::<Vec<_>>()));
            c0 = c1;
        }
        BlockMat { blocks, nrows, ncols, block_cols }
    }

    /// A uniformly random block matrix (each block its own generator).
    pub fn runif(ctx: &FlashCtx, nrows: u64, ncols: usize, block_cols: usize, seed: u64) -> BlockMat {
        let mut blocks = Vec::new();
        let mut c0 = 0;
        while c0 < ncols {
            let c1 = (c0 + block_cols).min(ncols);
            blocks.push(FM::runif(ctx, nrows, c1 - c0, 0.0, 1.0, seed.wrapping_add(c0 as u64)));
            c0 = c1;
        }
        BlockMat { blocks, nrows, ncols, block_cols }
    }

    /// Rows.
    pub fn nrow(&self) -> u64 {
        self.nrows
    }

    /// Total columns.
    pub fn ncol(&self) -> usize {
        self.ncols
    }

    /// Number of column blocks.
    pub fn nblocks(&self) -> usize {
        self.blocks.len()
    }

    /// The blocks.
    pub fn blocks(&self) -> &[FM] {
        &self.blocks
    }

    /// Element-wise unary op, blockwise.
    pub fn unary(&self, op: UnaryOp) -> BlockMat {
        BlockMat {
            blocks: self.blocks.iter().map(|b| b.unary(op)).collect(),
            ..self.shape_clone()
        }
    }

    /// Element-wise binary op with a matching block matrix.
    pub fn binary(&self, op: BinaryOp, other: &BlockMat) -> BlockMat {
        assert_eq!(self.nrows, other.nrows, "block matrix row mismatch");
        assert_eq!(self.ncols, other.ncols, "block matrix shape mismatch");
        assert_eq!(self.block_cols, other.block_cols, "block width mismatch");
        BlockMat {
            blocks: self
                .blocks
                .iter()
                .zip(&other.blocks)
                .map(|(a, b)| a.binary(op, b, false))
                .collect(),
            ..self.shape_clone()
        }
    }

    /// Element-wise with a scalar.
    pub fn binary_scalar(&self, op: BinaryOp, s: f64) -> BlockMat {
        BlockMat {
            blocks: self.blocks.iter().map(|b| b.binary_scalar(op, s, false)).collect(),
            ..self.shape_clone()
        }
    }

    fn shape_clone(&self) -> BlockMat {
        BlockMat {
            blocks: Vec::new(),
            nrows: self.nrows,
            ncols: self.ncols,
            block_cols: self.block_cols,
        }
    }

    /// `colSums` across all blocks (one fused pass).
    pub fn col_sums(&self, ctx: &FlashCtx) -> Vec<f64> {
        let sinks: Vec<FM> = self.blocks.iter().map(|b| b.col_sums()).collect();
        let refs: Vec<&FM> = sinks.iter().collect();
        let outs = FM::materialize_multi(ctx, &refs);
        let mut all = Vec::with_capacity(self.ncols);
        for o in outs {
            all.extend(o.to_vec(ctx));
        }
        all
    }

    /// `rowSums` across all blocks (lazy tall column; one pass when
    /// materialized).
    pub fn row_sums(&self) -> FM {
        let mut acc = self.blocks[0].row_sums();
        for b in &self.blocks[1..] {
            acc = acc.binary(BinaryOp::Add, &b.row_sums(), false);
        }
        acc
    }

    /// `agg` over everything.
    pub fn sum(&self, ctx: &FlashCtx) -> f64 {
        let sinks: Vec<FM> = self.blocks.iter().map(|b| b.sum()).collect();
        let refs: Vec<&FM> = sinks.iter().collect();
        FM::materialize_multi(ctx, &refs).iter().map(|o| o.value(ctx)).sum()
    }

    /// `crossprod`: the full P×P Gramian assembled from block-pair sinks
    /// (all pairs evaluated in one fused pass).
    pub fn crossprod(&self, ctx: &FlashCtx) -> Dense {
        let nb = self.blocks.len();
        let mut sinks = Vec::new();
        for i in 0..nb {
            for j in i..nb {
                sinks.push(self.blocks[i].crossprod_with(&self.blocks[j]));
            }
        }
        let refs: Vec<&FM> = sinks.iter().collect();
        let outs = FM::materialize_multi(ctx, &refs);
        let mut g = Dense::zeros(self.ncols, self.ncols);
        let mut idx = 0;
        for i in 0..nb {
            let ri = i * self.block_cols;
            for j in i..nb {
                let rj = j * self.block_cols;
                let d = outs[idx].to_dense(ctx);
                idx += 1;
                for a in 0..d.rows() {
                    for b in 0..d.cols() {
                        g.set(ri + a, rj + b, d.at(a, b));
                        g.set(rj + b, ri + a, d.at(a, b));
                    }
                }
            }
        }
        g
    }

    /// `X %*% B` with small dense `B` (P×k): per-block partial products
    /// summed lazily — a single fused pass on materialization.
    pub fn matmul(&self, b: &Dense) -> FM {
        assert_eq!(b.rows(), self.ncols, "matmul inner dimension mismatch");
        let k = b.cols();
        let mut acc: Option<FM> = None;
        for (i, blk) in self.blocks.iter().enumerate() {
            let r0 = i * self.block_cols;
            let r1 = (r0 + self.block_cols).min(self.ncols);
            let sub = Dense::from_fn(r1 - r0, k, |r, c| b.at(r0 + r, c));
            let part = blk.matmul(&FM::from_dense(sub));
            acc = Some(match acc {
                None => part,
                Some(a) => a.binary(BinaryOp::Add, &part, false),
            });
        }
        acc.expect("block matrix has at least one block")
    }

    /// Materialize every block (one fused pass) and return a leaf-backed
    /// block matrix.
    pub fn materialize(&self, ctx: &FlashCtx) -> BlockMat {
        let refs: Vec<&FM> = self.blocks.iter().collect();
        let blocks = FM::materialize_multi(ctx, &refs);
        BlockMat { blocks, ..self.shape_clone() }
    }

    /// Copy into a dense matrix (tests / small data only).
    pub fn to_dense(&self, ctx: &FlashCtx) -> Dense {
        let mut out = Dense::zeros(self.nrows as usize, self.ncols);
        for (i, blk) in self.blocks.iter().enumerate() {
            let d = blk.to_dense(ctx);
            let c0 = i * self.block_cols;
            for r in 0..d.rows() {
                for c in 0..d.cols() {
                    out.set(r, c0 + c, d.at(r, c));
                }
            }
        }
        out
    }

    /// Cast every block.
    pub fn cast(&self, to: DType) -> BlockMat {
        BlockMat { blocks: self.blocks.iter().map(|b| b.cast(to)).collect(), ..self.shape_clone() }
    }

    /// Per-block `agg.col` of an arbitrary op, concatenated.
    pub fn agg_cols(&self, ctx: &FlashCtx, op: AggOp) -> Vec<f64> {
        let sinks: Vec<FM> = self
            .blocks
            .iter()
            .map(|b| match op {
                AggOp::Sum => b.col_sums(),
                AggOp::Mean => b.col_means(),
                AggOp::Min => b.col_min(),
                AggOp::Max => b.col_max(),
                other => panic!("unsupported blockwise agg {other:?}"),
            })
            .collect();
        let refs: Vec<&FM> = sinks.iter().collect();
        let outs = FM::materialize_multi(ctx, &refs);
        let mut all = Vec::with_capacity(self.ncols);
        for o in outs {
            all.extend(o.to_vec(ctx));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 64, ..Default::default() }, None)
    }

    fn wide(ctx: &FlashCtx, n: u64, p: usize) -> (FM, BlockMat) {
        let fm = FM::runif(ctx, n, p, -1.0, 1.0, 17);
        let bm = BlockMat::from_fm(&fm, 3);
        (fm, bm)
    }

    #[test]
    fn splits_into_expected_blocks() {
        let ctx = ctx();
        let (_, bm) = wide(&ctx, 100, 10);
        assert_eq!(bm.nblocks(), 4); // 3+3+3+1
        assert_eq!(bm.blocks()[3].ncol(), 1);
        assert_eq!(bm.ncol(), 10);
    }

    #[test]
    fn col_sums_match_whole_matrix() {
        let ctx = ctx();
        let (fm, bm) = wide(&ctx, 200, 10);
        let whole = fm.col_sums().to_vec(&ctx);
        let blocked = bm.col_sums(&ctx);
        for (a, b) in whole.iter().zip(&blocked) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn row_sums_match_whole_matrix() {
        let ctx = ctx();
        let (fm, bm) = wide(&ctx, 150, 7);
        let whole = fm.row_sums().to_vec(&ctx);
        let blocked = bm.row_sums().to_vec(&ctx);
        for (a, b) in whole.iter().zip(&blocked) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn crossprod_matches_whole_matrix() {
        let ctx = ctx();
        let (fm, bm) = wide(&ctx, 300, 8);
        let whole = fm.crossprod().to_dense(&ctx);
        let blocked = bm.crossprod(&ctx);
        assert!(whole.max_abs_diff(&blocked) < 1e-9);
    }

    #[test]
    fn matmul_matches_whole_matrix() {
        let ctx = ctx();
        let (fm, bm) = wide(&ctx, 120, 7);
        let b = Dense::from_fn(7, 2, |r, c| (r + c) as f64 * 0.5 - 1.0);
        let whole = fm.matmul(&FM::from_dense(b.clone())).to_dense(&ctx);
        let blocked = bm.matmul(&b).to_dense(&ctx);
        assert!(whole.max_abs_diff(&blocked) < 1e-9);
    }

    #[test]
    fn elementwise_blockwise() {
        let ctx = ctx();
        let (fm, bm) = wide(&ctx, 90, 5);
        let whole = fm.square().sum().value(&ctx);
        let blocked = bm.unary(UnaryOp::Square).sum(&ctx);
        assert!((whole - blocked).abs() < 1e-9);
    }

    #[test]
    fn binary_between_block_matrices() {
        let ctx = ctx();
        let (fm, bm) = wide(&ctx, 90, 5);
        let doubled = bm.binary(BinaryOp::Add, &bm);
        let whole = (&fm + &fm).sum().value(&ctx);
        assert!((doubled.sum(&ctx) - whole).abs() < 1e-9);
    }

    #[test]
    fn materialize_roundtrip() {
        let ctx = ctx();
        let (fm, bm) = wide(&ctx, 80, 6);
        let m = bm.materialize(&ctx);
        let d1 = fm.to_dense(&ctx);
        let d2 = m.to_dense(&ctx);
        assert!(d1.max_abs_diff(&d2) < 1e-12);
    }
}
