//! Two-level partitioning math (paper §3.2.1 and §3.5.1).
//!
//! A tall matrix is split on its long dimension into *I/O partitions* of
//! `2^i` rows; the executor further splits each I/O partition into *Pcache
//! partitions* small enough that one block of every matrix in the DAG fits
//! in the processor cache together.

/// Partitioning descriptor shared by every matrix participating in a DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partitioner {
    rows_per_part: u64,
}

impl Partitioner {
    /// The default I/O partition height (rows). 16384 rows of an 8-byte
    /// 32-column matrix is 4 MiB — the paper's order of magnitude for
    /// fixed-size memory chunks.
    pub const DEFAULT_ROWS: u64 = 16384;

    /// Create a partitioner; `rows_per_part` must be a power of two
    /// (paper: the number of rows in an I/O partition is `2^i`).
    pub fn new(rows_per_part: u64) -> Partitioner {
        assert!(rows_per_part.is_power_of_two(), "rows per I/O partition must be a power of two");
        Partitioner { rows_per_part }
    }

    /// Rows in a full I/O partition.
    pub fn rows_per_part(self) -> u64 {
        self.rows_per_part
    }

    /// Number of I/O partitions of an `nrows`-row matrix.
    pub fn nparts(self, nrows: u64) -> u64 {
        nrows.div_ceil(self.rows_per_part).max(1)
    }

    /// Row range `[start, end)` of partition `part`.
    pub fn part_range(self, part: u64, nrows: u64) -> (u64, u64) {
        let start = part * self.rows_per_part;
        assert!(start < nrows || (nrows == 0 && part == 0), "partition {part} out of range");
        (start, (start + self.rows_per_part).min(nrows))
    }

    /// Rows in partition `part`.
    pub fn part_rows(self, part: u64, nrows: u64) -> usize {
        let (s, e) = self.part_range(part, nrows);
        (e - s) as usize
    }
}

/// Choose the Pcache partition height: the largest row count such that one
/// `widest_row_bytes`-wide block stays within `pcache_bytes`, clamped to
/// `[16, part_rows]`.
pub fn pcache_rows(pcache_bytes: usize, widest_row_bytes: usize, part_rows: usize) -> usize {
    let by_budget = pcache_bytes / widest_row_bytes.max(1);
    by_budget.clamp(16, part_rows.max(1)).min(part_rows.max(1))
}

/// Iterator over `[start, end)` sub-ranges of height `step` covering
/// `[0, rows)`.
pub fn pcache_ranges(rows: usize, step: usize) -> impl Iterator<Item = (usize, usize)> {
    let step = step.max(1);
    (0..rows.div_ceil(step)).map(move |i| (i * step, ((i + 1) * step).min(rows)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn npart_math() {
        let p = Partitioner::new(1024);
        assert_eq!(p.nparts(1), 1);
        assert_eq!(p.nparts(1024), 1);
        assert_eq!(p.nparts(1025), 2);
        assert_eq!(p.nparts(10 * 1024), 10);
    }

    #[test]
    fn ranges_cover_matrix() {
        let p = Partitioner::new(256);
        let nrows = 1000u64;
        let mut covered = 0u64;
        for part in 0..p.nparts(nrows) {
            let (s, e) = p.part_range(part, nrows);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, nrows);
        assert_eq!(p.part_rows(3, nrows), 1000 - 3 * 256);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = Partitioner::new(1000);
    }

    #[test]
    fn pcache_rows_respects_budget() {
        // 256 KiB budget, 40 f64 columns = 320 B/row → 819 rows.
        let r = pcache_rows(256 * 1024, 40 * 8, 16384);
        assert!((512..=1024).contains(&r), "rows={r}");
        // Never exceeds the partition.
        assert_eq!(pcache_rows(1 << 30, 8, 100), 100);
        // Floor of 16 even under tiny budgets.
        assert_eq!(pcache_rows(64, 1024, 100), 16);
    }

    #[test]
    fn pcache_ranges_tile_exactly() {
        let ranges: Vec<_> = pcache_ranges(1000, 256).collect();
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 1000);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }
}
