//! The `Element` trait monomorphizing GenOp kernels per dtype, and the
//! dispatch macro that picks the instantiation from a runtime [`DType`].

use crate::dtype::{DType, Scalar};
use flashr_safs::Pod;

/// An element type GenOp kernels can be instantiated over.
///
/// Integer types implement the float-flavoured methods by converting
/// through `f64` (R semantics: `sqrt(4L)` is `2.0` — the FM layer inserts
/// casts so those kernels only ever run on float dtypes; the defaults here
/// keep the trait total).
pub trait Element: Pod + PartialOrd + Send + Sync + std::fmt::Debug + 'static {
    const DTYPE: DType;
    fn zero() -> Self;
    fn one() -> Self;
    /// Identity for `min` aggregation (the type's maximum).
    fn max_value() -> Self;
    /// Identity for `max` aggregation (the type's minimum).
    fn min_value() -> Self;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_i64(v: i64) -> Self;
    fn to_i64(self) -> i64;
    fn from_scalar(s: Scalar) -> Self;

    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;
    fn div(self, o: Self) -> Self;
    fn rem(self, o: Self) -> Self;
    fn pow(self, o: Self) -> Self;
    fn minv(self, o: Self) -> Self;
    fn maxv(self, o: Self) -> Self;
    fn neg(self) -> Self;
    fn abs(self) -> Self;
}

macro_rules! impl_int_element {
    ($t:ty, $dt:expr) => {
        impl Element for $t {
            const DTYPE: DType = $dt;
            #[inline(always)]
            fn zero() -> Self {
                0
            }
            #[inline(always)]
            fn one() -> Self {
                1
            }
            #[inline(always)]
            fn max_value() -> Self {
                <$t>::MAX
            }
            #[inline(always)]
            fn min_value() -> Self {
                <$t>::MIN
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_i64(v: i64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_i64(self) -> i64 {
                self as i64
            }
            #[inline(always)]
            fn from_scalar(s: Scalar) -> Self {
                s.to_i64() as $t
            }
            #[inline(always)]
            fn add(self, o: Self) -> Self {
                self.wrapping_add(o)
            }
            #[inline(always)]
            fn sub(self, o: Self) -> Self {
                self.wrapping_sub(o)
            }
            #[inline(always)]
            fn mul(self, o: Self) -> Self {
                self.wrapping_mul(o)
            }
            #[inline(always)]
            fn div(self, o: Self) -> Self {
                if o == 0 {
                    0
                } else {
                    self.wrapping_div(o)
                }
            }
            #[inline(always)]
            fn rem(self, o: Self) -> Self {
                if o == 0 {
                    0
                } else {
                    self.wrapping_rem(o)
                }
            }
            #[inline(always)]
            fn pow(self, o: Self) -> Self {
                Element::from_f64((self as f64).powf(o as f64))
            }
            #[inline(always)]
            fn minv(self, o: Self) -> Self {
                if self < o {
                    self
                } else {
                    o
                }
            }
            #[inline(always)]
            fn maxv(self, o: Self) -> Self {
                if self > o {
                    self
                } else {
                    o
                }
            }
            #[inline(always)]
            fn neg(self) -> Self {
                (0 as $t).wrapping_sub(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                #[allow(unused_comparisons)]
                if self < 0 {
                    self.neg()
                } else {
                    self
                }
            }
        }
    };
}

impl_int_element!(u8, DType::U8);
impl_int_element!(i32, DType::I32);
impl_int_element!(i64, DType::I64);

macro_rules! impl_float_element {
    ($t:ty, $dt:expr) => {
        impl Element for $t {
            const DTYPE: DType = $dt;
            #[inline(always)]
            fn zero() -> Self {
                0.0
            }
            #[inline(always)]
            fn one() -> Self {
                1.0
            }
            #[inline(always)]
            fn max_value() -> Self {
                <$t>::INFINITY
            }
            #[inline(always)]
            fn min_value() -> Self {
                <$t>::NEG_INFINITY
            }
            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_i64(v: i64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_i64(self) -> i64 {
                self as i64
            }
            #[inline(always)]
            fn from_scalar(s: Scalar) -> Self {
                s.to_f64() as $t
            }
            #[inline(always)]
            fn add(self, o: Self) -> Self {
                self + o
            }
            #[inline(always)]
            fn sub(self, o: Self) -> Self {
                self - o
            }
            #[inline(always)]
            fn mul(self, o: Self) -> Self {
                self * o
            }
            #[inline(always)]
            fn div(self, o: Self) -> Self {
                self / o
            }
            #[inline(always)]
            fn rem(self, o: Self) -> Self {
                self % o
            }
            #[inline(always)]
            fn pow(self, o: Self) -> Self {
                self.powf(o)
            }
            #[inline(always)]
            fn minv(self, o: Self) -> Self {
                self.min(o)
            }
            #[inline(always)]
            fn maxv(self, o: Self) -> Self {
                self.max(o)
            }
            #[inline(always)]
            fn neg(self) -> Self {
                -self
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
        }
    };
}

impl_float_element!(f32, DType::F32);
impl_float_element!(f64, DType::F64);

/// Instantiate `$body` with `$T` bound to the Rust type for `$dt`.
///
/// ```ignore
/// dispatch!(dtype, T, { kernel::<T>(args) })
/// ```
#[macro_export]
macro_rules! dispatch {
    ($dt:expr, $T:ident, $body:block) => {
        match $dt {
            $crate::dtype::DType::U8 => {
                type $T = u8;
                $body
            }
            $crate::dtype::DType::I32 => {
                type $T = i32;
                $body
            }
            $crate::dtype::DType::I64 => {
                type $T = i64;
                $body
            }
            $crate::dtype::DType::F32 => {
                type $T = f32;
                $body
            }
            $crate::dtype::DType::F64 => {
                type $T = f64;
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_constants_match() {
        assert_eq!(<u8 as Element>::DTYPE, DType::U8);
        assert_eq!(<i32 as Element>::DTYPE, DType::I32);
        assert_eq!(<i64 as Element>::DTYPE, DType::I64);
        assert_eq!(<f32 as Element>::DTYPE, DType::F32);
        assert_eq!(<f64 as Element>::DTYPE, DType::F64);
    }

    #[test]
    fn integer_division_by_zero_is_total() {
        assert_eq!(<i32 as Element>::div(5, 0), 0);
        assert_eq!(<i64 as Element>::rem(5, 0), 0);
    }

    #[test]
    fn float_identities() {
        assert_eq!(<f64 as Element>::max_value(), f64::INFINITY);
        assert_eq!(<f64 as Element>::min_value(), f64::NEG_INFINITY);
        assert_eq!(<f64 as Element>::pow(2.0, 10.0), 1024.0);
    }

    #[test]
    fn dispatch_picks_the_right_type() {
        fn size_of_dtype(dt: DType) -> usize {
            dispatch!(dt, T, { size_of::<T>() })
        }
        assert_eq!(size_of_dtype(DType::U8), 1);
        assert_eq!(size_of_dtype(DType::F32), 4);
        assert_eq!(size_of_dtype(DType::F64), 8);
    }

    #[test]
    fn unsigned_abs_is_identity() {
        assert_eq!(<u8 as Element>::abs(200), 200);
        assert_eq!(<i32 as Element>::abs(-4), 4);
    }

    #[test]
    fn from_scalar_routes_by_family() {
        assert_eq!(<i64 as Element>::from_scalar(Scalar::F64(2.9)), 2);
        assert_eq!(<f64 as Element>::from_scalar(Scalar::I64(3)), 3.0);
    }
}
