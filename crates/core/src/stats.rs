//! Execution statistics: what the engine actually did.
//!
//! The paper's claims are about *data movement* (passes over the data,
//! bytes through the memory hierarchy, locality of NUMA accesses); these
//! counters make those quantities observable to tests and benchmarks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic engine counters.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Materialization passes over the data (a fused DAG counts one; the
    /// eager engine counts one per operation).
    pub passes: AtomicU64,
    /// I/O partitions processed (across all passes and threads).
    pub parts: AtomicU64,
    /// Pcache chunks evaluated.
    pub pcache_chunks: AtomicU64,
    /// Partitions whose (simulated) NUMA node matched the worker's node.
    pub local_parts: AtomicU64,
    /// Partitions processed by a worker on a different node.
    pub remote_parts: AtomicU64,
    /// Nanoseconds spent inside materialization.
    pub exec_nanos: AtomicU64,
    /// Chunks freshly produced by node evaluation (memo hits excluded;
    /// one fused chain produces one chunk however long it is).
    pub node_chunks: AtomicU64,
    /// Bytes of those freshly produced chunks — the data-movement
    /// quantity chain fusion reduces.
    pub node_chunk_bytes: AtomicU64,
    /// Fused chain kernels executed (one count per chunk produced by a
    /// chain, not per chain discovered).
    pub fused_chains: AtomicU64,
    /// Bytes of intermediate chunks chain fusion skipped allocating.
    pub fused_saved_bytes: AtomicU64,
    /// Worker nanoseconds spent blocked waiting for partition reads.
    pub io_wait_nanos: AtomicU64,
    /// Worker nanoseconds spent evaluating kernels.
    pub compute_nanos: AtomicU64,
    /// Worker nanoseconds spent stalled on result write-back.
    pub write_stall_nanos: AtomicU64,
    /// Plan decisions taken by the cost-based optimizer
    /// ([`crate::session::CtxConfig::cost_optimize`]).
    pub opt_decisions: AtomicU64,
    /// Bytes of reused subtrees the optimizer auto-cached.
    pub opt_cache_bytes: AtomicU64,
}

/// Point-in-time copy of [`ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStatsSnapshot {
    pub passes: u64,
    pub parts: u64,
    pub pcache_chunks: u64,
    pub local_parts: u64,
    pub remote_parts: u64,
    pub exec_nanos: u64,
    pub node_chunks: u64,
    pub node_chunk_bytes: u64,
    pub fused_chains: u64,
    pub fused_saved_bytes: u64,
    pub io_wait_nanos: u64,
    pub compute_nanos: u64,
    pub write_stall_nanos: u64,
    pub opt_decisions: u64,
    pub opt_cache_bytes: u64,
}

impl ExecStats {
    /// Copy out the counters.
    pub fn snapshot(&self) -> ExecStatsSnapshot {
        ExecStatsSnapshot {
            passes: self.passes.load(Ordering::Relaxed),
            parts: self.parts.load(Ordering::Relaxed),
            pcache_chunks: self.pcache_chunks.load(Ordering::Relaxed),
            local_parts: self.local_parts.load(Ordering::Relaxed),
            remote_parts: self.remote_parts.load(Ordering::Relaxed),
            exec_nanos: self.exec_nanos.load(Ordering::Relaxed),
            node_chunks: self.node_chunks.load(Ordering::Relaxed),
            node_chunk_bytes: self.node_chunk_bytes.load(Ordering::Relaxed),
            fused_chains: self.fused_chains.load(Ordering::Relaxed),
            fused_saved_bytes: self.fused_saved_bytes.load(Ordering::Relaxed),
            io_wait_nanos: self.io_wait_nanos.load(Ordering::Relaxed),
            compute_nanos: self.compute_nanos.load(Ordering::Relaxed),
            write_stall_nanos: self.write_stall_nanos.load(Ordering::Relaxed),
            opt_decisions: self.opt_decisions.load(Ordering::Relaxed),
            opt_cache_bytes: self.opt_cache_bytes.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn add(&self, field: &AtomicU64, v: u64) {
        field.fetch_add(v, Ordering::Relaxed);
    }
}

impl ExecStatsSnapshot {
    /// Counter movement between two snapshots (`later - self`).
    ///
    /// Ordering contract: `self` must be the *earlier* snapshot. The
    /// counters are monotonic, so in-order arguments yield exact deltas;
    /// accidentally swapped arguments saturate to 0 instead of panicking
    /// on underflow.
    pub fn delta(&self, later: &ExecStatsSnapshot) -> ExecStatsSnapshot {
        ExecStatsSnapshot {
            passes: later.passes.saturating_sub(self.passes),
            parts: later.parts.saturating_sub(self.parts),
            pcache_chunks: later.pcache_chunks.saturating_sub(self.pcache_chunks),
            local_parts: later.local_parts.saturating_sub(self.local_parts),
            remote_parts: later.remote_parts.saturating_sub(self.remote_parts),
            exec_nanos: later.exec_nanos.saturating_sub(self.exec_nanos),
            node_chunks: later.node_chunks.saturating_sub(self.node_chunks),
            node_chunk_bytes: later.node_chunk_bytes.saturating_sub(self.node_chunk_bytes),
            fused_chains: later.fused_chains.saturating_sub(self.fused_chains),
            fused_saved_bytes: later.fused_saved_bytes.saturating_sub(self.fused_saved_bytes),
            io_wait_nanos: later.io_wait_nanos.saturating_sub(self.io_wait_nanos),
            compute_nanos: later.compute_nanos.saturating_sub(self.compute_nanos),
            write_stall_nanos: later.write_stall_nanos.saturating_sub(self.write_stall_nanos),
            opt_decisions: later.opt_decisions.saturating_sub(self.opt_decisions),
            opt_cache_bytes: later.opt_cache_bytes.saturating_sub(self.opt_cache_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = ExecStats::default();
        s.add(&s.passes, 1);
        let a = s.snapshot();
        s.add(&s.passes, 2);
        s.add(&s.parts, 10);
        let d = a.delta(&s.snapshot());
        assert_eq!(d.passes, 2);
        assert_eq!(d.parts, 10);
    }

    #[test]
    fn swapped_delta_saturates_instead_of_panicking() {
        let s = ExecStats::default();
        s.add(&s.passes, 1);
        let a = s.snapshot();
        s.add(&s.passes, 1);
        let b = s.snapshot();
        // Wrong order: later.delta(&earlier) must not underflow.
        let d = b.delta(&a);
        assert_eq!(d.passes, 0);
    }
}
