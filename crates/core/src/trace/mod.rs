//! Execution tracing: per-pass profiles, JSON metrics export, and the
//! `FLASHR_TRACE` gate.
//!
//! The paper's evaluation constantly asks "how many passes did that DAG
//! take, and where did the time go — I/O or compute?" (§4.3, Fig. 10).
//! This module makes those questions answerable from inside a process:
//!
//! * [`TraceLevel`] — the `FLASHR_TRACE=off|summary|pass|op` gate, read
//!   once per context from the environment (or set explicitly on
//!   [`crate::session::CtxConfig`]).
//! * [`PassProfile`] — one record per materialization pass: engine, node
//!   count, partitions, per-worker I/O-wait vs compute split, NUMA
//!   local/remote claims, Pcache chunk counts, and (at `op` level)
//!   per-node operator timings.
//! * [`ProfileReport`] — everything a context observed, serialized to
//!   JSON by a hand-rolled writer (flashr-core takes no serialization
//!   dependency).
//! * [`timeline`] — at `FLASHR_TRACE=timeline`, per-thread tracks of
//!   timestamped spans (executor tasks, I/O request lifecycles, cache
//!   waits), exportable as a Chrome/Perfetto trace ([`chrome`],
//!   [`Tracer::export_chrome_trace`], `FLASHR_TRACE_OUT=<path>`) and
//!   mined by the [`critical`] analyzer for per-pass
//!   compute/io-wait/write-stall/idle attribution.
//!
//! Cost model: when tracing is `off` the engine pays one branch per
//! pass and nothing per partition or chunk — `Instant::now()` is only
//! reached behind an `Option` that is `None` when disabled, and the
//! timeline collector is not even allocated below
//! [`TraceLevel::Timeline`].

pub mod chrome;
pub mod critical;
pub mod timeline;

pub use critical::{CriticalPath, PassBreakdown, WallAttribution};
pub use timeline::{EventKind, Lane, LaneSnapshot, SpanEvent, Timeline};

use crate::stats::ExecStatsSnapshot;
use flashr_safs::{
    CacheStatsSnapshot, IoStatsSnapshot, LatencyHistoSnapshot, ShardStatsSnapshot, LAT_BUCKETS,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How much the engine records. Levels are ordered: each one includes
/// everything below it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Record nothing beyond the always-on [`crate::stats::ExecStats`]
    /// counters.
    Off,
    /// Keep aggregate counters available for [`ProfileReport`] export,
    /// but record no per-pass profiles.
    Summary,
    /// Record a [`PassProfile`] per materialization pass (per-worker
    /// I/O-wait vs compute split, NUMA locality, chunk counts).
    Pass,
    /// Additionally record per-node operator timings inside each pass.
    Op,
    /// Additionally collect the span [`timeline`]: per-task executor
    /// spans, SAFS I/O request lifecycles, cache waits and queue-depth
    /// counters, exportable to Chrome/Perfetto.
    Timeline,
}

impl TraceLevel {
    /// Parse a `FLASHR_TRACE` value. Unknown strings are `None`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(TraceLevel::Off),
            "summary" => Some(TraceLevel::Summary),
            "pass" => Some(TraceLevel::Pass),
            "op" => Some(TraceLevel::Op),
            "timeline" => Some(TraceLevel::Timeline),
            _ => None,
        }
    }

    /// Read `FLASHR_TRACE` from the environment (unset or unparsable
    /// values mean [`TraceLevel::Off`]).
    pub fn from_env() -> TraceLevel {
        std::env::var("FLASHR_TRACE").ok().and_then(|v| TraceLevel::parse(&v)).unwrap_or(TraceLevel::Off)
    }
}

/// What one worker thread did during one pass.
#[derive(Debug, Clone, Default)]
pub struct WorkerProfile {
    pub tid: usize,
    /// I/O partitions this worker processed.
    pub parts: u64,
    /// Partitions claimed from the worker's own (simulated) NUMA node.
    pub local_parts: u64,
    /// Partitions stolen from another node.
    pub remote_parts: u64,
    /// Nanoseconds blocked on leaf reads.
    pub io_wait_nanos: u64,
    /// Nanoseconds inside partition evaluation.
    pub compute_nanos: u64,
    /// Nanoseconds blocked on external-memory output writes (the
    /// `max_pending_writes` bound and the end-of-pass drain).
    pub write_stall_nanos: u64,
    /// Pcache chunk ranges evaluated.
    pub pcache_chunks: u64,
}

/// Accumulated timing for one DAG node within one pass (`op` level).
///
/// `nanos` is *inclusive*: producing a node's chunk includes producing
/// any not-yet-memoized inputs, so a parent's time covers its children
/// the first time they are evaluated.
#[derive(Debug, Clone)]
pub struct OpProfile {
    pub node_id: u64,
    pub label: String,
    /// Chunks evaluated for this node (memoized hits are not re-counted).
    pub chunks: u64,
    pub nanos: u64,
    /// When the node is the root of a fused map chain: number of ops the
    /// chain covers (0 for ordinary nodes). A ≥ 2 value means this one
    /// profile stands in for `chain_len` interpreter ops.
    pub chain_len: u64,
    /// Bytes of intermediate chunks the chain skipped allocating across
    /// all evaluations (0 for ordinary nodes).
    pub saved_bytes: u64,
}

/// One materialization pass, as observed by the fused engine.
#[derive(Debug, Clone)]
pub struct PassProfile {
    /// 1-based index in the context's pass counter.
    pub pass_id: u64,
    /// `"fused"`, `"eager-step"` or `"eager-target"`.
    pub engine: &'static str,
    /// The context's [`crate::session::ExecMode`] at the time.
    pub mode: &'static str,
    /// Distinct DAG nodes the plan covered (including leaves).
    pub nodes: usize,
    /// Distinct nodes the *submitted* DAG had before the analyzer's CSE
    /// rewrite. Equal to `nodes` when nothing merged (or when the
    /// analyzer was bypassed, e.g. eager sub-passes).
    pub nodes_pre_cse: usize,
    pub nparts: u64,
    /// Pcache chunk height in rows.
    pub pcache_step: usize,
    pub sinks: usize,
    pub talls: usize,
    pub wall_nanos: u64,
    /// Page-cache counter deltas over this pass (all zero when the
    /// context has no SAFS runtime or no cache installed).
    pub cache: CacheStatsSnapshot,
    pub workers: Vec<WorkerProfile>,
    /// Per-node timings; empty below [`TraceLevel::Op`].
    pub ops: Vec<OpProfile>,
    /// Cost-optimizer decisions applied to this pass (predicted vs.
    /// actual bytes); empty when `cost_optimize` is off.
    pub optimizer: Vec<crate::analysis::optimize::Decision>,
    /// SIMD dispatch level the pass's kernels were compiled at
    /// (`"off"`, `"scalar"` or `"avx2"`).
    pub simd: &'static str,
}

impl PassProfile {
    /// Summed worker I/O-wait.
    pub fn io_wait_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.io_wait_nanos).sum()
    }

    /// Summed worker compute time.
    pub fn compute_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.compute_nanos).sum()
    }

    /// Summed worker write-stall time.
    pub fn write_stall_nanos(&self) -> u64 {
        self.workers.iter().map(|w| w.write_stall_nanos).sum()
    }

    /// Summed Pcache chunks.
    pub fn pcache_chunks(&self) -> u64 {
        self.workers.iter().map(|w| w.pcache_chunks).sum()
    }

    /// Summed NUMA-local and NUMA-remote partition claims.
    pub fn numa_split(&self) -> (u64, u64) {
        (
            self.workers.iter().map(|w| w.local_parts).sum(),
            self.workers.iter().map(|w| w.remote_parts).sum(),
        )
    }
}

/// Retain at most this many pass profiles per context; iterative
/// algorithms can run tens of thousands of passes and the tracer must
/// not grow without bound.
const MAX_PASSES: usize = 4096;

/// Per-context trace collector. Shared by all clones of a
/// [`crate::session::FlashCtx`].
#[derive(Debug)]
pub struct Tracer {
    level: TraceLevel,
    passes: Mutex<Vec<PassProfile>>,
    dropped: AtomicU64,
    /// Allocated only at [`TraceLevel::Timeline`]; below that the span
    /// layer costs nothing.
    timeline: Option<Arc<Timeline>>,
}

impl Tracer {
    pub fn new(level: TraceLevel) -> Tracer {
        let timeline =
            (level >= TraceLevel::Timeline).then(|| Arc::new(Timeline::with_env_budget()));
        Tracer { level, passes: Mutex::new(Vec::new()), dropped: AtomicU64::new(0), timeline }
    }

    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// The span collector; `None` below [`TraceLevel::Timeline`].
    pub fn timeline(&self) -> Option<&Arc<Timeline>> {
        self.timeline.as_ref()
    }

    /// Events discarded because a timeline lane hit its budget (0 when
    /// the timeline is off).
    pub fn dropped_events(&self) -> u64 {
        self.timeline.as_ref().map(|t| t.dropped_events()).unwrap_or(0)
    }

    /// Export the recorded span timeline as Chrome `trace_event` JSON
    /// (an empty but valid document when the timeline is off).
    pub fn export_chrome_trace(&self) -> String {
        match &self.timeline {
            Some(tl) => chrome::export_single("flashr", tl),
            None => chrome::export_chrome_trace(&[]),
        }
    }

    /// Whether recording at `level` is active (the one branch the engine
    /// pays when tracing is off).
    pub fn enabled(&self, level: TraceLevel) -> bool {
        self.level >= level
    }

    /// Deposit one finished pass profile (bounded; overflow counts as
    /// dropped instead of growing).
    pub(crate) fn record_pass(&self, profile: PassProfile) {
        let mut passes = self.passes.lock();
        if passes.len() >= MAX_PASSES {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            passes.push(profile);
        }
    }

    /// Copy out the recorded profiles.
    pub fn passes(&self) -> Vec<PassProfile> {
        self.passes.lock().clone()
    }

    /// Attach the cost-optimizer's decision log (with actuals scraped
    /// post-pass) to the most recently recorded pass. No-op when no pass
    /// was recorded (trace level below `Pass`).
    pub(crate) fn attach_optimizer(&self, decisions: Vec<crate::analysis::optimize::Decision>) {
        if let Some(last) = self.passes.lock().last_mut() {
            last.optimizer = decisions;
        }
    }

    /// Profiles dropped because the per-context cap was reached.
    pub fn dropped_passes(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Forget everything recorded so far (the level stays).
    pub fn clear(&self) {
        self.passes.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
        if let Some(tl) = &self.timeline {
            tl.clear();
        }
    }
}

/// Everything a context observed, ready for JSON export.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    pub exec: ExecStatsSnapshot,
    /// SAFS I/O counters and latency histograms; `None` for in-memory
    /// contexts.
    pub io: Option<IoStatsSnapshot>,
    /// Per-shard (emulated device) I/O counters in shard order; empty
    /// for in-memory contexts.
    pub io_shards: Vec<ShardStatsSnapshot>,
    pub passes: Vec<PassProfile>,
    pub dropped_passes: u64,
    /// Per-pass wall-clock attribution (compute / io-wait / write-stall
    /// / idle, stragglers, late readahead); one row per recorded pass.
    pub critical_path: Vec<PassBreakdown>,
    /// Timeline events discarded at the per-lane budget (0 when the
    /// timeline is off).
    pub dropped_events: u64,
}

impl ProfileReport {
    /// Serialize to JSON. Hand-rolled: flashr-core takes no
    /// serialization dependency.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push('{');
        o.push_str("\"exec\":");
        exec_json(&self.exec, &mut o);
        o.push_str(",\"io\":");
        match &self.io {
            Some(io) => io_json(io, &mut o),
            None => o.push_str("null"),
        }
        o.push_str(",\"io_shards\":[");
        for (i, s) in self.io_shards.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            shard_json(s, &mut o);
        }
        o.push(']');
        o.push_str(",\"dropped_passes\":");
        push_u64(self.dropped_passes, &mut o);
        o.push_str(",\"dropped_events\":");
        push_u64(self.dropped_events, &mut o);
        o.push_str(",\"passes\":[");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            pass_json(p, &mut o);
        }
        o.push_str("],\"critical_path\":[");
        for (i, b) in self.critical_path.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            breakdown_json(b, &mut o);
        }
        o.push_str("]}");
        o
    }

    /// The per-pass critical-path table (same rendering in every bench
    /// bin; empty string when no passes were recorded).
    pub fn critical_path_table(&self) -> String {
        if self.critical_path.is_empty() {
            return String::new();
        }
        CriticalPath::table(&self.critical_path)
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64(v: u64, out: &mut String) {
    out.push_str(itoa(v).as_str());
}

/// Append an f64 as a JSON value. JSON has no NaN/Infinity literals, so
/// non-finite values become `null` (matching what serde_json's
/// `Value::from(f64::NAN)` serializes to).
pub fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn itoa(v: u64) -> String {
    format!("{v}")
}

fn field_u64(name: &str, v: u64, first: bool, out: &mut String) {
    if !first {
        out.push(',');
    }
    json_escape(name, out);
    out.push(':');
    push_u64(v, out);
}

pub(crate) fn exec_json(e: &ExecStatsSnapshot, out: &mut String) {
    out.push('{');
    field_u64("passes", e.passes, true, out);
    field_u64("parts", e.parts, false, out);
    field_u64("pcache_chunks", e.pcache_chunks, false, out);
    field_u64("local_parts", e.local_parts, false, out);
    field_u64("remote_parts", e.remote_parts, false, out);
    field_u64("exec_nanos", e.exec_nanos, false, out);
    field_u64("node_chunks", e.node_chunks, false, out);
    field_u64("node_chunk_bytes", e.node_chunk_bytes, false, out);
    field_u64("fused_chains", e.fused_chains, false, out);
    field_u64("fused_saved_bytes", e.fused_saved_bytes, false, out);
    field_u64("io_wait_nanos", e.io_wait_nanos, false, out);
    field_u64("compute_nanos", e.compute_nanos, false, out);
    field_u64("write_stall_nanos", e.write_stall_nanos, false, out);
    field_u64("opt_decisions", e.opt_decisions, false, out);
    field_u64("opt_cache_bytes", e.opt_cache_bytes, false, out);
    out.push('}');
}

fn histo_json(h: &LatencyHistoSnapshot, out: &mut String) {
    out.push('{');
    field_u64("count", h.count(), true, out);
    field_u64("p50_ns", h.quantile_upper_ns(0.50), false, out);
    field_u64("p95_ns", h.quantile_upper_ns(0.95), false, out);
    field_u64("p99_ns", h.quantile_upper_ns(0.99), false, out);
    // Sparse bucket list: [[lower_bound_ns, count], ...]
    out.push_str(",\"buckets\":[");
    let mut first = true;
    for i in 0..LAT_BUCKETS {
        if h.buckets[i] == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let (lo, _) = flashr_safs::LatencyHisto::bucket_bounds(i);
        out.push('[');
        push_u64(lo, out);
        out.push(',');
        push_u64(h.buckets[i], out);
        out.push(']');
    }
    out.push_str("]}");
}

pub(crate) fn io_json(io: &IoStatsSnapshot, out: &mut String) {
    out.push('{');
    field_u64("read_bytes", io.read_bytes, true, out);
    field_u64("write_bytes", io.write_bytes, false, out);
    field_u64("read_reqs", io.read_reqs, false, out);
    field_u64("write_reqs", io.write_reqs, false, out);
    field_u64("read_nanos", io.read_nanos, false, out);
    field_u64("write_nanos", io.write_nanos, false, out);
    field_u64("throttle_wait_nanos", io.throttle_wait_nanos, false, out);
    field_u64("io_retries", io.io_retries, false, out);
    field_u64("cur_queue_depth", io.cur_queue_depth, false, out);
    field_u64("max_queue_depth", io.max_queue_depth, false, out);
    out.push_str(",\"cache\":");
    cache_json(&io.cache, out);
    out.push_str(",\"read_lat\":");
    histo_json(&io.read_lat, out);
    out.push_str(",\"write_lat\":");
    histo_json(&io.write_lat, out);
    out.push('}');
}

/// Serialize one storage shard's counters (also used by benchmark
/// artifacts).
pub fn shard_json(s: &ShardStatsSnapshot, out: &mut String) {
    out.push('{');
    field_u64("read_reqs", s.read_reqs, true, out);
    field_u64("write_reqs", s.write_reqs, false, out);
    field_u64("read_bytes", s.read_bytes, false, out);
    field_u64("write_bytes", s.write_bytes, false, out);
    field_u64("retries", s.retries, false, out);
    field_u64("cur_queue_depth", s.cur_queue_depth, false, out);
    field_u64("max_queue_depth", s.max_queue_depth, false, out);
    out.push_str(",\"lat\":");
    histo_json(&s.lat, out);
    out.push('}');
}

/// Serialize page-cache counters (also used by benchmark artifacts).
pub fn cache_json(c: &CacheStatsSnapshot, out: &mut String) {
    out.push('{');
    field_u64("hits", c.hits, true, out);
    field_u64("misses", c.misses, false, out);
    field_u64("coalesced", c.coalesced, false, out);
    field_u64("bypasses", c.bypasses, false, out);
    field_u64("inserts", c.inserts, false, out);
    field_u64("evictions", c.evictions, false, out);
    field_u64("invalidations", c.invalidations, false, out);
    field_u64("readahead_issued", c.readahead_issued, false, out);
    field_u64("readahead_hits", c.readahead_hits, false, out);
    field_u64("resident_bytes", c.resident_bytes, false, out);
    out.push('}');
}

fn pass_json(p: &PassProfile, out: &mut String) {
    out.push('{');
    field_u64("pass_id", p.pass_id, true, out);
    out.push_str(",\"engine\":");
    json_escape(p.engine, out);
    out.push_str(",\"mode\":");
    json_escape(p.mode, out);
    out.push_str(",\"simd\":");
    json_escape(p.simd, out);
    field_u64("nodes", p.nodes as u64, false, out);
    field_u64("nodes_pre_cse", p.nodes_pre_cse as u64, false, out);
    field_u64("nparts", p.nparts, false, out);
    field_u64("pcache_step", p.pcache_step as u64, false, out);
    field_u64("sinks", p.sinks as u64, false, out);
    field_u64("talls", p.talls as u64, false, out);
    field_u64("wall_nanos", p.wall_nanos, false, out);
    field_u64("io_wait_nanos", p.io_wait_nanos(), false, out);
    field_u64("compute_nanos", p.compute_nanos(), false, out);
    field_u64("write_stall_nanos", p.write_stall_nanos(), false, out);
    field_u64("pcache_chunks", p.pcache_chunks(), false, out);
    let (local, remote) = p.numa_split();
    field_u64("local_parts", local, false, out);
    field_u64("remote_parts", remote, false, out);
    field_u64("cache_hits", p.cache.hits, false, out);
    field_u64("cache_misses", p.cache.misses, false, out);
    field_u64("cache_readahead", p.cache.readahead_issued, false, out);
    out.push_str(",\"workers\":[");
    for (i, w) in p.workers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        field_u64("tid", w.tid as u64, true, out);
        field_u64("parts", w.parts, false, out);
        field_u64("local_parts", w.local_parts, false, out);
        field_u64("remote_parts", w.remote_parts, false, out);
        field_u64("io_wait_nanos", w.io_wait_nanos, false, out);
        field_u64("compute_nanos", w.compute_nanos, false, out);
        field_u64("write_stall_nanos", w.write_stall_nanos, false, out);
        field_u64("pcache_chunks", w.pcache_chunks, false, out);
        out.push('}');
    }
    out.push_str("],\"ops\":[");
    for (i, op) in p.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        field_u64("node_id", op.node_id, true, out);
        out.push_str(",\"label\":");
        json_escape(&op.label, out);
        field_u64("chunks", op.chunks, false, out);
        field_u64("nanos", op.nanos, false, out);
        field_u64("chain_len", op.chain_len, false, out);
        field_u64("saved_bytes", op.saved_bytes, false, out);
        out.push('}');
    }
    out.push_str("],\"optimizer\":[");
    for (i, d) in p.optimizer.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        d.write_json(out);
    }
    out.push_str("]}");
}

fn breakdown_json(b: &PassBreakdown, out: &mut String) {
    out.push('{');
    field_u64("pass_id", b.pass_id, true, out);
    out.push_str(",\"engine\":");
    json_escape(b.engine, out);
    field_u64("nworkers", b.nworkers as u64, false, out);
    field_u64("wall_nanos", b.wall_nanos, false, out);
    field_u64("compute_nanos", b.compute_nanos, false, out);
    field_u64("io_wait_nanos", b.io_wait_nanos, false, out);
    field_u64("write_stall_nanos", b.write_stall_nanos, false, out);
    field_u64("idle_nanos", b.idle_nanos, false, out);
    field_u64("tasks", b.tasks, false, out);
    field_u64("median_task_nanos", b.median_task_nanos, false, out);
    field_u64("stragglers", b.stragglers, false, out);
    field_u64("readahead_late", b.readahead_late, false, out);
    out.push_str(",\"bound\":");
    json_escape(b.bound, out);
    out.push_str(",\"utilization\":");
    json_f64(b.utilization(), out);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("0"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("Summary"), Some(TraceLevel::Summary));
        assert_eq!(TraceLevel::parse(" pass "), Some(TraceLevel::Pass));
        assert_eq!(TraceLevel::parse("OP"), Some(TraceLevel::Op));
        assert_eq!(TraceLevel::parse("timeline"), Some(TraceLevel::Timeline));
        assert_eq!(TraceLevel::parse("bogus"), None);
        assert!(TraceLevel::Timeline > TraceLevel::Op);
        assert!(TraceLevel::Op > TraceLevel::Pass);
        assert!(TraceLevel::Pass > TraceLevel::Summary);
        assert!(TraceLevel::Summary > TraceLevel::Off);
    }

    #[test]
    fn tracer_gating() {
        let t = Tracer::new(TraceLevel::Pass);
        assert!(t.enabled(TraceLevel::Summary));
        assert!(t.enabled(TraceLevel::Pass));
        assert!(!t.enabled(TraceLevel::Op));
        let off = Tracer::new(TraceLevel::Off);
        assert!(!off.enabled(TraceLevel::Summary));
    }

    #[test]
    fn tracer_caps_recorded_passes() {
        let t = Tracer::new(TraceLevel::Pass);
        let p = PassProfile {
            pass_id: 1,
            engine: "fused",
            mode: "CacheFuse",
            nodes: 1,
            nodes_pre_cse: 1,
            nparts: 1,
            pcache_step: 64,
            sinks: 1,
            talls: 0,
            wall_nanos: 1,
            cache: CacheStatsSnapshot::default(),
            workers: Vec::new(),
            ops: Vec::new(),
            optimizer: Vec::new(),
            simd: "off",
        };
        for _ in 0..(MAX_PASSES + 10) {
            t.record_pass(p.clone());
        }
        assert_eq!(t.passes().len(), MAX_PASSES);
        assert_eq!(t.dropped_passes(), 10);
        t.clear();
        assert!(t.passes().is_empty());
        assert_eq!(t.dropped_passes(), 0);
    }

    #[test]
    fn report_json_is_wellformed() {
        let t = Tracer::new(TraceLevel::Op);
        t.record_pass(PassProfile {
            pass_id: 1,
            engine: "fused",
            mode: "CacheFuse",
            nodes: 3,
            nodes_pre_cse: 3,
            nparts: 2,
            pcache_step: 64,
            sinks: 1,
            talls: 1,
            wall_nanos: 12345,
            cache: CacheStatsSnapshot::default(),
            workers: vec![WorkerProfile {
                tid: 0,
                parts: 2,
                local_parts: 2,
                remote_parts: 0,
                io_wait_nanos: 10,
                compute_nanos: 100,
                write_stall_nanos: 5,
                pcache_chunks: 4,
            }],
            ops: vec![OpProfile {
                node_id: 7,
                label: "mapply:Add \"x\"".into(),
                chunks: 4,
                nanos: 50,
                chain_len: 0,
                saved_bytes: 0,
            }],
            optimizer: Vec::new(),
            simd: "avx2",
        });
        let report = ProfileReport {
            exec: ExecStatsSnapshot { passes: 1, parts: 2, ..Default::default() },
            io: None,
            io_shards: vec![ShardStatsSnapshot { read_reqs: 3, ..Default::default() }],
            passes: t.passes(),
            dropped_passes: 0,
            critical_path: Vec::new(),
            dropped_events: 0,
        };
        let json = report.to_json();
        assert!(json.contains("\"engine\":\"fused\""));
        assert!(json.contains("\"simd\":\"avx2\""));
        assert!(json.contains("\"write_stall_nanos\":5"));
        assert!(json.contains("\"dropped_events\":0"));
        assert!(json.contains("\"critical_path\":[]"));
        assert!(json.contains("\"io\":null"));
        assert!(json.contains("\"io_shards\":[{\"read_reqs\":3,"));
        // escaping: the label's quotes must be escaped
        assert!(json.contains("mapply:Add \\\"x\\\""));
        // crude structural check: balanced braces/brackets
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count() == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn json_escape_control_chars() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
