//! Critical-path analysis: attribute each pass's wall-clock to
//! compute / io-wait / write-stall / scheduler-idle, and mine the span
//! timeline for stragglers and late readahead.
//!
//! The paper's Fig. 10 argument is that the fused engine hides I/O
//! behind compute; this module quantifies how well that held for each
//! recorded pass. The aggregate split comes from the
//! [`PassProfile`](super::PassProfile) worker sums (available from
//! `FLASHR_TRACE=pass` up); the per-task columns (median task time,
//! straggler count, readahead-late count) need the span timeline
//! (`FLASHR_TRACE=timeline`) and read as zero below it.

use super::timeline::{EventKind, LaneSnapshot};
use super::PassProfile;

/// An adopted-readahead wait longer than this counts as "readahead
/// arrived late": the prefetch was issued but the consumer still
/// blocked materially on it.
pub const READAHEAD_LATE_NS: u64 = 50_000;

/// A task slower than `STRAGGLER_FACTOR` × the pass's median task time
/// is flagged as a straggler.
pub const STRAGGLER_FACTOR: u64 = 2;

/// Where one pass's wall-clock went.
#[derive(Debug, Clone)]
pub struct PassBreakdown {
    pub pass_id: u64,
    pub engine: &'static str,
    /// Worker threads that participated.
    pub nworkers: usize,
    pub wall_nanos: u64,
    /// Summed across workers; the four components add up to
    /// `nworkers × wall_nanos` (idle absorbs the remainder).
    pub compute_nanos: u64,
    pub io_wait_nanos: u64,
    pub write_stall_nanos: u64,
    /// Worker-seconds not accounted for by the other three: scheduler
    /// idle at the tail of the pass, claim contention, and span gaps.
    pub idle_nanos: u64,
    /// Partition tasks observed (from task spans when the timeline is
    /// on, else summed worker partition counts).
    pub tasks: u64,
    /// Median task-span duration (0 without the timeline).
    pub median_task_nanos: u64,
    /// Tasks slower than [`STRAGGLER_FACTOR`] × median.
    pub stragglers: u64,
    /// Adopted-readahead waits longer than [`READAHEAD_LATE_NS`].
    pub readahead_late: u64,
    /// The dominant component: `"compute"`, `"io-wait"`,
    /// `"write-stall"` or `"idle"`.
    pub bound: &'static str,
}

impl PassBreakdown {
    /// Fraction of worker-time spent computing (NaN when the pass
    /// recorded no workers or no wall time — serialized as `null`).
    pub fn utilization(&self) -> f64 {
        self.compute_nanos as f64 / (self.nworkers as f64 * self.wall_nanos as f64)
    }
}

/// Aggregate wall-clock attribution over a group of passes — the
/// compute-vs-I/O verdict the calibration loop and the profile store
/// consume. Falls back to the always-on `ExecStats` worker counters
/// when no pass profiles were recorded (trace level below `pass`), so
/// the verdict is never silently absent.
#[derive(Debug, Clone)]
pub struct WallAttribution {
    /// `"critical-path"` when derived from recorded pass profiles,
    /// `"exec-counters"` for the always-on fallback.
    pub source: &'static str,
    pub compute_nanos: u64,
    pub io_wait_nanos: u64,
    pub write_stall_nanos: u64,
    /// Zero under the exec-counter fallback (idle needs per-pass wall).
    pub idle_nanos: u64,
    /// Straggler tasks summed over the passes (timeline level only).
    pub stragglers: u64,
    /// Late-readahead waits summed over the passes (timeline level only).
    pub readahead_late: u64,
    /// Passes the attribution covers (0 under the fallback).
    pub passes: usize,
    /// The dominant component: `"compute"`, `"io-wait"`,
    /// `"write-stall"` or `"idle"`.
    pub bound: &'static str,
}

/// The analyzer. Stateless; groups the entry points.
pub struct CriticalPath;

impl CriticalPath {
    /// Break down every recorded pass. `lanes` may be empty (timeline
    /// off): the aggregate columns still fill in, the span-derived ones
    /// read zero.
    pub fn analyze(passes: &[PassProfile], lanes: &[LaneSnapshot]) -> Vec<PassBreakdown> {
        passes.iter().map(|p| analyze_pass(p, lanes)).collect()
    }

    /// Attribute a group of passes' wall-clock in aggregate. `fallback`
    /// carries the always-on `ExecStats` deltas
    /// `(compute_nanos, io_wait_nanos, write_stall_nanos)` used when
    /// `passes` is empty (trace level below `pass`).
    pub fn attribute(
        passes: &[PassProfile],
        lanes: &[LaneSnapshot],
        fallback: (u64, u64, u64),
    ) -> WallAttribution {
        let rows = CriticalPath::analyze(passes, lanes);
        let (source, compute, io_wait, write_stall, idle, stragglers, ra_late) = if rows.is_empty()
        {
            ("exec-counters", fallback.0, fallback.1, fallback.2, 0, 0, 0)
        } else {
            (
                "critical-path",
                rows.iter().map(|b| b.compute_nanos).sum(),
                rows.iter().map(|b| b.io_wait_nanos).sum(),
                rows.iter().map(|b| b.write_stall_nanos).sum(),
                rows.iter().map(|b| b.idle_nanos).sum(),
                rows.iter().map(|b| b.stragglers).sum(),
                rows.iter().map(|b| b.readahead_late).sum(),
            )
        };
        let bound = [
            ("compute", compute),
            ("io-wait", io_wait),
            ("write-stall", write_stall),
            ("idle", idle),
        ]
        .into_iter()
        .max_by_key(|&(_, v)| v)
        .map(|(name, _)| name)
        .unwrap_or("compute");
        WallAttribution {
            source,
            compute_nanos: compute,
            io_wait_nanos: io_wait,
            write_stall_nanos: write_stall,
            idle_nanos: idle,
            stragglers,
            readahead_late: ra_late,
            passes: if rows.is_empty() { passes.len() } else { rows.len() },
            bound,
        }
    }

    /// Render breakdowns as the fixed-width table the bench bins print.
    pub fn table(rows: &[PassBreakdown]) -> String {
        let mut o = String::new();
        o.push_str(
            "pass  engine        wall_ms   comp%    io%    wr%  idle%  tasks  straggler  ra-late  bound\n",
        );
        // Iterative workloads record thousands of near-identical passes;
        // show the heaviest ones.
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(rows[i].wall_nanos));
        let shown = order.len().min(12);
        for &i in &order[..shown] {
            let b = &rows[i];
            let denom = (b.nworkers as u64 * b.wall_nanos).max(1) as f64;
            let pct = |n: u64| 100.0 * n as f64 / denom;
            o.push_str(&format!(
                "{:>4}  {:<12} {:>8.2} {:>7.1} {:>6.1} {:>6.1} {:>6.1} {:>6} {:>10} {:>8}  {}\n",
                b.pass_id,
                b.engine,
                b.wall_nanos as f64 / 1e6,
                pct(b.compute_nanos),
                pct(b.io_wait_nanos),
                pct(b.write_stall_nanos),
                pct(b.idle_nanos),
                b.tasks,
                b.stragglers,
                b.readahead_late,
                b.bound,
            ));
        }
        if rows.len() > shown {
            o.push_str(&format!("({} more passes omitted; sorted by wall time)\n", rows.len() - shown));
        }
        o
    }
}

fn analyze_pass(p: &PassProfile, lanes: &[LaneSnapshot]) -> PassBreakdown {
    let nworkers = p.workers.len();
    let compute = p.compute_nanos();
    let io_wait = p.io_wait_nanos();
    let write_stall = p.write_stall_nanos();
    let idle =
        (nworkers as u64 * p.wall_nanos).saturating_sub(compute + io_wait + write_stall);

    let window = pass_window(p.pass_id, lanes);
    let mut task_durs: Vec<u64> = Vec::new();
    let mut readahead_late = 0u64;
    if let Some((w0, w1)) = window {
        for lane in lanes {
            collect_task_durations(lane, p.pass_id, &mut task_durs);
            for ev in &lane.events {
                if ev.kind == EventKind::Complete
                    && ev.name == "ra-wait"
                    && ev.ts_ns >= w0
                    && ev.ts_ns < w1
                    && ev.dur_ns > READAHEAD_LATE_NS
                {
                    readahead_late += 1;
                }
            }
        }
    }

    let (tasks, median, stragglers) = if task_durs.is_empty() {
        (p.workers.iter().map(|w| w.parts).sum(), 0, 0)
    } else {
        task_durs.sort_unstable();
        let median = task_durs[task_durs.len() / 2];
        let stragglers =
            task_durs.iter().filter(|&&d| median > 0 && d > STRAGGLER_FACTOR * median).count() as u64;
        (task_durs.len() as u64, median, stragglers)
    };

    let bound = [
        ("compute", compute),
        ("io-wait", io_wait),
        ("write-stall", write_stall),
        ("idle", idle),
    ]
    .iter()
    .max_by_key(|(_, v)| *v)
    .map(|(n, _)| *n)
    .unwrap_or("compute");

    PassBreakdown {
        pass_id: p.pass_id,
        engine: p.engine,
        nworkers,
        wall_nanos: p.wall_nanos,
        compute_nanos: compute,
        io_wait_nanos: io_wait,
        write_stall_nanos: write_stall,
        idle_nanos: idle,
        tasks,
        median_task_nanos: median,
        stragglers,
        readahead_late,
        bound,
    }
}

/// Find the `[begin, end)` window of this pass's `pass` span on any
/// lane (the coordinator thread records it).
fn pass_window(pass_id: u64, lanes: &[LaneSnapshot]) -> Option<(u64, u64)> {
    for lane in lanes {
        let mut begin: Option<u64> = None;
        for ev in &lane.events {
            if ev.name != "pass" {
                continue;
            }
            match ev.kind {
                EventKind::Begin if ev.args.contains(&("pass", pass_id)) => begin = Some(ev.ts_ns),
                EventKind::End => {
                    if let Some(b) = begin.take() {
                        return Some((b, ev.ts_ns));
                    }
                }
                _ => {}
            }
        }
        // Unmatched begin (e.g. the pass is still running): open-ended
        // window.
        if let Some(b) = begin {
            return Some((b, u64::MAX));
        }
    }
    None
}

/// Stack-match `task` Begin/End pairs tagged with this pass id on one
/// lane, appending their durations.
fn collect_task_durations(lane: &LaneSnapshot, pass_id: u64, out: &mut Vec<u64>) {
    let mut stack: Vec<(u64, bool)> = Vec::new(); // (begin_ts, belongs_to_pass)
    for ev in &lane.events {
        if ev.name != "task" {
            continue;
        }
        match ev.kind {
            EventKind::Begin => {
                stack.push((ev.ts_ns, ev.args.contains(&("pass", pass_id))));
            }
            EventKind::End => {
                if let Some((t0, ours)) = stack.pop() {
                    if ours {
                        out.push(ev.ts_ns.saturating_sub(t0));
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_safs::CacheStatsSnapshot;

    fn pass(pass_id: u64, wall: u64, workers: Vec<super::super::WorkerProfile>) -> PassProfile {
        PassProfile {
            pass_id,
            engine: "fused",
            mode: "CacheFuse",
            nodes: 1,
            nodes_pre_cse: 1,
            nparts: 4,
            pcache_step: 64,
            sinks: 1,
            talls: 0,
            wall_nanos: wall,
            cache: CacheStatsSnapshot::default(),
            workers,
            ops: Vec::new(),
            optimizer: Vec::new(),
            simd: "off",
        }
    }

    fn worker(compute: u64, io: u64, ws: u64, parts: u64) -> super::super::WorkerProfile {
        super::super::WorkerProfile {
            parts,
            io_wait_nanos: io,
            compute_nanos: compute,
            write_stall_nanos: ws,
            ..Default::default()
        }
    }

    #[test]
    fn aggregate_attribution_without_timeline() {
        let p = pass(1, 1000, vec![worker(600, 100, 50, 2), worker(500, 200, 0, 2)]);
        let rows = CriticalPath::analyze(&[p], &[]);
        let b = &rows[0];
        assert_eq!(b.nworkers, 2);
        assert_eq!(b.compute_nanos, 1100);
        assert_eq!(b.io_wait_nanos, 300);
        assert_eq!(b.write_stall_nanos, 50);
        // 2 workers × 1000 wall − (1100+300+50) = 550 idle
        assert_eq!(b.idle_nanos, 550);
        assert_eq!(b.bound, "compute");
        assert_eq!(b.tasks, 4);
        assert_eq!(b.stragglers, 0);
        assert!((b.utilization() - 0.55).abs() < 1e-9);
    }

    #[test]
    fn stragglers_and_late_readahead_from_spans() {
        // Hand-build a lane snapshot with controlled timestamps: four
        // tasks of 100ns and one of 900ns → median 100, one straggler.
        let mk = |name: &'static str, kind, ts, dur, args| super::super::timeline::SpanEvent {
            ts_ns: ts,
            dur_ns: dur,
            kind,
            cat: "exec",
            name: std::borrow::Cow::Borrowed(name),
            args,
        };
        let no = [("", 0), ("", 0)];
        let tagged = [("part", 0), ("pass", 7)];
        let mut evs = vec![mk("pass", EventKind::Begin, 0, 0, [("pass", 7), ("", 0)])];
        for i in 0..4u64 {
            evs.push(mk("task", EventKind::Begin, 10 + i * 200, 0, tagged));
            evs.push(mk("task", EventKind::End, 110 + i * 200, 0, no));
        }
        evs.push(mk("task", EventKind::Begin, 1000, 0, tagged));
        evs.push(mk("task", EventKind::End, 1900, 0, no));
        evs.push(mk("ra-wait", EventKind::Complete, 500, READAHEAD_LATE_NS + 1, no));
        evs.push(mk("ra-wait", EventKind::Complete, 600, 10, no)); // on time
        evs.push(mk("pass", EventKind::End, 2000, 0, no));
        let lanes = vec![LaneSnapshot { name: "w0".into(), events: evs }];

        let p = pass(7, 2000, vec![worker(100, 1800, 0, 5)]);
        let rows = CriticalPath::analyze(&[p], &lanes);
        let b = &rows[0];
        assert_eq!(b.tasks, 5);
        assert_eq!(b.median_task_nanos, 100);
        assert_eq!(b.stragglers, 1);
        assert_eq!(b.readahead_late, 1);
        assert_eq!(b.bound, "io-wait");
    }

    #[test]
    fn table_renders_and_caps() {
        let passes: Vec<PassProfile> =
            (1..=20).map(|i| pass(i, i * 1000, vec![worker(500, 100, 0, 2)])).collect();
        let rows = CriticalPath::analyze(&passes, &[]);
        let table = CriticalPath::table(&rows);
        assert!(table.contains("bound"));
        assert!(table.contains("8 more passes omitted"));
        // Heaviest pass (20) must be shown, lightest (1) omitted.
        assert!(table.contains("\n  20  fused"));
        assert!(!table.contains("\n   1  fused"));
    }
}
