//! Chrome `trace_event`-format export of a [`Timeline`].
//!
//! The output is the JSON Object Format
//! (`{"traceEvents":[...]}`) understood by Perfetto and
//! `chrome://tracing`: `B`/`E` duration events for executor spans, `X`
//! complete events for the retrospectively-recorded I/O and wait spans,
//! `i` instants, `C` counters, and `M` metadata naming each process
//! (context) and thread (lane). Timestamps are microseconds (with
//! nanosecond decimals) on the shared [`flashr_safs::now_nanos`] clock,
//! so lanes from the engine and the SAFS I/O threads line up in one
//! view.
//!
//! Hand-rolled like the rest of this module's serialization:
//! flashr-core takes no serde dependency. Tests parse the output with a
//! real JSON parser (dev-dependency).

use super::json_escape;
use super::timeline::{EventKind, LaneSnapshot, Timeline};

/// Serialize one or more timelines into a single Chrome-trace JSON
/// document. Each `(name, timeline)` pair becomes one process (pid),
/// each lane one thread (tid) — so a program with several contexts
/// (e.g. perf_probe's in-memory and external-memory contexts) can merge
/// them into one view.
pub fn export_chrome_trace(parts: &[(&str, &Timeline)]) -> String {
    let mut o = String::with_capacity(64 * 1024);
    o.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (pidx, (pname, tl)) in parts.iter().enumerate() {
        let pid = pidx + 1;
        meta_event(&mut o, &mut first, pid, 0, "process_name", pname);
        for (lidx, lane) in tl.snapshot().iter().enumerate() {
            let tid = lidx + 1;
            meta_event(&mut o, &mut first, pid, tid, "thread_name", &lane.name);
            lane_events(&mut o, &mut first, pid, tid, lane);
        }
    }
    o.push_str("],\"displayTimeUnit\":\"ms\"}");
    o
}

/// Convenience: a single context's trace under one process.
pub fn export_single(name: &str, tl: &Timeline) -> String {
    export_chrome_trace(&[(name, tl)])
}

fn meta_event(o: &mut String, first: &mut bool, pid: usize, tid: usize, kind: &str, name: &str) {
    sep(o, first);
    o.push_str("{\"ph\":\"M\",\"pid\":");
    push_usize(o, pid);
    o.push_str(",\"tid\":");
    push_usize(o, tid);
    o.push_str(",\"name\":");
    json_escape(kind, o);
    o.push_str(",\"args\":{\"name\":");
    json_escape(name, o);
    o.push_str("}}");
}

fn lane_events(o: &mut String, first: &mut bool, pid: usize, tid: usize, lane: &LaneSnapshot) {
    for ev in &lane.events {
        sep(o, first);
        o.push_str("{\"ph\":\"");
        o.push_str(match ev.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Complete => "X",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        });
        o.push_str("\",\"pid\":");
        push_usize(o, pid);
        o.push_str(",\"tid\":");
        push_usize(o, tid);
        o.push_str(",\"ts\":");
        push_micros(o, ev.ts_ns);
        if ev.kind == EventKind::Complete {
            o.push_str(",\"dur\":");
            push_micros(o, ev.dur_ns);
        }
        if ev.kind == EventKind::Instant {
            // Thread-scoped instant marker.
            o.push_str(",\"s\":\"t\"");
        }
        o.push_str(",\"name\":");
        json_escape(&ev.name, o);
        // Perfetto matches B/E pairs by (cat, name, tid) — emit the
        // category on every phase, End included.
        o.push_str(",\"cat\":");
        json_escape(ev.cat, o);
        let args: Vec<_> = ev.args.iter().filter(|(k, _)| !k.is_empty()).collect();
        if !args.is_empty() {
            o.push_str(",\"args\":{");
            for (i, (k, v)) in args.iter().enumerate() {
                if i > 0 {
                    o.push(',');
                }
                json_escape(k, o);
                o.push(':');
                o.push_str(&v.to_string());
            }
            o.push('}');
        }
        o.push('}');
    }
}

fn sep(o: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        o.push(',');
    }
}

fn push_usize(o: &mut String, v: usize) {
    o.push_str(&v.to_string());
}

/// Nanoseconds → microseconds with 3 decimals (Chrome's `ts`/`dur` unit
/// is µs; the decimals keep nanosecond resolution).
fn push_micros(o: &mut String, ns: u64) {
    o.push_str(&ns.to_string());
    // Insert the decimal point three digits from the end: 1234567 ns
    // → "1234.567" µs. Shorter values get zero-padding.
    let len = o.len();
    let digits = ns.to_string().len();
    if digits <= 3 {
        let s = format!("0.{:03}", ns);
        o.truncate(len - digits);
        o.push_str(&s);
    } else {
        o.insert(len - 3, '.');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_safs::NO_ARGS;

    #[test]
    fn micros_formatting() {
        let mut s = String::new();
        push_micros(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        s.clear();
        push_micros(&mut s, 42);
        assert_eq!(s, "0.042");
        s.clear();
        push_micros(&mut s, 0);
        assert_eq!(s, "0.000");
        s.clear();
        push_micros(&mut s, 1000);
        assert_eq!(s, "1.000");
    }

    #[test]
    fn export_contains_all_event_phases() {
        let tl = Timeline::new(64);
        let lane = tl.named_lane("w0");
        lane.begin("exec", "task", [("part", 1), ("", 0)]);
        lane.end("exec", "task");
        lane.complete("io", "read", 10, 20, [("bytes", 4096), ("", 0)]);
        lane.instant("cache", "hit", NO_ARGS);
        lane.counter("io-queue-depth", 15, 3);
        let json = export_single("ctx", &tl);
        for phase in ["\"ph\":\"M\"", "\"ph\":\"B\"", "\"ph\":\"E\"", "\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"C\""] {
            assert!(json.contains(phase), "missing {phase} in {json}");
        }
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"bytes\":4096"));
    }
}
