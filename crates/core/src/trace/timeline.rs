//! The span timeline: per-thread tracks of timestamped events.
//!
//! Where [`PassProfile`](super::PassProfile) answers "how much time went
//! where, in aggregate", the timeline answers "*when* did each worker do
//! what": every claimed I/O partition becomes a `task` span on its
//! worker's track, with nested `io-wait` / `compute` / `write-stall`
//! children, and the SAFS layer contributes I/O-request and cache
//! lifecycle spans through the [`SpanSink`] trait. The result is the
//! task-stream view the paper's overlap story (§3.2–3.3, Fig. 10) needs
//! to be debuggable: a straggling partition, a worker idling at a
//! barrier, or readahead arriving late is directly visible.
//!
//! Collection is per-thread ("lane"): each thread appends to its own
//! vector behind its own mutex, so recording never contends across
//! workers. Memory is bounded by a per-lane event budget
//! (`FLASHR_TRACE_EVENTS`, default 65536); overflow increments a shared
//! `dropped_events` counter instead of growing, mirroring
//! `dropped_passes`.
//!
//! Timestamps come from [`flashr_safs::now_nanos`], the same
//! process-wide monotonic clock the SAFS threads stamp their spans with,
//! so merged exports line up across layers.

use flashr_safs::{now_nanos, SpanArgs, SpanSink};
use parking_lot::Mutex;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default per-lane event budget (overridable via `FLASHR_TRACE_EVENTS`).
pub const DEFAULT_EVENTS_PER_LANE: usize = 1 << 16;

/// What an event on a lane is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a span on this lane; spans opened by one thread close in
    /// LIFO order, so begins/ends form a properly nested sequence.
    Begin,
    /// Closes the most recent open [`EventKind::Begin`] of this name.
    End,
    /// A completed interval recorded after the fact (`ts_ns` is its
    /// begin, `dur_ns` its length). Used where the begin timestamp is
    /// only known at completion time (I/O requests, blocking waits), so
    /// these may appear out of timestamp order on a lane.
    Complete,
    /// A zero-duration marker.
    Instant,
    /// A counter sample; `args[0].1` carries the value.
    Counter,
}

/// One timestamped event on one lane.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Begin timestamp, nanoseconds on the [`now_nanos`] clock.
    pub ts_ns: u64,
    /// Duration for [`EventKind::Complete`]; 0 for everything else.
    pub dur_ns: u64,
    pub kind: EventKind,
    /// Coarse grouping: `"exec"`, `"io"` or `"cache"`.
    pub cat: &'static str,
    pub name: Cow<'static, str>,
    pub args: SpanArgs,
}

/// One thread's event track.
pub struct Lane {
    name: String,
    events: Mutex<Vec<SpanEvent>>,
    cap: usize,
    dropped: Arc<AtomicU64>,
}

impl Lane {
    fn record(&self, ev: SpanEvent) {
        let mut g = self.events.lock();
        if g.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            g.push(ev);
        }
    }

    /// Open a span now.
    pub fn begin(&self, cat: &'static str, name: impl Into<Cow<'static, str>>, args: SpanArgs) {
        self.record(SpanEvent {
            ts_ns: now_nanos(),
            dur_ns: 0,
            kind: EventKind::Begin,
            cat,
            name: name.into(),
            args,
        });
    }

    /// Close the most recent open span of this name.
    pub fn end(&self, cat: &'static str, name: impl Into<Cow<'static, str>>) {
        self.record(SpanEvent {
            ts_ns: now_nanos(),
            dur_ns: 0,
            kind: EventKind::End,
            cat,
            name: name.into(),
            args: flashr_safs::NO_ARGS,
        });
    }

    /// Record a completed interval `[begin_ns, end_ns]`.
    pub fn complete(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        begin_ns: u64,
        end_ns: u64,
        args: SpanArgs,
    ) {
        self.record(SpanEvent {
            ts_ns: begin_ns,
            dur_ns: end_ns.saturating_sub(begin_ns),
            kind: EventKind::Complete,
            cat,
            name: name.into(),
            args,
        });
    }

    /// Record a zero-duration marker now.
    pub fn instant(&self, cat: &'static str, name: impl Into<Cow<'static, str>>, args: SpanArgs) {
        self.record(SpanEvent {
            ts_ns: now_nanos(),
            dur_ns: 0,
            kind: EventKind::Instant,
            cat,
            name: name.into(),
            args,
        });
    }

    /// Record a counter sample.
    pub fn counter(&self, name: &'static str, ts_ns: u64, value: u64) {
        self.record(SpanEvent {
            ts_ns,
            dur_ns: 0,
            kind: EventKind::Counter,
            cat: "counter",
            name: Cow::Borrowed(name),
            args: [("value", value), ("", 0)],
        });
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Events currently recorded on this lane.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Lane({:?}, {} events)", self.name, self.len())
    }
}

/// A copied-out lane for analysis/export.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    pub name: String,
    pub events: Vec<SpanEvent>,
}

/// The per-context timeline collector. Created by
/// [`Tracer::new`](super::Tracer::new) at [`TraceLevel::Timeline`](super::TraceLevel)
/// and installed on the SAFS runtime as its [`SpanSink`].
pub struct Timeline {
    cap: usize,
    /// Lanes in creation order (for stable export ordering).
    lanes: Mutex<Vec<Arc<Lane>>>,
    /// Name → lane. Threads with stable names (executor workers, SAFS
    /// I/O threads) share one lane across passes; unnamed threads get a
    /// numbered lane each.
    by_name: Mutex<HashMap<String, Arc<Lane>>>,
    dropped: Arc<AtomicU64>,
}

impl Timeline {
    pub fn new(events_per_lane: usize) -> Timeline {
        Timeline {
            cap: events_per_lane.max(1),
            lanes: Mutex::new(Vec::new()),
            by_name: Mutex::new(HashMap::new()),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Budget from `FLASHR_TRACE_EVENTS` (events per lane), defaulting
    /// to [`DEFAULT_EVENTS_PER_LANE`].
    pub fn with_env_budget() -> Timeline {
        let cap = std::env::var("FLASHR_TRACE_EVENTS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_EVENTS_PER_LANE);
        Timeline::new(cap)
    }

    /// The calling thread's lane, named after the thread (or a numbered
    /// fallback for unnamed threads). Hot paths should call this once
    /// and keep the `Arc`.
    pub fn lane(&self) -> Arc<Lane> {
        match std::thread::current().name() {
            Some(n) => self.named_lane(n),
            None => {
                let n = self.lanes.lock().len();
                self.named_lane(&format!("thread-{n}"))
            }
        }
    }

    /// Get or create the lane with this name.
    pub fn named_lane(&self, name: &str) -> Arc<Lane> {
        if let Some(l) = self.by_name.lock().get(name) {
            return l.clone();
        }
        let lane = Arc::new(Lane {
            name: name.to_string(),
            events: Mutex::new(Vec::new()),
            cap: self.cap,
            dropped: self.dropped.clone(),
        });
        let mut by_name = self.by_name.lock();
        // Double-checked under the lock: another thread may have raced
        // the same name in.
        if let Some(l) = by_name.get(name) {
            return l.clone();
        }
        by_name.insert(name.to_string(), lane.clone());
        self.lanes.lock().push(lane.clone());
        lane
    }

    /// Copy out every lane's events, in lane-creation order.
    pub fn snapshot(&self) -> Vec<LaneSnapshot> {
        self.lanes
            .lock()
            .iter()
            .map(|l| LaneSnapshot { name: l.name.clone(), events: l.events.lock().clone() })
            .collect()
    }

    /// Events discarded because a lane hit the budget.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events currently held across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.lock().iter().map(|l| l.len()).sum()
    }

    /// Per-lane event budget.
    pub fn budget(&self) -> usize {
        self.cap
    }

    /// Forget all recorded events and lanes.
    pub fn clear(&self) {
        self.lanes.lock().clear();
        self.by_name.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Timeline({} lanes, {} events)", self.lanes.lock().len(), self.total_events())
    }
}

/// SAFS-side spans land on the calling thread's lane: backend I/O
/// threads have stable `safs-<flavor>-s<shard>t<n>` names (one lane
/// group per storage shard), and compute threads calling into the
/// cache reuse the worker lane their executor spans are on.
impl SpanSink for Timeline {
    fn span(&self, cat: &'static str, name: &'static str, begin_ns: u64, end_ns: u64, args: SpanArgs) {
        self.lane().complete(cat, name, begin_ns, end_ns, args);
    }

    fn instant(&self, cat: &'static str, name: &'static str, ts_ns: u64, args: SpanArgs) {
        let lane = self.lane();
        lane.record(SpanEvent {
            ts_ns,
            dur_ns: 0,
            kind: EventKind::Instant,
            cat,
            name: Cow::Borrowed(name),
            args,
        });
    }

    fn counter(&self, name: &'static str, ts_ns: u64, value: u64) {
        self.lane().counter(name, ts_ns, value);
    }
}

/// Claim the `FLASHR_TRACE_OUT` path, once per process: the first traced
/// context to drop (or the first bench harness to export) wins, so a
/// program with several contexts does not overwrite the trace file
/// repeatedly.
pub fn claim_trace_out() -> Option<std::path::PathBuf> {
    use std::sync::atomic::AtomicBool;
    static CLAIMED: AtomicBool = AtomicBool::new(false);
    let path = std::env::var_os("FLASHR_TRACE_OUT").filter(|p| !p.is_empty())?;
    if CLAIMED.swap(true, Ordering::SeqCst) {
        return None;
    }
    Some(std::path::PathBuf::from(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_per_name_and_reused() {
        let tl = Timeline::new(16);
        let a = tl.named_lane("w0");
        let b = tl.named_lane("w0");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(tl.snapshot().len(), 1);
        tl.named_lane("w1").instant("exec", "x", flashr_safs::NO_ARGS);
        assert_eq!(tl.snapshot().len(), 2);
        assert_eq!(tl.total_events(), 1);
    }

    #[test]
    fn budget_drops_and_counts() {
        let tl = Timeline::new(3);
        let lane = tl.named_lane("w0");
        for _ in 0..5 {
            lane.instant("exec", "x", flashr_safs::NO_ARGS);
        }
        assert_eq!(lane.len(), 3);
        assert_eq!(tl.dropped_events(), 2);
        tl.clear();
        assert_eq!(tl.dropped_events(), 0);
        assert_eq!(tl.total_events(), 0);
    }

    #[test]
    fn begin_end_pairs_are_ordered() {
        let tl = Timeline::new(64);
        let lane = tl.named_lane("w0");
        lane.begin("exec", "task", [("part", 3), ("", 0)]);
        lane.begin("exec", "compute", flashr_safs::NO_ARGS);
        lane.end("exec", "compute");
        lane.end("exec", "task");
        let snap = tl.snapshot();
        let evs = &snap[0].events;
        assert_eq!(evs.len(), 4);
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[3].kind, EventKind::End);
        assert_eq!(evs[0].args[0], ("part", 3));
    }

    #[test]
    fn complete_records_duration() {
        let tl = Timeline::new(8);
        let lane = tl.named_lane("io");
        lane.complete("io", "read", 100, 350, [("bytes", 4096), ("", 0)]);
        let ev = &tl.snapshot()[0].events[0];
        assert_eq!((ev.ts_ns, ev.dur_ns), (100, 250));
        assert_eq!(ev.kind, EventKind::Complete);
    }
}
