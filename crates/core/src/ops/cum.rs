//! Cumulative GenOps (`cum.row`, `cum.col`, paper Table 1).
//!
//! For a tall matrix, cumulating *along rows* (`cum.row`: across the
//! columns of each row) is partition-local. Cumulating *down the rows of
//! each column* (`cum.col`) crosses partitions: the executor carries the
//! last row of each partition to the next (paper §3.3 operation *j*,
//! single-pass parallel prefix over sequential dispatch).
//!
//! Only associative functions are admitted.

use crate::chunk::{BufPool, Chunk};
use crate::element::Element;
use crate::ops::binary::{arith_col_fn_level, BinaryOp, ColSrc};
use crate::ops::simd::SimdLevel;

fn check_assoc(op: BinaryOp) {
    assert!(
        matches!(op, BinaryOp::Add | BinaryOp::Mul | BinaryOp::Min | BinaryOp::Max),
        "cumulative ops require an associative function, got {op:?}"
    );
}

/// One column of `cum.col`, monomorphized over `(OP, T)` so the serial
/// prefix loop contains no enum dispatch. Returns the carry (last row).
fn cum_col_one<T: Element, const OP: u8>(d: &mut [T], s: &[T], carry: Option<T>) -> T {
    let op = BinaryOp::from_u8(OP);
    let mut run = carry;
    for (dv, &sv) in d.iter_mut().zip(s) {
        let v = match run {
            Some(acc) => op.eval(acc, sv),
            None => sv,
        };
        *dv = v;
        run = Some(v);
    }
    run.expect("chunk with zero rows")
}

type CumColFn<T> = fn(&mut [T], &[T], Option<T>) -> T;

/// Resolve the associative op to its prefix kernel once per chunk.
fn cum_col_fn<T: Element>(op: BinaryOp) -> CumColFn<T> {
    macro_rules! arm {
        ($v:ident) => {
            cum_col_one::<T, { BinaryOp::$v as u8 }>
        };
    }
    match op {
        BinaryOp::Add => arm!(Add),
        BinaryOp::Mul => arm!(Mul),
        BinaryOp::Min => arm!(Min),
        BinaryOp::Max => arm!(Max),
        _ => unreachable!("check_assoc admits Add/Mul/Min/Max only"),
    }
}

/// `cum.row`: `out[r, c] = f(out[r, c-1], in[r, c])`, entirely inside one
/// chunk. Column `c` is an element-wise fold of output column `c-1` with
/// input column `c` — exactly the binary column kernel, so the resolver
/// hands us the monomorphized (and, for Add/Mul, AVX2) kernel once
/// instead of dispatching the op per element.
pub fn cum_row_chunk(op: BinaryOp, input: &Chunk, pool: &mut BufPool) -> Chunk {
    check_assoc(op);
    let rows = input.rows();
    let cols = input.cols();
    let mut out = Chunk::alloc(input.dtype(), rows, cols, pool);
    let level = SimdLevel::active();
    crate::dispatch!(input.dtype(), T, {
        let f = arith_col_fn_level::<T>(op, level);
        let src = input.slice::<T>();
        let dst = out.slice_mut::<T>();
        // Column 0 copies; column c folds with column c-1 of the output.
        dst[..rows].copy_from_slice(&src[..rows]);
        for c in 1..cols {
            let (prev, cur) = dst.split_at_mut(c * rows);
            let prev = &prev[(c - 1) * rows..];
            let cur = &mut cur[..rows];
            let s = &src[c * rows..(c + 1) * rows];
            f(cur, prev, ColSrc::Slice(s), false);
        }
    });
    out
}

/// `cum.col` over one partition: `out[r, c] = f(out[r-1, c], in[r, c])`
/// down the rows, starting from `carry` (the running value after the
/// previous partition). Returns the output chunk and the new carry (the
/// last row).
///
/// The carry travels as f64 (exact for f64 matrices; integer matrices
/// cumulate in their own type inside the partition and cast at the seam).
pub fn cum_col_chunk(
    op: BinaryOp,
    input: &Chunk,
    carry: Option<&[f64]>,
    pool: &mut BufPool,
) -> (Chunk, Vec<f64>) {
    check_assoc(op);
    let rows = input.rows();
    let cols = input.cols();
    if let Some(c) = carry {
        assert_eq!(c.len(), cols, "carry width mismatch");
    }
    let mut out = Chunk::alloc(input.dtype(), rows, cols, pool);
    let mut new_carry = vec![0.0f64; cols];
    crate::dispatch!(input.dtype(), T, {
        let f = cum_col_fn::<T>(op);
        let src = input.slice::<T>();
        let dst = out.slice_mut::<T>();
        for c in 0..cols {
            let s = &src[c * rows..(c + 1) * rows];
            let d = &mut dst[c * rows..(c + 1) * rows];
            let run = carry.map(|vals| T::from_f64(vals[c]));
            new_carry[c] = f(d, s, run).to_f64();
        }
    });
    (out, new_carry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cum_row_sums_across_columns() {
        let mut pool = BufPool::new();
        // rows: [1,2,3] and [10,20,30]
        let c = Chunk::from_slice::<f64>(2, 3, &[1.0, 10.0, 2.0, 20.0, 3.0, 30.0]);
        let out = cum_row_chunk(BinaryOp::Add, &c, &mut pool);
        assert_eq!(out.col::<f64>(0), &[1.0, 10.0]);
        assert_eq!(out.col::<f64>(1), &[3.0, 30.0]);
        assert_eq!(out.col::<f64>(2), &[6.0, 60.0]);
    }

    #[test]
    fn cum_col_without_carry() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<i64>(4, 1, &[1, 2, 3, 4]);
        let (out, carry) = cum_col_chunk(BinaryOp::Add, &c, None, &mut pool);
        assert_eq!(out.slice::<i64>(), &[1, 3, 6, 10]);
        assert_eq!(carry, vec![10.0]);
    }

    #[test]
    fn cum_col_chains_partitions() {
        let mut pool = BufPool::new();
        let full = Chunk::from_slice::<f64>(6, 2, &[1., 2., 3., 4., 5., 6., 1., 1., 1., 1., 1., 1.]);
        let (whole, _) = cum_col_chunk(BinaryOp::Add, &full, None, &mut pool);

        let first = full.slice_rows(0, 3, &mut pool);
        let second = full.slice_rows(3, 6, &mut pool);
        let (o1, carry) = cum_col_chunk(BinaryOp::Add, &first, None, &mut pool);
        let (o2, _) = cum_col_chunk(BinaryOp::Add, &second, Some(&carry), &mut pool);
        for c in 0..2 {
            for r in 0..3 {
                assert_eq!(o1.get_f64(r, c), whole.get_f64(r, c));
                assert_eq!(o2.get_f64(r, c), whole.get_f64(3 + r, c));
            }
        }
    }

    #[test]
    fn cum_prod_and_min() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(3, 1, &[2.0, 3.0, 4.0]);
        let (p, _) = cum_col_chunk(BinaryOp::Mul, &c, None, &mut pool);
        assert_eq!(p.slice::<f64>(), &[2.0, 6.0, 24.0]);
        let m = Chunk::from_slice::<f64>(4, 1, &[3.0, 1.0, 2.0, 0.5]);
        let (mn, carry) = cum_col_chunk(BinaryOp::Min, &m, None, &mut pool);
        assert_eq!(mn.slice::<f64>(), &[3.0, 1.0, 1.0, 0.5]);
        assert_eq!(carry, vec![0.5]);
    }

    #[test]
    #[should_panic]
    fn non_associative_rejected() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(2, 1, &[1.0, 2.0]);
        let _ = cum_row_chunk(BinaryOp::Sub, &c, &mut pool);
    }
}
