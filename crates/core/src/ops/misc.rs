//! Structural chunk kernels: dtype casts, column selection and column
//! binding (`cbind`). All keep the partition dimension, so they fuse like
//! any other map operation.

use crate::chunk::{BufPool, Chunk};
use crate::dtype::DType;
use crate::element::Element;
use crate::ops::agg::AggOp;

/// Cast a chunk to another dtype.
pub fn cast_chunk(input: &Chunk, to: DType, pool: &mut BufPool) -> Chunk {
    if input.dtype() == to {
        return input.clone();
    }
    let rows = input.rows();
    let cols = input.cols();
    let mut out = Chunk::alloc(to, rows, cols, pool);
    crate::dispatch!(input.dtype(), S, {
        crate::dispatch!(to, D, {
            cast_slice::<S, D>(input.slice::<S>(), out.slice_mut::<D>());
        });
    });
    out
}

/// Slice-level cast shared by [`cast_chunk`] and the fused map kernels:
/// float sources round-trip through `f64`, integer sources through `i64`
/// (R promotion semantics, exact for same-family conversions).
pub(crate) fn cast_slice<S: Element, D: Element>(src: &[S], dst: &mut [D]) {
    if S::DTYPE.is_float() {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = D::from_f64(s.to_f64());
        }
    } else {
        for (d, s) in dst.iter_mut().zip(src) {
            *d = D::from_i64(s.to_i64());
        }
    }
}

/// Select columns (R's `X[, idx]`); indices may repeat or reorder.
pub fn select_cols(input: &Chunk, idx: &[usize], pool: &mut BufPool) -> Chunk {
    let rows = input.rows();
    for &c in idx {
        assert!(c < input.cols(), "column index {c} out of range ({} cols)", input.cols());
    }
    let mut out = Chunk::alloc(input.dtype(), rows, idx.len(), pool);
    crate::dispatch!(input.dtype(), T, {
        let dst = out.slice_mut::<T>();
        for (o, &c) in idx.iter().enumerate() {
            dst[o * rows..(o + 1) * rows].copy_from_slice(input.col::<T>(c));
        }
    });
    out
}

/// Concatenate chunks column-wise (R's `cbind`); all inputs must share
/// rows and dtype (the FM layer promotes dtypes beforehand).
pub fn bind_cols(inputs: &[&Chunk], pool: &mut BufPool) -> Chunk {
    assert!(!inputs.is_empty(), "cbind of nothing");
    let rows = inputs[0].rows();
    let dtype = inputs[0].dtype();
    let total: usize = inputs.iter().map(|c| c.cols()).sum();
    for c in inputs {
        assert_eq!(c.rows(), rows, "cbind row mismatch");
        assert_eq!(c.dtype(), dtype, "cbind dtype mismatch");
    }
    let mut out = Chunk::alloc(dtype, rows, total, pool);
    crate::dispatch!(dtype, T, {
        let dst = out.slice_mut::<T>();
        let mut at = 0usize;
        for input in inputs {
            let n = input.cols() * rows;
            dst[at..at + n].copy_from_slice(input.slice::<T>());
            at += n;
        }
    });
    out
}

/// `groupby.col` (paper Table 1): split the *columns* into groups by
/// `labels` and reduce each group per row — `out[r, g] = f(in[r, c])`
/// over all `c` with `labels[c] == g`. Keeps the partition dimension, so
/// it fuses like a map operation.
pub fn group_cols(
    input: &Chunk,
    labels: &[usize],
    op: AggOp,
    ngroups: usize,
    pool: &mut BufPool,
) -> Chunk {
    assert_eq!(labels.len(), input.cols(), "one label per column required");
    assert!(!op.is_positional(), "which.min/which.max are not defined for groupby.col");
    for &g in labels {
        assert!(g < ngroups, "column label {g} outside [0, {ngroups})");
    }
    let rows = input.rows();
    let out_dtype = op.out_dtype(input.dtype());
    // f64 accumulators per (row, group), folded column-by-column.
    let mut acc = vec![op.identity(); rows * ngroups];
    let mut counts = vec![0u64; ngroups];
    crate::dispatch!(input.dtype(), T, {
        for (c, &g) in labels.iter().enumerate() {
            counts[g] += 1;
            let col = input.col::<T>(c);
            let dst = &mut acc[g * rows..(g + 1) * rows];
            for r in 0..rows {
                dst[r] = op.fold(dst[r], col[r].to_f64());
            }
        }
    });
    if op == AggOp::Mean {
        for g in 0..ngroups {
            let n = counts[g].max(1) as f64;
            for v in &mut acc[g * rows..(g + 1) * rows] {
                *v /= n;
            }
        }
    }
    if op == AggOp::Count {
        for g in 0..ngroups {
            let n = counts[g] as f64;
            for v in &mut acc[g * rows..(g + 1) * rows] {
                *v = n;
            }
        }
    }
    let mut out = Chunk::alloc(out_dtype, rows, ngroups, pool);
    crate::dispatch!(out_dtype, O, {
        let dst = out.slice_mut::<O>();
        for (d, a) in dst.iter_mut().zip(&acc) {
            *d = O::from_f64(*a);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_float_to_int_truncates() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(3, 1, &[1.9, -2.7, 3.0]);
        let i = cast_chunk(&c, DType::I64, &mut pool);
        assert_eq!(i.slice::<i64>(), &[1, -2, 3]);
    }

    #[test]
    fn cast_int_to_float_is_exact() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<i32>(2, 2, &[1, 2, 3, 4]);
        let f = cast_chunk(&c, DType::F32, &mut pool);
        assert_eq!(f.slice::<f32>(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn cast_same_dtype_preserves_values() {
        // (The DAG layer elides same-dtype casts entirely; the kernel just
        // has to stay correct.)
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(2, 1, &[1.0, 2.0]);
        let same = cast_chunk(&c, DType::F64, &mut pool);
        assert_eq!(same.slice::<f64>(), c.slice::<f64>());
    }

    #[test]
    fn big_i64_to_i32_wraps_not_saturates_via_f64() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<i64>(1, 1, &[1i64 << 40]);
        let d = cast_chunk(&c, DType::F64, &mut pool);
        assert_eq!(d.get_f64(0, 0), (1i64 << 40) as f64);
    }

    #[test]
    fn select_reorders_and_repeats() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = select_cols(&c, &[2, 0, 0], &mut pool);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.col::<f64>(0), &[5.0, 6.0]);
        assert_eq!(s.col::<f64>(1), &[1.0, 2.0]);
        assert_eq!(s.col::<f64>(2), &[1.0, 2.0]);
    }

    #[test]
    fn bind_concatenates() {
        let mut pool = BufPool::new();
        let a = Chunk::from_slice::<i64>(2, 1, &[1, 2]);
        let b = Chunk::from_slice::<i64>(2, 2, &[3, 4, 5, 6]);
        let out = bind_cols(&[&a, &b], &mut pool);
        assert_eq!(out.cols(), 3);
        assert_eq!(out.slice::<i64>(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn group_cols_sums_and_means() {
        let mut pool = BufPool::new();
        // 2 rows × 4 cols, col-major: cols [1,2],[3,4],[5,6],[7,8]
        let c = Chunk::from_slice::<f64>(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let out = group_cols(&c, &[0, 1, 0, 1], AggOp::Sum, 2, &mut pool);
        assert_eq!(out.cols(), 2);
        assert_eq!(out.col::<f64>(0), &[6.0, 8.0]); // cols 0+2
        assert_eq!(out.col::<f64>(1), &[10.0, 12.0]); // cols 1+3
        let m = group_cols(&c, &[0, 1, 0, 1], AggOp::Mean, 2, &mut pool);
        assert_eq!(m.col::<f64>(0), &[3.0, 4.0]);
    }

    #[test]
    fn group_cols_min_max_and_empty_group() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(1, 3, &[5.0, -1.0, 3.0]);
        let out = group_cols(&c, &[0, 0, 0], AggOp::Min, 2, &mut pool);
        assert_eq!(out.get_f64(0, 0), -1.0);
        assert_eq!(out.get_f64(0, 1), f64::INFINITY); // empty group keeps identity
        let mx = group_cols(&c, &[1, 1, 1], AggOp::Max, 2, &mut pool);
        assert_eq!(mx.get_f64(0, 1), 5.0);
    }

    #[test]
    #[should_panic]
    fn group_cols_rejects_positional_ops() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(1, 2, &[1.0, 2.0]);
        let _ = group_cols(&c, &[0, 1], AggOp::WhichMin, 2, &mut pool);
    }

    #[test]
    #[should_panic]
    fn select_out_of_range_panics() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(1, 2, &[1.0, 2.0]);
        let _ = select_cols(&c, &[5], &mut pool);
    }
}
