//! GenOp kernels (paper Table 1).
//!
//! Every kernel consumes and produces column-major
//! [`Chunk`](crate::chunk::Chunk)s, is monomorphized per element type and contains no
//! threading: parallelism comes from the executor dispatching I/O
//! partitions to worker threads (§3.3).

pub mod agg;
pub mod binary;
pub mod cum;
pub mod fused_map;
pub mod matmul;
pub mod misc;
pub mod simd;
pub mod unary;

pub use agg::{agg_row, AggOp};
pub use binary::{apply_binary, BinOperand, BinaryOp};
pub use cum::{cum_col_chunk, cum_row_chunk};
pub use matmul::{inner_prod_chunk, matmul_chunk};
pub use misc::{bind_cols, cast_chunk, group_cols, select_cols};
pub use simd::SimdLevel;
pub use unary::{apply_unary, UnaryOp};
