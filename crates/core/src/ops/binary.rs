//! Element-wise binary operations (`mapply` GenOp) with broadcasting.
//!
//! Broadcast forms mirror what the R overrides need:
//! * chunk ⊕ chunk of the same shape,
//! * chunk ⊕ one-column chunk (the column is recycled across columns —
//!   R's vector recycling for `X * y` with `y` a column),
//! * chunk ⊕ scalar,
//! * chunk ⊕ row vector (R's `sweep(X, 2, stats, op)`).
//!
//! Mixed dtypes never reach these kernels: the FM layer inserts casts so
//! both operands share a dtype.

use crate::chunk::{BufPool, Chunk};
use crate::dtype::{DType, Scalar};
use crate::element::Element;

/// Predefined binary element functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    Min,
    Max,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// `(a - b)²` — the `euclidean` function the paper passes to
    /// `inner.prod` for k-means distances.
    EuclidSq,
}

impl BinaryOp {
    /// Every variant in declaration (discriminant) order; keeps
    /// [`BinaryOp::from_u8`] in sync with `as u8` casts.
    pub(crate) const ALL: [BinaryOp; 17] = [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Rem,
        BinaryOp::Pow,
        BinaryOp::Min,
        BinaryOp::Max,
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::And,
        BinaryOp::Or,
        BinaryOp::EuclidSq,
    ];

    /// Inverse of `op as u8`. Used by the monomorphized column kernels:
    /// with `OP` a const generic, the match below constant-folds and the
    /// inner loops compile down to the bare element function.
    #[inline(always)]
    pub(crate) fn from_u8(v: u8) -> BinaryOp {
        BinaryOp::ALL[v as usize]
    }

    /// Whether the op returns a logical (U8) result.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::And
                | BinaryOp::Or
        )
    }

    /// Output dtype given the (already promoted) operand dtype.
    pub fn out_dtype(self, operand: DType) -> DType {
        if self.is_predicate() {
            DType::U8
        } else {
            operand
        }
    }

    #[inline(always)]
    pub(crate) fn eval<T: Element>(self, a: T, b: T) -> T {
        match self {
            BinaryOp::Add => a.add(b),
            BinaryOp::Sub => a.sub(b),
            BinaryOp::Mul => a.mul(b),
            BinaryOp::Div => a.div(b),
            BinaryOp::Rem => a.rem(b),
            BinaryOp::Pow => a.pow(b),
            BinaryOp::Min => a.minv(b),
            BinaryOp::Max => a.maxv(b),
            BinaryOp::EuclidSq => {
                let d = a.sub(b);
                d.mul(d)
            }
            _ => unreachable!("predicate ops use eval_pred"),
        }
    }

    #[inline(always)]
    pub(crate) fn eval_pred<T: Element>(self, a: T, b: T) -> u8 {
        let t = T::zero();
        match self {
            BinaryOp::Eq => u8::from(a == b),
            BinaryOp::Ne => u8::from(a != b),
            BinaryOp::Lt => u8::from(a < b),
            BinaryOp::Le => u8::from(a <= b),
            BinaryOp::Gt => u8::from(a > b),
            BinaryOp::Ge => u8::from(a >= b),
            BinaryOp::And => u8::from(a != t && b != t),
            BinaryOp::Or => u8::from(a != t || b != t),
            _ => unreachable!("arithmetic ops use eval"),
        }
    }
}

/// The right-hand operand of a broadcasting binary op.
#[derive(Debug, Clone, Copy)]
pub enum BinOperand<'a> {
    /// Another chunk: same shape, or a single column recycled.
    Chunk(&'a Chunk),
    /// A scalar constant.
    Scalar(Scalar),
    /// A per-column constant (length = `a.cols()`).
    RowVec(&'a [f64]),
}

/// One column's worth of right-hand operand, resolved to either a
/// slice (chunk operand) or a per-column constant (scalar / row vector).
pub(crate) enum ColSrc<'a, T> {
    Slice(&'a [T]),
    Const(T),
}

fn col_src<'a, T: Element>(b: &BinOperand<'a>, col: usize, a_rows: usize) -> ColSrc<'a, T> {
    match b {
        BinOperand::Chunk(ch) => {
            assert_eq!(ch.rows(), a_rows, "binary operand row mismatch");
            let c = if ch.cols() == 1 { 0 } else { col };
            ColSrc::Slice(ch.col::<T>(c))
        }
        BinOperand::Scalar(s) => ColSrc::Const(T::from_scalar(*s)),
        BinOperand::RowVec(v) => ColSrc::Const(T::from_f64(v[col])),
    }
}

/// One whole arithmetic column, monomorphized over `(OP, T)`: the
/// `BinaryOp::from_u8` match constant-folds under the const generic, so
/// the `for` loops contain zero enum dispatch. The `swapped` branch is
/// resolved once per column, outside the element loop.
pub(crate) fn arith_col<T: Element, const OP: u8>(
    dst: &mut [T],
    a: &[T],
    b: ColSrc<'_, T>,
    swapped: bool,
) {
    let op = BinaryOp::from_u8(OP);
    match b {
        ColSrc::Slice(bcol) => {
            if swapped {
                for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(bcol) {
                    *d = op.eval(bv, av);
                }
            } else {
                for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(bcol) {
                    *d = op.eval(av, bv);
                }
            }
        }
        ColSrc::Const(bv) => {
            if swapped {
                for (d, &av) in dst.iter_mut().zip(a) {
                    *d = op.eval(bv, av);
                }
            } else {
                for (d, &av) in dst.iter_mut().zip(a) {
                    *d = op.eval(av, bv);
                }
            }
        }
    }
}

/// Predicate twin of [`arith_col`]: writes the logical (U8) column.
pub(crate) fn pred_col<T: Element, const OP: u8>(
    dst: &mut [u8],
    a: &[T],
    b: ColSrc<'_, T>,
    swapped: bool,
) {
    let op = BinaryOp::from_u8(OP);
    match b {
        ColSrc::Slice(bcol) => {
            if swapped {
                for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(bcol) {
                    *d = op.eval_pred(bv, av);
                }
            } else {
                for ((d, &av), &bv) in dst.iter_mut().zip(a).zip(bcol) {
                    *d = op.eval_pred(av, bv);
                }
            }
        }
        ColSrc::Const(bv) => {
            if swapped {
                for (d, &av) in dst.iter_mut().zip(a) {
                    *d = op.eval_pred(bv, av);
                }
            } else {
                for (d, &av) in dst.iter_mut().zip(a) {
                    *d = op.eval_pred(av, bv);
                }
            }
        }
    }
}

/// AVX2 variant-column twin of [`arith_col`]: same signature, same
/// results bit-for-bit (the SIMD layer only implements exactly-rounded
/// ops), but the strip body runs 4/8 elements per instruction.
pub(crate) fn arith_col_simd<T: Element, const OP: u8>(
    dst: &mut [T],
    a: &[T],
    b: ColSrc<'_, T>,
    swapped: bool,
) {
    crate::ops::simd::arith_simd::<T>(BinaryOp::from_u8(OP), dst, a, b, swapped);
}

pub(crate) type ArithColFn<T> = fn(&mut [T], &[T], ColSrc<'_, T>, bool);
pub(crate) type PredColFn<T> = fn(&mut [u8], &[T], ColSrc<'_, T>, bool);

/// Resolve an arithmetic op to its monomorphized column kernel once, so
/// callers dispatch per column (or per strip) instead of per element.
pub(crate) fn arith_col_fn<T: Element>(op: BinaryOp) -> ArithColFn<T> {
    macro_rules! arm {
        ($v:ident) => {
            arith_col::<T, { BinaryOp::$v as u8 }>
        };
    }
    match op {
        BinaryOp::Add => arm!(Add),
        BinaryOp::Sub => arm!(Sub),
        BinaryOp::Mul => arm!(Mul),
        BinaryOp::Div => arm!(Div),
        BinaryOp::Rem => arm!(Rem),
        BinaryOp::Pow => arm!(Pow),
        BinaryOp::Min => arm!(Min),
        BinaryOp::Max => arm!(Max),
        BinaryOp::EuclidSq => arm!(EuclidSq),
        _ => unreachable!("predicate ops use pred_col_fn"),
    }
}

/// [`arith_col_fn`] with the per-ISA variant column: ops whose AVX2
/// kernels exist (and are exactly rounded) resolve to them when `level`
/// allows, everything else falls back to the portable kernel. Resolved
/// once per chunk/strip — the returned pointer is still a bare fn.
pub(crate) fn arith_col_fn_level<T: Element>(
    op: BinaryOp,
    level: crate::ops::simd::SimdLevel,
) -> ArithColFn<T> {
    if level >= crate::ops::simd::SimdLevel::Avx2
        && crate::ops::simd::SimdLevel::avx2_supported()
        && crate::ops::simd::arith_simd_available(op, T::DTYPE)
    {
        macro_rules! arm {
            ($v:ident) => {
                arith_col_simd::<T, { BinaryOp::$v as u8 }>
            };
        }
        return match op {
            BinaryOp::Add => arm!(Add),
            BinaryOp::Sub => arm!(Sub),
            BinaryOp::Mul => arm!(Mul),
            BinaryOp::Div => arm!(Div),
            BinaryOp::EuclidSq => arm!(EuclidSq),
            _ => unreachable!("arith_simd_available admitted {op:?}"),
        };
    }
    arith_col_fn::<T>(op)
}

/// Predicate twin of [`arith_col_fn`].
pub(crate) fn pred_col_fn<T: Element>(op: BinaryOp) -> PredColFn<T> {
    macro_rules! arm {
        ($v:ident) => {
            pred_col::<T, { BinaryOp::$v as u8 }>
        };
    }
    match op {
        BinaryOp::Eq => arm!(Eq),
        BinaryOp::Ne => arm!(Ne),
        BinaryOp::Lt => arm!(Lt),
        BinaryOp::Le => arm!(Le),
        BinaryOp::Gt => arm!(Gt),
        BinaryOp::Ge => arm!(Ge),
        BinaryOp::And => arm!(And),
        BinaryOp::Or => arm!(Or),
        _ => unreachable!("arithmetic ops use arith_col_fn"),
    }
}

/// Apply `op(a, b)` (or `op(b, a)` when `swapped`) over a chunk with
/// broadcasting; returns a fresh chunk.
pub fn apply_binary(
    op: BinaryOp,
    a: &Chunk,
    b: BinOperand<'_>,
    swapped: bool,
    pool: &mut BufPool,
) -> Chunk {
    let rows = a.rows();
    let cols = a.cols();
    if let BinOperand::Chunk(ch) = &b {
        assert!(
            ch.cols() == cols || ch.cols() == 1,
            "binary operand col mismatch: {} vs {}",
            ch.cols(),
            cols
        );
        assert_eq!(ch.dtype(), a.dtype(), "binary operands must share a dtype");
    }
    if let BinOperand::RowVec(v) = &b {
        assert_eq!(v.len(), cols, "row-vector operand length mismatch");
    }

    if op.is_predicate() {
        let mut out = Chunk::alloc(DType::U8, rows, cols, pool);
        crate::dispatch!(a.dtype(), T, {
            let f = pred_col_fn::<T>(op);
            for c in 0..cols {
                let acol = a.col::<T>(c);
                let dst_all = out.slice_mut::<u8>();
                f(&mut dst_all[c * rows..(c + 1) * rows], acol, col_src::<T>(&b, c, rows), swapped);
            }
        });
        return out;
    }

    let mut out = Chunk::alloc(a.dtype(), rows, cols, pool);
    let level = crate::ops::simd::SimdLevel::active();
    crate::dispatch!(a.dtype(), T, {
        let f = arith_col_fn_level::<T>(op, level);
        for c in 0..cols {
            let acol = a.col::<T>(c);
            let dst_all = out.slice_mut::<T>();
            f(&mut dst_all[c * rows..(c + 1) * rows], acol, col_src::<T>(&b, c, rows), swapped);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c_f64(rows: usize, cols: usize, vals: &[f64]) -> Chunk {
        Chunk::from_slice::<f64>(rows, cols, vals)
    }

    #[test]
    fn same_shape_arithmetic() {
        let mut pool = BufPool::new();
        let a = c_f64(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = c_f64(2, 2, &[10.0, 20.0, 30.0, 40.0]);
        let s = apply_binary(BinaryOp::Add, &a, BinOperand::Chunk(&b), false, &mut pool);
        assert_eq!(s.slice::<f64>(), &[11.0, 22.0, 33.0, 44.0]);
        let d = apply_binary(BinaryOp::Sub, &a, BinOperand::Chunk(&b), true, &mut pool);
        assert_eq!(d.slice::<f64>(), &[9.0, 18.0, 27.0, 36.0]);
    }

    #[test]
    fn scalar_broadcast() {
        let mut pool = BufPool::new();
        let a = c_f64(3, 1, &[1.0, 2.0, 3.0]);
        let m = apply_binary(BinaryOp::Mul, &a, BinOperand::Scalar(Scalar::F64(2.0)), false, &mut pool);
        assert_eq!(m.slice::<f64>(), &[2.0, 4.0, 6.0]);
        // swapped: 10 / a
        let q = apply_binary(BinaryOp::Div, &a, BinOperand::Scalar(Scalar::F64(6.0)), true, &mut pool);
        assert_eq!(q.slice::<f64>(), &[6.0, 3.0, 2.0]);
    }

    #[test]
    fn column_recycling() {
        let mut pool = BufPool::new();
        let a = c_f64(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = c_f64(2, 1, &[10.0, 100.0]);
        let s = apply_binary(BinaryOp::Add, &a, BinOperand::Chunk(&y), false, &mut pool);
        assert_eq!(s.slice::<f64>(), &[11.0, 102.0, 13.0, 104.0, 15.0, 106.0]);
    }

    #[test]
    fn row_vector_sweep() {
        let mut pool = BufPool::new();
        let a = c_f64(2, 2, &[2.0, 4.0, 9.0, 12.0]);
        let stats = [2.0, 3.0];
        let s = apply_binary(BinaryOp::Div, &a, BinOperand::RowVec(&stats), false, &mut pool);
        assert_eq!(s.slice::<f64>(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn predicates_output_u8() {
        let mut pool = BufPool::new();
        let a = Chunk::from_slice::<i64>(3, 1, &[1, 5, 3]);
        let b = Chunk::from_slice::<i64>(3, 1, &[2, 5, 1]);
        let lt = apply_binary(BinaryOp::Lt, &a, BinOperand::Chunk(&b), false, &mut pool);
        assert_eq!(lt.dtype(), DType::U8);
        assert_eq!(lt.slice::<u8>(), &[1, 0, 0]);
        let eq = apply_binary(BinaryOp::Eq, &a, BinOperand::Chunk(&b), false, &mut pool);
        assert_eq!(eq.slice::<u8>(), &[0, 1, 0]);
    }

    #[test]
    fn logical_ops_on_nonzero_semantics() {
        let mut pool = BufPool::new();
        let a = Chunk::from_slice::<u8>(4, 1, &[0, 1, 0, 1]);
        let b = Chunk::from_slice::<u8>(4, 1, &[0, 0, 1, 1]);
        let and = apply_binary(BinaryOp::And, &a, BinOperand::Chunk(&b), false, &mut pool);
        assert_eq!(and.slice::<u8>(), &[0, 0, 0, 1]);
        let or = apply_binary(BinaryOp::Or, &a, BinOperand::Chunk(&b), false, &mut pool);
        assert_eq!(or.slice::<u8>(), &[0, 1, 1, 1]);
    }

    #[test]
    fn euclid_sq() {
        let mut pool = BufPool::new();
        let a = c_f64(2, 1, &[3.0, -1.0]);
        let e = apply_binary(BinaryOp::EuclidSq, &a, BinOperand::Scalar(Scalar::F64(1.0)), false, &mut pool);
        assert_eq!(e.slice::<f64>(), &[4.0, 4.0]);
    }

    #[test]
    fn min_max_pmin_pmax() {
        let mut pool = BufPool::new();
        let a = c_f64(3, 1, &[1.0, 5.0, 3.0]);
        let b = c_f64(3, 1, &[2.0, 4.0, 3.0]);
        let mn = apply_binary(BinaryOp::Min, &a, BinOperand::Chunk(&b), false, &mut pool);
        assert_eq!(mn.slice::<f64>(), &[1.0, 4.0, 3.0]);
        let mx = apply_binary(BinaryOp::Max, &a, BinOperand::Chunk(&b), false, &mut pool);
        assert_eq!(mx.slice::<f64>(), &[2.0, 5.0, 3.0]);
    }

    #[test]
    fn integer_pow_and_rem() {
        let mut pool = BufPool::new();
        let a = Chunk::from_slice::<i32>(3, 1, &[2, 3, 7]);
        let p = apply_binary(BinaryOp::Pow, &a, BinOperand::Scalar(Scalar::I32(2)), false, &mut pool);
        assert_eq!(p.slice::<i32>(), &[4, 9, 49]);
        let r = apply_binary(BinaryOp::Rem, &a, BinOperand::Scalar(Scalar::I32(3)), false, &mut pool);
        assert_eq!(r.slice::<i32>(), &[2, 0, 1]);
    }
}
