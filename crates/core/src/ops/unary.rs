//! Element-wise unary operations (`sapply` GenOp).

use crate::chunk::{BufPool, Chunk};
use crate::dtype::DType;
use crate::element::Element;

/// Predefined unary element functions (the paper predefines all GenOp
/// input functions; user closures never cross the engine boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Abs,
    Sqrt,
    Exp,
    Ln,
    Log2,
    Log10,
    Log1p,
    Floor,
    Ceil,
    Round,
    Sign,
    Recip,
    Square,
    /// `1 / (1 + e^-x)` — predefined because logistic-style models use it
    /// in every iteration.
    Sigmoid,
    /// Logical not: `x == 0`.
    Not,
}

impl UnaryOp {
    /// Every variant in declaration (discriminant) order; keeps
    /// [`UnaryOp::from_u8`] in sync with `as u8` casts.
    pub(crate) const ALL: [UnaryOp; 16] = [
        UnaryOp::Neg,
        UnaryOp::Abs,
        UnaryOp::Sqrt,
        UnaryOp::Exp,
        UnaryOp::Ln,
        UnaryOp::Log2,
        UnaryOp::Log10,
        UnaryOp::Log1p,
        UnaryOp::Floor,
        UnaryOp::Ceil,
        UnaryOp::Round,
        UnaryOp::Sign,
        UnaryOp::Recip,
        UnaryOp::Square,
        UnaryOp::Sigmoid,
        UnaryOp::Not,
    ];

    /// Inverse of `op as u8`; constant-folds when `v` is a const generic
    /// (the fused map kernels monomorphize their strip loops over it).
    #[inline(always)]
    pub(crate) fn from_u8(v: u8) -> UnaryOp {
        UnaryOp::ALL[v as usize]
    }

    /// Whether the mathematical definition requires float input; the FM
    /// layer casts integer inputs to `f64` first (R promotion).
    pub fn needs_float(self) -> bool {
        matches!(
            self,
            UnaryOp::Sqrt
                | UnaryOp::Exp
                | UnaryOp::Ln
                | UnaryOp::Log2
                | UnaryOp::Log10
                | UnaryOp::Log1p
                | UnaryOp::Recip
                | UnaryOp::Sigmoid
        )
    }

    /// Output dtype for a given input dtype.
    pub fn out_dtype(self, input: DType) -> DType {
        match self {
            UnaryOp::Not => DType::U8,
            _ => input,
        }
    }

    #[inline(always)]
    pub(crate) fn eval_f64(self, x: f64) -> f64 {
        match self {
            UnaryOp::Neg => -x,
            UnaryOp::Abs => x.abs(),
            UnaryOp::Sqrt => x.sqrt(),
            UnaryOp::Exp => x.exp(),
            UnaryOp::Ln => x.ln(),
            UnaryOp::Log2 => x.log2(),
            UnaryOp::Log10 => x.log10(),
            UnaryOp::Log1p => x.ln_1p(),
            UnaryOp::Floor => x.floor(),
            UnaryOp::Ceil => x.ceil(),
            UnaryOp::Round => x.round(),
            UnaryOp::Sign => {
                if x > 0.0 {
                    1.0
                } else if x < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Recip => 1.0 / x,
            UnaryOp::Square => x * x,
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            UnaryOp::Not => unreachable!("Not handled separately"),
        }
    }
}

/// [`unary_typed`] with the per-ISA variant column: exactly-rounded ops
/// take the AVX2 kernel when `level` allows (bit-identical results by
/// construction), everything else runs the portable loop.
pub(crate) fn unary_typed_level<T: Element>(
    level: crate::ops::simd::SimdLevel,
    op: UnaryOp,
    src: &[T],
    dst: &mut [T],
) {
    if level >= crate::ops::simd::SimdLevel::Avx2
        && crate::ops::simd::SimdLevel::avx2_supported()
        && crate::ops::simd::unary_simd_available(op, T::DTYPE)
    {
        crate::ops::simd::unary_simd::<T>(op, src, dst);
        return;
    }
    unary_typed(op, src, dst);
}

pub(crate) fn unary_typed<T: Element>(op: UnaryOp, src: &[T], dst: &mut [T]) {
    match op {
        // Ops with exact native implementations stay in T.
        UnaryOp::Neg => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.neg();
            }
        }
        UnaryOp::Abs => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.abs();
            }
        }
        UnaryOp::Square => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.mul(*s);
            }
        }
        // Everything else evaluates through f64 (exact for float chunks,
        // R-promoted semantics for integer chunks).
        _ => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = T::from_f64(op.eval_f64(s.to_f64()));
            }
        }
    }
}

/// Apply a unary op over a whole chunk.
pub fn apply_unary(op: UnaryOp, input: &Chunk, pool: &mut BufPool) -> Chunk {
    let rows = input.rows();
    let cols = input.cols();
    if op == UnaryOp::Not {
        let mut out = Chunk::alloc(DType::U8, rows, cols, pool);
        crate::dispatch!(input.dtype(), T, {
            let src = input.slice::<T>();
            let dst = out.slice_mut::<u8>();
            for (d, s) in dst.iter_mut().zip(src) {
                *d = u8::from(*s == T::zero());
            }
        });
        return out;
    }
    let mut out = Chunk::alloc(input.dtype(), rows, cols, pool);
    let level = crate::ops::simd::SimdLevel::active();
    crate::dispatch!(input.dtype(), T, {
        unary_typed_level::<T>(level, op, input.slice::<T>(), out.slice_mut::<T>());
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk_f64(vals: &[f64]) -> Chunk {
        Chunk::from_slice::<f64>(vals.len(), 1, vals)
    }

    #[test]
    fn float_ops() {
        let mut pool = BufPool::new();
        let c = chunk_f64(&[4.0, 9.0, 0.25]);
        let s = apply_unary(UnaryOp::Sqrt, &c, &mut pool);
        assert_eq!(s.slice::<f64>(), &[2.0, 3.0, 0.5]);

        let e = apply_unary(UnaryOp::Exp, &chunk_f64(&[0.0, 1.0]), &mut pool);
        assert!((e.get_f64(1, 0) - std::f64::consts::E).abs() < 1e-15);

        let sig = apply_unary(UnaryOp::Sigmoid, &chunk_f64(&[0.0]), &mut pool);
        assert_eq!(sig.get_f64(0, 0), 0.5);
    }

    #[test]
    fn neg_abs_square_native_on_ints() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<i64>(4, 1, &[-3, 0, 5, -7]);
        let n = apply_unary(UnaryOp::Neg, &c, &mut pool);
        assert_eq!(n.slice::<i64>(), &[3, 0, -5, 7]);
        let a = apply_unary(UnaryOp::Abs, &c, &mut pool);
        assert_eq!(a.slice::<i64>(), &[3, 0, 5, 7]);
        let q = apply_unary(UnaryOp::Square, &c, &mut pool);
        assert_eq!(q.slice::<i64>(), &[9, 0, 25, 49]);
    }

    #[test]
    fn sign_and_round_family() {
        let mut pool = BufPool::new();
        let c = chunk_f64(&[-2.7, 0.0, 1.2]);
        assert_eq!(apply_unary(UnaryOp::Sign, &c, &mut pool).slice::<f64>(), &[-1.0, 0.0, 1.0]);
        assert_eq!(apply_unary(UnaryOp::Floor, &c, &mut pool).slice::<f64>(), &[-3.0, 0.0, 1.0]);
        assert_eq!(apply_unary(UnaryOp::Ceil, &c, &mut pool).slice::<f64>(), &[-2.0, 0.0, 2.0]);
        assert_eq!(apply_unary(UnaryOp::Round, &c, &mut pool).slice::<f64>(), &[-3.0, 0.0, 1.0]);
    }

    #[test]
    fn not_outputs_u8() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<i32>(3, 1, &[0, 2, -1]);
        let n = apply_unary(UnaryOp::Not, &c, &mut pool);
        assert_eq!(n.dtype(), DType::U8);
        assert_eq!(n.slice::<u8>(), &[1, 0, 0]);
    }

    #[test]
    fn out_dtype_rules() {
        assert_eq!(UnaryOp::Sqrt.out_dtype(DType::F32), DType::F32);
        assert_eq!(UnaryOp::Not.out_dtype(DType::F64), DType::U8);
        assert!(UnaryOp::Ln.needs_float());
        assert!(!UnaryOp::Neg.needs_float());
    }
}
