//! Strip-mined fused kernels for element-wise map chains.
//!
//! The fused engine historically *interpreted* the DAG: every
//! element-wise node allocated a full intermediate [`Chunk`], so a chain
//! like `sqrt((x - mu) / sd)^2` moved 4× the bytes it needed to. This
//! module is the compiled alternative (paper §3.4–3.5): the plan layer
//! discovers maximal single-consumer chains of `Map` nodes
//! ([`crate::analysis::chains`]) and compiles each into a
//! [`FusedMapKernel`] — a short program of micro-ops ([`ChainLink`]s)
//! executed strip-mined over each Pcache chunk. A strip is
//! [`STRIP_ELEMS`] elements (8 KiB at f64), small enough that the
//! ping-pong scratch buffers stay in L1 while every op of the chain runs
//! over it; only the final result is written back, producing **one**
//! output chunk per chain instead of one per node. Step functions take
//! raw byte slices, so the first micro-op reads the source chunk in
//! place and the last writes the destination partition in place — a
//! chain of `n` steps touches `n + 1` strips of memory, not `n + 3`.
//!
//! Dispatch discipline: each link is resolved **once at compile time**
//! to a monomorphized step function over `(op, dtype)` (const-generic
//! `OP`, concrete element type via [`crate::dispatch!`]), collected into
//! a function-pointer row. The SIMD dispatch level adds a per-ISA
//! *variant column* to that resolution: links whose `(op, dtype)` has an
//! exactly-rounded AVX2 kernel ([`crate::ops::simd`]) get the vector
//! step when the level allows, all others keep the portable step. The
//! strip loop calls through bare `fn` pointers; inner loops contain zero
//! enum matching. The portable step bodies reuse the interpreter's own
//! element kernels ([`crate::ops::unary::unary_typed`],
//! [`crate::ops::binary::arith_col`] / [`pred_col`],
//! [`crate::ops::misc::cast_slice`]) and the AVX2 steps are
//! bit-identical to them by construction (only exactly-rounded
//! instructions qualify for a vector column), so fused results are
//! bit-identical to the unfused path at **every** dispatch level.

use crate::chunk::{BufPool, Chunk};
use crate::dtype::{DType, Scalar};
use crate::element::Element;
use crate::ops::binary::{arith_col, pred_col, BinaryOp, ColSrc};
use crate::ops::misc::cast_slice;
use crate::ops::simd::{self, SimdLevel};
use crate::ops::unary::{unary_typed, UnaryOp};
use flashr_safs::IoBuf;
use std::sync::Arc;

/// Elements per strip. 1024 × 8 B = 8 KiB at f64 — two scratch strips
/// plus the source strip fit comfortably in a 32 KiB L1d.
pub const STRIP_ELEMS: usize = 1024;

/// The non-spine operand of a fused binary link.
#[derive(Debug, Clone)]
pub enum ChainOperand {
    /// A scalar constant (kept as the original [`Scalar`] so integer
    /// chains convert exactly as the interpreter does).
    Scalar(Scalar),
    /// A per-column constant row vector (`sweep`).
    RowVec(Arc<Vec<f64>>),
    /// Another chunk, resolved by the executor: `aux` indexes the
    /// kernel's auxiliary-input row; `recycle` marks a one-column
    /// operand broadcast across columns (R's vector recycling).
    Chunk { aux: usize, recycle: bool },
}

/// What one fused link computes.
#[derive(Debug, Clone)]
pub enum ChainOpSpec {
    Unary(UnaryOp),
    /// Convert `in_dtype` → `out_dtype` (the link dtypes carry the pair).
    Cast,
    Binary { op: BinaryOp, swapped: bool, operand: ChainOperand },
}

/// One micro-op of a chain program, with its dtype transition.
#[derive(Debug, Clone)]
pub struct ChainLink {
    pub op: ChainOpSpec,
    pub in_dtype: DType,
    pub out_dtype: DType,
}

/// Per-strip constant operand, resolved per column by the executor.
#[derive(Clone, Copy)]
enum KonstVal {
    None,
    /// Scalar operand: converted via `T::from_scalar`, like the
    /// interpreter's `BinOperand::Scalar` path.
    Scalar(Scalar),
    /// Row-vector operand for the current column: converted via
    /// `T::from_f64`, like the interpreter's `BinOperand::RowVec` path.
    F64(f64),
}

/// Everything a step function may need besides the strip buffers.
struct StripCtx<'a> {
    konst: KonstVal,
    swapped: bool,
    aux: Option<&'a Chunk>,
    aux_col: usize,
    /// Strip start row within the chunk (offsets into aux columns).
    s0: usize,
}

/// A monomorphized micro-op: read `len` elements from `src`, write `len`
/// to `dst`. The slices are raw bytes so steps can run directly over the
/// source chunk and the destination partition; callers guarantee the
/// slices are element-aligned and big enough (the helpers assert it).
type StepFn = fn(&StripCtx<'_>, &[u8], &mut [u8], usize);

/// View the leading `len` elements of an element-aligned byte slice.
/// Sound: strip sources are either 8-aligned scratch buffers or chunk /
/// partition buffers offset by whole elements (`IoBuf` storage is
/// `u64`-aligned and every element size divides 8).
#[inline(always)]
fn in_slice<T: Element>(bytes: &[u8], len: usize) -> &[T] {
    debug_assert!(len * size_of::<T>() <= bytes.len());
    debug_assert_eq!(bytes.as_ptr() as usize % align_of::<T>(), 0);
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, len) }
}

#[inline(always)]
fn out_slice<T: Element>(bytes: &mut [u8], len: usize) -> &mut [T] {
    debug_assert!(len * size_of::<T>() <= bytes.len());
    debug_assert_eq!(bytes.as_ptr() as usize % align_of::<T>(), 0);
    unsafe { std::slice::from_raw_parts_mut(bytes.as_mut_ptr() as *mut T, len) }
}

/// Per-kernel constant storage for one step.
#[derive(Clone)]
enum Konst {
    None,
    Scalar(Scalar),
    RowVec(Arc<Vec<f64>>),
}

struct Step {
    f: StepFn,
    konst: Konst,
    aux: Option<usize>,
    recycle: bool,
    swapped: bool,
}

/// A compiled chain: a function-pointer row executed strip-mined.
pub struct FusedMapKernel {
    steps: Vec<Step>,
    in_dtype: DType,
    out_dtype: DType,
}

// ------------------------------------------------------------- step fns

fn operand<'a, T: Element>(ctx: &StripCtx<'a>, len: usize) -> ColSrc<'a, T> {
    match ctx.aux {
        Some(ch) => ColSrc::Slice(&ch.col::<T>(ctx.aux_col)[ctx.s0..ctx.s0 + len]),
        None => ColSrc::Const(match ctx.konst {
            KonstVal::Scalar(s) => T::from_scalar(s),
            KonstVal::F64(x) => T::from_f64(x),
            KonstVal::None => unreachable!("binary step without an operand"),
        }),
    }
}

fn step_unary<T: Element, const OP: u8>(
    _ctx: &StripCtx<'_>,
    src: &[u8],
    dst: &mut [u8],
    len: usize,
) {
    unary_typed::<T>(UnaryOp::from_u8(OP), in_slice::<T>(src, len), out_slice::<T>(dst, len));
}

/// AVX2 variant column of [`step_unary`]; only reachable for `(op, T)`
/// pairs [`simd::unary_simd_available`] admits.
fn step_unary_simd<T: Element, const OP: u8>(
    _ctx: &StripCtx<'_>,
    src: &[u8],
    dst: &mut [u8],
    len: usize,
) {
    simd::unary_simd::<T>(UnaryOp::from_u8(OP), in_slice::<T>(src, len), out_slice::<T>(dst, len));
}

/// `Not` is the one unary op that changes dtype (`T` → U8); mirrors the
/// special case in [`crate::ops::unary::apply_unary`].
fn step_not<T: Element>(_ctx: &StripCtx<'_>, src: &[u8], dst: &mut [u8], len: usize) {
    let s = in_slice::<T>(src, len);
    let d = out_slice::<u8>(dst, len);
    for (d, s) in d.iter_mut().zip(s) {
        *d = u8::from(*s == T::zero());
    }
}

fn step_cast<S: Element, D: Element>(
    _ctx: &StripCtx<'_>,
    src: &[u8],
    dst: &mut [u8],
    len: usize,
) {
    cast_slice::<S, D>(in_slice::<S>(src, len), out_slice::<D>(dst, len));
}

fn step_arith<T: Element, const OP: u8>(
    ctx: &StripCtx<'_>,
    src: &[u8],
    dst: &mut [u8],
    len: usize,
) {
    let b = operand::<T>(ctx, len);
    arith_col::<T, OP>(out_slice::<T>(dst, len), in_slice::<T>(src, len), b, ctx.swapped);
}

/// AVX2 variant column of [`step_arith`]; only reachable for `(op, T)`
/// pairs [`simd::arith_simd_available`] admits.
fn step_arith_simd<T: Element, const OP: u8>(
    ctx: &StripCtx<'_>,
    src: &[u8],
    dst: &mut [u8],
    len: usize,
) {
    let b = operand::<T>(ctx, len);
    simd::arith_simd::<T>(
        BinaryOp::from_u8(OP),
        out_slice::<T>(dst, len),
        in_slice::<T>(src, len),
        b,
        ctx.swapped,
    );
}

fn step_pred<T: Element, const OP: u8>(
    ctx: &StripCtx<'_>,
    src: &[u8],
    dst: &mut [u8],
    len: usize,
) {
    let b = operand::<T>(ctx, len);
    pred_col::<T, OP>(out_slice::<u8>(dst, len), in_slice::<T>(src, len), b, ctx.swapped);
}

// ---------------------------------------------------- step fn builders

fn unary_step_fn(op: UnaryOp, dtype: DType, level: SimdLevel) -> StepFn {
    let vex = level >= SimdLevel::Avx2
        && SimdLevel::avx2_supported()
        && simd::unary_simd_available(op, dtype);
    crate::dispatch!(dtype, T, {
        macro_rules! arm {
            ($v:ident) => {
                if vex {
                    step_unary_simd::<T, { UnaryOp::$v as u8 }>
                } else {
                    step_unary::<T, { UnaryOp::$v as u8 }>
                }
            };
        }
        let f: StepFn = match op {
            UnaryOp::Neg => arm!(Neg),
            UnaryOp::Abs => arm!(Abs),
            UnaryOp::Sqrt => arm!(Sqrt),
            UnaryOp::Exp => arm!(Exp),
            UnaryOp::Ln => arm!(Ln),
            UnaryOp::Log2 => arm!(Log2),
            UnaryOp::Log10 => arm!(Log10),
            UnaryOp::Log1p => arm!(Log1p),
            UnaryOp::Floor => arm!(Floor),
            UnaryOp::Ceil => arm!(Ceil),
            UnaryOp::Round => arm!(Round),
            UnaryOp::Sign => arm!(Sign),
            UnaryOp::Recip => arm!(Recip),
            UnaryOp::Square => arm!(Square),
            UnaryOp::Sigmoid => arm!(Sigmoid),
            UnaryOp::Not => step_not::<T>,
        };
        f
    })
}

fn cast_step_fn(from: DType, to: DType) -> StepFn {
    crate::dispatch!(from, S, {
        crate::dispatch!(to, D, {
            let f: StepFn = step_cast::<S, D>;
            f
        })
    })
}

fn arith_step_fn(op: BinaryOp, dtype: DType, level: SimdLevel) -> StepFn {
    let vex = level >= SimdLevel::Avx2
        && SimdLevel::avx2_supported()
        && simd::arith_simd_available(op, dtype);
    crate::dispatch!(dtype, T, {
        macro_rules! arm {
            ($v:ident) => {
                if vex {
                    step_arith_simd::<T, { BinaryOp::$v as u8 }>
                } else {
                    step_arith::<T, { BinaryOp::$v as u8 }>
                }
            };
        }
        let f: StepFn = match op {
            BinaryOp::Add => arm!(Add),
            BinaryOp::Sub => arm!(Sub),
            BinaryOp::Mul => arm!(Mul),
            BinaryOp::Div => arm!(Div),
            BinaryOp::Rem => arm!(Rem),
            BinaryOp::Pow => arm!(Pow),
            BinaryOp::Min => arm!(Min),
            BinaryOp::Max => arm!(Max),
            BinaryOp::EuclidSq => arm!(EuclidSq),
            _ => unreachable!("predicates use pred_step_fn"),
        };
        f
    })
}

fn pred_step_fn(op: BinaryOp, dtype: DType) -> StepFn {
    crate::dispatch!(dtype, T, {
        macro_rules! arm {
            ($v:ident) => {
                step_pred::<T, { BinaryOp::$v as u8 }>
            };
        }
        let f: StepFn = match op {
            BinaryOp::Eq => arm!(Eq),
            BinaryOp::Ne => arm!(Ne),
            BinaryOp::Lt => arm!(Lt),
            BinaryOp::Le => arm!(Le),
            BinaryOp::Gt => arm!(Gt),
            BinaryOp::Ge => arm!(Ge),
            BinaryOp::And => arm!(And),
            BinaryOp::Or => arm!(Or),
            _ => unreachable!("arithmetic ops use arith_step_fn"),
        };
        f
    })
}

// ------------------------------------------------------------ compiler

impl FusedMapKernel {
    /// Compile a chain program (links ordered base → root) into a
    /// function-pointer row at the process-wide SIMD dispatch level.
    pub fn compile(links: &[ChainLink]) -> FusedMapKernel {
        Self::compile_with_level(SimdLevel::active(), links)
    }

    /// [`FusedMapKernel::compile`] with an explicit dispatch level — the
    /// entry point the kernel-bandwidth probe and the cross-level
    /// property tests use to compare levels within one process. All
    /// `(op, dtype, ISA)` resolution happens here.
    pub fn compile_with_level(level: SimdLevel, links: &[ChainLink]) -> FusedMapKernel {
        assert!(!links.is_empty(), "empty chain");
        let mut steps = Vec::with_capacity(links.len());
        for (i, l) in links.iter().enumerate() {
            if i > 0 {
                assert_eq!(links[i - 1].out_dtype, l.in_dtype, "chain dtype mismatch");
            }
            let step = match &l.op {
                ChainOpSpec::Unary(u) => {
                    debug_assert_eq!(l.out_dtype, u.out_dtype(l.in_dtype));
                    Step {
                        f: unary_step_fn(*u, l.in_dtype, level),
                        konst: Konst::None,
                        aux: None,
                        recycle: false,
                        swapped: false,
                    }
                }
                ChainOpSpec::Cast => {
                    assert_ne!(l.in_dtype, l.out_dtype, "identity cast in chain");
                    Step {
                        f: cast_step_fn(l.in_dtype, l.out_dtype),
                        konst: Konst::None,
                        aux: None,
                        recycle: false,
                        swapped: false,
                    }
                }
                ChainOpSpec::Binary { op, swapped, operand } => {
                    debug_assert_eq!(l.out_dtype, op.out_dtype(l.in_dtype));
                    let f = if op.is_predicate() {
                        pred_step_fn(*op, l.in_dtype)
                    } else {
                        arith_step_fn(*op, l.in_dtype, level)
                    };
                    let (konst, aux, recycle) = match operand {
                        ChainOperand::Scalar(s) => (Konst::Scalar(*s), None, false),
                        ChainOperand::RowVec(v) => (Konst::RowVec(v.clone()), None, false),
                        ChainOperand::Chunk { aux, recycle } => (Konst::None, Some(*aux), *recycle),
                    };
                    Step { f, konst, aux, recycle, swapped: *swapped }
                }
            };
            steps.push(step);
        }
        FusedMapKernel {
            steps,
            in_dtype: links[0].in_dtype,
            out_dtype: links.last().unwrap().out_dtype,
        }
    }

    /// Number of fused micro-ops.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// A compiled kernel is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Dtype of the chain's result.
    pub fn out_dtype(&self) -> DType {
        self.out_dtype
    }

    /// The dtype the chain's base input must have.
    pub fn in_dtype(&self) -> DType {
        self.in_dtype
    }

    /// Run the whole chain over `base`, producing the root's chunk.
    pub fn run(&self, base: &Chunk, auxes: &[&Chunk], pool: &mut BufPool) -> Chunk {
        let (rows, cols) = (base.rows(), base.cols());
        let mut out = pool.take(rows * cols * self.out_dtype.size());
        self.run_into(base, auxes, &mut out, rows, 0, pool);
        Chunk::from_iobuf(out, self.out_dtype, rows, cols)
    }

    /// [`Self::run`] reading the base in place from a column-major
    /// buffer (stride `base_stride` rows, first row `base_off`) — the
    /// executor hands chain kernels the leaf's partition buffer
    /// directly, skipping the Pcache chunk copy.
    #[allow(clippy::too_many_arguments)]
    pub fn run_strided(
        &self,
        base_bytes: &[u8],
        base_stride: usize,
        base_off: usize,
        rows: usize,
        cols: usize,
        auxes: &[&Chunk],
        pool: &mut BufPool,
    ) -> Chunk {
        let mut out = pool.take(rows * cols * self.out_dtype.size());
        self.run_strided_into(
            base_bytes,
            base_stride,
            base_off,
            rows,
            cols,
            auxes,
            &mut out,
            rows,
            0,
            pool,
        );
        Chunk::from_iobuf(out, self.out_dtype, rows, cols)
    }

    /// Run the chain writing straight into a column-major destination
    /// buffer with column stride `col_stride` rows, starting at row
    /// `row_off` — lets the executor hand a chain the tall output buffer
    /// as its destination, skipping the root chunk entirely.
    ///
    /// The first step reads the base chunk in place and the last step
    /// writes the destination in place; scratch strips only carry the
    /// interior of chains with ≥ 2 steps.
    pub fn run_into(
        &self,
        base: &Chunk,
        auxes: &[&Chunk],
        dst: &mut IoBuf,
        col_stride: usize,
        row_off: usize,
        pool: &mut BufPool,
    ) {
        debug_assert_eq!(base.dtype(), self.in_dtype, "chain base dtype mismatch");
        let (rows, cols) = (base.rows(), base.cols());
        self.run_strided_into(base.as_bytes(), rows, 0, rows, cols, auxes, dst, col_stride, row_off, pool);
    }

    /// The fully strided sweep both entry points lower to: read the base
    /// in place from a column-major source buffer (stride `base_stride`
    /// rows, first row `base_off`), write the destination in place. With
    /// both sides strided, an n-step chain over an in-memory leaf moves
    /// exactly n+1 strips of data and the executor copies nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn run_strided_into(
        &self,
        base_bytes: &[u8],
        base_stride: usize,
        base_off: usize,
        rows: usize,
        cols: usize,
        auxes: &[&Chunk],
        dst: &mut IoBuf,
        col_stride: usize,
        row_off: usize,
        pool: &mut BufPool,
    ) {
        debug_assert!(base_off + rows <= base_stride || cols == 0);
        debug_assert!(row_off + rows <= col_stride);
        let in_esz = self.in_dtype.size();
        let out_esz = self.out_dtype.size();
        let nsteps = self.steps.len();
        // Scratch strips are sized in *bytes* for the widest element, so
        // every dtype along the chain views them evenly.
        let mut a = pool.take(STRIP_ELEMS * 8);
        let mut b = pool.take(STRIP_ELEMS * 8);
        let dst_bytes = dst.as_mut_bytes();
        for c in 0..cols {
            let mut s0 = 0usize;
            while s0 < rows {
                let len = STRIP_ELEMS.min(rows - s0);
                let b0 = (c * base_stride + base_off + s0) * in_esz;
                let src0 = &base_bytes[b0..b0 + len * in_esz];
                let d0 = (c * col_stride + row_off + s0) * out_esz;
                for (i, step) in self.steps.iter().enumerate() {
                    let ctx = StripCtx {
                        konst: match &step.konst {
                            Konst::None => KonstVal::None,
                            Konst::Scalar(s) => KonstVal::Scalar(*s),
                            Konst::RowVec(v) => KonstVal::F64(v[c]),
                        },
                        swapped: step.swapped,
                        aux: step.aux.map(|i| auxes[i]),
                        aux_col: if step.recycle { 0 } else { c },
                        s0,
                    };
                    let src: &[u8] = if i == 0 { src0 } else { a.as_bytes() };
                    if i + 1 == nsteps {
                        (step.f)(&ctx, src, &mut dst_bytes[d0..d0 + len * out_esz], len);
                    } else {
                        (step.f)(&ctx, src, b.as_mut_bytes(), len);
                        std::mem::swap(&mut a, &mut b);
                    }
                }
                s0 += len;
            }
        }
        pool.put(a);
        pool.put(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{apply_binary, apply_unary, cast_chunk, BinOperand};

    fn f64_chunk(rows: usize, cols: usize) -> Chunk {
        let vals: Vec<f64> = (0..rows * cols).map(|i| (i as f64) * 0.37 - 40.0).collect();
        Chunk::from_slice::<f64>(rows, cols, &vals)
    }

    fn demo_links() -> Vec<ChainLink> {
        vec![
            ChainLink {
                op: ChainOpSpec::Binary {
                    op: BinaryOp::Mul,
                    swapped: false,
                    operand: ChainOperand::Scalar(Scalar::F64(2.5)),
                },
                in_dtype: DType::F64,
                out_dtype: DType::F64,
            },
            ChainLink {
                op: ChainOpSpec::Binary {
                    op: BinaryOp::Add,
                    swapped: false,
                    operand: ChainOperand::Scalar(Scalar::F64(1.0)),
                },
                in_dtype: DType::F64,
                out_dtype: DType::F64,
            },
            ChainLink {
                op: ChainOpSpec::Unary(UnaryOp::Abs),
                in_dtype: DType::F64,
                out_dtype: DType::F64,
            },
            ChainLink {
                op: ChainOpSpec::Unary(UnaryOp::Sqrt),
                in_dtype: DType::F64,
                out_dtype: DType::F64,
            },
        ]
    }

    #[test]
    fn chain_matches_interpreter_bit_for_bit() {
        let mut pool = BufPool::new();
        // sqrt(abs(x * 2.5 + 1.0)), 3000 rows so strips split mid-column.
        let x = f64_chunk(3000, 3);
        let kernel = FusedMapKernel::compile(&demo_links());
        let fused = kernel.run(&x, &[], &mut pool);

        let s1 =
            apply_binary(BinaryOp::Mul, &x, BinOperand::Scalar(Scalar::F64(2.5)), false, &mut pool);
        let s2 =
            apply_binary(BinaryOp::Add, &s1, BinOperand::Scalar(Scalar::F64(1.0)), false, &mut pool);
        let s3 = apply_unary(UnaryOp::Abs, &s2, &mut pool);
        let want = apply_unary(UnaryOp::Sqrt, &s3, &mut pool);
        let f = fused.slice::<f64>();
        let w = want.slice::<f64>();
        assert_eq!(f.len(), w.len());
        for (a, b) in f.iter().zip(w) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chain_bit_identical_across_simd_levels() {
        // The chain above compiled at every available dispatch level must
        // agree to the bit: AVX2 element-wise kernels only exist for
        // exactly-rounded ops.
        let mut pool = BufPool::new();
        let x = f64_chunk(3000, 3);
        let want = FusedMapKernel::compile_with_level(SimdLevel::Off, &demo_links())
            .run(&x, &[], &mut pool);
        for level in SimdLevel::available() {
            let got = FusedMapKernel::compile_with_level(level, &demo_links())
                .run(&x, &[], &mut pool);
            for (a, b) in want.slice::<f64>().iter().zip(got.slice::<f64>()) {
                assert_eq!(a.to_bits(), b.to_bits(), "level={}", level.name());
            }
        }
    }

    #[test]
    fn chain_crossing_dtype_boundaries() {
        let mut pool = BufPool::new();
        // (i32 -> f64 cast) then predicate (U8 boundary) then cast to i32.
        let vals: Vec<i32> = (0..500).map(|i| i - 250).collect();
        let x = Chunk::from_slice::<i32>(500, 1, &vals);
        let links = vec![
            ChainLink { op: ChainOpSpec::Cast, in_dtype: DType::I32, out_dtype: DType::F64 },
            ChainLink {
                op: ChainOpSpec::Binary {
                    op: BinaryOp::Gt,
                    swapped: false,
                    operand: ChainOperand::Scalar(Scalar::F64(0.0)),
                },
                in_dtype: DType::F64,
                out_dtype: DType::U8,
            },
            ChainLink { op: ChainOpSpec::Cast, in_dtype: DType::U8, out_dtype: DType::I32 },
        ];
        let kernel = FusedMapKernel::compile(&links);
        let fused = kernel.run(&x, &[], &mut pool);

        let s1 = cast_chunk(&x, DType::F64, &mut pool);
        let s2 =
            apply_binary(BinaryOp::Gt, &s1, BinOperand::Scalar(Scalar::F64(0.0)), false, &mut pool);
        let want = cast_chunk(&s2, DType::I32, &mut pool);
        assert_eq!(fused.slice::<i32>(), want.slice::<i32>());
    }

    #[test]
    fn chunk_operand_with_column_recycling() {
        let mut pool = BufPool::new();
        let x = f64_chunk(2000, 4);
        let y = f64_chunk(2000, 1);
        let links = vec![ChainLink {
            op: ChainOpSpec::Binary {
                op: BinaryOp::Sub,
                swapped: true,
                operand: ChainOperand::Chunk { aux: 0, recycle: true },
            },
            in_dtype: DType::F64,
            out_dtype: DType::F64,
        }];
        let kernel = FusedMapKernel::compile(&links);
        let fused = kernel.run(&x, &[&y], &mut pool);
        let want = apply_binary(BinaryOp::Sub, &x, BinOperand::Chunk(&y), true, &mut pool);
        assert_eq!(fused.slice::<f64>(), want.slice::<f64>());
    }

    #[test]
    fn row_vector_operand_resolves_per_column() {
        let mut pool = BufPool::new();
        let x = f64_chunk(1500, 3);
        let v = Arc::new(vec![2.0, 4.0, 8.0]);
        let links = vec![ChainLink {
            op: ChainOpSpec::Binary {
                op: BinaryOp::Div,
                swapped: false,
                operand: ChainOperand::RowVec(v.clone()),
            },
            in_dtype: DType::F64,
            out_dtype: DType::F64,
        }];
        let kernel = FusedMapKernel::compile(&links);
        let fused = kernel.run(&x, &[], &mut pool);
        let want = apply_binary(BinaryOp::Div, &x, BinOperand::RowVec(&v), false, &mut pool);
        assert_eq!(fused.slice::<f64>(), want.slice::<f64>());
    }

    #[test]
    fn run_into_writes_at_row_offset() {
        let mut pool = BufPool::new();
        let x = f64_chunk(100, 2);
        let links = vec![ChainLink {
            op: ChainOpSpec::Unary(UnaryOp::Neg),
            in_dtype: DType::F64,
            out_dtype: DType::F64,
        }];
        let kernel = FusedMapKernel::compile(&links);
        // Destination partition: 300 rows per column, chunk lands at 100.
        let mut dst = IoBuf::zeroed(300 * 2 * 8);
        kernel.run_into(&x, &[], &mut dst, 300, 100, &mut pool);
        let d = dst.typed::<f64>();
        let s = x.slice::<f64>();
        for c in 0..2 {
            for r in 0..100 {
                assert_eq!(d[c * 300 + 100 + r], -s[c * 100 + r]);
            }
        }
    }
}
