//! Inner-product GenOps on chunks: tall × small multiplication.
//!
//! `X %*% B` with tall `X` and small `B` keeps the partition dimension
//! (paper Fig. 5 operations e/f): each output chunk depends only on its
//! input chunk plus the shared read-only `B`. Floating point goes through
//! the BLAS-style strided GEMM; the generalized `inner.prod(A, B, f1, f2)`
//! (paper Table 1) runs the predefined function pair — this is how k-means
//! computes Euclidean distances in one fused pass.

use crate::chunk::{BufPool, Chunk};
use crate::dtype::DType;
use crate::element::Element;
use crate::ops::binary::BinaryOp;
use flashr_linalg::{gemm_strided, Dense};

/// `out = chunk %*% b` (f64 fast path through the strided GEMM kernel).
///
/// `chunk` must be f64 `rows × p`; `b` is row-major `p × k`.
pub fn matmul_chunk(input: &Chunk, b: &Dense, pool: &mut BufPool) -> Chunk {
    assert_eq!(input.dtype(), DType::F64, "BLAS path requires f64 (cast first)");
    assert_eq!(input.cols(), b.rows(), "inner dimensions disagree");
    let rows = input.rows();
    let k = b.cols();
    let mut out = Chunk::alloc(DType::F64, rows, k, pool);
    // A: col-major rows×p → rsa=1, csa=rows. B: row-major p×k.
    // C: col-major rows×k → rsc=1, csc=rows.
    gemm_strided(
        rows,
        k,
        input.cols(),
        1.0,
        input.slice::<f64>(),
        1,
        rows,
        b.as_slice(),
        b.cols(),
        1,
        0.0,
        out.slice_mut::<f64>(),
        1,
        rows,
    );
    out
}

/// One output column's first term: `d[r] = f1(col[r], bkj)`,
/// monomorphized over `F1` so the row loop has no enum dispatch.
fn ip_init<T: Element, const F1: u8>(d: &mut [T], col: &[T], bkj: T) {
    let f1 = BinaryOp::from_u8(F1);
    for (dv, &cv) in d.iter_mut().zip(col) {
        *dv = f1.eval(cv, bkj);
    }
}

/// One output column's fold step: `d[r] = f2(d[r], f1(col[r], bkj))`,
/// monomorphized over the `(F1, F2)` pair.
fn ip_fold<T: Element, const F1: u8, const F2: u8>(d: &mut [T], col: &[T], bkj: T) {
    let f1 = BinaryOp::from_u8(F1);
    let f2 = BinaryOp::from_u8(F2);
    for (dv, &cv) in d.iter_mut().zip(col) {
        *dv = f2.eval(*dv, f1.eval(cv, bkj));
    }
}

type IpColFn<T> = fn(&mut [T], &[T], T);

/// Resolve `f1` to its monomorphized init kernel once per call. The
/// supported set (and the panic for anything else) matches the historic
/// per-element match.
fn ip_init_fn<T: Element>(f1: BinaryOp) -> IpColFn<T> {
    macro_rules! arm {
        ($v:ident) => {
            ip_init::<T, { BinaryOp::$v as u8 }>
        };
    }
    match f1 {
        BinaryOp::Add => arm!(Add),
        BinaryOp::Sub => arm!(Sub),
        BinaryOp::Mul => arm!(Mul),
        BinaryOp::Div => arm!(Div),
        BinaryOp::Min => arm!(Min),
        BinaryOp::Max => arm!(Max),
        BinaryOp::EuclidSq => arm!(EuclidSq),
        other => panic!("unsupported inner.prod element function {other:?}"),
    }
}

/// Resolve the `(f1, f2)` pair to its monomorphized fold kernel.
fn ip_fold_fn<T: Element>(f1: BinaryOp, f2: BinaryOp) -> IpColFn<T> {
    macro_rules! arm {
        ($a:ident, $b:ident) => {
            ip_fold::<T, { BinaryOp::$a as u8 }, { BinaryOp::$b as u8 }>
        };
    }
    match (f1, f2) {
        (BinaryOp::Add, BinaryOp::Add) => arm!(Add, Add),
        (BinaryOp::Add, BinaryOp::Mul) => arm!(Add, Mul),
        (BinaryOp::Add, BinaryOp::Min) => arm!(Add, Min),
        (BinaryOp::Add, BinaryOp::Max) => arm!(Add, Max),
        (BinaryOp::Sub, BinaryOp::Add) => arm!(Sub, Add),
        (BinaryOp::Sub, BinaryOp::Mul) => arm!(Sub, Mul),
        (BinaryOp::Sub, BinaryOp::Min) => arm!(Sub, Min),
        (BinaryOp::Sub, BinaryOp::Max) => arm!(Sub, Max),
        (BinaryOp::Mul, BinaryOp::Add) => arm!(Mul, Add),
        (BinaryOp::Mul, BinaryOp::Mul) => arm!(Mul, Mul),
        (BinaryOp::Mul, BinaryOp::Min) => arm!(Mul, Min),
        (BinaryOp::Mul, BinaryOp::Max) => arm!(Mul, Max),
        (BinaryOp::Div, BinaryOp::Add) => arm!(Div, Add),
        (BinaryOp::Div, BinaryOp::Mul) => arm!(Div, Mul),
        (BinaryOp::Div, BinaryOp::Min) => arm!(Div, Min),
        (BinaryOp::Div, BinaryOp::Max) => arm!(Div, Max),
        (BinaryOp::Min, BinaryOp::Add) => arm!(Min, Add),
        (BinaryOp::Min, BinaryOp::Mul) => arm!(Min, Mul),
        (BinaryOp::Min, BinaryOp::Min) => arm!(Min, Min),
        (BinaryOp::Min, BinaryOp::Max) => arm!(Min, Max),
        (BinaryOp::Max, BinaryOp::Add) => arm!(Max, Add),
        (BinaryOp::Max, BinaryOp::Mul) => arm!(Max, Mul),
        (BinaryOp::Max, BinaryOp::Min) => arm!(Max, Min),
        (BinaryOp::Max, BinaryOp::Max) => arm!(Max, Max),
        (BinaryOp::EuclidSq, BinaryOp::Add) => arm!(EuclidSq, Add),
        (BinaryOp::EuclidSq, BinaryOp::Mul) => arm!(EuclidSq, Mul),
        (BinaryOp::EuclidSq, BinaryOp::Min) => arm!(EuclidSq, Min),
        (BinaryOp::EuclidSq, BinaryOp::Max) => arm!(EuclidSq, Max),
        (other, _) => panic!("unsupported inner.prod element function {other:?}"),
    }
}

/// Generalized inner product:
/// `out[r, j] = fold_f2 over k of f1(chunk[r, k], b[k, j])`.
///
/// `f2` must be one of the associative reducers (`Add`, `Mul`, `Min`,
/// `Max`). Runs in the chunk's own dtype.
pub fn inner_prod_chunk(
    input: &Chunk,
    b: &Dense,
    f1: BinaryOp,
    f2: BinaryOp,
    pool: &mut BufPool,
) -> Chunk {
    assert_eq!(input.cols(), b.rows(), "inner dimensions disagree");
    assert!(
        matches!(f2, BinaryOp::Add | BinaryOp::Mul | BinaryOp::Min | BinaryOp::Max),
        "inner.prod combiner must be associative, got {f2:?}"
    );
    let rows = input.rows();
    let p = input.cols();
    let k = b.cols();
    let mut out = Chunk::alloc(input.dtype(), rows, k, pool);
    crate::dispatch!(input.dtype(), T, {
        // Resolve (f1, f2) to monomorphized column kernels once; the
        // row loops below run through bare function pointers.
        let init = ip_init_fn::<T>(f1);
        let fold = ip_fold_fn::<T>(f1, f2);
        let src = input.slice::<T>();
        let dst = out.slice_mut::<T>();
        for j in 0..k {
            let d = &mut dst[j * rows..(j + 1) * rows];
            for kk in 0..p {
                let bkj = T::from_f64(b.at(kk, j));
                let col = &src[kk * rows..(kk + 1) * rows];
                if kk == 0 {
                    init(d, col, bkj);
                } else {
                    fold(d, col, bkj);
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_reference() {
        let mut pool = BufPool::new();
        // chunk 3x2 col-major: rows [1,3], [2,4], [5,6]... careful:
        // values: col0 = [1,2,5], col1 = [3,4,6]
        let x = Chunk::from_slice::<f64>(3, 2, &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
        let b = Dense::from_vec(2, 2, vec![1.0, 0.5, 2.0, -1.0]);
        let out = matmul_chunk(&x, &b, &mut pool);
        // row0 = [1,3] → [1*1+3*2, 1*0.5+3*-1] = [7, -2.5]
        assert_eq!(out.get_f64(0, 0), 7.0);
        assert_eq!(out.get_f64(0, 1), -2.5);
        // row2 = [5,6] → [17, -3.5]
        assert_eq!(out.get_f64(2, 0), 17.0);
        assert_eq!(out.get_f64(2, 1), -3.5);
    }

    #[test]
    fn inner_prod_mul_add_equals_matmul() {
        let mut pool = BufPool::new();
        let x = Chunk::from_slice::<f64>(4, 3, &(0..12).map(|v| v as f64).collect::<Vec<_>>());
        let b = Dense::from_fn(3, 2, |r, c| (r * 2 + c) as f64 - 2.0);
        let blas = matmul_chunk(&x, &b, &mut pool);
        let gen = inner_prod_chunk(&x, &b, BinaryOp::Mul, BinaryOp::Add, &mut pool);
        for r in 0..4 {
            for c in 0..2 {
                assert!((blas.get_f64(r, c) - gen.get_f64(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn euclidean_distance_mode() {
        let mut pool = BufPool::new();
        // one data point (2, 3); centers (0,0) and (2,4) as columns of b.
        let x = Chunk::from_slice::<f64>(1, 2, &[2.0, 3.0]);
        let centers = Dense::from_vec(2, 2, vec![0.0, 2.0, 0.0, 4.0]); // p×k: b[k][j]
        let d = inner_prod_chunk(&x, &centers, BinaryOp::EuclidSq, BinaryOp::Add, &mut pool);
        assert_eq!(d.get_f64(0, 0), 13.0); // 4 + 9
        assert_eq!(d.get_f64(0, 1), 1.0); // 0 + 1
    }

    #[test]
    fn integer_inner_prod() {
        let mut pool = BufPool::new();
        let x = Chunk::from_slice::<i64>(2, 2, &[1, 2, 3, 4]);
        let b = Dense::from_vec(2, 1, vec![10.0, 100.0]);
        let out = inner_prod_chunk(&x, &b, BinaryOp::Mul, BinaryOp::Add, &mut pool);
        assert_eq!(out.dtype(), DType::I64);
        // row0 = [1,3] → 1*10 + 3*100 = 310
        assert_eq!(out.slice::<i64>(), &[310, 420]);
    }

    #[test]
    fn min_combiner() {
        let mut pool = BufPool::new();
        let x = Chunk::from_slice::<f64>(1, 3, &[5.0, 1.0, 3.0]);
        let b = Dense::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let out = inner_prod_chunk(&x, &b, BinaryOp::Mul, BinaryOp::Min, &mut pool);
        assert_eq!(out.get_f64(0, 0), 1.0);
    }

    #[test]
    #[should_panic]
    fn non_associative_combiner_rejected() {
        let mut pool = BufPool::new();
        let x = Chunk::from_slice::<f64>(1, 1, &[1.0]);
        let b = Dense::eye(1);
        let _ = inner_prod_chunk(&x, &b, BinaryOp::Mul, BinaryOp::Sub, &mut pool);
    }
}
