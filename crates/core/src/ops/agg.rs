//! Aggregation GenOps: `agg`, `agg.row`, `agg.col` (paper Table 1).
//!
//! `agg.row` on a tall matrix is partition-local (each output row depends
//! only on its input row) and lives here as a chunk kernel. Full and
//! per-column aggregations cross partitions and are accumulated by the
//! executor's sink accumulators (`crate::exec::accum`), which also use the
//! per-op identities and combine rules defined here.

use crate::chunk::{BufPool, Chunk};
use crate::dtype::DType;
use crate::element::Element;

/// Predefined aggregation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    Sum,
    Prod,
    Min,
    Max,
    Mean,
    /// Logical any (`|` in the paper's Table 2).
    Any,
    /// Logical all (`&`).
    All,
    /// Number of elements aggregated (R's `length`/`count` per group).
    Count,
    /// Index of the minimum (R's `which.min`, 0-based here).
    WhichMin,
    /// Index of the maximum.
    WhichMax,
}

impl AggOp {
    /// Output dtype of aggregating an `input`-typed matrix.
    pub fn out_dtype(self, input: DType) -> DType {
        match self {
            AggOp::Sum | AggOp::Prod => input.sum_dtype(),
            AggOp::Min | AggOp::Max => input,
            AggOp::Mean => DType::F64,
            AggOp::Any | AggOp::All => DType::U8,
            AggOp::Count | AggOp::WhichMin | AggOp::WhichMax => DType::I64,
        }
    }

    /// Identity element for f64 accumulation.
    pub fn identity(self) -> f64 {
        match self {
            AggOp::Sum | AggOp::Count => 0.0,
            AggOp::Prod => 1.0,
            AggOp::Min | AggOp::WhichMin => f64::INFINITY,
            AggOp::Max | AggOp::WhichMax => f64::NEG_INFINITY,
            AggOp::Mean => 0.0,
            AggOp::Any => 0.0,
            AggOp::All => 1.0,
        }
    }

    /// Fold a value into an f64 accumulator (value-only ops).
    #[inline(always)]
    pub fn fold(self, acc: f64, v: f64) -> f64 {
        match self {
            AggOp::Sum | AggOp::Mean => acc + v,
            AggOp::Prod => acc * v,
            AggOp::Min => acc.min(v),
            AggOp::Max => acc.max(v),
            AggOp::Count => acc + 1.0,
            AggOp::Any => {
                if v != 0.0 {
                    1.0
                } else {
                    acc
                }
            }
            AggOp::All => {
                if v == 0.0 {
                    0.0
                } else {
                    acc
                }
            }
            AggOp::WhichMin | AggOp::WhichMax => {
                unreachable!("which.min/which.max need positional folding")
            }
        }
    }

    /// Combine two partial f64 accumulators (value-only ops).
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            AggOp::Sum | AggOp::Mean | AggOp::Count => a + b,
            AggOp::Prod => a * b,
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
            AggOp::Any => {
                if a != 0.0 || b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            AggOp::All => {
                if a != 0.0 && b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            AggOp::WhichMin | AggOp::WhichMax => {
                unreachable!("which.min/which.max need positional combining")
            }
        }
    }

    /// Whether this op needs a positional (value, index) accumulator.
    pub fn is_positional(self) -> bool {
        matches!(self, AggOp::WhichMin | AggOp::WhichMax)
    }
}

/// `agg.row`: per-row aggregation over the columns of a chunk, producing
/// a one-column chunk.
pub fn agg_row(op: AggOp, input: &Chunk, pool: &mut BufPool) -> Chunk {
    let rows = input.rows();
    let cols = input.cols();
    let out_dtype = op.out_dtype(input.dtype());

    match op {
        AggOp::WhichMin | AggOp::WhichMax => {
            let mut out = Chunk::alloc(DType::I64, rows, 1, pool);
            crate::dispatch!(input.dtype(), T, {
                let want_min = op == AggOp::WhichMin;
                let mut best: Vec<T> =
                    vec![if want_min { <T as Element>::max_value() } else { <T as Element>::min_value() }; rows];
                let idx = out.slice_mut::<i64>();
                idx.fill(0);
                for c in 0..cols {
                    let col = input.col::<T>(c);
                    for r in 0..rows {
                        let better = if want_min { col[r] < best[r] } else { col[r] > best[r] };
                        if better {
                            best[r] = col[r];
                            idx[r] = c as i64;
                        }
                    }
                }
            });
            out
        }
        AggOp::Count => {
            let mut out = Chunk::alloc(DType::I64, rows, 1, pool);
            out.slice_mut::<i64>().fill(cols as i64);
            out
        }
        _ => {
            // f64 row accumulators, then cast into the output dtype.
            let mut acc = vec![op.identity(); rows];
            crate::dispatch!(input.dtype(), T, {
                for c in 0..cols {
                    let col = input.col::<T>(c);
                    for r in 0..rows {
                        acc[r] = op.fold(acc[r], col[r].to_f64());
                    }
                }
            });
            if op == AggOp::Mean {
                for a in &mut acc {
                    *a /= cols as f64;
                }
            }
            let mut out = Chunk::alloc(out_dtype, rows, 1, pool);
            crate::dispatch!(out_dtype, O, {
                let dst = out.slice_mut::<O>();
                for (d, a) in dst.iter_mut().zip(&acc) {
                    *d = O::from_f64(*a);
                }
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_sums_and_means() {
        let mut pool = BufPool::new();
        // 2x3 col-major: rows are [1,3,5] and [2,4,6]
        let c = Chunk::from_slice::<f64>(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = agg_row(AggOp::Sum, &c, &mut pool);
        assert_eq!(s.slice::<f64>(), &[9.0, 12.0]);
        let m = agg_row(AggOp::Mean, &c, &mut pool);
        assert_eq!(m.slice::<f64>(), &[3.0, 4.0]);
    }

    #[test]
    fn row_min_max_keep_input_dtype() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<i32>(2, 3, &[5, -1, 2, 8, -3, 0]);
        let mn = agg_row(AggOp::Min, &c, &mut pool);
        assert_eq!(mn.dtype(), DType::I32);
        assert_eq!(mn.slice::<i32>(), &[-3, -1]);
        let mx = agg_row(AggOp::Max, &c, &mut pool);
        assert_eq!(mx.slice::<i32>(), &[5, 8]);
    }

    #[test]
    fn which_min_per_row() {
        let mut pool = BufPool::new();
        // rows: [3,1,2] and [0,5,-2]
        let c = Chunk::from_slice::<f64>(2, 3, &[3.0, 0.0, 1.0, 5.0, 2.0, -2.0]);
        let w = agg_row(AggOp::WhichMin, &c, &mut pool);
        assert_eq!(w.dtype(), DType::I64);
        assert_eq!(w.slice::<i64>(), &[1, 2]);
        let w = agg_row(AggOp::WhichMax, &c, &mut pool);
        assert_eq!(w.slice::<i64>(), &[0, 1]);
    }

    #[test]
    fn which_min_ties_pick_first() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<f64>(1, 3, &[1.0, 1.0, 1.0]);
        let w = agg_row(AggOp::WhichMin, &c, &mut pool);
        assert_eq!(w.slice::<i64>(), &[0]);
    }

    #[test]
    fn any_all_count() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<u8>(2, 2, &[0, 1, 0, 1]);
        assert_eq!(agg_row(AggOp::Any, &c, &mut pool).slice::<u8>(), &[0, 1]);
        assert_eq!(agg_row(AggOp::All, &c, &mut pool).slice::<u8>(), &[0, 1]);
        assert_eq!(agg_row(AggOp::Count, &c, &mut pool).slice::<i64>(), &[2, 2]);
    }

    #[test]
    fn sum_widens_integers() {
        let mut pool = BufPool::new();
        let c = Chunk::from_slice::<u8>(1, 3, &[200, 200, 200]);
        let s = agg_row(AggOp::Sum, &c, &mut pool);
        assert_eq!(s.dtype(), DType::I64);
        assert_eq!(s.slice::<i64>(), &[600]);
    }

    #[test]
    fn identities_and_combine() {
        assert_eq!(AggOp::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(AggOp::Prod.combine(2.0, 3.0), 6.0);
        assert_eq!(AggOp::Min.combine(2.0, 3.0), 2.0);
        assert_eq!(AggOp::Max.identity(), f64::NEG_INFINITY);
        assert_eq!(AggOp::All.combine(1.0, 0.0), 0.0);
        assert_eq!(AggOp::Any.combine(0.0, 1.0), 1.0);
    }
}
