//! SIMD kernel layer for the element-wise and reduction micro-ops.
//!
//! The dispatch model mirrors PR 4's monomorphization discipline: every
//! `(op, dtype)` pair resolves to a bare function pointer **once at
//! kernel-compile time**, and this module adds a per-ISA *variant column*
//! to that resolution. The [`SimdLevel`] (re-exported from
//! `flashr_linalg::simd`, where the env parsing and CPUID detection
//! live) selects which column the resolvers hand out:
//!
//! * `Off` — the historic serial loops, bit-for-bit the pre-SIMD engine.
//! * `Scalar` — portable fixed-width lane kernels written to
//!   autovectorize. Element-wise results are bit-identical to `Off`;
//!   reductions reassociate into eight `f64` lane partials (two blocks
//!   of four, matching the AVX2 kernels' two-accumulator layout).
//! * `Avx2` — explicit `std::arch` AVX2 kernels behind
//!   `is_x86_feature_detected!`, used **only** for operations whose
//!   vector instructions are exactly rounded (add/sub/mul/div/sqrt,
//!   sign-bit ops, floor/ceil), so element-wise AVX2 results are
//!   bit-identical to the scalar loops by construction — the fused-vs-
//!   interpreter bit-identity tests hold at every level. `f32` sqrt and
//!   reciprocal match the engine's promote-to-`f64` scalar path by the
//!   2p+2 double-rounding theorem (53 ≥ 2·24+2). Sum reductions use the
//!   same lane association as `Scalar` (bit-identical Scalar↔Avx2;
//!   `Off`↔`Scalar` differs by reassociation within an n·ε bound).
//!
//! Operations whose vector forms are *not* exactly rounded (`Round`,
//! transcendentals, `Pow`, `Sign`, predicates, casts, `min`/`max` — the
//! legacy `vminpd` NaN asymmetry) never get an AVX2 column; they run the
//! portable loops at every level, so enabling SIMD cannot change them.

use crate::dtype::DType;
use crate::element::Element;
use crate::ops::agg::AggOp;
use crate::ops::binary::{BinaryOp, ColSrc};
use crate::ops::unary::UnaryOp;

pub use flashr_linalg::simd::SimdLevel;

// ------------------------------------------------------------ availability

/// Whether `(op, dtype)` has an exact AVX2 element-wise unary kernel.
pub(crate) fn unary_simd_available(op: UnaryOp, dtype: DType) -> bool {
    cfg!(any(target_arch = "x86", target_arch = "x86_64"))
        && matches!(dtype, DType::F64 | DType::F32)
        && matches!(
            op,
            UnaryOp::Neg
                | UnaryOp::Abs
                | UnaryOp::Square
                | UnaryOp::Sqrt
                | UnaryOp::Recip
                | UnaryOp::Floor
                | UnaryOp::Ceil
        )
}

/// Whether `(op, dtype)` has an exact AVX2 element-wise binary kernel.
pub(crate) fn arith_simd_available(op: BinaryOp, dtype: DType) -> bool {
    cfg!(any(target_arch = "x86", target_arch = "x86_64"))
        && matches!(dtype, DType::F64 | DType::F32)
        && matches!(
            op,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::EuclidSq
        )
}

/// Whether `(op, dtype)` folds through the lane-partial reduction kernels
/// at `Scalar` and above.
pub(crate) fn fold_simd_available(op: AggOp, dtype: DType) -> bool {
    matches!(dtype, DType::F64 | DType::F32)
        && matches!(op, AggOp::Sum | AggOp::Mean | AggOp::Min | AggOp::Max)
}

// ----------------------------------------------------- slice reinterpret

/// View a `&[T]` whose `T::DTYPE` is statically matched as its concrete
/// float type. Sound because the caller only reaches these after a
/// `T::DTYPE` match, which pins `T` to exactly that type.
#[inline(always)]
fn as_typed<T: Element, U: Element>(s: &[T]) -> &[U] {
    debug_assert_eq!(T::DTYPE, U::DTYPE);
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const U, s.len()) }
}

#[inline(always)]
fn as_typed_mut<T: Element, U: Element>(s: &mut [T]) -> &mut [U] {
    debug_assert_eq!(T::DTYPE, U::DTYPE);
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut U, s.len()) }
}

// -------------------------------------------------------------- unary

/// Apply an AVX2 unary kernel. Callers must have checked
/// [`unary_simd_available`] and that the AVX2 level is supported; the
/// resolvers in `unary.rs`/`fused_map.rs` only select this path then.
#[inline]
pub(crate) fn unary_simd<T: Element>(op: UnaryOp, src: &[T], dst: &mut [T]) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        debug_assert!(SimdLevel::avx2_supported());
        match T::DTYPE {
            DType::F64 => {
                let (s, d) = (as_typed::<T, f64>(src), as_typed_mut::<T, f64>(dst));
                unsafe {
                    match op {
                        UnaryOp::Neg => x86::un_f64_neg(s, d),
                        UnaryOp::Abs => x86::un_f64_abs(s, d),
                        UnaryOp::Square => x86::un_f64_square(s, d),
                        UnaryOp::Sqrt => x86::un_f64_sqrt(s, d),
                        UnaryOp::Recip => x86::un_f64_recip(s, d),
                        UnaryOp::Floor => x86::un_f64_floor(s, d),
                        UnaryOp::Ceil => x86::un_f64_ceil(s, d),
                        _ => unreachable!("no AVX2 unary kernel for {op:?}"),
                    }
                }
            }
            DType::F32 => {
                let (s, d) = (as_typed::<T, f32>(src), as_typed_mut::<T, f32>(dst));
                unsafe {
                    match op {
                        UnaryOp::Neg => x86::un_f32_neg(s, d),
                        UnaryOp::Abs => x86::un_f32_abs(s, d),
                        UnaryOp::Square => x86::un_f32_square(s, d),
                        UnaryOp::Sqrt => x86::un_f32_sqrt(s, d),
                        UnaryOp::Recip => x86::un_f32_recip(s, d),
                        UnaryOp::Floor => x86::un_f32_floor(s, d),
                        UnaryOp::Ceil => x86::un_f32_ceil(s, d),
                        _ => unreachable!("no AVX2 unary kernel for {op:?}"),
                    }
                }
            }
            _ => unreachable!("no AVX2 unary kernels for {:?}", T::DTYPE),
        }
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        let _ = (op, src, dst);
        unreachable!("AVX2 kernels unavailable on this architecture");
    }
}

// -------------------------------------------------------------- binary

/// Apply an AVX2 binary-arithmetic kernel with the interpreter's operand
/// semantics (`swapped` puts the column on the right-hand side).
#[inline]
pub(crate) fn arith_simd<T: Element>(
    op: BinaryOp,
    dst: &mut [T],
    a: &[T],
    b: ColSrc<'_, T>,
    swapped: bool,
) {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        debug_assert!(SimdLevel::avx2_supported());
        match T::DTYPE {
            DType::F64 => {
                let d = as_typed_mut::<T, f64>(dst);
                let a = as_typed::<T, f64>(a);
                match b {
                    ColSrc::Slice(bs) => {
                        let bs = as_typed::<T, f64>(bs);
                        let (x, y) = if swapped { (bs, a) } else { (a, bs) };
                        unsafe {
                            match op {
                                BinaryOp::Add => x86::bin_f64_add_ss(d, x, y),
                                BinaryOp::Sub => x86::bin_f64_sub_ss(d, x, y),
                                BinaryOp::Mul => x86::bin_f64_mul_ss(d, x, y),
                                BinaryOp::Div => x86::bin_f64_div_ss(d, x, y),
                                BinaryOp::EuclidSq => x86::bin_f64_euclid_ss(d, x, y),
                                _ => unreachable!("no AVX2 binary kernel for {op:?}"),
                            }
                        }
                    }
                    ColSrc::Const(c) => {
                        let c = c.to_f64();
                        unsafe {
                            match (op, swapped) {
                                (BinaryOp::Add, false) => x86::bin_f64_add_sc(d, a, c),
                                (BinaryOp::Add, true) => x86::bin_f64_add_cs(d, c, a),
                                (BinaryOp::Sub, false) => x86::bin_f64_sub_sc(d, a, c),
                                (BinaryOp::Sub, true) => x86::bin_f64_sub_cs(d, c, a),
                                (BinaryOp::Mul, false) => x86::bin_f64_mul_sc(d, a, c),
                                (BinaryOp::Mul, true) => x86::bin_f64_mul_cs(d, c, a),
                                (BinaryOp::Div, false) => x86::bin_f64_div_sc(d, a, c),
                                (BinaryOp::Div, true) => x86::bin_f64_div_cs(d, c, a),
                                (BinaryOp::EuclidSq, false) => x86::bin_f64_euclid_sc(d, a, c),
                                (BinaryOp::EuclidSq, true) => x86::bin_f64_euclid_cs(d, c, a),
                                _ => unreachable!("no AVX2 binary kernel for {op:?}"),
                            }
                        }
                    }
                }
            }
            DType::F32 => {
                let d = as_typed_mut::<T, f32>(dst);
                let a = as_typed::<T, f32>(a);
                match b {
                    ColSrc::Slice(bs) => {
                        let bs = as_typed::<T, f32>(bs);
                        let (x, y) = if swapped { (bs, a) } else { (a, bs) };
                        unsafe {
                            match op {
                                BinaryOp::Add => x86::bin_f32_add_ss(d, x, y),
                                BinaryOp::Sub => x86::bin_f32_sub_ss(d, x, y),
                                BinaryOp::Mul => x86::bin_f32_mul_ss(d, x, y),
                                BinaryOp::Div => x86::bin_f32_div_ss(d, x, y),
                                BinaryOp::EuclidSq => x86::bin_f32_euclid_ss(d, x, y),
                                _ => unreachable!("no AVX2 binary kernel for {op:?}"),
                            }
                        }
                    }
                    ColSrc::Const(c) => {
                        let c = c.to_f64() as f32;
                        unsafe {
                            match (op, swapped) {
                                (BinaryOp::Add, false) => x86::bin_f32_add_sc(d, a, c),
                                (BinaryOp::Add, true) => x86::bin_f32_add_cs(d, c, a),
                                (BinaryOp::Sub, false) => x86::bin_f32_sub_sc(d, a, c),
                                (BinaryOp::Sub, true) => x86::bin_f32_sub_cs(d, c, a),
                                (BinaryOp::Mul, false) => x86::bin_f32_mul_sc(d, a, c),
                                (BinaryOp::Mul, true) => x86::bin_f32_mul_cs(d, c, a),
                                (BinaryOp::Div, false) => x86::bin_f32_div_sc(d, a, c),
                                (BinaryOp::Div, true) => x86::bin_f32_div_cs(d, c, a),
                                (BinaryOp::EuclidSq, false) => x86::bin_f32_euclid_sc(d, a, c),
                                (BinaryOp::EuclidSq, true) => x86::bin_f32_euclid_cs(d, c, a),
                                _ => unreachable!("no AVX2 binary kernel for {op:?}"),
                            }
                        }
                    }
                }
            }
            _ => unreachable!("no AVX2 binary kernels for {:?}", T::DTYPE),
        }
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        let _ = (op, dst, a, b, swapped);
        unreachable!("AVX2 kernels unavailable on this architecture");
    }
}

// ---------------------------------------------------------- reductions

/// Fold one column into an `f64` accumulator at the given dispatch level.
///
/// `Off` is the historic strictly-serial fold. `Scalar` and `Avx2` use
/// eight `f64` lane partials for `Sum`/`Mean` — laid out as two blocks of
/// four so the scalar kernel's association is *identical* to the AVX2
/// kernel's two-`ymm`-accumulator association (Scalar↔Avx2 bit-identical;
/// either differs from `Off` only by reassociation). `Min`/`Max` use the
/// portable lane kernel at both SIMD levels: `f64::min`'s NaN-skipping
/// semantics differ from `vminpd`, and min/max are associative, so the
/// portable kernel is exact at every level. Everything else stays serial.
pub fn fold_col<T: Element>(level: SimdLevel, op: AggOp, acc: f64, col: &[T]) -> f64 {
    if level >= SimdLevel::Scalar && fold_simd_available(op, T::DTYPE) {
        match op {
            AggOp::Sum | AggOp::Mean => {
                let total = match T::DTYPE {
                    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                    DType::F64 if level >= SimdLevel::Avx2 => unsafe {
                        x86::sum_f64(as_typed::<T, f64>(col))
                    },
                    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                    DType::F32 if level >= SimdLevel::Avx2 => unsafe {
                        x86::sum_f32(as_typed::<T, f32>(col))
                    },
                    _ => sum_lanes(col),
                };
                return acc + total;
            }
            AggOp::Min => return minmax_lanes::<T, true>(acc, col),
            AggOp::Max => return minmax_lanes::<T, false>(acc, col),
            _ => {}
        }
    }
    let mut a = acc;
    for v in col {
        a = op.fold(a, v.to_f64());
    }
    a
}

/// Portable eight-lane sum. The lane layout (two blocks of four) and the
/// fixed sequential horizontal fold mirror [`x86::sum_f64`] exactly.
fn sum_lanes<T: Element>(col: &[T]) -> f64 {
    let n = col.len();
    let mut lanes = [0.0f64; 8];
    let mut i = 0;
    while i + 8 <= n {
        for (j, l) in lanes.iter_mut().enumerate() {
            *l += col[i + j].to_f64();
        }
        i += 8;
    }
    let mut total = 0.0;
    for l in lanes {
        total += l;
    }
    while i < n {
        total += col[i].to_f64();
        i += 1;
    }
    total
}

/// Portable eight-lane min/max fold; exact (and therefore level-
/// independent) because min/max never round.
fn minmax_lanes<T: Element, const MIN: bool>(acc: f64, col: &[T]) -> f64 {
    let ident = if MIN { f64::INFINITY } else { f64::NEG_INFINITY };
    let pick = |a: f64, b: f64| if MIN { a.min(b) } else { a.max(b) };
    let n = col.len();
    let mut lanes = [ident; 8];
    let mut i = 0;
    while i + 8 <= n {
        for (j, l) in lanes.iter_mut().enumerate() {
            *l = pick(*l, col[i + j].to_f64());
        }
        i += 8;
    }
    let mut total = ident;
    for l in lanes {
        total = pick(total, l);
    }
    while i < n {
        total = pick(total, col[i].to_f64());
        i += 1;
    }
    pick(acc, total)
}

// -------------------------------------------------------- AVX2 kernels

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    // The macros expand the vector expression and the scalar-tail
    // expression inline, so the generated functions contain no closures
    // and no per-element dispatch. Scalar tails reproduce the engine's
    // reference element functions exactly (including the f32 ops that
    // route through f64 — equal to the vector result by 2p+2).

    macro_rules! un_f64 {
        ($name:ident, |$v:ident| $vec:expr, |$x:ident| $scl:expr) => {
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(src: &[f64], dst: &mut [f64]) {
                let n = src.len().min(dst.len());
                let mut i = 0;
                while i + 4 <= n {
                    let $v = _mm256_loadu_pd(src.as_ptr().add(i));
                    _mm256_storeu_pd(dst.as_mut_ptr().add(i), $vec);
                    i += 4;
                }
                while i < n {
                    let $x = *src.get_unchecked(i);
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
        };
    }

    un_f64!(un_f64_neg, |v| _mm256_xor_pd(v, _mm256_set1_pd(-0.0)), |x| -x);
    un_f64!(un_f64_abs, |v| _mm256_andnot_pd(_mm256_set1_pd(-0.0), v), |x| x.abs());
    un_f64!(un_f64_square, |v| _mm256_mul_pd(v, v), |x| x * x);
    un_f64!(un_f64_sqrt, |v| _mm256_sqrt_pd(v), |x| x.sqrt());
    un_f64!(un_f64_recip, |v| _mm256_div_pd(_mm256_set1_pd(1.0), v), |x| 1.0 / x);
    un_f64!(un_f64_floor, |v| _mm256_floor_pd(v), |x| x.floor());
    un_f64!(un_f64_ceil, |v| _mm256_ceil_pd(v), |x| x.ceil());

    macro_rules! un_f32 {
        ($name:ident, |$v:ident| $vec:expr, |$x:ident| $scl:expr) => {
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name(src: &[f32], dst: &mut [f32]) {
                let n = src.len().min(dst.len());
                let mut i = 0;
                while i + 8 <= n {
                    let $v = _mm256_loadu_ps(src.as_ptr().add(i));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), $vec);
                    i += 8;
                }
                while i < n {
                    let $x = *src.get_unchecked(i);
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
        };
    }

    un_f32!(un_f32_neg, |v| _mm256_xor_ps(v, _mm256_set1_ps(-0.0)), |x| -x);
    un_f32!(un_f32_abs, |v| _mm256_andnot_ps(_mm256_set1_ps(-0.0), v), |x| x.abs());
    un_f32!(un_f32_square, |v| _mm256_mul_ps(v, v), |x| x * x);
    un_f32!(un_f32_sqrt, |v| _mm256_sqrt_ps(v), |x| ((x as f64).sqrt()) as f32);
    un_f32!(un_f32_recip, |v| _mm256_div_ps(_mm256_set1_ps(1.0), v), |x| (1.0 / (x as f64)) as f32);
    un_f32!(un_f32_floor, |v| _mm256_floor_ps(v), |x| ((x as f64).floor()) as f32);
    un_f32!(un_f32_ceil, |v| _mm256_ceil_ps(v), |x| ((x as f64).ceil()) as f32);

    /// One binary op in three operand shapes: slice⊕slice, slice⊕const
    /// and const⊕slice (the latter two cover `swapped` for the
    /// non-commutative ops).
    macro_rules! bin_f64 {
        ($ss:ident, $sc:ident, $cs:ident, |$a:ident, $b:ident| $vec:expr, |$x:ident, $y:ident| $scl:expr) => {
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $ss(dst: &mut [f64], xs: &[f64], ys: &[f64]) {
                let n = dst.len().min(xs.len()).min(ys.len());
                let mut i = 0;
                while i + 4 <= n {
                    let $a = _mm256_loadu_pd(xs.as_ptr().add(i));
                    let $b = _mm256_loadu_pd(ys.as_ptr().add(i));
                    _mm256_storeu_pd(dst.as_mut_ptr().add(i), $vec);
                    i += 4;
                }
                while i < n {
                    let $x = *xs.get_unchecked(i);
                    let $y = *ys.get_unchecked(i);
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $sc(dst: &mut [f64], xs: &[f64], c: f64) {
                let n = dst.len().min(xs.len());
                let $b = _mm256_set1_pd(c);
                let mut i = 0;
                while i + 4 <= n {
                    let $a = _mm256_loadu_pd(xs.as_ptr().add(i));
                    _mm256_storeu_pd(dst.as_mut_ptr().add(i), $vec);
                    i += 4;
                }
                while i < n {
                    let $x = *xs.get_unchecked(i);
                    let $y = c;
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $cs(dst: &mut [f64], c: f64, ys: &[f64]) {
                let n = dst.len().min(ys.len());
                let $a = _mm256_set1_pd(c);
                let mut i = 0;
                while i + 4 <= n {
                    let $b = _mm256_loadu_pd(ys.as_ptr().add(i));
                    _mm256_storeu_pd(dst.as_mut_ptr().add(i), $vec);
                    i += 4;
                }
                while i < n {
                    let $x = c;
                    let $y = *ys.get_unchecked(i);
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
        };
    }

    bin_f64!(bin_f64_add_ss, bin_f64_add_sc, bin_f64_add_cs, |a, b| _mm256_add_pd(a, b), |x, y| x + y);
    bin_f64!(bin_f64_sub_ss, bin_f64_sub_sc, bin_f64_sub_cs, |a, b| _mm256_sub_pd(a, b), |x, y| x - y);
    bin_f64!(bin_f64_mul_ss, bin_f64_mul_sc, bin_f64_mul_cs, |a, b| _mm256_mul_pd(a, b), |x, y| x * y);
    bin_f64!(bin_f64_div_ss, bin_f64_div_sc, bin_f64_div_cs, |a, b| _mm256_div_pd(a, b), |x, y| x / y);
    bin_f64!(
        bin_f64_euclid_ss,
        bin_f64_euclid_sc,
        bin_f64_euclid_cs,
        |a, b| {
            let d = _mm256_sub_pd(a, b);
            _mm256_mul_pd(d, d)
        },
        |x, y| {
            let d = x - y;
            d * d
        }
    );

    macro_rules! bin_f32 {
        ($ss:ident, $sc:ident, $cs:ident, |$a:ident, $b:ident| $vec:expr, |$x:ident, $y:ident| $scl:expr) => {
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $ss(dst: &mut [f32], xs: &[f32], ys: &[f32]) {
                let n = dst.len().min(xs.len()).min(ys.len());
                let mut i = 0;
                while i + 8 <= n {
                    let $a = _mm256_loadu_ps(xs.as_ptr().add(i));
                    let $b = _mm256_loadu_ps(ys.as_ptr().add(i));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), $vec);
                    i += 8;
                }
                while i < n {
                    let $x = *xs.get_unchecked(i);
                    let $y = *ys.get_unchecked(i);
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $sc(dst: &mut [f32], xs: &[f32], c: f32) {
                let n = dst.len().min(xs.len());
                let $b = _mm256_set1_ps(c);
                let mut i = 0;
                while i + 8 <= n {
                    let $a = _mm256_loadu_ps(xs.as_ptr().add(i));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), $vec);
                    i += 8;
                }
                while i < n {
                    let $x = *xs.get_unchecked(i);
                    let $y = c;
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $cs(dst: &mut [f32], c: f32, ys: &[f32]) {
                let n = dst.len().min(ys.len());
                let $a = _mm256_set1_ps(c);
                let mut i = 0;
                while i + 8 <= n {
                    let $b = _mm256_loadu_ps(ys.as_ptr().add(i));
                    _mm256_storeu_ps(dst.as_mut_ptr().add(i), $vec);
                    i += 8;
                }
                while i < n {
                    let $x = c;
                    let $y = *ys.get_unchecked(i);
                    *dst.get_unchecked_mut(i) = $scl;
                    i += 1;
                }
            }
        };
    }

    bin_f32!(bin_f32_add_ss, bin_f32_add_sc, bin_f32_add_cs, |a, b| _mm256_add_ps(a, b), |x, y| x + y);
    bin_f32!(bin_f32_sub_ss, bin_f32_sub_sc, bin_f32_sub_cs, |a, b| _mm256_sub_ps(a, b), |x, y| x - y);
    bin_f32!(bin_f32_mul_ss, bin_f32_mul_sc, bin_f32_mul_cs, |a, b| _mm256_mul_ps(a, b), |x, y| x * y);
    bin_f32!(bin_f32_div_ss, bin_f32_div_sc, bin_f32_div_cs, |a, b| _mm256_div_ps(a, b), |x, y| x / y);
    bin_f32!(
        bin_f32_euclid_ss,
        bin_f32_euclid_sc,
        bin_f32_euclid_cs,
        |a, b| {
            let d = _mm256_sub_ps(a, b);
            _mm256_mul_ps(d, d)
        },
        |x, y| {
            let d = x - y;
            d * d
        }
    );

    /// Two-accumulator vector sum. Lane `j` of `acc0` (j < 4) and lane
    /// `j-4` of `acc1` see exactly the elements `super::sum_lanes` folds
    /// into its lane `j`; the spill-and-fold order matches its horizontal
    /// fold, so Scalar and Avx2 sums are bit-identical.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sum_f64(col: &[f64]) -> f64 {
        let n = col.len();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(col.as_ptr().add(i)));
            acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(col.as_ptr().add(i + 4)));
            i += 8;
        }
        let mut lanes = [0.0f64; 8];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1);
        let mut total = 0.0;
        for l in lanes {
            total += l;
        }
        while i < n {
            total += *col.get_unchecked(i);
            i += 1;
        }
        total
    }

    /// f32 twin of [`sum_f64`]: widen each 8-lane block to two f64
    /// vectors, preserving the same lane association as the portable
    /// kernel (lane j accumulates elements `i + j` as f64).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sum_f32(col: &[f32]) -> f64 {
        let n = col.len();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(col.as_ptr().add(i));
            acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
            acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
            i += 8;
        }
        let mut lanes = [0.0f64; 8];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc0);
        _mm256_storeu_pd(lanes.as_mut_ptr().add(4), acc1);
        let mut total = 0.0;
        for l in lanes {
            total += l;
        }
        while i < n {
            total += *col.get_unchecked(i) as f64;
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn avx2() -> bool {
        SimdLevel::avx2_supported()
    }

    #[test]
    fn unary_avx2_bit_identical_to_scalar_f64() {
        if !avx2() {
            return;
        }
        let src = pseudo(1037, 3);
        for op in [
            UnaryOp::Neg,
            UnaryOp::Abs,
            UnaryOp::Square,
            UnaryOp::Sqrt,
            UnaryOp::Recip,
            UnaryOp::Floor,
            UnaryOp::Ceil,
        ] {
            let mut want = vec![0.0f64; src.len()];
            crate::ops::unary::unary_typed::<f64>(op, &src, &mut want);
            let mut got = vec![0.0f64; src.len()];
            unary_simd::<f64>(op, &src, &mut got);
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "op={op:?} i={i} w={w} g={g}");
            }
        }
    }

    #[test]
    fn unary_avx2_bit_identical_to_scalar_f32() {
        if !avx2() {
            return;
        }
        let src: Vec<f32> = pseudo(517, 5).iter().map(|&v| (v * 7.5) as f32).collect();
        for op in [
            UnaryOp::Neg,
            UnaryOp::Abs,
            UnaryOp::Square,
            UnaryOp::Sqrt,
            UnaryOp::Recip,
            UnaryOp::Floor,
            UnaryOp::Ceil,
        ] {
            let mut want = vec![0.0f32; src.len()];
            crate::ops::unary::unary_typed::<f32>(op, &src, &mut want);
            let mut got = vec![0.0f32; src.len()];
            unary_simd::<f32>(op, &src, &mut got);
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                assert_eq!(w.to_bits(), g.to_bits(), "op={op:?} i={i} w={w} g={g}");
            }
        }
    }

    #[test]
    fn arith_avx2_bit_identical_all_shapes() {
        if !avx2() {
            return;
        }
        let a = pseudo(709, 11);
        let b = pseudo(709, 13);
        for op in
            [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div, BinaryOp::EuclidSq]
        {
            let reference = crate::ops::binary::arith_col_fn::<f64>(op);
            for swapped in [false, true] {
                // slice operand
                let mut want = vec![0.0f64; a.len()];
                reference(&mut want, &a, ColSrc::Slice(&b), swapped);
                let mut got = vec![0.0f64; a.len()];
                arith_simd::<f64>(op, &mut got, &a, ColSrc::Slice(&b), swapped);
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(w.to_bits(), g.to_bits(), "op={op:?} swapped={swapped} slice");
                }
                // const operand
                let mut want = vec![0.0f64; a.len()];
                reference(&mut want, &a, ColSrc::Const(0.37), swapped);
                let mut got = vec![0.0f64; a.len()];
                arith_simd::<f64>(op, &mut got, &a, ColSrc::Const(0.37), swapped);
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(w.to_bits(), g.to_bits(), "op={op:?} swapped={swapped} const");
                }
            }
        }
    }

    #[test]
    fn sum_scalar_and_avx2_bit_identical() {
        // The lane association contract: Scalar and Avx2 sums must agree
        // to the bit because their partials fold in the same order.
        if !avx2() {
            return;
        }
        for n in [0usize, 1, 7, 8, 9, 64, 1000, 1023] {
            let v = pseudo(n, 17);
            let scalar = fold_col::<f64>(SimdLevel::Scalar, AggOp::Sum, 0.25, &v);
            let vex = fold_col::<f64>(SimdLevel::Avx2, AggOp::Sum, 0.25, &v);
            assert_eq!(scalar.to_bits(), vex.to_bits(), "n={n}");
            let vf: Vec<f32> = v.iter().map(|&x| x as f32).collect();
            let scalar = fold_col::<f32>(SimdLevel::Scalar, AggOp::Sum, 0.25, &vf);
            let vex = fold_col::<f32>(SimdLevel::Avx2, AggOp::Sum, 0.25, &vf);
            assert_eq!(scalar.to_bits(), vex.to_bits(), "f32 n={n}");
        }
    }

    #[test]
    fn sum_off_vs_lanes_within_reassociation_bound() {
        // |serial - lanewise| <= n * eps * sum(|x_i|): each of the O(n)
        // reassociated partial sums carries at most half an ulp of the
        // magnitude bound.
        for n in [3usize, 10, 100, 2048] {
            let v = pseudo(n, 23);
            let off = fold_col::<f64>(SimdLevel::Off, AggOp::Sum, 0.0, &v);
            let lanes = fold_col::<f64>(SimdLevel::Scalar, AggOp::Sum, 0.0, &v);
            let mag: f64 = v.iter().map(|x| x.abs()).sum();
            let bound = n as f64 * f64::EPSILON * mag + f64::MIN_POSITIVE;
            assert!((off - lanes).abs() <= bound, "n={n} off={off} lanes={lanes}");
        }
    }

    #[test]
    fn minmax_exact_at_every_level() {
        let v = pseudo(777, 29);
        for op in [AggOp::Min, AggOp::Max] {
            let off = fold_col::<f64>(SimdLevel::Off, op, op.identity(), &v);
            for lvl in [SimdLevel::Scalar, SimdLevel::Avx2] {
                let got = fold_col::<f64>(lvl, op, op.identity(), &v);
                assert_eq!(off.to_bits(), got.to_bits(), "{op:?} at {}", lvl.name());
            }
        }
    }

    #[test]
    fn fold_handles_nan_like_the_serial_path() {
        let mut v = pseudo(100, 31);
        v[17] = f64::NAN;
        v[63] = f64::NAN;
        for op in [AggOp::Min, AggOp::Max] {
            let off = fold_col::<f64>(SimdLevel::Off, op, op.identity(), &v);
            let lanes = fold_col::<f64>(SimdLevel::Scalar, op, op.identity(), &v);
            assert_eq!(off.to_bits(), lanes.to_bits(), "{op:?}");
        }
        // Sum propagates NaN at every level.
        for lvl in SimdLevel::available() {
            assert!(fold_col::<f64>(lvl, AggOp::Sum, 0.0, &v).is_nan());
        }
    }

    #[test]
    fn integer_folds_are_level_independent() {
        let v: Vec<i64> = (0..501).map(|i| (i * 7 % 1000) - 500).collect();
        for op in [AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Prod] {
            let off = fold_col::<i64>(SimdLevel::Off, op, op.identity(), &v[..16]);
            for lvl in SimdLevel::available() {
                let got = fold_col::<i64>(lvl, op, op.identity(), &v[..16]);
                assert_eq!(off.to_bits(), got.to_bits(), "{op:?} at {}", lvl.name());
            }
        }
    }

    #[test]
    fn availability_tables() {
        assert!(!unary_simd_available(UnaryOp::Round, DType::F64), "Round is not exactly rounded");
        assert!(!unary_simd_available(UnaryOp::Exp, DType::F64));
        assert!(!unary_simd_available(UnaryOp::Neg, DType::I64), "no integer AVX2 column");
        assert!(!arith_simd_available(BinaryOp::Min, DType::F64), "vminpd NaN asymmetry");
        assert!(!arith_simd_available(BinaryOp::Pow, DType::F64));
        assert!(!arith_simd_available(BinaryOp::Add, DType::I32));
        assert!(!fold_simd_available(AggOp::Prod, DType::F64));
        assert!(!fold_simd_available(AggOp::Sum, DType::I64));
    }
}
