//! Pcache chunks: the unit of fused computation.
//!
//! The FlashR executor splits each I/O partition into *processor-cache
//! (Pcache) partitions* sized to fit in L1/L2 (paper §3.5.1) and streams
//! them through the operation DAG. A [`Chunk`] is one such block:
//! column-major, typed, 8-byte aligned. Kernels therefore always see
//! per-column contiguous slices, the layout the paper prefers for
//! vectorization (§3.2.1).
//!
//! Chunks either own their buffer or share a whole partition buffer
//! (zero-copy when a chunk spans an entire column-major partition).
//! [`BufPool`] recycles owned buffers so the memory feeding the next
//! operation is already resident in cache (paper §3.5.1, buffer
//! recycling).

use crate::dtype::{DType, Scalar};
use crate::element::Element;
use flashr_safs::IoBuf;
use std::collections::HashMap;
use std::sync::Arc;

/// Backing storage of a chunk.
#[derive(Debug, Clone)]
enum ChunkData {
    Owned(IoBuf),
    Shared(Arc<IoBuf>),
}

/// A column-major typed block of `rows × cols` elements.
#[derive(Debug, Clone)]
pub struct Chunk {
    data: ChunkData,
    dtype: DType,
    rows: usize,
    cols: usize,
}

impl Chunk {
    /// Allocate an owned, uninitialized-content chunk (bytes are reused
    /// from `pool` when possible; contents are unspecified).
    pub fn alloc(dtype: DType, rows: usize, cols: usize, pool: &mut BufPool) -> Chunk {
        let bytes = rows * cols * dtype.size();
        let buf = pool.take(bytes);
        Chunk { data: ChunkData::Owned(buf), dtype, rows, cols }
    }

    /// Allocate a zero-filled chunk.
    pub fn zeroed(dtype: DType, rows: usize, cols: usize) -> Chunk {
        let bytes = rows * cols * dtype.size();
        Chunk { data: ChunkData::Owned(IoBuf::zeroed(bytes)), dtype, rows, cols }
    }

    /// Wrap a whole shared partition buffer (zero-copy). The buffer must
    /// hold exactly `rows × cols` elements in column-major order.
    pub fn shared(buf: Arc<IoBuf>, dtype: DType, rows: usize, cols: usize) -> Chunk {
        assert_eq!(buf.len(), rows * cols * dtype.size(), "shared buffer size mismatch");
        Chunk { data: ChunkData::Shared(buf), dtype, rows, cols }
    }

    /// Wrap an owned buffer produced elsewhere (the fused map kernels
    /// write their output strips straight into a pool buffer). The
    /// buffer must hold exactly `rows × cols` elements, column-major.
    pub(crate) fn from_iobuf(buf: IoBuf, dtype: DType, rows: usize, cols: usize) -> Chunk {
        assert_eq!(buf.len(), rows * cols * dtype.size(), "owned buffer size mismatch");
        Chunk { data: ChunkData::Owned(buf), dtype, rows, cols }
    }

    /// Build a chunk from typed values (column-major order).
    pub fn from_slice<T: Element>(rows: usize, cols: usize, values: &[T]) -> Chunk {
        assert_eq!(values.len(), rows * cols);
        let mut c = Chunk::zeroed(T::DTYPE, rows, cols);
        c.slice_mut::<T>().copy_from_slice(values);
        c
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Rows in this chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns in this chunk.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn bytes(&self) -> &[u8] {
        match &self.data {
            ChunkData::Owned(b) => b.as_bytes(),
            ChunkData::Shared(b) => b.as_bytes(),
        }
    }

    /// Typed view of the whole chunk (column-major).
    #[inline]
    pub fn slice<T: Element>(&self) -> &[T] {
        assert_eq!(T::DTYPE, self.dtype, "chunk dtype mismatch");
        match &self.data {
            ChunkData::Owned(b) => b.typed::<T>(),
            ChunkData::Shared(b) => b.typed::<T>(),
        }
    }

    /// Mutable typed view. Panics on shared chunks.
    #[inline]
    pub fn slice_mut<T: Element>(&mut self) -> &mut [T] {
        assert_eq!(T::DTYPE, self.dtype, "chunk dtype mismatch");
        match &mut self.data {
            ChunkData::Owned(b) => b.typed_mut::<T>(),
            ChunkData::Shared(_) => panic!("cannot mutate a shared chunk"),
        }
    }

    /// Column `c` as a contiguous typed slice.
    #[inline]
    pub fn col<T: Element>(&self, c: usize) -> &[T] {
        &self.slice::<T>()[c * self.rows..(c + 1) * self.rows]
    }

    /// Raw byte view (for I/O).
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes()
    }

    /// Element at `(r, c)` as a dynamically typed scalar.
    pub fn get(&self, r: usize, c: usize) -> Scalar {
        assert!(r < self.rows && c < self.cols, "chunk index out of range");
        let idx = c * self.rows + r;
        crate::dispatch!(self.dtype, T, {
            let v: T = self.slice::<T>()[idx];
            scalar_of(v)
        })
    }

    /// Element at `(r, c)` as f64.
    pub fn get_f64(&self, r: usize, c: usize) -> f64 {
        self.get(r, c).to_f64()
    }

    /// Copy a row range `[r0, r1)` into a new owned chunk.
    pub fn slice_rows(&self, r0: usize, r1: usize, pool: &mut BufPool) -> Chunk {
        assert!(r0 <= r1 && r1 <= self.rows);
        let rows = r1 - r0;
        let mut out = Chunk::alloc(self.dtype, rows, self.cols, pool);
        crate::dispatch!(self.dtype, T, {
            let src = self.slice::<T>();
            let dst = out.slice_mut::<T>();
            for c in 0..self.cols {
                dst[c * rows..(c + 1) * rows]
                    .copy_from_slice(&src[c * self.rows + r0..c * self.rows + r1]);
            }
        });
        out
    }

    /// Recycle this chunk's buffer into `pool` (no-op for shared chunks
    /// with other outstanding references).
    pub fn recycle(self, pool: &mut BufPool) {
        match self.data {
            ChunkData::Owned(b) => pool.put(b),
            ChunkData::Shared(b) => {
                if let Some(b) = Arc::into_inner(b) {
                    pool.put(b);
                }
            }
        }
    }
}

/// Helper converting a typed value into [`Scalar`].
#[inline]
pub fn scalar_of<T: Element>(v: T) -> Scalar {
    match T::DTYPE {
        DType::U8 => Scalar::U8(v.to_i64() as u8),
        DType::I32 => Scalar::I32(v.to_i64() as i32),
        DType::I64 => Scalar::I64(v.to_i64()),
        DType::F32 => Scalar::F32(v.to_f64() as f32),
        DType::F64 => Scalar::F64(v.to_f64()),
    }
}

/// Per-thread buffer recycler, keyed by capacity class.
///
/// Buffers are reused by exact byte length rounded up to the next power of
/// two so a DAG with many same-shaped intermediates allocates only once per
/// shape (the paper's Pcache buffer recycling).
#[derive(Debug, Default)]
pub struct BufPool {
    free: HashMap<usize, Vec<IoBuf>>,
}

impl BufPool {
    /// Fresh empty pool.
    pub fn new() -> Self {
        BufPool::default()
    }

    fn class_of(bytes: usize) -> usize {
        bytes.next_power_of_two().max(64)
    }

    /// Take a buffer with at least `bytes` capacity, resized to `bytes`.
    pub fn take(&mut self, bytes: usize) -> IoBuf {
        let class = Self::class_of(bytes);
        match self.free.get_mut(&class).and_then(Vec::pop) {
            Some(mut b) => {
                b.resize(bytes);
                b
            }
            None => {
                let mut b = IoBuf::zeroed(class);
                b.resize(bytes);
                b
            }
        }
    }

    /// Return a buffer for reuse.
    pub fn put(&mut self, buf: IoBuf) {
        let class = Self::class_of(buf.len());
        let entry = self.free.entry(class).or_default();
        // Bound the pool to avoid retaining unbounded memory.
        if entry.len() < 16 {
            entry.push(buf);
        }
    }
}

/// Cross-pass recycler for partition-sized output buffers, shared by all
/// clones of a context.
///
/// Tall outputs used to be `IoBuf::zeroed` per partition per pass — and
/// since every pass fully overwrites its output, the zeroing (a memset
/// of the whole output, or the page-fault equivalent on a fresh mmap)
/// was pure waste that dominated small fused passes. Result matrices
/// whose buffers came from this pool return them on drop
/// ([`crate::mat::TasMat`] holds the hook), so steady-state iterative
/// workloads rewrite the same warm memory instead of paying the
/// allocator per pass.
///
/// Unlike the per-worker [`BufPool`], this pool is `Sync` (workers take
/// concurrently), keyed by *exact* byte size (partition buffers are
/// uniform per matrix; no resize-extension semantics to reason about)
/// and bounded by total pooled bytes rather than per-shelf count.
pub struct PartBufPool {
    free: parking_lot::Mutex<HashMap<usize, Vec<IoBuf>>>,
    pooled_bytes: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for PartBufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PartBufPool({} B pooled)", self.pooled_bytes())
    }
}

impl Default for PartBufPool {
    fn default() -> Self {
        PartBufPool::new()
    }
}

impl PartBufPool {
    /// Idle memory the pool may retain; returns above the cap free
    /// normally instead of pooling.
    pub const CAP_BYTES: usize = 128 << 20;

    /// Fresh empty pool.
    pub fn new() -> Self {
        PartBufPool {
            free: parking_lot::Mutex::new(HashMap::new()),
            pooled_bytes: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Bytes currently idle in the pool.
    pub fn pooled_bytes(&self) -> usize {
        self.pooled_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Take a `bytes`-long buffer whose contents are *unspecified* (stale
    /// data from a previous pass, or zeros when freshly allocated). The
    /// caller must overwrite every byte before the buffer is read — tall
    /// output passes do, by construction: Pcache ranges tile the
    /// partition and every column is written. Debug builds poison
    /// recycled buffers so a missed write surfaces as loud garbage, not
    /// silently-correct zeros.
    pub fn take_for_overwrite(&self, bytes: usize) -> IoBuf {
        let hit = self.free.lock().get_mut(&bytes).and_then(Vec::pop);
        match hit {
            Some(buf) => {
                self.pooled_bytes.fetch_sub(bytes, std::sync::atomic::Ordering::Relaxed);
                #[cfg(debug_assertions)]
                let buf = {
                    let mut buf = buf;
                    buf.as_mut_bytes().fill(0xA5);
                    buf
                };
                buf
            }
            None => IoBuf::zeroed(bytes),
        }
    }

    /// Return a buffer for reuse; silently frees it instead when the
    /// pool is at [`Self::CAP_BYTES`] or the buffer is empty.
    pub fn put(&self, buf: IoBuf) {
        let len = buf.len();
        if len == 0 || self.pooled_bytes() + len > Self::CAP_BYTES {
            return;
        }
        self.pooled_bytes.fetch_add(len, std::sync::atomic::Ordering::Relaxed);
        self.free.lock().entry(len).or_default().push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_index() {
        let mut pool = BufPool::new();
        let mut c = Chunk::alloc(DType::F64, 4, 3, &mut pool);
        let s = c.slice_mut::<f64>();
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as f64;
        }
        // column-major: (r=1, c=2) is at 2*4+1 = 9
        assert_eq!(c.get_f64(1, 2), 9.0);
        assert_eq!(c.col::<f64>(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn shared_chunks_are_zero_copy_and_immutable() {
        let mut buf = IoBuf::zeroed(3 * 8);
        buf.typed_mut::<i64>().copy_from_slice(&[5, 6, 7]);
        let arc = Arc::new(buf);
        let c = Chunk::shared(arc.clone(), DType::I64, 3, 1);
        assert_eq!(c.slice::<i64>(), &[5, 6, 7]);
        assert_eq!(Arc::strong_count(&arc), 2);
    }

    #[test]
    #[should_panic]
    fn shared_chunk_mutation_panics() {
        let buf = Arc::new(IoBuf::zeroed(8));
        let mut c = Chunk::shared(buf, DType::F64, 1, 1);
        let _ = c.slice_mut::<f64>();
    }

    #[test]
    fn slice_rows_extracts_subrange() {
        let c = Chunk::from_slice::<i32>(4, 2, &[0, 1, 2, 3, 10, 11, 12, 13]);
        let mut pool = BufPool::new();
        let s = c.slice_rows(1, 3, &mut pool);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.slice::<i32>(), &[1, 2, 11, 12]);
    }

    #[test]
    fn pool_recycles_buffers() {
        let mut pool = BufPool::new();
        let c = Chunk::alloc(DType::F64, 100, 2, &mut pool);
        let ptr = c.as_bytes().as_ptr();
        c.recycle(&mut pool);
        let c2 = Chunk::alloc(DType::F64, 100, 2, &mut pool);
        assert_eq!(c2.as_bytes().as_ptr(), ptr, "buffer was not recycled");
    }

    #[test]
    fn pool_take_resizes() {
        let mut pool = BufPool::new();
        pool.put(IoBuf::zeroed(1024));
        let b = pool.take(1000);
        assert_eq!(b.len(), 1000);
    }

    #[test]
    fn dtype_mismatch_panics() {
        let c = Chunk::zeroed(DType::F32, 2, 2);
        let r = std::panic::catch_unwind(|| c.slice::<f64>().len());
        assert!(r.is_err());
    }
}
