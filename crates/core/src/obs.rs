//! Persistent observability: the profile history store.
//!
//! When `FLASHR_PROFILE_DIR` names a directory, every
//! [`crate::exec::materialize`] appends one compact JSONL record there:
//! the plan's structural fingerprint, the cost model's estimate, every
//! optimizer decision with predicted and actual bytes, the
//! critical-path verdict with its per-category nanos, the exec/io/cache
//! counter deltas, and the host stamp (cpus, workers, NUMA nodes,
//! page-cache capacity, build profile, SIMD level, storage backend
//! flavor, shard count).
//!
//! The store is the feedback asset the rest of this layer consumes:
//! [`crate::analysis::calibrate`] fits per-category throughput
//! constants from it at context build, and the `flashr-prof` binary
//! renders trajectory tables and run-to-run diffs over it.
//!
//! Costs nothing when the env var is unset (one `var_os` probe per
//! materialization, no allocation). When set, one record is one
//! `String` built with the core's hand-rolled JSON helpers and one
//! appending write; a per-file byte cap bounds the store, with overflow
//! counted in [`dropped_records`] instead of growing without bound.

use crate::analysis::cost::CostEstimate;
use crate::analysis::optimize::Decision;
use crate::dag::{MapOp, Node, NodeKind};
use crate::exec::Target;
use crate::session::{ExecMode, FlashCtx};
use crate::stats::ExecStatsSnapshot;
use crate::trace::critical::WallAttribution;
use crate::trace::json_escape;
use flashr_safs::IoStatsSnapshot;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Environment variable naming the store directory. Unset (or empty)
/// disables the store entirely.
pub const PROFILE_DIR_ENV: &str = "FLASHR_PROFILE_DIR";

/// Optional workload tag stamped into each record (`"label"` field);
/// bench binaries set it around named workloads so `flashr-prof` can
/// group records by what they measured.
pub const PROFILE_LABEL_ENV: &str = "FLASHR_PROFILE_LABEL";

/// Per-run file cap. A run whose file reaches this stops appending and
/// counts [`dropped_records`] instead (an iterative algorithm can
/// materialize tens of thousands of times).
pub const MAX_STORE_FILE_BYTES: u64 = 32 << 20;

static DROPPED: AtomicU64 = AtomicU64::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RUN_ID: OnceLock<String> = OnceLock::new();

/// The store directory, when the env var is set and non-empty.
pub fn store_dir() -> Option<PathBuf> {
    match std::env::var_os(PROFILE_DIR_ENV) {
        Some(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// Whether the profile store is enabled for this process right now.
pub fn enabled() -> bool {
    store_dir().is_some()
}

/// Records this process failed to append (file cap reached or I/O
/// error). Monotonic; never reset.
pub fn dropped_records() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// This process's run id — the store file name stem (`<run>.jsonl`) and
/// the `"run"` field of every record it writes. Stable for the process
/// lifetime.
pub fn run_id() -> &'static str {
    RUN_ID.get_or_init(|| {
        let ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        format!("run-{}-{ms}", std::process::id())
    })
}

/// Structural fingerprint of a target set: a recursive, node-id-free
/// hash over shapes, dtypes and operator labels, so the same program
/// shape yields the same fingerprint in every process (leaves hash by
/// shape and storage class, not identity). Built on the unkeyed
/// `DefaultHasher`, which is deterministic across runs of one build.
pub fn plan_fingerprint(targets: &[Target]) -> u64 {
    let mut memo: HashMap<u64, u64> = HashMap::new();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    targets.len().hash(&mut h);
    for t in targets {
        let (tag, node) = match t {
            Target::Sink(n) => (0u8, n),
            Target::Tall { node, .. } => (1u8, node),
        };
        tag.hash(&mut h);
        node_fingerprint(node, &mut memo).hash(&mut h);
    }
    h.finish()
}

fn node_fingerprint(node: &Arc<Node>, memo: &mut HashMap<u64, u64>) -> u64 {
    if let Some(&f) = memo.get(&node.id) {
        return f;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    node.label().hash(&mut h);
    node.nrows.hash(&mut h);
    node.ncols.hash(&mut h);
    node.dtype.hash(&mut h);
    if !node.is_effective_leaf() {
        let children = node.children();
        children.len().hash(&mut h);
        for c in children {
            node_fingerprint(c, memo).hash(&mut h);
        }
    }
    let f = h.finish();
    memo.insert(node.id, f);
    f
}

/// Coarse operator class of a plan, the key the calibration loop prices
/// compute throughput under: `"gemm"` when any reachable node is a
/// crossprod / matmul / inner-product (those passes re-scan a tall
/// operand), `"stream"` otherwise.
pub fn op_class(targets: &[Target]) -> &'static str {
    let mut stack: Vec<Arc<Node>> = targets
        .iter()
        .map(|t| match t {
            Target::Sink(n) | Target::Tall { node: n, .. } => n.clone(),
        })
        .collect();
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    while let Some(node) = stack.pop() {
        if !seen.insert(node.id) {
            continue;
        }
        match &node.kind {
            NodeKind::SinkGramian { .. }
            | NodeKind::Map { op: MapOp::MatMul(_) | MapOp::InnerProd { .. }, .. } => {
                return "gemm";
            }
            _ => {}
        }
        if !node.is_effective_leaf() {
            for c in node.children() {
                stack.push(c.clone());
            }
        }
    }
    "stream"
}

/// The `"host"` stamp: machine and configuration facts needed to match
/// records across runs and interpret absolute throughput. The single
/// source of truth — bench artifacts embed the same JSON via
/// `flashr_bench::host_section_json`, so the store and
/// `BENCH_*.json` agree on the full fingerprint.
pub fn host_json(ctx: &FlashCtx) -> String {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
    let (backend, shards, cache) = match ctx.safs() {
        Some(s) => (s.backend_kind().as_str(), s.nshards(), s.page_cache_capacity()),
        None => ("none", 0, 0),
    };
    format!(
        "{{\"cpus\":{cpus},\"workers\":{},\"numa_nodes\":{},\
         \"page_cache_capacity_bytes\":{cache},\"build_profile\":\"{}\",\
         \"simd\":\"{}\",\"backend\":\"{backend}\",\"shards\":{shards}}}",
        ctx.cfg().nthreads,
        ctx.cfg().numa_nodes,
        if cfg!(debug_assertions) { "debug" } else { "release" },
        flashr_linalg::SimdLevel::active().name(),
    )
}

pub(crate) fn mode_str(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Eager => "Eager",
        ExecMode::MemFuse => "MemFuse",
        ExecMode::CacheFuse => "CacheFuse",
    }
}

/// Everything one materialization hands the store.
pub(crate) struct Record<'a> {
    pub targets: &'a [Target],
    pub cost: &'a CostEstimate,
    pub decisions: &'a [Decision],
    pub verdict: &'a WallAttribution,
    pub exec_delta: &'a ExecStatsSnapshot,
    pub io_delta: Option<&'a IoStatsSnapshot>,
    pub wall_nanos: u64,
}

/// Append one record for a finished materialization. No-op when the
/// store is disabled.
pub(crate) fn record(ctx: &FlashCtx, rec: &Record<'_>) {
    let Some(dir) = store_dir() else { return };
    let line = render_record(ctx, rec);
    append_line(&dir, &line);
}

fn render_record(ctx: &FlashCtx, rec: &Record<'_>) -> String {
    let ts_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let label = std::env::var(PROFILE_LABEL_ENV).unwrap_or_default();
    let mut o = String::with_capacity(2048);
    o.push_str("{\"v\":1,\"run\":");
    json_escape(run_id(), &mut o);
    o.push_str(",\"seq\":");
    o.push_str(&SEQ.fetch_add(1, Ordering::Relaxed).to_string());
    o.push_str(",\"ts_ms\":");
    o.push_str(&ts_ms.to_string());
    o.push_str(",\"label\":");
    json_escape(&label, &mut o);
    o.push_str(&format!(",\"fingerprint\":\"{:016x}\"", plan_fingerprint(rec.targets)));
    o.push_str(",\"op_class\":");
    json_escape(op_class(rec.targets), &mut o);
    o.push_str(",\"mode\":");
    json_escape(mode_str(ctx.cfg().mode), &mut o);
    o.push_str(",\"cost_optimize\":");
    o.push_str(if ctx.cfg().cost_optimize { "true" } else { "false" });
    o.push_str(",\"calibrate\":");
    o.push_str(if ctx.cfg().calibrate { "true" } else { "false" });
    o.push_str(",\"host\":");
    o.push_str(&host_json(ctx));

    // Flat summary with store-unique keys: what the calibration loader
    // reads without a JSON parser (flashr-core takes no serde).
    let (rb, rn, wb, wn) = match rec.io_delta {
        Some(io) => (io.read_bytes, io.read_nanos, io.write_bytes, io.write_nanos),
        None => (0, 0, 0, 0),
    };
    o.push_str(&format!(
        ",\"summary\":{{\"wall_nanos\":{},\"sum_read_bytes\":{rb},\"sum_read_nanos\":{rn},\
         \"sum_write_bytes\":{wb},\"sum_write_nanos\":{wn},\"sum_chunk_bytes\":{},\
         \"sum_compute_nanos\":{},\"sum_pred_read_bytes\":{},\"sum_pred_read_bytes_raw\":{}}}",
        rec.wall_nanos,
        rec.exec_delta.node_chunk_bytes,
        rec.exec_delta.compute_nanos,
        rec.cost.device_read_bytes,
        rec.cost.device_read_bytes_raw,
    ));

    let v = rec.verdict;
    o.push_str(",\"verdict\":{\"source\":");
    json_escape(v.source, &mut o);
    o.push_str(",\"bound\":");
    json_escape(v.bound, &mut o);
    o.push_str(&format!(
        ",\"compute_nanos\":{},\"io_wait_nanos\":{},\"write_stall_nanos\":{},\
         \"idle_nanos\":{},\"stragglers\":{},\"readahead_late\":{},\"passes\":{}}}",
        v.compute_nanos,
        v.io_wait_nanos,
        v.write_stall_nanos,
        v.idle_nanos,
        v.stragglers,
        v.readahead_late,
        v.passes,
    ));

    o.push_str(",\"cost\":");
    o.push_str(&rec.cost.to_json());
    o.push_str(",\"decisions\":[");
    for (i, d) in rec.decisions.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        d.write_json(&mut o);
    }
    o.push_str("],\"exec\":");
    crate::trace::exec_json(rec.exec_delta, &mut o);
    o.push_str(",\"io\":");
    match rec.io_delta {
        Some(io) => crate::trace::io_json(io, &mut o),
        None => o.push_str("null"),
    }
    o.push_str("}\n");
    o
}

fn append_line(dir: &std::path::Path, line: &str) {
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{}.jsonl", run_id()));
    let over_cap = std::fs::metadata(&path)
        .map(|m| m.len() >= MAX_STORE_FILE_BYTES)
        .unwrap_or(false);
    if over_cap {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let res = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if res.is_err() {
        DROPPED.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::FM;

    #[test]
    fn fingerprint_is_structural_not_identity() {
        let ctx = FlashCtx::in_memory();
        let mk = |rows| {
            FM::runif(&ctx, rows, 4, 0.0, 1.0, 7).sqrt().sum().pending_target().unwrap()
        };
        // Distinct node ids, same structure.
        let fa = plan_fingerprint(std::slice::from_ref(&mk(1024)));
        let fb = plan_fingerprint(std::slice::from_ref(&mk(1024)));
        assert_eq!(fa, fb);
        // Different shape, different fingerprint.
        assert_ne!(fa, plan_fingerprint(std::slice::from_ref(&mk(2048))));
    }

    #[test]
    fn op_class_spots_gemm() {
        let ctx = FlashCtx::in_memory();
        let x = FM::runif(&ctx, 512, 4, 0.0, 1.0, 3);
        let sum = x.sum().pending_target().unwrap();
        assert_eq!(op_class(std::slice::from_ref(&sum)), "stream");
        let gram = x.crossprod().pending_target().unwrap();
        assert_eq!(op_class(std::slice::from_ref(&gram)), "gemm");
    }

    #[test]
    fn host_json_has_backend_and_shards() {
        let ctx = FlashCtx::in_memory();
        let h = host_json(&ctx);
        assert!(h.contains("\"backend\":\"none\""), "{h}");
        assert!(h.contains("\"shards\":0"), "{h}");
        assert!(h.contains("\"simd\":"), "{h}");
    }
}
