//! Static analysis over the pending DAG, run before materialization.
//!
//! FlashR evaluates lazily precisely so the whole operation DAG is
//! visible before any data moves (paper §3.4–3.5). This module exploits
//! that window with a three-layer analyzer:
//!
//! 1. **verification** ([`infer`]) — full shape/dtype inference over
//!    every [`crate::dag::NodeKind`]; an inconsistent plan yields a
//!    typed [`PlanError`] naming the offending node *before any
//!    partition is read*, instead of a mid-pass panic;
//! 2. **optimization** ([`cse`]) — hash-consing common-subexpression
//!    elimination (structurally identical subtrees share one node, so
//!    `colMeans(X)` used twice reads `X` once), dead-node pruning, and
//!    redundant-cast / `cbind`-of-one collapsing, as a rewrite producing
//!    an equivalent DAG;
//! 3. **lints** ([`lint`]) — diagnostics for fusion-unfriendly patterns
//!    (reused-but-uncached subtrees, oversized broadcast row vectors,
//!    chained dtype conversions) plus a per-plan memory/I-O footprint
//!    estimate.
//!
//! A fourth layer, **chain compilation** ([`chains`]), runs at
//! plan-build time rather than here: it needs the plan's consumer
//! counts and leaf-resolution map, so `exec::plan` invokes it after the
//! CSE rewrite (gated by [`crate::session::CtxConfig::fuse_chains`]).
//!
//! [`analyze`] runs all three; [`crate::exec::materialize`] calls it on
//! every plan (the rewrite is gated by
//! [`crate::session::CtxConfig::optimize`] for A/B ablation), and
//! [`crate::fm::FM::check`] exposes it without executing anything.

pub mod calibrate;
pub mod chains;
pub mod cost;
pub mod cse;
pub mod infer;
pub mod lint;
pub mod optimize;

use crate::dag::Node;
use crate::exec::Target;
use crate::session::FlashCtx;
use crate::trace::json_escape;
use std::collections::HashSet;
use std::sync::Arc;

/// What went wrong with a plan, structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanErrorKind {
    /// A node's recorded shape disagrees with the shape inferred from
    /// its inputs (mismatched `mapply` dims, bad `inner.prod` inner
    /// dimension, ...).
    ShapeMismatch,
    /// A node's recorded dtype disagrees with the op's output-dtype rule
    /// applied to its inputs.
    DTypeMismatch,
    /// Tall matrices in one DAG do not share the partition dimension.
    PartitionMismatch,
    /// An operand violates an op-specific constraint (column index out
    /// of range, non-associative `inner.prod` combiner, ...).
    BadOperand,
    /// An operation was applied to a sink that must be materialized
    /// first (the `FM::Sink` misuse family).
    NotMaterialized,
    /// A lint named in `FLASHR_DENY_LINTS` fired and the optimizer did
    /// not act on it — the warning is promoted to a hard error.
    LintDenied,
}

impl std::fmt::Display for PlanErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlanErrorKind::ShapeMismatch => "shape-mismatch",
            PlanErrorKind::DTypeMismatch => "dtype-mismatch",
            PlanErrorKind::PartitionMismatch => "partition-mismatch",
            PlanErrorKind::BadOperand => "bad-operand",
            PlanErrorKind::NotMaterialized => "not-materialized",
            PlanErrorKind::LintDenied => "lint-denied",
        };
        f.write_str(s)
    }
}

/// A typed pre-flight diagnostic: the offending node, its operator
/// label, and what the inference pass expected.
#[derive(Debug, Clone)]
pub struct PlanError {
    /// Id of the offending [`Node`].
    pub node: u64,
    /// The node's operator label (`Node::label` vocabulary).
    pub op: String,
    pub kind: PlanErrorKind,
    /// Human-readable detail including the inferred dims/dtypes.
    pub detail: String,
}

impl PlanError {
    pub fn new(node: &Node, kind: PlanErrorKind, detail: String) -> PlanError {
        PlanError { node: node.id, op: node.label(), kind, detail }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan error [{}] at n{} ({}): {}", self.kind, self.node, self.op, self.detail)
    }
}

impl std::error::Error for PlanError {}

impl PlanError {
    /// Hand-rolled JSON object form (for `FM::check_json`).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(128);
        o.push_str("{\"node\":");
        o.push_str(&self.node.to_string());
        o.push_str(",\"op\":");
        json_escape(&self.op, &mut o);
        o.push_str(",\"kind\":");
        json_escape(&self.kind.to_string(), &mut o);
        o.push_str(",\"detail\":");
        json_escape(&self.detail, &mut o);
        o.push('}');
        o
    }
}

/// Lint codes named in the `FLASHR_DENY_LINTS` environment variable
/// (comma/space separated, e.g. `W001,W004`; `all` denies every code).
/// Parsed per call so tests and long-lived sessions see updates.
pub fn denied_lint_codes() -> Vec<String> {
    std::env::var("FLASHR_DENY_LINTS")
        .unwrap_or_default()
        .split([',', ' '])
        .map(|s| s.trim().to_ascii_uppercase())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Promote denied lints to hard [`PlanError`]s. `exempt` holds node ids
/// the optimizer already acted on (an auto-cached W001 node is fixed,
/// not denied). Returns the first offending lint as an error.
pub fn deny_gate(lints: &[Lint], exempt: &HashSet<u64>) -> Result<(), PlanError> {
    let denied = denied_lint_codes();
    if denied.is_empty() {
        return Ok(());
    }
    let deny_all = denied.iter().any(|c| c == "ALL");
    for l in lints {
        if (deny_all || denied.iter().any(|c| c == l.code)) && !exempt.contains(&l.node) {
            return Err(PlanError {
                node: l.node,
                op: l.code.to_string(),
                kind: PlanErrorKind::LintDenied,
                detail: format!("FLASHR_DENY_LINTS promotes {}: {}", l.code, l.message),
            });
        }
    }
    Ok(())
}

/// One diagnostic from the lint pass. Codes are stable and documented in
/// DESIGN.md's lint catalogue (`W001` reused-uncached, `W002`
/// broadcast-rowvec, `W003` cast-chain, `W004` em-rescan-uncached).
#[derive(Debug, Clone)]
pub struct Lint {
    pub code: &'static str,
    /// Id of the node the lint anchors to.
    pub node: u64,
    pub message: String,
}

/// Estimated data movement for one materialization of the plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FootprintEstimate {
    /// Bytes read from materialized leaves (memory or SSDs) per pass.
    pub read_bytes: u64,
    /// Bytes produced by lazy generators per pass.
    pub gen_bytes: u64,
    /// Bytes written for tall outputs (targets and `set.cache`
    /// byproducts) per pass.
    pub write_bytes: u64,
    /// Bytes of intermediate state live per Pcache chunk step — the
    /// working set the cache-fuse engine sizes against L2.
    pub working_set_bytes: u64,
}

/// Everything the analyzer learned about one plan.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Distinct reachable DAG nodes before the rewrite (incl. leaves).
    pub nodes_before: usize,
    /// Distinct reachable nodes after CSE/collapsing.
    pub nodes_after: usize,
    /// Duplicate subtrees merged by hash-consing.
    pub merged: usize,
    /// Redundant casts and single-input `cbind`s collapsed.
    pub collapsed: usize,
    pub lints: Vec<Lint>,
    pub footprint: FootprintEstimate,
}

impl AnalysisReport {
    /// Multi-line human-readable summary (appended to `FM::explain`).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "analysis: {} node(s) -> {} after rewrite ({} merged, {} collapsed)\n",
            self.nodes_before, self.nodes_after, self.merged, self.collapsed
        );
        let f = &self.footprint;
        out.push_str(&format!(
            "footprint: read {} B, gen {} B, write {} B, working set {} B/chunk\n",
            f.read_bytes, f.gen_bytes, f.write_bytes, f.working_set_bytes
        ));
        for l in &self.lints {
            out.push_str(&format!("{} n{}: {}\n", l.code, l.node, l.message));
        }
        out
    }

    /// Hand-rolled JSON (flashr-core takes no serialization dependency);
    /// embedded in bench artifacts and trace exports.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(256);
        o.push_str("{\"nodes_before\":");
        o.push_str(&self.nodes_before.to_string());
        o.push_str(",\"nodes_after\":");
        o.push_str(&self.nodes_after.to_string());
        o.push_str(",\"merged\":");
        o.push_str(&self.merged.to_string());
        o.push_str(",\"collapsed\":");
        o.push_str(&self.collapsed.to_string());
        o.push_str(",\"lints\":[");
        for (i, l) in self.lints.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"code\":");
            json_escape(l.code, &mut o);
            o.push_str(",\"node\":");
            o.push_str(&l.node.to_string());
            o.push_str(",\"message\":");
            json_escape(&l.message, &mut o);
            o.push('}');
        }
        o.push_str("],\"footprint\":{\"read_bytes\":");
        o.push_str(&self.footprint.read_bytes.to_string());
        o.push_str(",\"gen_bytes\":");
        o.push_str(&self.footprint.gen_bytes.to_string());
        o.push_str(",\"write_bytes\":");
        o.push_str(&self.footprint.write_bytes.to_string());
        o.push_str(",\"working_set_bytes\":");
        o.push_str(&self.footprint.working_set_bytes.to_string());
        o.push_str("}}");
        o
    }
}

/// The analyzer's full output: the report plus the rewritten targets the
/// engine should run and the cache bookkeeping the rewrite requires.
pub struct Analysis {
    pub report: AnalysisReport,
    /// Targets re-rooted on the canonical (rewritten) DAG, slot for slot.
    pub targets: Vec<Target>,
    /// `(original, canonical)` pairs for nodes with `set.cache` whose
    /// canonical representative differs: after materialization the
    /// canonical node's installed cache must be copied back so the
    /// user's handle (the original node) becomes an effective leaf.
    pub cache_pairs: Vec<(Arc<Node>, Arc<Node>)>,
}

/// Distinct reachable nodes (incl. effective leaves, not descending
/// past them) from a set of targets.
pub(crate) fn count_nodes(targets: &[Target]) -> usize {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack: Vec<Arc<Node>> = targets
        .iter()
        .map(|t| match t {
            Target::Sink(n) | Target::Tall { node: n, .. } => n.clone(),
        })
        .collect();
    while let Some(node) = stack.pop() {
        if !seen.insert(node.id) {
            continue;
        }
        if !node.is_effective_leaf() {
            for c in node.children() {
                stack.push(c.clone());
            }
        }
    }
    seen.len()
}

/// Run the full pipeline: verify → rewrite → lint.
///
/// Verification failures return the [`PlanError`]; the rewrite and lint
/// layers always run on a verified DAG. The caller decides whether to
/// execute the rewritten targets (`CtxConfig::optimize`) or the
/// originals.
pub fn analyze(ctx: &FlashCtx, targets: &[Target]) -> Result<Analysis, PlanError> {
    infer::verify(targets)?;
    let rw = cse::rewrite(targets);
    let (lints, footprint) = lint::run(ctx, &rw.targets);
    Ok(Analysis {
        report: AnalysisReport {
            nodes_before: rw.nodes_before,
            nodes_after: rw.nodes_after,
            merged: rw.merged,
            collapsed: rw.collapsed,
            lints,
            footprint,
        },
        targets: rw.targets,
        cache_pairs: rw.cache_pairs,
    })
}
