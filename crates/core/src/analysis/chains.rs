//! Map-chain discovery: find maximal single-consumer chains of
//! element-wise `Map` nodes and compile them into
//! [`FusedMapKernel`]s (paper §3.4–3.5; the compiled counterpart of the
//! interpreter in `exec::fused`).
//!
//! A node is a *fusible link* when it is an element-wise `Map` whose
//! spine input (operand 0) is a tall node and whose other operand, if
//! any, is a scalar, a row vector, or an **already materialized** chunk
//! source (leaf / generator / cached node / prior-pass result). A link
//! is *interior* to a chain when its only consumer is the fusible node
//! above it and it is not independently wanted (`set.cache`, tall
//! target, sink input — all of which show up as extra consumer counts).
//! Everything else — `Select`, `Bind`, `MatMul`, cumulative ops,
//! aggregations, multi-consumer nodes — is a fusion barrier; chains
//! simply stop there and the interpreter path takes over.
//!
//! Discovery runs at plan-build time, after the CSE rewrite
//! ([`crate::analysis::cse`]) has merged duplicate subtrees: CSE can
//! therefore *shorten* chains (a shared `sqrt(x+1)` has two consumers
//! and becomes a barrier), which is the correct trade — the shared
//! intermediate is computed once instead of twice inline.

use crate::dag::{MapInput, MapOp, Node, NodeKind};
use crate::dtype::Scalar;
use crate::ops::fused_map::{ChainLink, ChainOpSpec, ChainOperand, FusedMapKernel};
use crate::ops::{BinaryOp, UnaryOp};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A discovered chain, compiled and ready to execute: the kernel plus
/// the inputs the executor must resolve (spine base + auxiliary chunk
/// operands, in kernel aux-index order).
pub struct CompiledChain {
    pub kernel: FusedMapKernel,
    /// The chain's spine input (evaluated like any other node).
    pub base: Arc<Node>,
    /// Materialized chunk operands of `BinChunk` links.
    pub aux: Vec<Arc<Node>>,
    /// Number of fused ops (≥ 2).
    pub len: usize,
    /// Ids of the chain's interior nodes (never materialized).
    pub interior: Vec<u64>,
    /// Bytes of intermediate chunks skipped per matrix row — the sum of
    /// `ncols × dtype.size` over interior nodes.
    pub saved_bytes_per_row: u64,
    /// Display label, e.g. `chain[mapply:Add->sapply:Sqrt]`.
    pub label: String,
}

/// The discovery result the plan stores.
#[derive(Default)]
pub struct ChainSet {
    /// Chain-root node id → compiled chain.
    pub chains: HashMap<u64, CompiledChain>,
    /// All interior node ids (for consumer-counter fixup and memo skip).
    pub interior: HashSet<u64>,
}

/// One fusible link, before aux-index assignment.
enum RawOp {
    Unary(UnaryOp),
    Cast,
    BinScalar { op: BinaryOp, swapped: bool, s: Scalar },
    BinRowVec { op: BinaryOp, swapped: bool, v: Arc<Vec<f64>> },
    BinChunk { op: BinaryOp, swapped: bool, aux: Arc<Node> },
}

/// Classify `node` as a fusible link: returns the micro-op and the
/// spine input it applies to, or `None` if the node is a barrier.
fn link_of(node: &Node, is_mat: &dyn Fn(&Node) -> bool) -> Option<(RawOp, Arc<Node>)> {
    if is_mat(node) {
        return None;
    }
    let NodeKind::Map { op, inputs } = &node.kind else { return None };
    let MapInput::Node(spine) = inputs.first()? else { return None };
    let raw = match op {
        MapOp::Unary(u) => RawOp::Unary(*u),
        MapOp::Cast(_) => RawOp::Cast,
        MapOp::Binary { op, swapped } => match inputs.get(1)? {
            MapInput::Scalar(s) => RawOp::BinScalar { op: *op, swapped: *swapped, s: *s },
            MapInput::RowVec(v) => RawOp::BinRowVec { op: *op, swapped: *swapped, v: v.clone() },
            MapInput::Node(b) if is_mat(b) => {
                RawOp::BinChunk { op: *op, swapped: *swapped, aux: b.clone() }
            }
            // A lazily computed second operand is a barrier: strip
            // execution can only stream one spine.
            MapInput::Node(_) => return None,
        },
        // Shape-changing / non-element-wise maps are barriers.
        MapOp::MatMul(_)
        | MapOp::InnerProd { .. }
        | MapOp::Select(_)
        | MapOp::Bind
        | MapOp::GroupCols { .. } => return None,
    };
    Some((raw, spine.clone()))
}

/// Passes 1–2 of discovery without compiling anything: the set of node
/// ids fusion would swallow as chain interiors. The cost model
/// ([`crate::analysis::cost`]) prices plans with this before the real
/// plan is built.
pub fn fusible_interiors(
    nodes: &[Arc<Node>],
    consumers: &HashMap<u64, usize>,
    is_mat: &dyn Fn(&Node) -> bool,
    barriers: &HashSet<u64>,
) -> HashSet<u64> {
    let mut fusible: HashMap<u64, (RawOp, Arc<Node>)> = HashMap::new();
    for n in nodes {
        if let Some(link) = link_of(n, is_mat) {
            fusible.insert(n.id, link);
        }
    }
    interiors_of(nodes, &fusible, consumers, barriers)
}

/// Pass 2: interior nodes — fusible, sole-consumer, not wanted
/// independently and not declared a barrier. `consumers` counts every
/// edge (spine + aux) plus one extra for tall targets, sink
/// registrations and `set.cache` byproducts, so `== 1` certifies "only
/// my chain parent reads me".
fn interiors_of(
    nodes: &[Arc<Node>],
    fusible: &HashMap<u64, (RawOp, Arc<Node>)>,
    consumers: &HashMap<u64, usize>,
    barriers: &HashSet<u64>,
) -> HashSet<u64> {
    let mut interior: HashSet<u64> = HashSet::new();
    for n in nodes {
        if !fusible.contains_key(&n.id) {
            continue;
        }
        let (_, spine) = &fusible[&n.id];
        if fusible.contains_key(&spine.id)
            && !spine.cache_requested()
            && !barriers.contains(&spine.id)
            && consumers.get(&spine.id).copied().unwrap_or(0) == 1
        {
            interior.insert(spine.id);
        }
    }
    interior
}

/// Discover and compile all chains among `nodes` (the plan's reachable
/// tall nodes). `consumers` is the plan's consumer-count map (every DAG
/// edge plus target/cache registrations); `is_mat` says whether a node
/// already has materialized data this pass can read; `barriers` are
/// node ids the optimizer has pinned out of fusion (they materialize,
/// e.g. as auto-cache byproducts, so chains stop at them).
pub fn discover(
    nodes: &[Arc<Node>],
    consumers: &HashMap<u64, usize>,
    is_mat: &dyn Fn(&Node) -> bool,
    barriers: &HashSet<u64>,
) -> ChainSet {
    // Pass 1: which nodes are fusible links at all?
    let mut fusible: HashMap<u64, (RawOp, Arc<Node>)> = HashMap::new();
    for n in nodes {
        if let Some(link) = link_of(n, is_mat) {
            fusible.insert(n.id, link);
        }
    }

    // Pass 2.
    let interior = interiors_of(nodes, &fusible, consumers, barriers);

    // Pass 3: assemble chains from each root (fusible, not interior),
    // walking the spine down through interior links.
    let mut chains: HashMap<u64, CompiledChain> = HashMap::new();
    for n in nodes {
        if !fusible.contains_key(&n.id) || interior.contains(&n.id) || chains.contains_key(&n.id) {
            continue;
        }
        // Root → base order first: walk the spine down while the child
        // is interior (interior nodes are fusible by construction).
        let mut spine_nodes: Vec<&Arc<Node>> = vec![n];
        loop {
            let cur_id = spine_nodes.last().unwrap().id;
            let spine = &fusible[&cur_id].1;
            if !interior.contains(&spine.id) {
                break;
            }
            spine_nodes.push(spine);
        }
        if spine_nodes.len() < 2 {
            continue; // single ops stay on the interpreter path
        }

        // Compile bottom-up (base → root).
        let mut links: Vec<ChainLink> = Vec::with_capacity(spine_nodes.len());
        let mut aux: Vec<Arc<Node>> = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        let mut saved = 0u64;
        let mut interior_ids: Vec<u64> = Vec::new();
        let base = fusible[&spine_nodes.last().unwrap().id].1.clone();
        for link_node in spine_nodes.iter().rev() {
            let (raw, spine) = &fusible[&link_node.id];
            let op = match raw {
                RawOp::Unary(u) => ChainOpSpec::Unary(*u),
                RawOp::Cast => ChainOpSpec::Cast,
                RawOp::BinScalar { op, swapped, s } => ChainOpSpec::Binary {
                    op: *op,
                    swapped: *swapped,
                    operand: ChainOperand::Scalar(*s),
                },
                RawOp::BinRowVec { op, swapped, v } => ChainOpSpec::Binary {
                    op: *op,
                    swapped: *swapped,
                    operand: ChainOperand::RowVec(v.clone()),
                },
                RawOp::BinChunk { op, swapped, aux: a } => {
                    aux.push(a.clone());
                    ChainOpSpec::Binary {
                        op: *op,
                        swapped: *swapped,
                        operand: ChainOperand::Chunk {
                            aux: aux.len() - 1,
                            recycle: a.ncols == 1,
                        },
                    }
                }
            };
            links.push(ChainLink { op, in_dtype: spine.dtype, out_dtype: link_node.dtype });
            labels.push(link_node.label());
            if link_node.id != n.id {
                // Every non-root chain member is interior.
                interior_ids.push(link_node.id);
                saved += (link_node.ncols * link_node.dtype.size()) as u64;
            }
        }

        let label = format!("chain[{}]", labels.join("->"));
        chains.insert(
            n.id,
            CompiledChain {
                kernel: FusedMapKernel::compile(&links),
                base,
                aux,
                len: links.len(),
                interior: interior_ids,
                saved_bytes_per_row: saved,
                label,
            },
        );
    }

    // Every interior node has a fusible parent, and the walk from that
    // parent's root collects it, so `interior` is exactly the union of
    // the per-chain interior lists.
    debug_assert_eq!(
        chains.values().map(|c| c.interior.len()).sum::<usize>(),
        interior.len(),
        "orphaned interior node"
    );

    ChainSet { chains, interior }
}
