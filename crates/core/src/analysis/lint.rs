//! Fusion lints and the per-plan footprint estimate.
//!
//! Lints flag patterns the paper warns about — work the fused engine
//! cannot make cheap:
//!
//! * **W001** `reused-uncached`: an interior node feeds two or more
//!   consumers but has no `set.cache`. Inside one fused pass the Pcache
//!   memo shares the chunk, but every *later* `materialize()` call will
//!   recompute the whole subtree; `set.cache` turns it into a leaf.
//! * **W002** `broadcast-rowvec`: an `mapply` broadcast row vector wider
//!   than [`BROADCAST_LINT_LEN`] — each worker walks the whole vector
//!   per Pcache chunk, so oversized vectors evict the chunk from L2 and
//!   defeat cache fusion.
//! * **W003** `cast-chain`: a cast feeding a cast that survived the
//!   rewrite, i.e. the inner conversion is lossy, so the chain both
//!   truncates data and doubles per-element conversion work.
//! * **W004** `em-rescan-uncached`: in eager mode the plan reads an
//!   external-memory leaf in two or more passes, but the configured
//!   page-cache budget is smaller than that leaf, so every pass pays
//!   full device I/O. Raise the cache/memory budget or switch to a
//!   fused mode (one pass).
//!
//! The footprint estimate mirrors the plan's sizing arithmetic
//! ([`crate::part::pcache_rows`]): bytes read from materialized leaves,
//! bytes produced by generators, bytes written by tall outputs, and the
//! per-chunk working set the cache-fuse engine keeps L2-resident.

use super::{FootprintEstimate, Lint};
use crate::dag::{MapInput, MapOp, Node, NodeKind};
use crate::exec::Target;
use crate::part::pcache_rows;
use crate::session::{ExecMode, FlashCtx};
use std::collections::HashMap;
use std::sync::Arc;

/// Broadcast row vectors longer than this trigger W002.
pub const BROADCAST_LINT_LEN: usize = 16 * 1024;

fn mat_bytes(node: &Node) -> u64 {
    node.nrows * node.ncols as u64 * node.dtype.size() as u64
}

/// Run the lint pass over (already canonicalized) targets and estimate
/// the plan's data movement.
pub fn run(ctx: &FlashCtx, targets: &[Target]) -> (Vec<Lint>, FootprintEstimate) {
    let mut lints = Vec::new();
    let mut footprint = FootprintEstimate::default();

    // Reachable nodes, deduped, not descending past materialized data —
    // plus the consumer counts the fused pass would see (DAG parents and
    // target/sink reads, mirroring `Plan::build`).
    let mut order: Vec<Arc<Node>> = Vec::new();
    let mut consumers: HashMap<u64, usize> = HashMap::new();
    let mut stack: Vec<Arc<Node>> = Vec::new();
    for t in targets {
        match t {
            Target::Sink(n) => {
                for c in n.children() {
                    *consumers.entry(c.id).or_default() += 1;
                }
                stack.push(n.clone());
            }
            Target::Tall { node, .. } => {
                *consumers.entry(node.id).or_default() += 1;
                footprint.write_bytes += mat_bytes(node);
                stack.push(node.clone());
            }
        }
    }
    let mut seen: HashMap<u64, ()> = HashMap::new();
    let mut row_bytes_total = 0usize;
    while let Some(node) = stack.pop() {
        if seen.contains_key(&node.id) {
            continue;
        }
        seen.insert(node.id, ());
        if !node.is_sink() {
            row_bytes_total += node.ncols * node.dtype.size();
        }
        if node.is_effective_leaf() {
            if node.cached().is_some() || matches!(node.kind, NodeKind::Leaf(_)) {
                footprint.read_bytes += mat_bytes(&node);
            } else {
                footprint.gen_bytes += mat_bytes(&node);
            }
            order.push(node);
            continue;
        }
        if node.cache_requested() && !node.is_sink() {
            footprint.write_bytes += mat_bytes(&node);
        }
        for c in node.children() {
            if !node.is_sink() {
                *consumers.entry(c.id).or_default() += 1;
            }
            stack.push(c.clone());
        }
        order.push(node);
    }

    let part_rows = ctx.cfg().rows_per_part as usize;
    footprint.working_set_bytes = match ctx.cfg().mode {
        ExecMode::CacheFuse => {
            (row_bytes_total * pcache_rows(ctx.cfg().pcache_bytes, row_bytes_total, part_rows))
                as u64
        }
        ExecMode::MemFuse | ExecMode::Eager => (row_bytes_total * part_rows) as u64,
    };

    for node in &order {
        if node.is_effective_leaf() {
            // W004: eager mode runs one pass per operation, so a leaf
            // with N consumers is read N times; if it cannot fit in the
            // page cache those are all device reads.
            if ctx.cfg().mode == ExecMode::Eager
                && consumers.get(&node.id).copied().unwrap_or(0) >= 2
            {
                let em = match (&node.kind, node.cached()) {
                    (NodeKind::Leaf(m), _) => m.is_em(),
                    (_, Some(m)) => m.is_em(),
                    _ => false,
                };
                let cache_cap = ctx.safs().map(|s| s.page_cache_capacity()).unwrap_or(0);
                if em && mat_bytes(node) > cache_cap {
                    lints.push(Lint {
                        code: "W004",
                        node: node.id,
                        message: format!(
                            "{} ({} bytes, external memory) is read by {} eager passes but the page-cache budget is {} bytes; every pass re-reads the device (raise the memory budget or use a fused mode)",
                            node.label(),
                            mat_bytes(node),
                            consumers[&node.id],
                            cache_cap
                        ),
                    });
                }
            }
            continue;
        }
        if !node.is_sink()
            && !node.cache_requested()
            && consumers.get(&node.id).copied().unwrap_or(0) >= 2
        {
            lints.push(Lint {
                code: "W001",
                node: node.id,
                message: format!(
                    "{} feeds {} consumers but is not cached; later plans will recompute it (consider set.cache)",
                    node.label(),
                    consumers[&node.id]
                ),
            });
        }
        if let NodeKind::Map { op, inputs } = &node.kind {
            for i in inputs {
                if let MapInput::RowVec(v) = i {
                    if v.len() > BROADCAST_LINT_LEN {
                        lints.push(Lint {
                            code: "W002",
                            node: node.id,
                            message: format!(
                                "broadcast row vector of {} entries exceeds {} and will thrash the Pcache",
                                v.len(),
                                BROADCAST_LINT_LEN
                            ),
                        });
                    }
                }
            }
            if let MapOp::Cast(to) = op {
                if let Some(MapInput::Node(input)) = inputs.first() {
                    if let NodeKind::Map { op: MapOp::Cast(mid), inputs: grand } = &input.kind {
                        if !input.is_effective_leaf() {
                            if let Some(MapInput::Node(base)) = grand.first() {
                                lints.push(Lint {
                                    code: "W003",
                                    node: node.id,
                                    message: format!(
                                        "lossy cast chain {} -> {} -> {}: the intermediate conversion truncates and doubles per-element work",
                                        base.dtype, mid, to
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    lints.sort_by(|a, b| a.code.cmp(b.code).then(a.node.cmp(&b.node)));
    (lints, footprint)
}
