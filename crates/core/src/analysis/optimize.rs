//! The cost-based plan optimizer: decisions, not warnings.
//!
//! Consumes the [`super::cost`] estimate plus the lint population and
//! turns the analyzer's advisory output into concrete plan changes,
//! gated by [`crate::session::CtxConfig::cost_optimize`]:
//!
//! * **auto-cache** (W001 → action): reused subtrees become `set.cache`
//!   byproducts of the current pass when the [`MemGovernor`]'s budget
//!   admits them. Candidates feeding a gemm pass are admitted first
//!   (a crossprod re-scans its tall operand, so caching it saves a full
//!   subtree recomputation), then by subtree bytes saved.
//! * **fusion barrier**: an auto-cached node that chain fusion would
//!   have swallowed as an interior link is forced to materialize — the
//!   matmul-aware fusion boundary (don't fuse a chain into a node a
//!   gemm pass will re-scan).
//! * **pcache step**: when fusion removes interior rows from the live
//!   working set, the chunk height is re-sized over the *live* row
//!   bytes. Applied only to sink-free plans: tall outputs are
//!   chunk-height-invariant bit-for-bit, while sink accumulation order
//!   is not.
//! * **readahead depth**: with external-memory leaves present, the
//!   SAFS readahead window is clamped so one window fits in half the
//!   page cache (deep readahead over fat partitions evicts the hot
//!   set it is trying to build).
//! * **pass order** (eager mode): targets are grouped so consecutive
//!   per-op passes share leaves, maximizing page-cache reuse between
//!   passes.
//!
//! Every decision records its predicted bytes; the executor scrapes the
//! actual bytes post-pass and the pair lands in pass profiles, trace
//! spans and the bench artifacts (`optimizer` section), so mispredicted
//! decisions are visible, not silent.
//!
//! [`MemGovernor`]: crate::session::MemGovernor

use crate::exec::Target;
use crate::session::{ExecMode, FlashCtx};
use crate::trace::json_escape;
use std::collections::{HashMap, HashSet};

use super::cost::CostEstimate;

/// What kind of plan change a [`Decision`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// Cache a reused subtree as a byproduct of this pass.
    AutoCache,
    /// Keep a node out of chain fusion so its chunk materializes.
    FusionBarrier,
    /// Override the Pcache chunk height for this plan.
    PcacheStep,
    /// Clamp the SAFS readahead window for this plan.
    Readahead,
    /// Reorder eager per-target passes for leaf sharing.
    PassOrder,
    /// Log-only calibration hint: the critical-path analyzer's
    /// compute-vs-I/O verdict for the pass, recorded so the byte-based
    /// cost model's predictions can be read against where the wall
    /// clock actually went. Changes no plan.
    Calibration,
}

impl DecisionKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            DecisionKind::AutoCache => "auto-cache",
            DecisionKind::FusionBarrier => "fusion-barrier",
            DecisionKind::PcacheStep => "pcache-step",
            DecisionKind::Readahead => "readahead",
            DecisionKind::PassOrder => "pass-order",
            DecisionKind::Calibration => "calibration",
        }
    }
}

/// One optimizer decision: what was changed, the bytes the cost model
/// predicted for it, and (filled post-pass) the bytes actually observed.
#[derive(Debug, Clone)]
pub struct Decision {
    pub kind: DecisionKind,
    /// The node the decision anchors to (0 for plan-level decisions).
    pub node: u64,
    pub detail: String,
    /// Predicted bytes: pinned bytes for auto-cache, chunk bytes for
    /// step/barrier decisions, device-read bytes for readahead and pass
    /// ordering.
    pub predicted_bytes: u64,
    /// Scraped after the pass from `ExecStats`/`IoStats` deltas; `None`
    /// until then.
    pub actual_bytes: Option<u64>,
}

impl Decision {
    /// Append this decision as a JSON object to `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"kind\":");
        json_escape(self.kind.as_str(), out);
        out.push_str(",\"node\":");
        out.push_str(&self.node.to_string());
        out.push_str(",\"detail\":");
        json_escape(&self.detail, out);
        out.push_str(",\"predicted_bytes\":");
        out.push_str(&self.predicted_bytes.to_string());
        out.push_str(",\"actual_bytes\":");
        match self.actual_bytes {
            Some(b) => out.push_str(&b.to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
    }
}

/// The optimizer's output: the decision log plus the concrete plan
/// inputs the executor applies.
#[derive(Debug, Clone, Default)]
pub struct OptimizerOutcome {
    pub decisions: Vec<Decision>,
    /// Node ids to materialize as `set.cache` byproducts of this pass.
    pub auto_cache: HashSet<u64>,
    /// Node ids chain discovery must not swallow as interiors.
    pub fuse_barriers: HashSet<u64>,
    /// Pcache chunk-height override (rows), when bit-safe and larger.
    pub pcache_step: Option<usize>,
    /// Readahead-window clamp (partitions), applied for this pass only.
    pub readahead_parts: Option<u64>,
    /// Permutation of target indices for the eager engine (`order[i]` is
    /// the original index run in position `i`); `None` when the natural
    /// order already groups leaf sharers.
    pub order: Option<Vec<usize>>,
}

/// Decide. `cost` must have been estimated over the same (rewritten)
/// `targets` the executor will run.
pub fn plan(ctx: &FlashCtx, targets: &[Target], cost: &CostEstimate) -> OptimizerOutcome {
    let mut out = OptimizerOutcome::default();

    // --- auto-cache (W001 → action), governor-gated -------------------
    let gov = ctx.governor();
    let mut pending_bytes = 0u64;
    let mut live_rows_added = 0usize;
    for cand in &cost.reuse {
        if !gov.would_admit(pending_bytes.saturating_add(cand.bytes)) {
            continue;
        }
        pending_bytes += cand.bytes;
        out.auto_cache.insert(cand.node.id);
        out.decisions.push(Decision {
            kind: DecisionKind::AutoCache,
            node: cand.node.id,
            detail: format!(
                "{} feeds {} consumer(s){}; caching {} B saves {} B per re-materialization",
                cand.node.label(),
                cand.consumers,
                if cand.feeds_gemm { " incl. a gemm pass" } else { "" },
                cand.bytes,
                cand.subtree_bytes
            ),
            predicted_bytes: cand.bytes,
            actual_bytes: None,
        });
        if cand.would_fuse {
            // The chunk must materialize to be cached: force a fusion
            // barrier. This is also the matmul-aware boundary — the
            // gemm-fed candidates were admitted first above.
            out.fuse_barriers.insert(cand.node.id);
            live_rows_added += cand.row_bytes;
            out.decisions.push(Decision {
                kind: DecisionKind::FusionBarrier,
                node: cand.node.id,
                detail: format!(
                    "{} would fuse as a chain interior; kept materialized for caching{}",
                    cand.node.label(),
                    if cand.feeds_gemm { " (gemm re-scan)" } else { "" }
                ),
                predicted_bytes: cand.bytes,
                actual_bytes: None,
            });
        }
    }

    // --- pcache step over live rows -----------------------------------
    // Only for sink-free cache-fuse plans: tall outputs are bit-invariant
    // under the chunk height, sink float accumulation is not. Auto-cached
    // former interiors hold live chunks again, so their rows go back into
    // the budget before comparing.
    if cost.mode == ExecMode::CacheFuse
        && ctx.cfg().fuse_chains
        && !cost.has_sink
        && live_rows_added < cost.row_bytes_total.saturating_sub(cost.row_bytes_live)
    {
        let live = cost.row_bytes_live + live_rows_added;
        let part_rows = ctx.cfg().rows_per_part as usize;
        let step = crate::part::pcache_rows(ctx.cfg().pcache_bytes, live, part_rows);
        if step > cost.pcache_step {
            out.pcache_step = Some(step);
            out.decisions.push(Decision {
                kind: DecisionKind::PcacheStep,
                node: 0,
                detail: format!(
                    "chain interiors hold no live chunk: step {} -> {} rows ({} of {} row bytes live)",
                    cost.pcache_step, step, live, cost.row_bytes_total
                ),
                predicted_bytes: cost.chunk_bytes,
                actual_bytes: None,
            });
        }
    }

    // --- readahead clamp ----------------------------------------------
    if cost.em_leaves > 0 && cost.cache_capacity > 0 && cost.max_em_part_bytes > 0 {
        if let Some(safs) = ctx.safs() {
            let current = safs.readahead_parts();
            let fit = ((cost.cache_capacity / 2) / cost.max_em_part_bytes).max(1);
            if fit < current {
                out.readahead_parts = Some(fit);
                out.decisions.push(Decision {
                    kind: DecisionKind::Readahead,
                    node: 0,
                    detail: format!(
                        "readahead {} -> {} parts so one window fits half the {} B cache \
                         (largest EM partition {} B)",
                        current, fit, cost.cache_capacity, cost.max_em_part_bytes
                    ),
                    predicted_bytes: cost.device_read_bytes,
                    actual_bytes: None,
                });
            }
        }
    }

    // --- eager pass ordering ------------------------------------------
    if cost.mode == ExecMode::Eager && targets.len() >= 2 {
        if let Some(order) = leaf_sharing_order(targets) {
            out.decisions.push(Decision {
                kind: DecisionKind::PassOrder,
                node: 0,
                detail: format!(
                    "grouped {} targets by shared leaves: order {:?}",
                    targets.len(),
                    order
                ),
                predicted_bytes: cost.device_read_bytes,
                actual_bytes: None,
            });
            out.order = Some(order);
        }
    }

    out
}

/// Stable grouping of target indices by leaf-set signature: targets
/// sharing the same materialized leaves run back to back, so the page
/// cache still holds their partitions. Returns `None` when the natural
/// order is already grouped.
fn leaf_sharing_order(targets: &[Target]) -> Option<Vec<usize>> {
    let signatures: Vec<Vec<u64>> = targets
        .iter()
        .map(|t| {
            let root = match t {
                Target::Sink(n) | Target::Tall { node: n, .. } => n,
            };
            let mut leaves: Vec<u64> = Vec::new();
            let mut seen: HashSet<u64> = HashSet::new();
            let mut stack = vec![root.clone()];
            while let Some(node) = stack.pop() {
                if !seen.insert(node.id) {
                    continue;
                }
                if node.is_effective_leaf() {
                    leaves.push(node.id);
                    continue;
                }
                for c in node.children() {
                    stack.push(c.clone());
                }
            }
            leaves.sort_unstable();
            leaves
        })
        .collect();

    // First-seen order of each signature; stable within a group.
    let mut group_of: HashMap<&[u64], usize> = HashMap::new();
    for sig in &signatures {
        let next = group_of.len();
        group_of.entry(sig.as_slice()).or_insert(next);
    }
    let mut order: Vec<usize> = (0..targets.len()).collect();
    order.sort_by_key(|&i| group_of[signatures[i].as_slice()]);
    if order.iter().enumerate().all(|(pos, &i)| pos == i) {
        None
    } else {
        Some(order)
    }
}
