//! Byte-movement cost model over the inferred plan.
//!
//! The paper's thesis is that the dominant cost of large-scale R is
//! bytes moved through the SSD/page-cache/L2 hierarchy, not FLOPs
//! (§3.5, Fig. 10). This module prices a verified, rewritten target set
//! in those terms *before* execution, mirroring the sizing arithmetic
//! the plan builder ([`crate::exec::Plan`]) and the fused engine
//! actually use:
//!
//! * **chunk bytes** — bytes of Pcache chunks the pass will freshly
//!   produce (the quantity `ExecStats::node_chunk_bytes` counts): one
//!   `mat_bytes` per reachable non-sink node, minus chain interiors
//!   when `fuse_chains` is on (fused links never materialize).
//! * **device read bytes** — bytes read from the SSD array: external-
//!   memory leaves, multiplied by their consumer count under the eager
//!   engine when the leaf exceeds the page-cache capacity (the W004
//!   re-scan hazard, now priced instead of only warned about).
//! * **pcache step** — the chunk height the cache-fuse engine would
//!   pick, plus the larger step available if chain interiors are
//!   excluded from the row-byte budget (they hold no live chunk).
//! * **reuse candidates** — the W001 population (interior nodes with
//!   ≥ 2 consumers and no `set.cache`), priced by the subtree bytes a
//!   later re-materialization would move again, and flagged when a gemm
//!   (crossprod / matmul / inner-product) consumes them — the
//!   [`super::optimize`] pass turns these into auto-cache decisions.
//!
//! The estimate is deliberately an *upper bound* on reads (a warm page
//! cache can serve any of it from RAM); the property tests assert a
//! bounded factor against cold-run `ExecStats`/`IoStats` counters, not
//! equality.

use crate::dag::{MapInput, MapOp, Node, NodeKind};
use crate::exec::Target;
use crate::part::pcache_rows;
use crate::session::{ExecMode, FlashCtx};
use crate::trace::json_escape;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use super::{calibrate, chains};

pub(crate) fn mat_bytes(node: &Node) -> u64 {
    node.nrows * node.ncols as u64 * node.dtype.size() as u64
}

/// Nanos to move `bytes` at `gib_s` GiB/s (0 for a degenerate rate).
fn price_nanos(bytes: u64, gib_s: f64) -> u64 {
    if gib_s <= 0.0 {
        return 0;
    }
    (bytes as f64 / (gib_s * (1u64 << 30) as f64) * 1e9) as u64
}

/// A reused-but-uncached subtree the optimizer may decide to cache
/// (the priced form of a W001 lint).
#[derive(Debug, Clone)]
pub struct ReuseCandidate {
    pub node: Arc<Node>,
    /// Plan-level consumer count (DAG parents + target/sink reads).
    pub consumers: usize,
    /// Bytes the cached matrix would occupy (what the governor pins).
    pub bytes: u64,
    /// The candidate's per-row footprint (`ncols × dtype.size`).
    pub row_bytes: usize,
    /// Bytes of the candidate's subtree (itself, interior nodes and
    /// leaves) — what a later re-materialization moves again.
    pub subtree_bytes: u64,
    /// Whether a gemm consumer (crossprod / matmul / inner-product)
    /// reads this node: a gemm pass re-scans its tall operand, so these
    /// candidates are cached first.
    pub feeds_gemm: bool,
    /// Whether chain fusion would make this node a chain interior;
    /// caching it forces a fusion barrier (the chunk must materialize).
    pub would_fuse: bool,
}

/// The byte-movement estimate for one target set under the current
/// context configuration.
#[derive(Debug, Clone)]
pub struct CostEstimate {
    pub mode: ExecMode,
    /// Chunk height the plan builder would pick (rows).
    pub pcache_step: usize,
    /// Chunk height available when chain interiors are excluded from
    /// the row-byte budget (≥ `pcache_step`; equal without fusion).
    pub pcache_step_live: usize,
    /// Per-row bytes across all reachable non-sink nodes.
    pub row_bytes_total: usize,
    /// Per-row bytes excluding chain interiors.
    pub row_bytes_live: usize,
    /// Predicted `ExecStats::node_chunk_bytes` for the pass.
    pub chunk_bytes: u64,
    /// Predicted device (SSD) read bytes, cold cache.
    pub device_read_bytes: u64,
    /// Bytes read from materialized leaves (memory or SSD), once each.
    pub leaf_read_bytes: u64,
    /// Bytes produced by lazy generators.
    pub gen_bytes: u64,
    /// Bytes written for tall targets and existing `set.cache`
    /// byproducts.
    pub write_bytes: u64,
    /// Installed page-cache capacity (0 without a SAFS cache).
    pub cache_capacity: u64,
    /// Largest per-partition byte count among EM leaves (sizes the
    /// readahead decision).
    pub max_em_part_bytes: u64,
    /// Number of external-memory leaves in the plan.
    pub em_leaves: usize,
    /// Whether any target is a sink (sink accumulation order depends on
    /// the chunk step, so step overrides are only bit-safe without one).
    pub has_sink: bool,
    pub reuse: Vec<ReuseCandidate>,
    /// The model's cold-cache device-read upper bound, before the
    /// calibration loop's absorption factor. Equal to
    /// `device_read_bytes` when calibration is off or unmatched.
    pub device_read_bytes_raw: u64,
    /// Whether fitted history constants re-priced this estimate
    /// ([`crate::session::CtxConfig::calibrate`] with matching records).
    pub calibrated: bool,
    /// Predicted device-read nanos under the (calibrated or default)
    /// read rate.
    pub predicted_read_nanos: u64,
    /// Predicted device-write nanos.
    pub predicted_write_nanos: u64,
    /// Predicted compute nanos for the plan's op class over the chunk
    /// and generator bytes.
    pub predicted_compute_nanos: u64,
    /// Predicted wall nanos: `max(io, compute)` — the fused engine
    /// overlaps I/O behind compute (paper Fig. 10), so the slower side
    /// bounds the pass.
    pub predicted_wall_nanos: u64,
}

/// Price `targets` (already canonicalized by the CSE rewrite) under the
/// context's mode, Pcache budget, page-cache capacity and fusion
/// setting.
pub fn estimate(ctx: &FlashCtx, targets: &[Target]) -> CostEstimate {
    // Reachability + consumer counts, mirroring `Plan::build` (sink
    // children and tall targets count one extra read).
    let mut order: Vec<Arc<Node>> = Vec::new();
    let mut consumers: HashMap<u64, usize> = HashMap::new();
    let mut tall_targets: HashSet<u64> = HashSet::new();
    let mut has_sink = false;
    let mut stack: Vec<Arc<Node>> = Vec::new();
    for t in targets {
        match t {
            Target::Sink(n) => {
                has_sink = true;
                for c in n.children() {
                    *consumers.entry(c.id).or_default() += 1;
                }
                stack.push(n.clone());
            }
            Target::Tall { node, .. } => {
                *consumers.entry(node.id).or_default() += 1;
                tall_targets.insert(node.id);
                stack.push(node.clone());
            }
        }
    }
    let mut seen: HashSet<u64> = HashSet::new();
    while let Some(node) = stack.pop() {
        if !seen.insert(node.id) {
            continue;
        }
        if !node.is_effective_leaf() {
            for c in node.children() {
                if !node.is_sink() {
                    *consumers.entry(c.id).or_default() += 1;
                }
                stack.push(c.clone());
            }
        }
        order.push(node);
    }

    // Chain interiors under the current fusion setting (lightweight
    // discovery: no kernels are compiled here).
    let interiors: HashSet<u64> = if ctx.cfg().fuse_chains {
        let is_mat = |n: &Node| n.is_effective_leaf();
        chains::fusible_interiors(&order, &consumers, &is_mat, &HashSet::new())
    } else {
        HashSet::new()
    };

    // Gemm consumers: which nodes a crossprod/matmul/inner-product pass
    // re-scans as its tall operand.
    let mut gemm_fed: HashSet<u64> = HashSet::new();
    for node in &order {
        match &node.kind {
            NodeKind::SinkGramian { a, b } => {
                gemm_fed.insert(a.id);
                gemm_fed.insert(b.id);
            }
            NodeKind::Map { op: MapOp::MatMul(_) | MapOp::InnerProd { .. }, inputs } => {
                if let Some(MapInput::Node(spine)) = inputs.first() {
                    gemm_fed.insert(spine.id);
                }
            }
            _ => {}
        }
    }

    let cache_capacity = ctx.safs().map(|s| s.page_cache_capacity()).unwrap_or(0);
    let mode = ctx.cfg().mode;
    let part_rows = ctx.cfg().rows_per_part as usize;

    let mut row_bytes_total = 0usize;
    let mut row_bytes_live = 0usize;
    let mut chunk_bytes = 0u64;
    let mut device_read_bytes = 0u64;
    let mut leaf_read_bytes = 0u64;
    let mut gen_bytes = 0u64;
    let mut write_bytes = 0u64;
    let mut max_em_part_bytes = 0u64;
    let mut em_leaves = 0usize;

    for node in &order {
        if node.is_sink() {
            continue;
        }
        let row_bytes = node.ncols * node.dtype.size();
        row_bytes_total += row_bytes;
        if !interiors.contains(&node.id) {
            row_bytes_live += row_bytes;
            chunk_bytes += mat_bytes(node);
        }
        if node.is_effective_leaf() {
            let mat = node.cached().or(match &node.kind {
                NodeKind::Leaf(m) => Some(m),
                _ => None,
            });
            match mat {
                Some(m) => {
                    leaf_read_bytes += mat_bytes(node);
                    if m.is_em() {
                        em_leaves += 1;
                        let part_bytes =
                            m.parter().rows_per_part() * node.ncols as u64 * node.dtype.size() as u64;
                        max_em_part_bytes = max_em_part_bytes.max(part_bytes);
                        // Eager mode re-reads the leaf once per consumer
                        // pass; a leaf larger than the page cache pays
                        // device I/O every time (the W004 hazard).
                        let uses = consumers.get(&node.id).copied().unwrap_or(1).max(1);
                        let reads = if mode == ExecMode::Eager && mat_bytes(node) > cache_capacity {
                            uses as u64
                        } else {
                            1
                        };
                        device_read_bytes += mat_bytes(node) * reads;
                    }
                }
                None => gen_bytes += mat_bytes(node),
            }
            continue;
        }
        if node.cache_requested() || tall_targets.contains(&node.id) {
            write_bytes += mat_bytes(node);
        }
    }

    // Reuse candidates: the W001 population, priced. Tall targets are
    // excluded (their result materializes anyway) and so are existing
    // cache requests.
    let mut reuse: Vec<ReuseCandidate> = Vec::new();
    for node in &order {
        if node.is_sink()
            || node.is_effective_leaf()
            || node.cache_requested()
            || tall_targets.contains(&node.id)
            || matches!(node.kind, NodeKind::Leaf(_) | NodeKind::Gen(_))
        {
            continue;
        }
        let uses = consumers.get(&node.id).copied().unwrap_or(0);
        if uses < 2 {
            continue;
        }
        reuse.push(ReuseCandidate {
            node: node.clone(),
            consumers: uses,
            bytes: mat_bytes(node),
            row_bytes: node.ncols * node.dtype.size(),
            subtree_bytes: subtree_bytes(node),
            feeds_gemm: gemm_fed.contains(&node.id),
            would_fuse: interiors.contains(&node.id),
        });
    }
    reuse.sort_by(|a, b| {
        b.feeds_gemm
            .cmp(&a.feeds_gemm)
            .then(b.subtree_bytes.cmp(&a.subtree_bytes))
            .then(a.node.id.cmp(&b.node.id))
    });

    let pcache_step = match mode {
        ExecMode::CacheFuse => pcache_rows(ctx.cfg().pcache_bytes, row_bytes_total, part_rows),
        ExecMode::MemFuse | ExecMode::Eager => part_rows,
    };
    let pcache_step_live = match mode {
        ExecMode::CacheFuse => pcache_rows(ctx.cfg().pcache_bytes, row_bytes_live, part_rows),
        ExecMode::MemFuse | ExecMode::Eager => part_rows,
    };

    // Calibration re-pricing: scale the cold-cache read bound by the
    // fitted absorption factor and price predicted nanos under fitted
    // (or default) throughput rates. None of this feeds a plan action,
    // so outputs stay bit-identical with the knob on or off.
    let device_read_bytes_raw = device_read_bytes;
    let mut calibrated = false;
    if let Some(cal) = ctx.calibration() {
        if let Some(f) = cal.read_factor_for(crate::obs::plan_fingerprint(targets)) {
            device_read_bytes = (device_read_bytes as f64 * f).round() as u64;
            calibrated = true;
        }
    }
    let class = crate::obs::op_class(targets);
    let (read_rate, write_rate, compute_rate) = match ctx.calibration() {
        Some(cal) => (cal.read_gib_s(), cal.write_gib_s(), cal.compute_gib_s_for(class)),
        None => (
            calibrate::DEFAULT_READ_GIB_S,
            calibrate::DEFAULT_WRITE_GIB_S,
            calibrate::DEFAULT_COMPUTE_GIB_S,
        ),
    };
    let predicted_read_nanos = price_nanos(device_read_bytes, read_rate);
    let predicted_write_nanos = price_nanos(write_bytes, write_rate);
    let predicted_compute_nanos = price_nanos(chunk_bytes + gen_bytes, compute_rate);
    let predicted_wall_nanos =
        (predicted_read_nanos + predicted_write_nanos).max(predicted_compute_nanos);

    CostEstimate {
        mode,
        pcache_step,
        pcache_step_live,
        row_bytes_total,
        row_bytes_live,
        chunk_bytes,
        device_read_bytes,
        leaf_read_bytes,
        gen_bytes,
        write_bytes,
        cache_capacity,
        max_em_part_bytes,
        em_leaves,
        has_sink,
        reuse,
        device_read_bytes_raw,
        calibrated,
        predicted_read_nanos,
        predicted_write_nanos,
        predicted_compute_nanos,
        predicted_wall_nanos,
    }
}

/// Bytes of `root`'s subtree: the root itself plus everything below it
/// down to (and including) effective leaves — what re-materializing the
/// subtree from scratch moves.
fn subtree_bytes(root: &Arc<Node>) -> u64 {
    let mut total = 0u64;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack: Vec<Arc<Node>> = vec![root.clone()];
    while let Some(node) = stack.pop() {
        if !seen.insert(node.id) {
            continue;
        }
        total += mat_bytes(&node);
        if !node.is_effective_leaf() {
            for c in node.children() {
                stack.push(c.clone());
            }
        }
    }
    total
}

impl CostEstimate {
    /// Hand-rolled JSON (flashr-core takes no serialization dependency);
    /// embedded in `FM::check_json` output and bench artifacts.
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(512);
        o.push_str("{\"mode\":");
        json_escape(
            match self.mode {
                ExecMode::Eager => "Eager",
                ExecMode::MemFuse => "MemFuse",
                ExecMode::CacheFuse => "CacheFuse",
            },
            &mut o,
        );
        let fields: [(&str, u64); 16] = [
            ("pcache_step", self.pcache_step as u64),
            ("pcache_step_live", self.pcache_step_live as u64),
            ("row_bytes_total", self.row_bytes_total as u64),
            ("row_bytes_live", self.row_bytes_live as u64),
            ("chunk_bytes", self.chunk_bytes),
            ("device_read_bytes", self.device_read_bytes),
            ("device_read_bytes_raw", self.device_read_bytes_raw),
            ("leaf_read_bytes", self.leaf_read_bytes),
            ("gen_bytes", self.gen_bytes),
            ("write_bytes", self.write_bytes),
            ("cache_capacity", self.cache_capacity),
            ("em_leaves", self.em_leaves as u64),
            ("predicted_read_nanos", self.predicted_read_nanos),
            ("predicted_write_nanos", self.predicted_write_nanos),
            ("predicted_compute_nanos", self.predicted_compute_nanos),
            ("predicted_wall_nanos", self.predicted_wall_nanos),
        ];
        for (k, v) in fields {
            o.push_str(",\"");
            o.push_str(k);
            o.push_str("\":");
            o.push_str(&v.to_string());
        }
        o.push_str(",\"calibrated\":");
        o.push_str(if self.calibrated { "true" } else { "false" });
        o.push_str(",\"has_sink\":");
        o.push_str(if self.has_sink { "true" } else { "false" });
        o.push_str(",\"reuse\":[");
        for (i, r) in self.reuse.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"node\":");
            o.push_str(&r.node.id.to_string());
            o.push_str(",\"label\":");
            json_escape(&r.node.label(), &mut o);
            o.push_str(",\"consumers\":");
            o.push_str(&r.consumers.to_string());
            o.push_str(",\"bytes\":");
            o.push_str(&r.bytes.to_string());
            o.push_str(",\"subtree_bytes\":");
            o.push_str(&r.subtree_bytes.to_string());
            o.push_str(",\"feeds_gemm\":");
            o.push_str(if r.feeds_gemm { "true" } else { "false" });
            o.push_str(",\"would_fuse\":");
            o.push_str(if r.would_fuse { "true" } else { "false" });
            o.push('}');
        }
        o.push_str("]}");
        o
    }
}
