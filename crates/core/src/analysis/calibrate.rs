//! Cost-model calibration from the profile history store.
//!
//! ROADMAP item 4 left the loop open: the byte-based cost model priced
//! plans, the critical-path analyzer recorded where the wall clock
//! actually went, and nothing connected them. This module closes it.
//! At context build (behind [`crate::session::CtxConfig::calibrate`])
//! the records in `FLASHR_PROFILE_DIR` ([`crate::obs`]) are replayed
//! and per-category throughput constants fitted as robust medians over
//! records matching this context's `(host, backend, simd)` stamp:
//!
//! * **device read / write GiB/s** — from the SAFS I/O counter deltas
//!   (`read_bytes / read_nanos`) each record carries;
//! * **compute GiB/s per op class** — chunk bytes produced over worker
//!   compute nanos, split by the plan's coarse class (`stream` vs.
//!   `gemm`, [`crate::obs::op_class`]);
//! * **device-read absorption** — the observed ratio of actual device
//!   reads to the model's cold-cache upper bound, fitted per plan
//!   fingerprint with a global median fallback. This is what moves the
//!   model's constants off pure byte counts: a warm page cache absorbs
//!   a workload-dependent share of the predicted reads, and history
//!   knows the share.
//!
//! [`crate::analysis::cost::estimate`] consults the fitted constants to
//! re-price its estimate (`device_read_bytes`, predicted nanos); the
//! `Calibration` decision graduates from log-only to actionable
//! (predicted vs. actual device bytes with the residual recorded); and
//! the constants plus the rolling prediction error are exported as
//! Prometheus gauges (`flashr_calib_*`). Calibration never changes
//! *plan actions*, only estimates — outputs stay bit-identical with the
//! knob on or off.
//!
//! Medians (not means) throughout: a single cold-cache outlier or a
//! run against a different data set must not drag the constants.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fallback pricing constants when no history matches (or the knob is
/// off): conservative SATA-class device rates and a memory-bandwidth-
/// bounded compute rate. Only used to fill the estimate's predicted-
/// nanos fields; they influence no plan action.
pub const DEFAULT_READ_GIB_S: f64 = 0.5;
pub const DEFAULT_WRITE_GIB_S: f64 = 0.4;
pub const DEFAULT_COMPUTE_GIB_S: f64 = 2.0;

const GIB: f64 = (1u64 << 30) as f64;

/// Throughput constants fitted from the history store.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Median device read throughput (GiB/s); `None` when no record
    /// carried device reads.
    pub device_read_gib_s: Option<f64>,
    /// Median device write throughput (GiB/s).
    pub device_write_gib_s: Option<f64>,
    /// Median compute throughput (GiB/s of chunk bytes) per op class
    /// (`"stream"`, `"gemm"`).
    pub compute_gib_s: HashMap<&'static str, f64>,
    /// Median `actual / predicted` device-read ratio per plan
    /// fingerprint (keyed by the raw, uncalibrated prediction so the
    /// fit never feeds on its own output).
    pub read_factor: HashMap<u64, f64>,
    /// Global fallback read ratio across all matching records.
    pub read_factor_global: Option<f64>,
    /// Matching records the fit consumed.
    pub records: usize,
}

impl Calibration {
    /// The fitted device-read absorption factor for a plan fingerprint
    /// (falling back to the global median).
    pub fn read_factor_for(&self, fingerprint: u64) -> Option<f64> {
        self.read_factor.get(&fingerprint).copied().or(self.read_factor_global)
    }

    /// Fitted (or default) read rate in GiB/s.
    pub fn read_gib_s(&self) -> f64 {
        self.device_read_gib_s.unwrap_or(DEFAULT_READ_GIB_S)
    }

    /// Fitted (or default) write rate in GiB/s.
    pub fn write_gib_s(&self) -> f64 {
        self.device_write_gib_s.unwrap_or(DEFAULT_WRITE_GIB_S)
    }

    /// Fitted (or default) compute rate for an op class in GiB/s.
    pub fn compute_gib_s_for(&self, class: &str) -> f64 {
        self.compute_gib_s.get(class).copied().unwrap_or(DEFAULT_COMPUTE_GIB_S)
    }
}

/// Per-context calibration state: the fitted constants (when the knob
/// is on and history matched) plus rolling prediction-error counters
/// every materialization feeds. Always present on a context so the
/// metrics source can export a stable gauge family set.
#[derive(Debug, Default)]
pub struct CalibState {
    pub calibration: Option<Calibration>,
    predictions: AtomicU64,
    /// Sum of |predicted − actual| device-read bytes across this
    /// context's materializations.
    err_sum_bytes: AtomicU64,
}

impl CalibState {
    /// State holding an optional fit (from [`load`]) and zeroed error
    /// counters.
    pub fn new(calibration: Option<Calibration>) -> Self {
        CalibState { calibration, ..CalibState::default() }
    }

    /// Record one finished materialization's device-read prediction
    /// against what the SAFS counters measured.
    pub(crate) fn record_prediction(&self, predicted_bytes: u64, actual_bytes: u64) {
        self.predictions.fetch_add(1, Ordering::Relaxed);
        self.err_sum_bytes.fetch_add(predicted_bytes.abs_diff(actual_bytes), Ordering::Relaxed);
    }

    /// Materializations scored so far.
    pub fn predictions(&self) -> u64 {
        self.predictions.load(Ordering::Relaxed)
    }

    /// Rolling mean |predicted − actual| device-read bytes (0 before
    /// the first materialization).
    pub fn mean_error_bytes(&self) -> u64 {
        let n = self.predictions();
        if n == 0 {
            0
        } else {
            self.err_sum_bytes.load(Ordering::Relaxed) / n
        }
    }
}

/// One parsed history record — only the fields the fit needs.
#[derive(Debug, Clone)]
struct HistRecord {
    fingerprint: u64,
    op_class: String,
    read_bytes: u64,
    read_nanos: u64,
    write_bytes: u64,
    write_nanos: u64,
    chunk_bytes: u64,
    compute_nanos: u64,
    pred_read_bytes_raw: u64,
}

/// Load the store and fit constants for a context whose host stamp is
/// `(cpus, build, backend, simd)`. Returns `None` when the store is
/// absent, unreadable, or holds no matching records.
pub fn load(backend: &str, simd: &str) -> Option<Calibration> {
    let dir = crate::obs::store_dir()?;
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0);
    let build = if cfg!(debug_assertions) { "debug" } else { "release" };
    let mut records: Vec<HistRecord> = Vec::new();
    let entries = std::fs::read_dir(&dir).ok()?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        for line in text.lines() {
            if let Some(r) = parse_record(line, cpus, build, backend, simd) {
                records.push(r);
            }
        }
    }
    fit(&records)
}

fn fit(records: &[HistRecord]) -> Option<Calibration> {
    if records.is_empty() {
        return None;
    }
    let rate = |bytes: u64, nanos: u64| -> Option<f64> {
        if bytes == 0 || nanos == 0 {
            None
        } else {
            Some(bytes as f64 / GIB / (nanos as f64 / 1e9))
        }
    };
    let read: Vec<f64> =
        records.iter().filter_map(|r| rate(r.read_bytes, r.read_nanos)).collect();
    let write: Vec<f64> =
        records.iter().filter_map(|r| rate(r.write_bytes, r.write_nanos)).collect();
    let mut compute: HashMap<&'static str, Vec<f64>> = HashMap::new();
    for r in records {
        let class: &'static str = if r.op_class == "gemm" { "gemm" } else { "stream" };
        if let Some(v) = rate(r.chunk_bytes, r.compute_nanos) {
            compute.entry(class).or_default().push(v);
        }
    }
    let mut by_fp: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut global: Vec<f64> = Vec::new();
    for r in records {
        if r.pred_read_bytes_raw == 0 {
            continue;
        }
        let ratio = r.read_bytes as f64 / r.pred_read_bytes_raw as f64;
        by_fp.entry(r.fingerprint).or_default().push(ratio);
        global.push(ratio);
    }
    Some(Calibration {
        device_read_gib_s: median(&read),
        device_write_gib_s: median(&write),
        compute_gib_s: compute
            .into_iter()
            .filter_map(|(k, v)| median(&v).map(|m| (k, m)))
            .collect(),
        read_factor: by_fp
            .into_iter()
            .filter_map(|(k, v)| median(&v).map(|m| (k, m)))
            .collect(),
        read_factor_global: median(&global),
        records: records.len(),
    })
}

fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Some(v[v.len() / 2])
}

/// Extract one history record from a store line, keeping only records
/// whose host stamp matches. flashr-core takes no JSON dependency, so
/// this reads the writer's exact output format ([`crate::obs`] controls
/// both sides): fields are located by their store-unique keys.
fn parse_record(
    line: &str,
    cpus: usize,
    build: &str,
    backend: &str,
    simd: &str,
) -> Option<HistRecord> {
    if !line.starts_with("{\"v\":1,") {
        return None;
    }
    if find_u64(line, "cpus")? != cpus as u64
        || find_str(line, "build_profile")? != build
        || find_str(line, "backend")? != backend
        || find_str(line, "simd")? != simd
    {
        return None;
    }
    Some(HistRecord {
        fingerprint: u64::from_str_radix(find_str(line, "fingerprint")?, 16).ok()?,
        op_class: find_str(line, "op_class")?.to_string(),
        read_bytes: find_u64(line, "sum_read_bytes")?,
        read_nanos: find_u64(line, "sum_read_nanos")?,
        write_bytes: find_u64(line, "sum_write_bytes")?,
        write_nanos: find_u64(line, "sum_write_nanos")?,
        chunk_bytes: find_u64(line, "sum_chunk_bytes")?,
        compute_nanos: find_u64(line, "sum_compute_nanos")?,
        pred_read_bytes_raw: find_u64(line, "sum_pred_read_bytes_raw")?,
    })
}

fn find_u64(line: &str, key: &str) -> Option<u64> {
    let rest = find_value(line, key)?;
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn find_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = find_value(line, key)?;
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next()
}

fn find_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    Some(&line[at + needle.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: u64, class: &str, read: (u64, u64), pred_raw: u64) -> HistRecord {
        HistRecord {
            fingerprint: fp,
            op_class: class.to_string(),
            read_bytes: read.0,
            read_nanos: read.1,
            write_bytes: 0,
            write_nanos: 0,
            chunk_bytes: 1 << 30,
            compute_nanos: 500_000_000,
            pred_read_bytes_raw: pred_raw,
        }
    }

    #[test]
    fn fit_uses_medians() {
        // Three read-rate samples: 1, 2, 100 GiB/s → median 2.
        let records = vec![
            rec(7, "stream", (1 << 30, 1_000_000_000), 1 << 31),
            rec(7, "stream", (2 << 30, 1_000_000_000), 1 << 31),
            rec(7, "stream", (100 << 30, 1_000_000_000), 1 << 31),
        ];
        let c = fit(&records).unwrap();
        assert!((c.device_read_gib_s.unwrap() - 2.0).abs() < 1e-9);
        // chunk 1 GiB over 0.5 s → 2 GiB/s compute for the stream class.
        assert!((c.compute_gib_s_for("stream") - 2.0).abs() < 1e-9);
        // gemm class unseen → default.
        assert!((c.compute_gib_s_for("gemm") - DEFAULT_COMPUTE_GIB_S).abs() < 1e-9);
        // read factors: 0.5, 1.0, 50.0 → median 1.0.
        assert!((c.read_factor_for(7).unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(c.records, 3);
    }

    #[test]
    fn fit_empty_is_none() {
        assert!(fit(&[]).is_none());
    }

    #[test]
    fn parser_reads_writer_format() {
        let line = "{\"v\":1,\"run\":\"run-1-2\",\"seq\":0,\"ts_ms\":3,\"label\":\"w\",\
                    \"fingerprint\":\"00000000000000ff\",\"op_class\":\"gemm\",\
                    \"mode\":\"Eager\",\"cost_optimize\":true,\"calibrate\":false,\
                    \"host\":{\"cpus\":8,\"workers\":8,\"numa_nodes\":2,\
                    \"page_cache_capacity_bytes\":0,\"build_profile\":\"release\",\
                    \"simd\":\"avx2\",\"backend\":\"sim\",\"shards\":4},\
                    \"summary\":{\"wall_nanos\":9,\"sum_read_bytes\":1024,\
                    \"sum_read_nanos\":512,\"sum_write_bytes\":1,\"sum_write_nanos\":2,\
                    \"sum_chunk_bytes\":3,\"sum_compute_nanos\":4,\
                    \"sum_pred_read_bytes\":2048,\"sum_pred_read_bytes_raw\":4096}}";
        let r = parse_record(line, 8, "release", "sim", "avx2").unwrap();
        assert_eq!(r.fingerprint, 0xff);
        assert_eq!(r.op_class, "gemm");
        assert_eq!(r.read_bytes, 1024);
        assert_eq!(r.pred_read_bytes_raw, 4096);
        // Host mismatch filters the record out.
        assert!(parse_record(line, 4, "release", "sim", "avx2").is_none());
        assert!(parse_record(line, 8, "release", "direct", "avx2").is_none());
        assert!(parse_record(line, 8, "release", "sim", "off").is_none());
    }

    #[test]
    fn calib_state_rolls_error() {
        let s = CalibState::default();
        assert_eq!(s.mean_error_bytes(), 0);
        s.record_prediction(100, 60);
        s.record_prediction(50, 70);
        assert_eq!(s.predictions(), 2);
        assert_eq!(s.mean_error_bytes(), 30);
    }
}
