//! Shape/dtype inference and plan verification.
//!
//! Re-derives every node's shape and dtype from its inputs using the
//! same rules the executor kernels assume (`UnaryOp::out_dtype`,
//! `BinaryOp::out_dtype`, `AggOp::out_dtype`, R-style promotion), and
//! compares them against what the node records. A disagreement means the
//! DAG was forged or corrupted and would otherwise surface as a panic
//! deep inside a worker thread; here it becomes a [`PlanError`] naming
//! the node before any partition is read.

use super::{PlanError, PlanErrorKind};
use crate::dag::{MapInput, MapOp, Node, NodeKind};
use crate::dtype::DType;
use crate::exec::Target;
use crate::ops::BinaryOp;
use std::collections::HashSet;
use std::sync::Arc;

/// The signature inference derives for a node: what its shape and dtype
/// *should* be given its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sig {
    pub nrows: u64,
    pub ncols: usize,
    pub dtype: DType,
}

impl Sig {
    fn of(node: &Node) -> Sig {
        Sig { nrows: node.nrows, ncols: node.ncols, dtype: node.dtype }
    }
}

impl std::fmt::Display for Sig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{} {}", self.nrows, self.ncols, self.dtype)
    }
}

fn err(node: &Node, kind: PlanErrorKind, detail: String) -> PlanError {
    PlanError::new(node, kind, detail)
}

fn expect_sig(node: &Node, inferred: Sig) -> Result<(), PlanError> {
    let found = Sig::of(node);
    if (found.nrows, found.ncols) != (inferred.nrows, inferred.ncols) {
        return Err(err(
            node,
            PlanErrorKind::ShapeMismatch,
            format!("node records {found} but inputs infer {inferred}"),
        ));
    }
    if found.dtype != inferred.dtype {
        return Err(err(
            node,
            PlanErrorKind::DTypeMismatch,
            format!("node records dtype {} but inputs infer {}", found.dtype, inferred.dtype),
        ));
    }
    Ok(())
}

/// Infer the signature a node should have from its (already verified)
/// inputs, checking op-specific operand constraints on the way.
pub fn infer(node: &Node) -> Result<Sig, PlanError> {
    match &node.kind {
        NodeKind::Leaf(m) => {
            Ok(Sig { nrows: m.nrows(), ncols: m.ncols(), dtype: m.dtype() })
        }
        NodeKind::Gen(spec) => {
            Ok(Sig { nrows: node.nrows, ncols: node.ncols, dtype: spec.dtype() })
        }
        NodeKind::Map { op, inputs } => infer_map(node, op, inputs),
        NodeKind::AggRow { op, input } => {
            Ok(Sig { nrows: input.nrows, ncols: 1, dtype: op.out_dtype(input.dtype) })
        }
        NodeKind::CumRow { input, .. } | NodeKind::CumCol { input, .. } => Ok(Sig::of(input)),
        NodeKind::SinkFull { op, input } => {
            Ok(Sig { nrows: 1, ncols: 1, dtype: op.out_dtype(input.dtype) })
        }
        NodeKind::SinkCol { op, input } => {
            Ok(Sig { nrows: 1, ncols: input.ncols, dtype: op.out_dtype(input.dtype) })
        }
        NodeKind::SinkGramian { a, b } => {
            if a.nrows != b.nrows {
                return Err(err(
                    node,
                    PlanErrorKind::ShapeMismatch,
                    format!(
                        "crossprod inputs disagree on rows: n{} is {}x{}, n{} is {}x{}",
                        a.id, a.nrows, a.ncols, b.id, b.nrows, b.ncols
                    ),
                ));
            }
            for side in [a, b] {
                if side.dtype != DType::F64 {
                    return Err(err(
                        node,
                        PlanErrorKind::DTypeMismatch,
                        format!("crossprod input n{} must be f64, found {}", side.id, side.dtype),
                    ));
                }
            }
            Ok(Sig { nrows: a.ncols as u64, ncols: b.ncols, dtype: DType::F64 })
        }
        NodeKind::SinkGroupBy { data, labels, ngroups, .. } => {
            if labels.ncols != 1 {
                return Err(err(
                    node,
                    PlanErrorKind::BadOperand,
                    format!("groupby labels must be one column, found {}x{}", labels.nrows, labels.ncols),
                ));
            }
            if labels.nrows != data.nrows {
                return Err(err(
                    node,
                    PlanErrorKind::ShapeMismatch,
                    format!("groupby label length {} != data rows {}", labels.nrows, data.nrows),
                ));
            }
            if labels.dtype != DType::I64 {
                return Err(err(
                    node,
                    PlanErrorKind::DTypeMismatch,
                    format!("groupby labels must be i64, found {}", labels.dtype),
                ));
            }
            if *ngroups == 0 {
                return Err(err(node, PlanErrorKind::BadOperand, "ngroups must be positive".into()));
            }
            Ok(Sig { nrows: *ngroups as u64, ncols: data.ncols, dtype: DType::F64 })
        }
    }
}

fn infer_map(node: &Node, op: &MapOp, inputs: &[MapInput]) -> Result<Sig, PlanError> {
    let first = match inputs.first() {
        Some(MapInput::Node(n)) => n,
        _ => {
            return Err(err(
                node,
                PlanErrorKind::BadOperand,
                "first map input must be a matrix".into(),
            ))
        }
    };
    match op {
        MapOp::Unary(u) => {
            if u.needs_float() && !first.dtype.is_float() {
                return Err(err(
                    node,
                    PlanErrorKind::DTypeMismatch,
                    format!("{u:?} requires a float input, found {} (insert a cast)", first.dtype),
                ));
            }
            Ok(Sig { nrows: first.nrows, ncols: first.ncols, dtype: u.out_dtype(first.dtype) })
        }
        MapOp::Binary { op, .. } => {
            match inputs.get(1) {
                Some(MapInput::Node(b)) => {
                    if b.nrows != first.nrows || (b.ncols != first.ncols && b.ncols != 1) {
                        return Err(err(
                            node,
                            PlanErrorKind::ShapeMismatch,
                            format!(
                                "mapply operands disagree: n{} is {}x{}, n{} is {}x{}",
                                first.id, first.nrows, first.ncols, b.id, b.nrows, b.ncols
                            ),
                        ));
                    }
                    if b.dtype != first.dtype {
                        return Err(err(
                            node,
                            PlanErrorKind::DTypeMismatch,
                            format!(
                                "mapply operands must share a promoted dtype: {} vs {}",
                                first.dtype, b.dtype
                            ),
                        ));
                    }
                }
                Some(MapInput::RowVec(v)) => {
                    if v.len() != first.ncols {
                        return Err(err(
                            node,
                            PlanErrorKind::ShapeMismatch,
                            format!(
                                "broadcast row vector has {} entries for {} columns",
                                v.len(),
                                first.ncols
                            ),
                        ));
                    }
                }
                Some(MapInput::Scalar(_)) => {}
                None => {
                    return Err(err(
                        node,
                        PlanErrorKind::BadOperand,
                        "mapply needs two operands".into(),
                    ))
                }
            }
            Ok(Sig { nrows: first.nrows, ncols: first.ncols, dtype: op.out_dtype(first.dtype) })
        }
        MapOp::Cast(to) => Ok(Sig { nrows: first.nrows, ncols: first.ncols, dtype: *to }),
        MapOp::MatMul(b) => {
            if first.ncols != b.rows() {
                return Err(err(
                    node,
                    PlanErrorKind::ShapeMismatch,
                    format!(
                        "matmul inner dimension mismatch: {}x{} %*% {}x{}",
                        first.nrows,
                        first.ncols,
                        b.rows(),
                        b.cols()
                    ),
                ));
            }
            if first.dtype != DType::F64 {
                return Err(err(
                    node,
                    PlanErrorKind::DTypeMismatch,
                    format!("matmul input must be f64, found {}", first.dtype),
                ));
            }
            Ok(Sig { nrows: first.nrows, ncols: b.cols(), dtype: DType::F64 })
        }
        MapOp::InnerProd { b, f2, .. } => {
            if first.ncols != b.rows() {
                return Err(err(
                    node,
                    PlanErrorKind::ShapeMismatch,
                    format!(
                        "inner.prod inner dimension mismatch: {}x{} vs {}x{}",
                        first.nrows,
                        first.ncols,
                        b.rows(),
                        b.cols()
                    ),
                ));
            }
            if !matches!(f2, BinaryOp::Add | BinaryOp::Mul | BinaryOp::Min | BinaryOp::Max) {
                return Err(err(
                    node,
                    PlanErrorKind::BadOperand,
                    format!("inner.prod combiner must be associative, got {f2:?}"),
                ));
            }
            Ok(Sig { nrows: first.nrows, ncols: b.cols(), dtype: first.dtype })
        }
        MapOp::Select(idx) => {
            if let Some(&c) = idx.iter().find(|&&c| c >= first.ncols) {
                return Err(err(
                    node,
                    PlanErrorKind::BadOperand,
                    format!("column {} selected from a {}-column matrix", c, first.ncols),
                ));
            }
            Ok(Sig { nrows: first.nrows, ncols: idx.len(), dtype: first.dtype })
        }
        MapOp::Bind => {
            let mut ncols = 0usize;
            for (i, input) in inputs.iter().enumerate() {
                let n = match input {
                    MapInput::Node(n) => n,
                    _ => {
                        return Err(err(
                            node,
                            PlanErrorKind::BadOperand,
                            format!("cbind input {i} is not a matrix"),
                        ))
                    }
                };
                if n.nrows != first.nrows {
                    return Err(err(
                        node,
                        PlanErrorKind::ShapeMismatch,
                        format!("cbind row mismatch: {} vs {}", first.nrows, n.nrows),
                    ));
                }
                if n.dtype != node.dtype {
                    return Err(err(
                        node,
                        PlanErrorKind::DTypeMismatch,
                        format!(
                            "cbind inputs must be pre-promoted to {}, input n{} is {}",
                            node.dtype, n.id, n.dtype
                        ),
                    ));
                }
                ncols += n.ncols;
            }
            Ok(Sig { nrows: first.nrows, ncols, dtype: node.dtype })
        }
        MapOp::GroupCols { labels, op, ngroups } => {
            if labels.len() != first.ncols {
                return Err(err(
                    node,
                    PlanErrorKind::ShapeMismatch,
                    format!("groupby.col needs one label per column: {} labels for {} columns", labels.len(), first.ncols),
                ));
            }
            if let Some(&g) = labels.iter().find(|&&g| g >= *ngroups) {
                return Err(err(
                    node,
                    PlanErrorKind::BadOperand,
                    format!("column label {g} outside [0, {ngroups})"),
                ));
            }
            Ok(Sig { nrows: first.nrows, ncols: *ngroups, dtype: op.out_dtype(first.dtype) })
        }
    }
}

/// Verify every reachable node of a plan: per-node inference plus the
/// global partition-dimension agreement the fused pass requires.
pub fn verify(targets: &[Target]) -> Result<(), PlanError> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack: Vec<Arc<Node>> = Vec::new();
    for t in targets {
        match t {
            Target::Sink(n) => {
                if !n.is_sink() {
                    return Err(err(
                        n,
                        PlanErrorKind::BadOperand,
                        "sink target on a non-sink node".into(),
                    ));
                }
                stack.push(n.clone());
            }
            Target::Tall { node, .. } => {
                if node.is_sink() {
                    return Err(err(
                        node,
                        PlanErrorKind::BadOperand,
                        "tall target on a sink node".into(),
                    ));
                }
                stack.push(node.clone());
            }
        }
    }

    // (nrows, id of the node that established it)
    let mut part_dim: Option<(u64, u64)> = None;
    while let Some(node) = stack.pop() {
        if !seen.insert(node.id) {
            continue;
        }
        if !node.is_sink() {
            match part_dim {
                None => part_dim = Some((node.nrows, node.id)),
                Some((n, first_id)) => {
                    if n != node.nrows {
                        return Err(err(
                            &node,
                            PlanErrorKind::PartitionMismatch,
                            format!(
                                "tall matrices in one DAG must share the partition dimension: n{} has {} rows, n{} has {}",
                                first_id, n, node.id, node.nrows
                            ),
                        ));
                    }
                }
            }
        }
        // Materialized data is trusted as-is; do not descend past it
        // (mirrors the engine, which treats it as a leaf).
        if node.is_effective_leaf() {
            if let NodeKind::Leaf(_) = &node.kind {
                expect_sig(&node, infer(&node)?)?;
            }
            continue;
        }
        expect_sig(&node, infer(&node)?)?;
        for c in node.children() {
            stack.push(c.clone());
        }
    }
    Ok(())
}
