//! Plan rewriting: hash-consing CSE, dead-node pruning and collapsing.
//!
//! The rewrite is *identity-preserving*: a node whose subtree contains no
//! duplicate work maps to itself (same `Arc`), so handles the user still
//! holds — and their `set.cache` flags and installed caches — stay valid.
//! Only nodes whose children were re-pointed are rebuilt, and structural
//! duplicates are merged onto one canonical representative so the fused
//! pass evaluates (and the eager engine materializes) each distinct
//! computation once.
//!
//! Merging is keyed by a structural hash and confirmed by
//! [`structural_eq`] — a hash collision can cost a missed merge, never a
//! wrong one. Floats are compared and hashed by bit pattern, which is
//! conservative (`0.0`/`-0.0` do not merge) but never unsound. Leaves and
//! already-cached nodes are identity-keyed: their data lives outside the
//! DAG and two distinct leaves are never assumed equal. Generator nodes
//! are deterministic functions of their spec, so equal specs merge.

use crate::dag::{MapInput, MapOp, Node, NodeKind};
use crate::exec::Target;
use crate::gen::GenSpec;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Outcome of rewriting one target set.
pub struct Rewrite {
    /// Targets re-rooted on the canonical DAG, slot for slot.
    pub targets: Vec<Target>,
    pub nodes_before: usize,
    pub nodes_after: usize,
    /// Duplicate subtrees merged onto a canonical node.
    pub merged: usize,
    /// Redundant casts and single-input `cbind`s removed.
    pub collapsed: usize,
    /// `(original, canonical)` pairs whose cache must be copied back
    /// after materialization (see [`crate::analysis::Analysis`]).
    pub cache_pairs: Vec<(Arc<Node>, Arc<Node>)>,
}

fn hash_f64<H: Hasher>(v: f64, h: &mut H) {
    v.to_bits().hash(h);
}

fn hash_gen<H: Hasher>(spec: &GenSpec, h: &mut H) {
    match spec {
        GenSpec::Runif { seed, lo, hi } => {
            0u8.hash(h);
            seed.hash(h);
            hash_f64(*lo, h);
            hash_f64(*hi, h);
        }
        GenSpec::Rnorm { seed, mean, sd } => {
            1u8.hash(h);
            seed.hash(h);
            hash_f64(*mean, h);
            hash_f64(*sd, h);
        }
        GenSpec::Seq { start, step } => {
            2u8.hash(h);
            hash_f64(*start, h);
            hash_f64(*step, h);
        }
        GenSpec::Const { value } => {
            3u8.hash(h);
            hash_f64(*value, h);
        }
    }
}

fn gen_eq(a: &GenSpec, b: &GenSpec) -> bool {
    // Bit-level float comparison: conservative and reflexive (a spec
    // always merges with an identical one, NaN included).
    match (a, b) {
        (GenSpec::Runif { seed: s1, lo: l1, hi: h1 }, GenSpec::Runif { seed: s2, lo: l2, hi: h2 }) => {
            s1 == s2 && l1.to_bits() == l2.to_bits() && h1.to_bits() == h2.to_bits()
        }
        (
            GenSpec::Rnorm { seed: s1, mean: m1, sd: d1 },
            GenSpec::Rnorm { seed: s2, mean: m2, sd: d2 },
        ) => s1 == s2 && m1.to_bits() == m2.to_bits() && d1.to_bits() == d2.to_bits(),
        (GenSpec::Seq { start: a1, step: p1 }, GenSpec::Seq { start: a2, step: p2 }) => {
            a1.to_bits() == a2.to_bits() && p1.to_bits() == p2.to_bits()
        }
        (GenSpec::Const { value: v1 }, GenSpec::Const { value: v2 }) => v1.to_bits() == v2.to_bits(),
        _ => false,
    }
}

fn dense_bits_eq(a: &flashr_linalg::Dense, b: &flashr_linalg::Dense) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice().iter().map(|v| v.to_bits()).eq(b.as_slice().iter().map(|v| v.to_bits()))
}

fn hash_dense<H: Hasher>(d: &flashr_linalg::Dense, h: &mut H) {
    d.rows().hash(h);
    d.cols().hash(h);
    for v in d.as_slice() {
        hash_f64(*v, h);
    }
}

fn hash_map_input<H: Hasher>(i: &MapInput, h: &mut H) {
    match i {
        MapInput::Node(n) => {
            0u8.hash(h);
            n.id.hash(h); // canonical by construction
        }
        MapInput::Scalar(s) => {
            1u8.hash(h);
            s.dtype().hash(h);
            hash_f64(s.to_f64(), h);
        }
        MapInput::RowVec(v) => {
            2u8.hash(h);
            v.len().hash(h);
            for x in v.iter() {
                hash_f64(*x, h);
            }
        }
    }
}

fn map_input_eq(a: &MapInput, b: &MapInput) -> bool {
    match (a, b) {
        (MapInput::Node(x), MapInput::Node(y)) => Arc::ptr_eq(x, y),
        (MapInput::Scalar(x), MapInput::Scalar(y)) => {
            x.dtype() == y.dtype() && x.to_f64().to_bits() == y.to_f64().to_bits()
        }
        (MapInput::RowVec(x), MapInput::RowVec(y)) => {
            Arc::ptr_eq(x, y)
                || x.iter().map(|v| v.to_bits()).eq(y.iter().map(|v| v.to_bits()))
        }
        _ => false,
    }
}

fn hash_map_op<H: Hasher>(op: &MapOp, h: &mut H) {
    match op {
        MapOp::Unary(u) => {
            0u8.hash(h);
            u.hash(h);
        }
        MapOp::Binary { op, swapped } => {
            1u8.hash(h);
            op.hash(h);
            swapped.hash(h);
        }
        MapOp::Cast(dt) => {
            2u8.hash(h);
            dt.hash(h);
        }
        MapOp::MatMul(b) => {
            3u8.hash(h);
            hash_dense(b, h);
        }
        MapOp::InnerProd { b, f1, f2 } => {
            4u8.hash(h);
            hash_dense(b, h);
            f1.hash(h);
            f2.hash(h);
        }
        MapOp::Select(idx) => {
            5u8.hash(h);
            idx.hash(h);
        }
        MapOp::Bind => 6u8.hash(h),
        MapOp::GroupCols { labels, op, ngroups } => {
            7u8.hash(h);
            labels.hash(h);
            op.hash(h);
            ngroups.hash(h);
        }
    }
}

fn map_op_eq(a: &MapOp, b: &MapOp) -> bool {
    match (a, b) {
        (MapOp::Unary(x), MapOp::Unary(y)) => x == y,
        (MapOp::Binary { op: x, swapped: sx }, MapOp::Binary { op: y, swapped: sy }) => {
            x == y && sx == sy
        }
        (MapOp::Cast(x), MapOp::Cast(y)) => x == y,
        (MapOp::MatMul(x), MapOp::MatMul(y)) => Arc::ptr_eq(x, y) || dense_bits_eq(x, y),
        (
            MapOp::InnerProd { b: bx, f1: f1x, f2: f2x },
            MapOp::InnerProd { b: by, f1: f1y, f2: f2y },
        ) => f1x == f1y && f2x == f2y && (Arc::ptr_eq(bx, by) || dense_bits_eq(bx, by)),
        (MapOp::Select(x), MapOp::Select(y)) => x == y,
        (MapOp::Bind, MapOp::Bind) => true,
        (
            MapOp::GroupCols { labels: lx, op: ox, ngroups: nx },
            MapOp::GroupCols { labels: ly, op: oy, ngroups: ny },
        ) => ox == oy && nx == ny && lx == ly,
        _ => false,
    }
}

/// Structural hash of a node whose children are already canonical.
fn structural_hash(node: &Node) -> u64 {
    let mut h = DefaultHasher::new();
    node.nrows.hash(&mut h);
    node.ncols.hash(&mut h);
    node.dtype.hash(&mut h);
    match &node.kind {
        NodeKind::Leaf(_) => {
            // Identity-keyed; never bucketed, but keep the arm total.
            0u8.hash(&mut h);
            node.id.hash(&mut h);
        }
        NodeKind::Gen(spec) => {
            1u8.hash(&mut h);
            hash_gen(spec, &mut h);
        }
        NodeKind::Map { op, inputs } => {
            2u8.hash(&mut h);
            hash_map_op(op, &mut h);
            inputs.len().hash(&mut h);
            for i in inputs {
                hash_map_input(i, &mut h);
            }
        }
        NodeKind::AggRow { op, input } => {
            3u8.hash(&mut h);
            op.hash(&mut h);
            input.id.hash(&mut h);
        }
        NodeKind::CumRow { op, input } => {
            4u8.hash(&mut h);
            op.hash(&mut h);
            input.id.hash(&mut h);
        }
        NodeKind::CumCol { op, input } => {
            5u8.hash(&mut h);
            op.hash(&mut h);
            input.id.hash(&mut h);
        }
        NodeKind::SinkFull { op, input } => {
            6u8.hash(&mut h);
            op.hash(&mut h);
            input.id.hash(&mut h);
        }
        NodeKind::SinkCol { op, input } => {
            7u8.hash(&mut h);
            op.hash(&mut h);
            input.id.hash(&mut h);
        }
        NodeKind::SinkGramian { a, b } => {
            8u8.hash(&mut h);
            a.id.hash(&mut h);
            b.id.hash(&mut h);
        }
        NodeKind::SinkGroupBy { data, labels, op, ngroups } => {
            9u8.hash(&mut h);
            data.id.hash(&mut h);
            labels.id.hash(&mut h);
            op.hash(&mut h);
            ngroups.hash(&mut h);
        }
    }
    h.finish()
}

/// Structural equality of two nodes whose children are already canonical
/// (children compared by pointer). Confirms bucket hits so a hash
/// collision can never merge distinct computations.
fn structural_eq(a: &Node, b: &Node) -> bool {
    if (a.nrows, a.ncols, a.dtype) != (b.nrows, b.ncols, b.dtype) {
        return false;
    }
    match (&a.kind, &b.kind) {
        (NodeKind::Leaf(_), NodeKind::Leaf(_)) => a.id == b.id,
        (NodeKind::Gen(x), NodeKind::Gen(y)) => gen_eq(x, y),
        (NodeKind::Map { op: ox, inputs: ix }, NodeKind::Map { op: oy, inputs: iy }) => {
            map_op_eq(ox, oy)
                && ix.len() == iy.len()
                && ix.iter().zip(iy).all(|(x, y)| map_input_eq(x, y))
        }
        (NodeKind::AggRow { op: ox, input: x }, NodeKind::AggRow { op: oy, input: y })
        | (NodeKind::SinkFull { op: ox, input: x }, NodeKind::SinkFull { op: oy, input: y })
        | (NodeKind::SinkCol { op: ox, input: x }, NodeKind::SinkCol { op: oy, input: y }) => {
            ox == oy && Arc::ptr_eq(x, y)
        }
        (NodeKind::CumRow { op: ox, input: x }, NodeKind::CumRow { op: oy, input: y })
        | (NodeKind::CumCol { op: ox, input: x }, NodeKind::CumCol { op: oy, input: y }) => {
            ox == oy && Arc::ptr_eq(x, y)
        }
        (NodeKind::SinkGramian { a: ax, b: bx }, NodeKind::SinkGramian { a: ay, b: by }) => {
            Arc::ptr_eq(ax, ay) && Arc::ptr_eq(bx, by)
        }
        (
            NodeKind::SinkGroupBy { data: dx, labels: lx, op: ox, ngroups: nx },
            NodeKind::SinkGroupBy { data: dy, labels: ly, op: oy, ngroups: ny },
        ) => ox == oy && nx == ny && Arc::ptr_eq(dx, dy) && Arc::ptr_eq(lx, ly),
        _ => false,
    }
}

/// Whether casting from `from` through `mid` loses no information, i.e.
/// `cast(cast(x, mid), to)` ≡ `cast(x, to)` for every value of `x`.
fn lossless(from: crate::dtype::DType, mid: crate::dtype::DType) -> bool {
    use crate::dtype::DType::*;
    matches!(
        (from, mid),
        (U8, _) | (I32, I64) | (I32, F64) | (F32, F64)
    ) || from == mid
}

struct Rewriter {
    /// original node id → canonical node.
    map: HashMap<u64, Arc<Node>>,
    /// structural hash → canonical nodes with that hash.
    buckets: HashMap<u64, Vec<Arc<Node>>>,
    merged: usize,
    collapsed: usize,
    cache_pairs: Vec<(Arc<Node>, Arc<Node>)>,
}

impl Rewriter {
    fn new() -> Rewriter {
        Rewriter {
            map: HashMap::new(),
            buckets: HashMap::new(),
            merged: 0,
            collapsed: 0,
            cache_pairs: Vec::new(),
        }
    }

    /// Canonicalize `node`, canonicalizing its subtree first.
    fn canon(&mut self, node: &Arc<Node>) -> Arc<Node> {
        if let Some(c) = self.map.get(&node.id) {
            return c.clone();
        }

        // Materialized data is identity: a Leaf's (or cached node's) data
        // lives outside the DAG, so two distinct handles are never merged
        // — but uncached generators are pure functions of their spec and
        // go through the bucket below like any other node.
        let cached_leaf =
            node.cached().is_some() || matches!(node.kind, NodeKind::Leaf(_));
        let canonical = if cached_leaf {
            node.clone()
        } else {
            let rebuilt = self.rebuild(node);
            match rebuilt {
                // Collapsed to an existing node (identity cast, cast-of-
                // cast, cbind-of-one): already canonical.
                Rebuilt::Collapsed(c) => c,
                Rebuilt::Node(candidate) => {
                    let h = structural_hash(&candidate);
                    let bucket = self.buckets.entry(h).or_default();
                    if let Some(existing) =
                        bucket.iter().find(|e| structural_eq(e, &candidate))
                    {
                        if !Arc::ptr_eq(existing, node) {
                            self.merged += 1;
                        }
                        existing.clone()
                    } else {
                        bucket.push(candidate.clone());
                        candidate
                    }
                }
            }
        };

        if node.cache_requested() && !Arc::ptr_eq(&canonical, node) {
            // Make the pass cache the canonical node, then copy the
            // result back onto the user's handle (the engine installs
            // caches on the nodes it actually evaluates).
            canonical.set_cache(true);
            self.cache_pairs.push((node.clone(), canonical.clone()));
        }
        self.map.insert(node.id, canonical.clone());
        canonical
    }

    /// Re-parent `node` onto canonical children, applying local
    /// simplifications. Returns the node itself when nothing changed.
    fn rebuild(&mut self, node: &Arc<Node>) -> Rebuilt {
        match &node.kind {
            NodeKind::Leaf(_) => Rebuilt::Node(node.clone()),
            NodeKind::Gen(_) => Rebuilt::Node(node.clone()),
            NodeKind::Map { op, inputs } => {
                let mut changed = false;
                let new_inputs: Vec<MapInput> = inputs
                    .iter()
                    .map(|i| match i {
                        MapInput::Node(n) => {
                            let c = self.canon(n);
                            changed |= !Arc::ptr_eq(&c, n);
                            MapInput::Node(c)
                        }
                        other => other.clone(),
                    })
                    .collect();

                // cast collapsing: identity casts and lossless chains.
                if let MapOp::Cast(to) = op {
                    if let Some(MapInput::Node(input)) = new_inputs.first() {
                        if input.dtype == *to {
                            self.collapsed += 1;
                            return Rebuilt::Collapsed(input.clone());
                        }
                        if let NodeKind::Map { op: MapOp::Cast(mid), inputs: grand } = &input.kind {
                            if !input.is_effective_leaf() && !input.cache_requested() {
                                if let Some(MapInput::Node(base)) = grand.first() {
                                    if lossless(base.dtype, *mid) {
                                        self.collapsed += 1;
                                        if base.dtype == *to {
                                            return Rebuilt::Collapsed(base.clone());
                                        }
                                        return Rebuilt::Node(Node::raw(
                                            NodeKind::Map {
                                                op: MapOp::Cast(*to),
                                                inputs: vec![MapInput::Node(base.clone())],
                                            },
                                            node.nrows,
                                            node.ncols,
                                            *to,
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }

                // cbind of a single input is the input (dtypes already
                // promoted by the constructor).
                if matches!(op, MapOp::Bind) && new_inputs.len() == 1 {
                    if let Some(MapInput::Node(only)) = new_inputs.first() {
                        if only.dtype == node.dtype && only.ncols == node.ncols {
                            self.collapsed += 1;
                            return Rebuilt::Collapsed(only.clone());
                        }
                    }
                }

                if !changed {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::Map { op: op.clone(), inputs: new_inputs },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
            NodeKind::AggRow { op, input } => {
                let c = self.canon(input);
                if Arc::ptr_eq(&c, input) {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::AggRow { op: *op, input: c },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
            NodeKind::CumRow { op, input } => {
                let c = self.canon(input);
                if Arc::ptr_eq(&c, input) {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::CumRow { op: *op, input: c },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
            NodeKind::CumCol { op, input } => {
                let c = self.canon(input);
                if Arc::ptr_eq(&c, input) {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::CumCol { op: *op, input: c },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
            NodeKind::SinkFull { op, input } => {
                let c = self.canon(input);
                if Arc::ptr_eq(&c, input) {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::SinkFull { op: *op, input: c },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
            NodeKind::SinkCol { op, input } => {
                let c = self.canon(input);
                if Arc::ptr_eq(&c, input) {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::SinkCol { op: *op, input: c },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
            NodeKind::SinkGramian { a, b } => {
                let (ca, cb) = (self.canon(a), self.canon(b));
                if Arc::ptr_eq(&ca, a) && Arc::ptr_eq(&cb, b) {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::SinkGramian { a: ca, b: cb },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
            NodeKind::SinkGroupBy { data, labels, op, ngroups } => {
                let (cd, cl) = (self.canon(data), self.canon(labels));
                if Arc::ptr_eq(&cd, data) && Arc::ptr_eq(&cl, labels) {
                    Rebuilt::Node(node.clone())
                } else {
                    Rebuilt::Node(Node::raw(
                        NodeKind::SinkGroupBy { data: cd, labels: cl, op: *op, ngroups: *ngroups },
                        node.nrows,
                        node.ncols,
                        node.dtype,
                    ))
                }
            }
        }
    }
}

enum Rebuilt {
    /// A (possibly re-parented) node to hash-cons.
    Node(Arc<Node>),
    /// The node simplified away to an existing canonical node.
    Collapsed(Arc<Node>),
}

/// Rewrite a target set into an equivalent, canonicalized one.
pub fn rewrite(targets: &[Target]) -> Rewrite {
    let nodes_before = super::count_nodes(targets);
    let mut rw = Rewriter::new();
    let targets: Vec<Target> = targets
        .iter()
        .map(|t| match t {
            Target::Sink(n) => Target::Sink(rw.canon(n)),
            Target::Tall { node, storage } => {
                Target::Tall { node: rw.canon(node), storage: *storage }
            }
        })
        .collect();
    let nodes_after = super::count_nodes(&targets);
    Rewrite {
        targets,
        nodes_before,
        nodes_after,
        merged: rw.merged,
        collapsed: rw.collapsed,
        cache_pairs: rw.cache_pairs,
    }
}
