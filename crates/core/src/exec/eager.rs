//! The eager ("base") engine: every DAG operation materialized separately,
//! one full parallel pass per operation — the per-op materialization
//! behaviour the paper attributes to Spark (§4.3, Fig. 10 "base").
//!
//! Implemented by walking the DAG in topological order and invoking the
//! fused engine on a single node at a time, with all of that node's inputs
//! substituted by their already-materialized matrices. Intermediates land
//! in the context's default storage class — on the SSD array for EM runs,
//! exactly the I/O amplification the ablation measures.

use crate::dag::Node;
use crate::exec::{fused, PlanOpts, Target, TargetResult, TargetStorage};
use crate::mat::TasMat;
use crate::session::FlashCtx;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Post-order (children first) traversal of all reachable nodes.
fn topo_order(targets: &[Target]) -> Vec<Arc<Node>> {
    let mut order = Vec::new();
    let mut seen: HashSet<u64> = HashSet::new();
    // Iterative post-order DFS.
    enum Frame {
        Enter(Arc<Node>),
        Exit(Arc<Node>),
    }
    let mut stack: Vec<Frame> = targets
        .iter()
        .map(|t| match t {
            Target::Sink(n) | Target::Tall { node: n, .. } => Frame::Enter(n.clone()),
        })
        .collect();
    let mut entered: HashSet<u64> = HashSet::new();
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(node) => {
                if entered.contains(&node.id) {
                    continue;
                }
                entered.insert(node.id);
                stack.push(Frame::Exit(node.clone()));
                if !node.is_effective_leaf() {
                    for c in node.children() {
                        stack.push(Frame::Enter(c.clone()));
                    }
                }
            }
            Frame::Exit(node) => {
                if seen.insert(node.id) {
                    order.push(node);
                }
            }
        }
    }
    order
}

/// Run targets under the eager engine. `opts.auto_cache` ids are
/// cached after their per-op pass exactly like user `set.cache`
/// requests; the other plan options don't apply to single-op passes.
pub fn run(ctx: &FlashCtx, targets: &[Target], opts: &PlanOpts) -> Vec<TargetResult> {
    let mut resolved: HashMap<u64, TasMat> = HashMap::new();
    let sub_opts = PlanOpts::default();

    for node in topo_order(targets) {
        if node.is_effective_leaf() || node.is_sink() || resolved.contains_key(&node.id) {
            continue;
        }
        if let Some(tl) = ctx.tracer().timeline() {
            // Mark each per-op materialization step; the pass spans the
            // step drives through the fused machinery nest under it in
            // the timeline view.
            tl.named_lane("coordinator").instant(
                "exec",
                format!("eager-step:{}", node.label()),
                [("node", node.id), ("", 0)],
            );
        }
        // The flight recorder keeps the same marker in its bounded ring
        // regardless of trace level, so a post-mortem dump shows which
        // step the eager engine was in.
        ctx.flight_recorder().named_lane("coordinator").instant(
            "exec",
            format!("eager-step:{}", node.label()),
            [("node", node.id), ("", 0)],
        );
        // Materialize this single operation; its children are leaves or
        // already in `resolved`, so the "fused" pass contains one op.
        let result = fused::run_labeled(
            ctx,
            &[Target::Tall { node: node.clone(), storage: TargetStorage::Default }],
            &resolved,
            "eager-step",
            None,
            &sub_opts,
        );
        let mat = match result.into_iter().next().expect("one target, one result") {
            TargetResult::Mat(m) => m,
            TargetResult::Dense(_) => unreachable!("tall target yields a matrix"),
        };
        if node.cache_requested() || opts.auto_cache.contains(&node.id) {
            let (cached, pin) = ctx.admit_cache(mat.clone());
            node.install_cache_pinned(cached, pin);
        }
        resolved.insert(node.id, mat);
    }

    // All tall interior nodes are materialized; evaluate each target.
    targets
        .iter()
        .map(|t| match t {
            Target::Sink(node) => fused::run_labeled(
                ctx,
                &[Target::Sink(node.clone())],
                &resolved,
                "eager-target",
                None,
                &sub_opts,
            )
            .into_iter()
            .next()
            .expect("one target, one result"),
            Target::Tall { node, .. } => {
                if let Some(m) = resolved.get(&node.id) {
                    TargetResult::Mat(m.clone())
                } else {
                    // The target itself is a leaf/generator: one pass.
                    fused::run_labeled(
                        ctx,
                        std::slice::from_ref(t),
                        &resolved,
                        "eager-target",
                        None,
                        &sub_opts,
                    )
                    .into_iter()
                    .next()
                    .expect("one target, one result")
                }
            }
        })
        .collect()
}
