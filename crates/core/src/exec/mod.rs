//! DAG materialization (paper §3.5).
//!
//! `materialize` evaluates a set of targets — sink results and/or tall
//! virtual matrices — over one or more parallel passes, depending on the
//! context's [`crate::session::ExecMode`]:
//!
//! * `CacheFuse` / `MemFuse`: one fused pass over the I/O partitions for
//!   the whole DAG (all targets share the pass);
//! * `Eager`: one pass per operation, Spark-style (the "base" engine of
//!   the paper's Figure 10 ablation).

mod accum;
mod cumcoord;
mod eager;
mod fused;
mod plan;

pub use accum::SinkAcc;
pub use plan::{Plan, PlanOpts, TallOut};

use crate::dag::Node;
use crate::mat::TasMat;
use crate::session::{ExecMode, FlashCtx};
use flashr_linalg::Dense;
use std::collections::HashMap;
use std::sync::Arc;

/// Storage request for a tall target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStorage {
    /// Use the context's default.
    Default,
    /// Force in-memory.
    InMem,
    /// Force the SSD array.
    Em,
}

/// One thing a materialization pass must produce.
#[derive(Clone)]
pub enum Target {
    /// A sink node; yields a small dense matrix.
    Sink(Arc<Node>),
    /// A tall node; yields a materialized [`TasMat`].
    Tall { node: Arc<Node>, storage: TargetStorage },
}

/// What a target produced.
#[derive(Debug, Clone)]
pub enum TargetResult {
    Dense(Dense),
    Mat(TasMat),
}

impl TargetResult {
    /// Unwrap a sink result.
    pub fn into_dense(self) -> Dense {
        match self {
            TargetResult::Dense(d) => d,
            TargetResult::Mat(_) => panic!("expected a sink result, got a tall matrix"),
        }
    }

    /// Unwrap a tall result.
    pub fn into_mat(self) -> TasMat {
        match self {
            TargetResult::Mat(m) => m,
            TargetResult::Dense(_) => panic!("expected a tall matrix, got a sink result"),
        }
    }
}

/// Materialize the targets under the context's engine mode.
///
/// Every plan first goes through the static analyzer
/// ([`crate::analysis::analyze`]): verification always runs (an
/// inconsistent DAG fails here, before any partition is read — use
/// [`crate::fm::FM::check`] for the non-panicking form), and the CSE
/// rewrite is applied unless [`crate::session::CtxConfig::optimize`] is
/// off.
pub fn materialize(ctx: &FlashCtx, targets: &[Target]) -> Vec<TargetResult> {
    if targets.is_empty() {
        return Vec::new();
    }
    let analysis = match crate::analysis::analyze(ctx, targets) {
        Ok(a) => a,
        Err(e) => panic!("{e}"),
    };
    let optimize = ctx.cfg().optimize;
    let (run_targets, nodes_pre) = if optimize {
        (&analysis.targets[..], Some(analysis.report.nodes_before))
    } else {
        (targets, None)
    };

    // Cost-based plan optimizer: price the plan, act on the lints, and
    // record every decision so the pass profile can show predicted vs.
    // actual byte movement. The profile store consumes the same pre-run
    // estimate, so it is priced whenever either consumer is active.
    let cost_optimize = ctx.cfg().cost_optimize;
    let track = cost_optimize || crate::obs::enabled();
    let mut opts = PlanOpts::default();
    let mut decisions: Vec<crate::analysis::optimize::Decision> = Vec::new();
    let mut readahead: Option<u64> = None;
    let mut order: Option<Vec<usize>> = None;
    let cost =
        if track { Some(crate::analysis::cost::estimate(ctx, run_targets)) } else { None };
    if cost_optimize {
        let cost = cost.as_ref().expect("cost_optimize implies a priced plan");
        let outcome = crate::analysis::optimize::plan(ctx, run_targets, cost);
        // A lint the optimizer already fixed (auto-cached W001/W004 node)
        // is exempt from FLASHR_DENY_LINTS promotion.
        if let Err(e) = crate::analysis::deny_gate(&analysis.report.lints, &outcome.auto_cache) {
            panic!("{e}");
        }
        ctx.flight_recorder().named_lane("coordinator").instant(
            "optimize",
            format!("cost-optimize:{} decisions", outcome.decisions.len()),
            [("decisions", outcome.decisions.len() as u64), ("", 0)],
        );
        opts.auto_cache = outcome.auto_cache;
        opts.fuse_barriers = outcome.fuse_barriers;
        opts.pcache_step = outcome.pcache_step;
        readahead = outcome.readahead_parts;
        order = outcome.order;
        decisions = outcome.decisions;
    } else if let Err(e) =
        crate::analysis::deny_gate(&analysis.report.lints, &std::collections::HashSet::new())
    {
        panic!("{e}");
    }

    let stats_before = ctx.stats().snapshot();
    let io_before = ctx.safs().map(|s| s.stats_snapshot());
    // Pass count before the run, so the wall-clock attribution below
    // only looks at the passes this materialization recorded.
    let tracer_passes_before = if track { ctx.tracer().passes().len() } else { 0 };
    if readahead.is_some() {
        if let Some(s) = ctx.safs() {
            s.set_readahead_override(readahead);
        }
    }
    let run_start = std::time::Instant::now();
    let results = match ctx.cfg().mode {
        ExecMode::Eager => match &order {
            Some(ord) => {
                // Run materialization passes in leaf-sharing order, then
                // restore the caller's target order.
                let permuted: Vec<Target> =
                    ord.iter().map(|&i| run_targets[i].clone()).collect();
                let res = eager::run(ctx, &permuted, &opts);
                let mut out: Vec<Option<TargetResult>> = res.iter().map(|_| None).collect();
                for (&i, r) in ord.iter().zip(res) {
                    out[i] = Some(r);
                }
                out.into_iter()
                    .map(|r| r.expect("permutation covers all targets"))
                    .collect()
            }
            None => eager::run(ctx, run_targets, &opts),
        },
        ExecMode::MemFuse | ExecMode::CacheFuse => {
            fused::run(ctx, run_targets, &HashMap::new(), nodes_pre, &opts)
        }
    };
    let wall_nanos = run_start.elapsed().as_nanos() as u64;
    if readahead.is_some() {
        if let Some(s) = ctx.safs() {
            s.set_readahead_override(None);
        }
    }

    if track {
        let cost = cost.as_ref().expect("track implies a priced plan");
        let exec_delta = stats_before.delta(&ctx.stats().snapshot());
        let io_delta = match (io_before.as_ref(), ctx.safs().map(|s| s.stats_snapshot())) {
            (Some(before), Some(after)) => Some(before.delta(&after)),
            _ => None,
        };
        let io_read_delta = io_delta.as_ref().map(|d| d.read_bytes).unwrap_or(0);
        let passes = ctx.tracer().passes();
        let new_passes = &passes[tracer_passes_before.min(passes.len())..];
        let lanes = ctx.tracer().timeline().map(|t| t.snapshot()).unwrap_or_default();
        let verdict = crate::trace::CriticalPath::attribute(
            new_passes,
            &lanes,
            (exec_delta.compute_nanos, exec_delta.io_wait_nanos, exec_delta.write_stall_nanos),
        );
        if cost_optimize {
            decisions.push(calibration_decision(&verdict, cost, io_read_delta));
        }
        // Score the device-read prediction against what the SAFS
        // counters measured — the number the calibration A/B gate and
        // the `flashr_calib_prediction_error_bytes` gauge report.
        ctx.calib_state().record_prediction(cost.device_read_bytes, io_read_delta);
        fill_decision_actuals(run_targets, &mut decisions, &exec_delta, io_read_delta);
        crate::obs::record(
            ctx,
            &crate::obs::Record {
                targets: run_targets,
                cost,
                decisions: &decisions,
                verdict: &verdict,
                exec_delta: &exec_delta,
                io_delta: io_delta.as_ref(),
                wall_nanos,
            },
        );
    }

    if !decisions.is_empty() {
        let stats = ctx.stats();
        // The calibration hint is log-only: it rides in the decision list
        // for pass profiles but is not an *actionable* optimizer decision,
        // so it stays out of the counter.
        let actionable = decisions
            .iter()
            .filter(|d| !matches!(d.kind, crate::analysis::optimize::DecisionKind::Calibration))
            .count();
        stats.add(&stats.opt_decisions, actionable as u64);
        let cached: u64 = decisions
            .iter()
            .filter(|d| matches!(d.kind, crate::analysis::optimize::DecisionKind::AutoCache))
            .map(|d| d.actual_bytes.unwrap_or(0))
            .sum();
        stats.add(&stats.opt_cache_bytes, cached);
        ctx.tracer().attach_optimizer(decisions);
    }

    if optimize {
        // `set.cache` requests on merged originals were honoured on their
        // canonical representatives; copy the installed caches back so the
        // user's handles become effective leaves too.
        for (orig, canon) in &analysis.cache_pairs {
            if let Some(m) = canon.cached() {
                orig.install_cache(m.clone());
            }
        }
    }
    results
}

/// The calibration decision (recorded as a
/// [`DecisionKind::Calibration`]): where the wall clock of this
/// materialization actually went, read against the byte-based cost
/// model's predictions. With [`crate::session::CtxConfig::calibrate`]
/// the prediction is the history-fitted one and the residual it records
/// is the calibration loop's score; without, it documents the raw
/// cold-cache bound. Either way it changes no plan — the verdict lands
/// in pass profiles, bench artifacts and the profile store so mispriced
/// plans are visible.
///
/// [`DecisionKind::Calibration`]: crate::analysis::optimize::DecisionKind::Calibration
fn calibration_decision(
    verdict: &crate::trace::WallAttribution,
    cost: &crate::analysis::cost::CostEstimate,
    io_read_delta: u64,
) -> crate::analysis::optimize::Decision {
    let ms = |nanos: u64| nanos / 1_000_000;
    crate::analysis::optimize::Decision {
        kind: crate::analysis::optimize::DecisionKind::Calibration,
        node: 0,
        detail: format!(
            "{} verdict {}: compute {}ms, io-wait {}ms, write-stall {}ms, idle {}ms over \
             {} pass(es); device-read predicted {} actual {} (residual {}{})",
            verdict.source,
            verdict.bound,
            ms(verdict.compute_nanos),
            ms(verdict.io_wait_nanos),
            ms(verdict.write_stall_nanos),
            ms(verdict.idle_nanos),
            verdict.passes,
            cost.device_read_bytes,
            io_read_delta,
            cost.device_read_bytes.abs_diff(io_read_delta),
            if cost.calibrated { ", calibrated" } else { "" },
        ),
        predicted_bytes: cost.device_read_bytes,
        actual_bytes: None,
    }
}

/// Post-run bookkeeping for optimizer decisions: scrape what actually
/// happened (bytes cached, chunk bytes produced, device bytes read) from
/// the engine and I/O counter deltas and stamp it into each decision
/// record.
fn fill_decision_actuals(
    targets: &[Target],
    decisions: &mut [crate::analysis::optimize::Decision],
    exec_delta: &crate::stats::ExecStatsSnapshot,
    io_read_delta: u64,
) {
    use crate::analysis::optimize::DecisionKind;

    let nodes = reachable_by_id(targets);
    for d in decisions.iter_mut() {
        d.actual_bytes = Some(match d.kind {
            DecisionKind::AutoCache => match nodes.get(&d.node) {
                Some(n) if n.cached().is_some() => crate::analysis::cost::mat_bytes(n),
                _ => 0,
            },
            DecisionKind::FusionBarrier => nodes
                .get(&d.node)
                .map(|n| crate::analysis::cost::mat_bytes(n))
                .unwrap_or(0),
            DecisionKind::PcacheStep => exec_delta.node_chunk_bytes,
            // The graduated calibration decision scores its prediction
            // against the same measured device reads.
            DecisionKind::Readahead | DecisionKind::PassOrder | DecisionKind::Calibration => {
                io_read_delta
            }
        });
    }
}

/// Every node reachable from the targets, by id. Traverses through
/// effective leaves (a just-cached node is one) so post-run lookups still
/// find interior nodes the optimizer acted on.
fn reachable_by_id(targets: &[Target]) -> HashMap<u64, Arc<Node>> {
    let mut out: HashMap<u64, Arc<Node>> = HashMap::new();
    let mut stack: Vec<Arc<Node>> = targets
        .iter()
        .map(|t| match t {
            Target::Sink(n) | Target::Tall { node: n, .. } => n.clone(),
        })
        .collect();
    while let Some(node) = stack.pop() {
        if out.insert(node.id, node.clone()).is_some() {
            continue;
        }
        for c in node.children() {
            stack.push(c.clone());
        }
    }
    out
}
