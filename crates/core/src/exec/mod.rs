//! DAG materialization (paper §3.5).
//!
//! `materialize` evaluates a set of targets — sink results and/or tall
//! virtual matrices — over one or more parallel passes, depending on the
//! context's [`crate::session::ExecMode`]:
//!
//! * `CacheFuse` / `MemFuse`: one fused pass over the I/O partitions for
//!   the whole DAG (all targets share the pass);
//! * `Eager`: one pass per operation, Spark-style (the "base" engine of
//!   the paper's Figure 10 ablation).

mod accum;
mod cumcoord;
mod eager;
mod fused;
mod plan;

pub use accum::SinkAcc;
pub use plan::{Plan, TallOut};

use crate::dag::Node;
use crate::mat::TasMat;
use crate::session::{ExecMode, FlashCtx};
use flashr_linalg::Dense;
use std::collections::HashMap;
use std::sync::Arc;

/// Storage request for a tall target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStorage {
    /// Use the context's default.
    Default,
    /// Force in-memory.
    InMem,
    /// Force the SSD array.
    Em,
}

/// One thing a materialization pass must produce.
#[derive(Clone)]
pub enum Target {
    /// A sink node; yields a small dense matrix.
    Sink(Arc<Node>),
    /// A tall node; yields a materialized [`TasMat`].
    Tall { node: Arc<Node>, storage: TargetStorage },
}

/// What a target produced.
#[derive(Debug, Clone)]
pub enum TargetResult {
    Dense(Dense),
    Mat(TasMat),
}

impl TargetResult {
    /// Unwrap a sink result.
    pub fn into_dense(self) -> Dense {
        match self {
            TargetResult::Dense(d) => d,
            TargetResult::Mat(_) => panic!("expected a sink result, got a tall matrix"),
        }
    }

    /// Unwrap a tall result.
    pub fn into_mat(self) -> TasMat {
        match self {
            TargetResult::Mat(m) => m,
            TargetResult::Dense(_) => panic!("expected a tall matrix, got a sink result"),
        }
    }
}

/// Materialize the targets under the context's engine mode.
///
/// Every plan first goes through the static analyzer
/// ([`crate::analysis::analyze`]): verification always runs (an
/// inconsistent DAG fails here, before any partition is read — use
/// [`crate::fm::FM::check`] for the non-panicking form), and the CSE
/// rewrite is applied unless [`crate::session::CtxConfig::optimize`] is
/// off.
pub fn materialize(ctx: &FlashCtx, targets: &[Target]) -> Vec<TargetResult> {
    if targets.is_empty() {
        return Vec::new();
    }
    let analysis = match crate::analysis::analyze(ctx, targets) {
        Ok(a) => a,
        Err(e) => panic!("{e}"),
    };
    let optimize = ctx.cfg().optimize;
    let (run_targets, nodes_pre) = if optimize {
        (&analysis.targets[..], Some(analysis.report.nodes_before))
    } else {
        (targets, None)
    };
    let results = match ctx.cfg().mode {
        ExecMode::Eager => eager::run(ctx, run_targets),
        ExecMode::MemFuse | ExecMode::CacheFuse => {
            fused::run(ctx, run_targets, &HashMap::new(), nodes_pre)
        }
    };
    if optimize {
        // `set.cache` requests on merged originals were honoured on their
        // canonical representatives; copy the installed caches back so the
        // user's handles become effective leaves too.
        for (orig, canon) in &analysis.cache_pairs {
            if let Some(m) = canon.cached() {
                orig.install_cache(m.clone());
            }
        }
    }
    results
}
