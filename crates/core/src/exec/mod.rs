//! DAG materialization (paper §3.5).
//!
//! `materialize` evaluates a set of targets — sink results and/or tall
//! virtual matrices — over one or more parallel passes, depending on the
//! context's [`crate::session::ExecMode`]:
//!
//! * `CacheFuse` / `MemFuse`: one fused pass over the I/O partitions for
//!   the whole DAG (all targets share the pass);
//! * `Eager`: one pass per operation, Spark-style (the "base" engine of
//!   the paper's Figure 10 ablation).

mod accum;
mod cumcoord;
mod eager;
mod fused;
mod plan;

pub use accum::SinkAcc;
pub use plan::{Plan, TallOut};

use crate::dag::Node;
use crate::mat::TasMat;
use crate::session::{ExecMode, FlashCtx};
use flashr_linalg::Dense;
use std::collections::HashMap;
use std::sync::Arc;

/// Storage request for a tall target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetStorage {
    /// Use the context's default.
    Default,
    /// Force in-memory.
    InMem,
    /// Force the SSD array.
    Em,
}

/// One thing a materialization pass must produce.
#[derive(Clone)]
pub enum Target {
    /// A sink node; yields a small dense matrix.
    Sink(Arc<Node>),
    /// A tall node; yields a materialized [`TasMat`].
    Tall { node: Arc<Node>, storage: TargetStorage },
}

/// What a target produced.
#[derive(Debug, Clone)]
pub enum TargetResult {
    Dense(Dense),
    Mat(TasMat),
}

impl TargetResult {
    /// Unwrap a sink result.
    pub fn into_dense(self) -> Dense {
        match self {
            TargetResult::Dense(d) => d,
            TargetResult::Mat(_) => panic!("expected a sink result, got a tall matrix"),
        }
    }

    /// Unwrap a tall result.
    pub fn into_mat(self) -> TasMat {
        match self {
            TargetResult::Mat(m) => m,
            TargetResult::Dense(_) => panic!("expected a tall matrix, got a sink result"),
        }
    }
}

/// Materialize the targets under the context's engine mode.
pub fn materialize(ctx: &FlashCtx, targets: &[Target]) -> Vec<TargetResult> {
    if targets.is_empty() {
        return Vec::new();
    }
    match ctx.cfg().mode {
        ExecMode::Eager => eager::run(ctx, targets),
        ExecMode::MemFuse | ExecMode::CacheFuse => fused::run(ctx, targets, &HashMap::new()),
    }
}
