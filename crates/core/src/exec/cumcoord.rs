//! Cross-partition coordination for `cum.col` (paper §3.3, operation j).
//!
//! FlashR evaluates cumulative operations in a *single* pass by exploiting
//! sequential task dispatch: a thread that has computed partition `i`'s
//! local prefix waits for the running value of partition `i−1`, applies
//! it, and publishes the running value after `i`. Waits always target a
//! strictly earlier partition, and sequential dispatch guarantees every
//! earlier partition is claimed, so the chain resolves without deadlock.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::Duration;

/// Carry chain for one `cum.col` node within one pass.
#[derive(Debug, Default)]
pub struct CumCoord {
    carries: Mutex<HashMap<u64, Vec<f64>>>,
    cv: Condvar,
}

impl CumCoord {
    /// Block until the carry *into* `part` (i.e. the running value after
    /// partition `part − 1`) is available. Partition 0 has no carry.
    pub fn wait_carry(&self, part: u64) -> Option<Vec<f64>> {
        if part == 0 {
            return None;
        }
        let mut carries = self.carries.lock();
        loop {
            if let Some(c) = carries.get(&(part - 1)) {
                return Some(c.clone());
            }
            let timed_out = self
                .cv
                .wait_for(&mut carries, Duration::from_secs(120))
                .timed_out();
            assert!(!timed_out, "cum.col carry for partition {part} never arrived (deadlock?)");
        }
    }

    /// Publish the running value after `part`.
    pub fn publish(&self, part: u64, carry: Vec<f64>) {
        let mut carries = self.carries.lock();
        carries.insert(part, carry);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn part_zero_needs_no_carry() {
        let c = CumCoord::default();
        assert!(c.wait_carry(0).is_none());
    }

    #[test]
    fn publish_then_wait() {
        let c = CumCoord::default();
        c.publish(0, vec![5.0]);
        assert_eq!(c.wait_carry(1), Some(vec![5.0]));
    }

    #[test]
    fn wait_blocks_until_publish() {
        let c = Arc::new(CumCoord::default());
        let c2 = c.clone();
        let h = std::thread::spawn(move || c2.wait_carry(3));
        std::thread::sleep(Duration::from_millis(20));
        c.publish(2, vec![1.0, 2.0]);
        assert_eq!(h.join().unwrap(), Some(vec![1.0, 2.0]));
    }

    #[test]
    fn chain_across_threads() {
        let c = Arc::new(CumCoord::default());
        let mut handles = Vec::new();
        // Partitions 1..8 each wait for their predecessor, add their index.
        for part in 1..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let carry = c.wait_carry(part).unwrap();
                c.publish(part, vec![carry[0] + part as f64]);
            }));
        }
        c.publish(0, vec![0.0]);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.wait_carry(8), Some(vec![(1..8).sum::<u64>() as f64]));
    }
}
