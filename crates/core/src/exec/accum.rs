//! Thread-local sink accumulators (paper §3.3, operations g/h/i).
//!
//! Cross-partition aggregations (full/column aggregation, groupby,
//! Gramian) are accumulated per worker thread while partitions stream
//! through the fused pass, then merged once at the end — no
//! synchronization on the hot path.

use crate::chunk::Chunk;
use crate::dag::{Node, NodeKind};
use crate::element::Element;
use crate::ops::simd::{fold_col, SimdLevel};
use crate::ops::AggOp;
use flashr_linalg::simd::dot_f64;
use flashr_linalg::Dense;

/// One thread's partial state for one sink node.
#[derive(Debug)]
pub enum SinkAcc {
    /// `agg` (1 slot) or `agg.col` (p slots).
    Col { op: AggOp, vals: Vec<f64>, count: u64, elems: u64 },
    /// `t(A) %*% B`: p×k partial product.
    Gramian { p: usize, k: usize, acc: Vec<f64> },
    /// `groupby.row`: ngroups×p partials plus group counts.
    GroupBy { op: AggOp, ngroups: usize, p: usize, vals: Vec<f64>, counts: Vec<u64> },
}

impl SinkAcc {
    /// Fresh accumulator for a sink node.
    pub fn new_for(node: &Node) -> SinkAcc {
        match &node.kind {
            NodeKind::SinkFull { op, .. } => {
                SinkAcc::Col { op: *op, vals: vec![op.identity(); 1], count: 0, elems: 0 }
            }
            NodeKind::SinkCol { op, input } => {
                SinkAcc::Col { op: *op, vals: vec![op.identity(); input.ncols], count: 0, elems: 0 }
            }
            NodeKind::SinkGramian { a, b } => {
                SinkAcc::Gramian { p: a.ncols, k: b.ncols, acc: vec![0.0; a.ncols * b.ncols] }
            }
            NodeKind::SinkGroupBy { data, op, ngroups, .. } => SinkAcc::GroupBy {
                op: *op,
                ngroups: *ngroups,
                p: data.ncols,
                vals: vec![op.identity(); *ngroups * data.ncols],
                counts: vec![0; *ngroups],
            },
            other => panic!("not a sink node: {other:?}"),
        }
    }

    /// Fold one Pcache chunk of the sink's input(s).
    ///
    /// * `Col`/`Gramian` pass the data chunk(s);
    /// * `GroupBy` additionally passes the labels chunk (i64, one column).
    pub fn update(&mut self, chunks: &[&Chunk]) {
        self.update_level(SimdLevel::active(), chunks);
    }

    /// [`SinkAcc::update`] with an explicit SIMD dispatch level — used by
    /// the kernel-bandwidth probe and cross-level tests.
    pub fn update_level(&mut self, level: SimdLevel, chunks: &[&Chunk]) {
        match self {
            SinkAcc::Col { op, vals, count, elems } => {
                let input = chunks[0];
                let rows = input.rows();
                *count += rows as u64;
                *elems += (rows * input.cols()) as u64;
                let full = vals.len() == 1;
                crate::dispatch!(input.dtype(), T, {
                    for c in 0..input.cols() {
                        let col = input.col::<T>(c);
                        let slot = if full { 0 } else { c };
                        vals[slot] = fold_col::<T>(level, *op, vals[slot], col);
                    }
                });
            }
            SinkAcc::Gramian { p, k, acc } => {
                let a = chunks[0];
                let b = chunks[1];
                assert_eq!(a.rows(), b.rows(), "gramian chunk row mismatch");
                // acc (row-major p×k) += Aᵀ B. Both chunks are
                // column-major, so every (i, j) entry is a dot product of
                // two contiguous columns — far better locality than a
                // strided GEMM. When both inputs are the same chunk
                // (crossprod), only the upper triangle is computed.
                let same = std::ptr::eq(a.as_bytes().as_ptr(), b.as_bytes().as_ptr()) && *p == *k;
                for i in 0..*p {
                    let ca = a.col::<f64>(i);
                    let j0 = if same { i } else { 0 };
                    for j in j0..*k {
                        let cb = b.col::<f64>(j);
                        let dot = dot_f64(level, ca, cb);
                        acc[i * *k + j] += dot;
                        if same && j != i {
                            acc[j * *k + i] += dot;
                        }
                    }
                }
            }
            SinkAcc::GroupBy { op, ngroups, p, vals, counts } => {
                let data = chunks[0];
                let labels = chunks[1];
                assert_eq!(labels.cols(), 1, "labels must be one column");
                assert_eq!(labels.rows(), data.rows(), "labels/data row mismatch");
                let rows = data.rows();
                let lab = labels.col::<i64>(0);
                for &g in lab.iter().take(rows) {
                    assert!(
                        (0..*ngroups as i64).contains(&g),
                        "group label {g} outside [0, {ngroups})"
                    );
                    counts[g as usize] += 1;
                }
                crate::dispatch!(data.dtype(), T, {
                    for c in 0..*p {
                        let col = data.col::<T>(c);
                        for r in 0..rows {
                            let g = lab[r] as usize;
                            let slot = g * *p + c;
                            vals[slot] = op.fold(vals[slot], col[r].to_f64());
                        }
                    }
                });
            }
        }
    }

    /// Merge another thread's partial into this one.
    pub fn merge(&mut self, other: SinkAcc) {
        match (self, other) {
            (
                SinkAcc::Col { op, vals, count, elems },
                SinkAcc::Col { vals: ov, count: oc, elems: oe, .. },
            ) => {
                for (a, b) in vals.iter_mut().zip(ov) {
                    *a = op.combine(*a, b);
                }
                *count += oc;
                *elems += oe;
            }
            (SinkAcc::Gramian { acc, .. }, SinkAcc::Gramian { acc: oacc, .. }) => {
                for (a, b) in acc.iter_mut().zip(oacc) {
                    *a += b;
                }
            }
            (
                SinkAcc::GroupBy { op, vals, counts, .. },
                SinkAcc::GroupBy { vals: ov, counts: ocnt, .. },
            ) => {
                for (a, b) in vals.iter_mut().zip(ov) {
                    *a = op.combine(*a, b);
                }
                for (a, b) in counts.iter_mut().zip(ocnt) {
                    *a += b;
                }
            }
            _ => panic!("merging mismatched sink accumulators"),
        }
    }

    /// Turn the merged accumulator into the sink's dense result.
    pub fn finalize(self) -> Dense {
        match self {
            SinkAcc::Col { op, mut vals, count, elems } => {
                if op == AggOp::Mean {
                    // Full agg (one slot) folded every element into slot
                    // 0 → divide by the element count; agg.col divides
                    // each column slot by the row count.
                    if vals.len() == 1 {
                        vals[0] /= (elems.max(1)) as f64;
                    } else {
                        let n = count.max(1) as f64;
                        for v in &mut vals {
                            *v /= n;
                        }
                    }
                }
                if op == AggOp::Count {
                    let e = elems as f64;
                    let c = count as f64;
                    let full = vals.len() == 1;
                    vals.fill(if full { e } else { c });
                }
                Dense::from_vec(1, vals.len(), vals)
            }
            SinkAcc::Gramian { p, k, acc } => Dense::from_vec(p, k, acc),
            SinkAcc::GroupBy { op, ngroups, p, mut vals, counts } => {
                if op == AggOp::Mean {
                    for g in 0..ngroups {
                        let n = counts[g].max(1) as f64;
                        for c in 0..p {
                            vals[g * p + c] /= n;
                        }
                    }
                }
                if op == AggOp::Count {
                    for g in 0..ngroups {
                        for c in 0..p {
                            vals[g * p + c] = counts[g] as f64;
                        }
                    }
                }
                Dense::from_vec(ngroups, p, vals)
            }
        }
    }

    /// Group counts (groupby only) — used by `Mean` finalization tests.
    pub fn group_counts(&self) -> Option<&[u64]> {
        match self {
            SinkAcc::GroupBy { counts, .. } => Some(counts),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Node;
    use crate::mat::TasMat;
    use crate::part::Partitioner;

    fn leaf(n: u64, p: usize) -> std::sync::Arc<Node> {
        Node::leaf(TasMat::from_fn::<f64>(n, p, Partitioner::new(64), |r, c| {
            (r * 10 + c as u64) as f64
        }))
    }

    #[test]
    fn col_sum_accumulates_and_merges() {
        let node = Node::sink_col(AggOp::Sum, leaf(10, 2));
        let mut a = SinkAcc::new_for(&node);
        let mut b = SinkAcc::new_for(&node);
        let c1 = Chunk::from_slice::<f64>(2, 2, &[1.0, 2.0, 10.0, 20.0]);
        let c2 = Chunk::from_slice::<f64>(1, 2, &[5.0, 50.0]);
        a.update(&[&c1]);
        b.update(&[&c2]);
        a.merge(b);
        let d = a.finalize();
        assert_eq!(d.at(0, 0), 8.0);
        assert_eq!(d.at(0, 1), 80.0);
    }

    #[test]
    fn full_min_over_chunks() {
        let node = Node::sink_full(AggOp::Min, leaf(10, 2));
        let mut a = SinkAcc::new_for(&node);
        let c = Chunk::from_slice::<f64>(2, 2, &[3.0, -1.0, 7.0, 2.0]);
        a.update(&[&c]);
        assert_eq!(a.finalize().at(0, 0), -1.0);
    }

    #[test]
    fn gramian_matches_reference() {
        let a_data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 rows, 2 cols col-major
        let node = Node::sink_gramian(leaf(3, 2), leaf(3, 2));
        let mut acc = SinkAcc::new_for(&node);
        let ca = Chunk::from_slice::<f64>(3, 2, &a_data);
        acc.update(&[&ca, &ca]);
        let g = acc.finalize();
        // cols: x=[1,2,3], y=[4,5,6]; xᵀx=14, xᵀy=32, yᵀy=77
        assert_eq!(g.at(0, 0), 14.0);
        assert_eq!(g.at(0, 1), 32.0);
        assert_eq!(g.at(1, 0), 32.0);
        assert_eq!(g.at(1, 1), 77.0);
    }

    #[test]
    fn groupby_sum_and_counts() {
        let data = leaf(6, 2);
        let labels = Node::leaf(TasMat::from_fn::<i64>(6, 1, Partitioner::new(64), |r, _| {
            (r % 2) as i64
        }));
        let node = Node::sink_groupby(data, labels, AggOp::Sum, 2);
        let mut acc = SinkAcc::new_for(&node);
        let d = Chunk::from_slice::<f64>(4, 2, &[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0]);
        let l = Chunk::from_slice::<i64>(4, 1, &[0, 1, 0, 1]);
        acc.update(&[&d, &l]);
        assert_eq!(acc.group_counts().unwrap(), &[2, 2]);
        let out = acc.finalize();
        assert_eq!(out.at(0, 0), 4.0); // rows 0,2 of col 0: 1+3
        assert_eq!(out.at(1, 0), 6.0); // rows 1,3: 2+4
        assert_eq!(out.at(0, 1), 40.0);
        assert_eq!(out.at(1, 1), 60.0);
    }

    #[test]
    fn groupby_mean_divides_by_group_size() {
        let data = leaf(4, 1);
        let labels = Node::leaf(TasMat::from_fn::<i64>(4, 1, Partitioner::new(64), |_, _| 0));
        let node = Node::sink_groupby(data, labels, AggOp::Mean, 1);
        let mut acc = SinkAcc::new_for(&node);
        let d = Chunk::from_slice::<f64>(4, 1, &[1.0, 2.0, 3.0, 6.0]);
        let l = Chunk::from_slice::<i64>(4, 1, &[0, 0, 0, 0]);
        acc.update(&[&d, &l]);
        assert_eq!(acc.finalize().at(0, 0), 3.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_panics() {
        let data = leaf(2, 1);
        let labels = Node::leaf(TasMat::from_fn::<i64>(2, 1, Partitioner::new(64), |_, _| 0));
        let node = Node::sink_groupby(data, labels, AggOp::Sum, 2);
        let mut acc = SinkAcc::new_for(&node);
        let d = Chunk::from_slice::<f64>(1, 1, &[1.0]);
        let l = Chunk::from_slice::<i64>(1, 1, &[5]);
        acc.update(&[&d, &l]);
    }
}
