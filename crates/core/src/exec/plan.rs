//! Materialization planning: DAG discovery, validation, output layout and
//! Pcache sizing.

use crate::analysis::chains::{self, CompiledChain};
use crate::dag::{Node, NodeKind};
use crate::exec::{Target, TargetStorage};
use crate::mat::TasMat;
use crate::part::{pcache_rows, Partitioner};
use crate::session::{ExecMode, FlashCtx, StorageClass};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Plan-build inputs from the cost-based optimizer
/// ([`crate::analysis::optimize`]); [`Default`] is "no decisions", the
/// behaviour of [`Plan::build`].
#[derive(Debug, Clone, Default)]
pub struct PlanOpts {
    /// Node ids to materialize as `set.cache` byproducts even though
    /// the nodes carry no user `set.cache` request.
    pub auto_cache: HashSet<u64>,
    /// Node ids chain discovery must not swallow as interiors.
    pub fuse_barriers: HashSet<u64>,
    /// Pcache chunk-height override in rows (CacheFuse mode only).
    pub pcache_step: Option<usize>,
}

/// A tall matrix the pass must produce.
#[derive(Debug, Clone)]
pub struct TallOut {
    pub node: Arc<Node>,
    pub storage: StorageClass,
    /// Result slot in the caller's target list (`None` for `set.cache`
    /// byproducts).
    pub slot: Option<usize>,
    /// Whether to install the result as the node's cache.
    pub is_cache: bool,
}

/// The validated plan for one fused pass.
pub struct Plan {
    pub nrows: u64,
    pub parter: Partitioner,
    pub nparts: u64,
    /// Pcache chunk height in rows.
    pub pcache_step: usize,
    pub sinks: Vec<(usize, Arc<Node>)>,
    pub talls: Vec<TallOut>,
    /// Leaves whose partitions must be fetched each partition
    /// (node id → matrix), including cached and eager-resolved nodes.
    pub leaves: Vec<(u64, TasMat)>,
    /// `cum.col` nodes needing cross-partition carries.
    pub cum_nodes: Vec<Arc<Node>>,
    /// Eager-engine substitutions: node id → already-materialized matrix.
    pub resolved: HashMap<u64, TasMat>,
    /// How many consumers read each node's Pcache chunk within one range
    /// (paper §3.5.1: the per-partition use counter driving buffer
    /// recycling). Counts DAG parents plus target/sink reads. Interior
    /// nodes of compiled chains are removed — they never materialize.
    pub consumers: HashMap<u64, usize>,
    /// Compiled map chains, root node id → kernel + inputs (empty when
    /// `CtxConfig::fuse_chains` is off).
    pub chains: HashMap<u64, CompiledChain>,
    /// Interior node ids of all compiled chains: skipped by the memo,
    /// absent from `consumers`, folded into their root's trace profile.
    pub fused_interior: HashSet<u64>,
    /// Distinct DAG nodes the pass covers (including leaves).
    pub nnodes: usize,
}

impl Plan {
    /// Resolve a node to a materialized matrix if the pass may treat it
    /// as a leaf.
    pub fn leaf_mat<'a>(&'a self, node: &'a Node) -> Option<&'a TasMat> {
        if let Some(m) = self.resolved.get(&node.id) {
            return Some(m);
        }
        if let Some(m) = node.cached() {
            return Some(m);
        }
        match &node.kind {
            NodeKind::Leaf(m) => Some(m),
            _ => None,
        }
    }

    /// Build and validate the plan with no optimizer decisions.
    pub fn build(ctx: &FlashCtx, targets: &[Target], resolved: &HashMap<u64, TasMat>) -> Plan {
        Plan::build_with(ctx, targets, resolved, &PlanOpts::default())
    }

    /// Build and validate the plan, applying the optimizer's decisions
    /// ([`PlanOpts`]).
    pub fn build_with(
        ctx: &FlashCtx,
        targets: &[Target],
        resolved: &HashMap<u64, TasMat>,
        opts: &PlanOpts,
    ) -> Plan {
        let build_t0 = ctx.tracer().timeline().map(|_| flashr_safs::now_nanos());
        let mut sinks = Vec::new();
        let mut talls: Vec<TallOut> = Vec::new();
        let mut leaves: Vec<(u64, TasMat)> = Vec::new();
        let mut cum_nodes = Vec::new();
        let mut consumers: HashMap<u64, usize> = HashMap::new();
        let mut visited: HashMap<u64, ()> = HashMap::new();
        let mut tall_nrows: Option<u64> = None;
        let mut parter: Option<Partitioner> = None;
        let mut row_bytes_total = 0usize;

        // Iterative DFS from all target roots.
        let mut reach: Vec<Arc<Node>> = Vec::new();
        let mut stack: Vec<Arc<Node>> = Vec::new();
        for (slot, t) in targets.iter().enumerate() {
            match t {
                Target::Sink(node) => {
                    assert!(node.is_sink(), "Target::Sink on a non-sink node");
                    // The sink accumulator reads each input chunk once.
                    for child in node.children() {
                        *consumers.entry(child.id).or_default() += 1;
                    }
                    sinks.push((slot, node.clone()));
                    stack.push(node.clone());
                }
                Target::Tall { node, storage } => {
                    assert!(!node.is_sink(), "Target::Tall on a sink node");
                    let storage = match storage {
                        TargetStorage::Default => ctx.cfg().storage,
                        TargetStorage::InMem => StorageClass::InMem,
                        TargetStorage::Em => StorageClass::Em,
                    };
                    // The output copy reads the node's chunk once.
                    *consumers.entry(node.id).or_default() += 1;
                    talls.push(TallOut { node: node.clone(), storage, slot: Some(slot), is_cache: false });
                    stack.push(node.clone());
                }
            }
        }

        while let Some(node) = stack.pop() {
            if visited.contains_key(&node.id) {
                continue;
            }
            visited.insert(node.id, ());
            reach.push(node.clone());

            let is_resolved_leaf = resolved.contains_key(&node.id) || node.cached().is_some();

            if !node.is_sink() {
                // Every tall node must share the partition dimension.
                match tall_nrows {
                    None => tall_nrows = Some(node.nrows),
                    Some(n) => {
                        if n != node.nrows {
                            panic!(
                                "{}",
                                crate::analysis::PlanError::new(
                                    &node,
                                    crate::analysis::PlanErrorKind::PartitionMismatch,
                                    format!(
                                        "matrices in one DAG must share the partition \
                                         dimension: {} rows vs {} rows",
                                        node.nrows, n
                                    ),
                                )
                            );
                        }
                    }
                }
                row_bytes_total += node.ncols * node.dtype.size();
            }

            if let Some(mat) = resolved
                .get(&node.id)
                .or_else(|| node.cached())
                .or(match &node.kind {
                    NodeKind::Leaf(m) => Some(m),
                    _ => None,
                })
            {
                match parter {
                    None => parter = Some(mat.parter()),
                    Some(p) => assert_eq!(
                        p,
                        mat.parter(),
                        "matrices in one DAG must share the I/O partitioning"
                    ),
                }
                leaves.push((node.id, mat.clone()));
                continue; // do not descend past materialized data
            }

            if let NodeKind::CumCol { .. } = node.kind {
                cum_nodes.push(node.clone());
            }

            // set.cache: materialize as a byproduct of this pass. The
            // optimizer's auto-cache decisions join the user's explicit
            // requests here (and count the same extra consumer read).
            if (node.cache_requested() || opts.auto_cache.contains(&node.id))
                && !node.is_sink()
                && !is_resolved_leaf
                && !matches!(node.kind, NodeKind::Leaf(_) | NodeKind::Gen(_))
                && !talls.iter().any(|t| t.node.id == node.id)
            {
                // The paper caches small reused vectors (like k-means
                // assignments) in RAM by default; `cache_storage` can
                // redirect them to the SSDs.
                *consumers.entry(node.id).or_default() += 1;
                talls.push(TallOut {
                    node: node.clone(),
                    storage: ctx.cfg().cache_storage,
                    slot: None,
                    is_cache: true,
                });
            }

            for child in node.children() {
                if !node.is_sink() {
                    // Sinks counted their inputs at target registration.
                    *consumers.entry(child.id).or_default() += 1;
                }
                stack.push(child.clone());
            }
        }

        // Chain compilation (tentpole of the map-chain compiler): find
        // maximal single-consumer map chains and compile each into a
        // strip-mined kernel. Interior nodes lose their consumer
        // entries — nothing ever materializes or recycles them. Note
        // the Pcache step is still sized over *all* tall nodes
        // (including interior ones): fusion must not change chunking,
        // so `fuse_chains` on/off stays bit-comparable for sinks.
        let mut chain_set = chains::ChainSet::default();
        if ctx.cfg().fuse_chains {
            let is_mat =
                |n: &Node| resolved.contains_key(&n.id) || n.is_effective_leaf();
            chain_set = chains::discover(&reach, &consumers, &is_mat, &opts.fuse_barriers);
            for id in &chain_set.interior {
                consumers.remove(id);
            }
        }

        let nrows = tall_nrows.expect("DAG contains no tall matrices");
        let parter = parter.unwrap_or_else(|| ctx.parter());
        let nparts = parter.nparts(nrows);

        let full_rows = parter.rows_per_part() as usize;
        let pcache_step = match ctx.cfg().mode {
            // The optimizer may raise the step for sink-free plans whose
            // chain interiors hold no live chunk; without an override the
            // step is sized over *all* tall rows (including interiors) so
            // `fuse_chains` on/off stays bit-comparable for sinks.
            ExecMode::CacheFuse => opts
                .pcache_step
                .unwrap_or_else(|| pcache_rows(ctx.cfg().pcache_bytes, row_bytes_total, full_rows))
                .min(full_rows)
                .max(1),
            // MemFuse (and the per-op passes of Eager) work on whole
            // I/O partitions.
            ExecMode::MemFuse | ExecMode::Eager => full_rows,
        };

        if let (Some(tl), Some(t0)) = (ctx.tracer().timeline(), build_t0) {
            tl.lane().complete(
                "exec",
                "plan-build",
                t0,
                flashr_safs::now_nanos(),
                [("nodes", visited.len() as u64), ("nparts", nparts)],
            );
        }
        Plan {
            nrows,
            parter,
            nparts,
            pcache_step,
            sinks,
            talls,
            leaves,
            cum_nodes,
            resolved: resolved.clone(),
            consumers,
            chains: chain_set.chains,
            fused_interior: chain_set.interior,
            nnodes: visited.len(),
        }
    }

    /// Every node the pass covers, in deterministic DFS order from the
    /// targets, without descending past materialized data.
    pub fn collect_nodes(&self) -> Vec<Arc<Node>> {
        let mut order = Vec::new();
        let mut seen: HashMap<u64, ()> = HashMap::new();
        let mut stack: Vec<Arc<Node>> = Vec::new();
        for (_, s) in self.sinks.iter().rev() {
            stack.push(s.clone());
        }
        for t in self.talls.iter().rev() {
            stack.push(t.node.clone());
        }
        while let Some(node) = stack.pop() {
            if seen.contains_key(&node.id) {
                continue;
            }
            seen.insert(node.id, ());
            let materialized = self.leaf_mat(&node).is_some();
            if !materialized {
                for child in node.children().into_iter().rev() {
                    stack.push(child.clone());
                }
            }
            order.push(node);
        }
        order
    }

    /// `id: label [shape dtype]`, with a marker for materialized data.
    fn describe(&self, node: &Node) -> String {
        let mat = if self.leaf_mat(node).is_some() && !matches!(node.kind, NodeKind::Leaf(_)) {
            " (materialized)"
        } else {
            ""
        };
        format!("n{}: {} [{}x{} {:?}]{}", node.id, node.label(), node.nrows, node.ncols, node.dtype, mat)
    }

    /// Render the plan as an indented text tree — what R's `explain()`
    /// would print for the pending DAG.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan: {} nodes, {} parts x {} rows, pcache step {} rows, {} sink(s), {} tall output(s)\n",
            self.nnodes,
            self.nparts,
            self.parter.rows_per_part(),
            self.pcache_step,
            self.sinks.len(),
            self.talls.len(),
        ));
        let mut roots: Vec<&u64> = self.chains.keys().collect();
        roots.sort();
        for root in roots {
            let c = &self.chains[root];
            out.push_str(&format!(
                "fused at n{root}: {} ({} ops, {} interior, saves {} B/row)\n",
                c.label,
                c.len,
                c.interior.len(),
                c.saved_bytes_per_row
            ));
        }
        fn walk(plan: &Plan, node: &Arc<Node>, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&plan.describe(node));
            out.push('\n');
            if plan.leaf_mat(node).is_none() {
                for child in node.children() {
                    walk(plan, child, depth + 1, out);
                }
            }
        }
        for (slot, s) in &self.sinks {
            out.push_str(&format!("sink (slot {slot}):\n"));
            walk(self, s, 1, &mut out);
        }
        for t in &self.talls {
            match t.slot {
                Some(slot) => out.push_str(&format!("tall (slot {slot}):\n")),
                None => out.push_str("tall (set.cache byproduct):\n"),
            }
            walk(self, &t.node, 1, &mut out);
        }
        out
    }

    /// Render the plan as Graphviz DOT. Nodes carry shape/dtype labels;
    /// everything evaluated inside the single fused pass sits in one
    /// cluster, materialized inputs outside it.
    pub fn explain_dot(&self) -> String {
        let nodes = self.collect_nodes();
        let mut out = String::new();
        out.push_str("digraph flashr_plan {\n");
        out.push_str("  rankdir=BT;\n");
        out.push_str("  node [shape=box, fontsize=10];\n");
        out.push_str("  subgraph cluster_fused {\n");
        out.push_str(&format!(
            "    label=\"fused pass ({} parts, pcache step {})\";\n",
            self.nparts, self.pcache_step
        ));
        for node in &nodes {
            if self.leaf_mat(node).is_some() {
                continue;
            }
            let shape = if node.is_sink() { ", shape=ellipse" } else { "" };
            out.push_str(&format!(
                "    n{} [label=\"{}\\n{}x{} {:?}\"{}];\n",
                node.id,
                node.label(),
                node.nrows,
                node.ncols,
                node.dtype,
                shape
            ));
        }
        out.push_str("  }\n");
        for node in &nodes {
            if self.leaf_mat(node).is_none() {
                continue;
            }
            out.push_str(&format!(
                "  n{} [label=\"{}\\n{}x{} {:?}\", style=filled, fillcolor=lightgrey];\n",
                node.id,
                node.label(),
                node.nrows,
                node.ncols,
                node.dtype
            ));
        }
        for node in &nodes {
            if self.leaf_mat(node).is_some() {
                continue;
            }
            for child in node.children() {
                out.push_str(&format!("  n{} -> n{};\n", child.id, node.id));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::MapInput;
    use crate::ops::{AggOp, BinaryOp};

    fn ctx() -> FlashCtx {
        let cfg = crate::session::CtxConfig { rows_per_part: 64, ..Default::default() };
        FlashCtx::with_config(cfg, None)
    }

    fn leaf(n: u64, p: usize) -> Arc<Node> {
        Node::leaf(TasMat::from_fn::<f64>(n, p, Partitioner::new(64), |r, c| (r + c as u64) as f64))
    }

    #[test]
    fn collects_sinks_talls_and_leaves() {
        let ctx = ctx();
        let a = leaf(100, 2);
        let b = leaf(100, 2);
        let sum = Node::map_binary(BinaryOp::Add, a.clone(), MapInput::Node(b.clone()), false);
        let sink = Node::sink_col(AggOp::Sum, sum.clone());
        let plan = Plan::build(
            &ctx,
            &[Target::Sink(sink), Target::Tall { node: sum, storage: TargetStorage::Default }],
            &HashMap::new(),
        );
        assert_eq!(plan.sinks.len(), 1);
        assert_eq!(plan.talls.len(), 1);
        assert_eq!(plan.leaves.len(), 2);
        assert_eq!(plan.nrows, 100);
        assert_eq!(plan.nparts, 2);
    }

    #[test]
    fn cache_flag_adds_byproduct_output() {
        let ctx = ctx();
        let a = leaf(100, 2);
        let doubled = Node::map_binary(
            BinaryOp::Mul,
            a,
            MapInput::Scalar(crate::dtype::Scalar::F64(2.0)),
            false,
        );
        doubled.set_cache(true);
        let sink = Node::sink_full(AggOp::Sum, doubled.clone());
        let plan = Plan::build(&ctx, &[Target::Sink(sink)], &HashMap::new());
        assert_eq!(plan.talls.len(), 1);
        assert!(plan.talls[0].is_cache);
        assert_eq!(plan.talls[0].node.id, doubled.id);
    }

    #[test]
    #[should_panic]
    fn mismatched_nrows_rejected() {
        let ctx = ctx();
        let a = leaf(100, 1);
        let b = leaf(64, 1);
        // Two disconnected sinks over different-height matrices in one pass.
        let s1 = Node::sink_full(AggOp::Sum, a);
        let s2 = Node::sink_full(AggOp::Sum, b);
        let _ = Plan::build(&ctx, &[Target::Sink(s1), Target::Sink(s2)], &HashMap::new());
    }

    #[test]
    fn mem_fuse_uses_full_partitions() {
        let ctx = ctx().with_mode(ExecMode::MemFuse);
        let a = leaf(100, 2);
        let s = Node::sink_full(AggOp::Sum, a);
        let plan = Plan::build(&ctx, &[Target::Sink(s)], &HashMap::new());
        assert_eq!(plan.pcache_step, 64);
    }
}
