//! The fused single-pass engine (paper §3.5).
//!
//! One parallel pass over the I/O partitions materializes every target in
//! the DAG: worker threads claim partitions (sequentially, in batches that
//! mirror the SAFS block size), prefetch external-memory leaves
//! asynchronously, stream Pcache chunks depth-first through the operation
//! graph with per-chunk memoization and buffer recycling, fold sink
//! accumulators thread-locally, and write tall outputs back as whole
//! partitions.

use crate::chunk::{BufPool, Chunk};
use crate::dag::{MapInput, MapOp, Node, NodeKind};
use crate::exec::cumcoord::CumCoord;
use crate::exec::plan::{Plan, PlanOpts};
use crate::exec::{SinkAcc, Target, TargetResult};
use crate::mat::{Layout, PartFetch, TasMat};
use crate::metrics::FlightRecorder;
use crate::ops;
use crate::part::pcache_ranges;
use crate::session::{ExecMode, FlashCtx, StorageClass};
use crate::stats::ExecStats;
use crate::trace::{Lane, OpProfile, PassProfile, Timeline, TraceLevel, WorkerProfile};
use flashr_safs::{now_nanos, IoBuf, IoTicket, SafsFile, NO_ARGS};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-tall-output shared state.
struct TallState {
    storage: StorageClass,
    file: Option<SafsFile>,
    parts: Mutex<Vec<Option<Arc<IoBuf>>>>,
}

/// Per-node accumulation for op-level tracing. A fused chain root
/// carries the chain's label, length and saved-intermediate bytes; the
/// interior nodes it covers never appear (they are never evaluated).
#[derive(Default)]
struct OpAgg {
    label: String,
    chunks: u64,
    nanos: u64,
    chain_len: u64,
    saved_bytes: u64,
}

type OpMap = HashMap<u64, OpAgg>;

/// Trace collection shared by one pass's workers. Only allocated when
/// the context's tracer is at [`TraceLevel::Pass`] or above; when it is
/// absent the engine takes no timestamps beyond the pass wall clock.
#[derive(Default)]
struct PassAgg {
    workers: Mutex<Vec<WorkerProfile>>,
    ops: Mutex<OpMap>,
    trace_ops: bool,
}

/// Everything the worker threads share.
struct Shared<'a> {
    ctx: &'a FlashCtx,
    plan: &'a Plan,
    talls: &'a [TallState],
    cums: &'a HashMap<u64, CumCoord>,
    node_cursors: Vec<AtomicU64>,
    global_cursor: AtomicU64,
    use_affinity: bool,
    nnodes: usize,
    batch: u64,
    /// Per-partition sink partials, folded in partition order at
    /// finalize so reductions are bit-deterministic regardless of which
    /// worker claimed which partition (thread-finish order is not).
    merged: Mutex<Vec<Option<Vec<SinkAcc>>>>,
    trace: Option<&'a PassAgg>,
    /// Span timeline; `Some` only at [`TraceLevel::Timeline`].
    timeline: Option<&'a Timeline>,
    /// Always-on bounded ring of recent task/pass spans.
    flight: &'a FlightRecorder,
    pass_id: u64,
}

/// Run one fused pass and return one result per target. `nodes_pre_cse`
/// is the submitted DAG's node count before the analyzer's rewrite, for
/// the pass profile (`None` when the pass was not analyzed).
pub fn run(
    ctx: &FlashCtx,
    targets: &[Target],
    resolved: &HashMap<u64, TasMat>,
    nodes_pre_cse: Option<usize>,
    opts: &PlanOpts,
) -> Vec<TargetResult> {
    run_labeled(ctx, targets, resolved, "fused", nodes_pre_cse, opts)
}

/// Like [`run`], with an engine label for the pass profile (the eager
/// engine drives the same machinery one operation at a time and labels
/// its sub-passes accordingly).
pub(crate) fn run_labeled(
    ctx: &FlashCtx,
    targets: &[Target],
    resolved: &HashMap<u64, TasMat>,
    engine: &'static str,
    nodes_pre_cse: Option<usize>,
    opts: &PlanOpts,
) -> Vec<TargetResult> {
    let started = Instant::now();
    let plan = Plan::build_with(ctx, targets, resolved, opts);
    let stats = ctx.stats();
    let pass_id = stats.passes.fetch_add(1, Ordering::Relaxed) + 1;
    let tracer = ctx.tracer();
    let agg = tracer.enabled(TraceLevel::Pass).then(|| PassAgg {
        trace_ops: tracer.enabled(TraceLevel::Op),
        ..PassAgg::default()
    });
    // Snapshot page-cache counters so the pass profile carries deltas.
    let cache_before =
        agg.as_ref().and_then(|_| ctx.safs().map(|s| s.stats_snapshot().cache));

    // Prepare tall outputs.
    let tall_states: Vec<TallState> = plan
        .talls
        .iter()
        .map(|t| {
            let nparts = plan.nparts as usize;
            match t.storage {
                StorageClass::InMem => TallState {
                    storage: t.storage,
                    file: None,
                    parts: Mutex::new(vec![None; nparts]),
                },
                StorageClass::Em => {
                    let safs = ctx.safs().expect("EM output requires a SAFS runtime");
                    let elem = t.node.dtype.size() as u64;
                    let part_bytes = plan.parter.rows_per_part() * t.node.ncols as u64 * elem;
                    let total = plan.nrows * t.node.ncols as u64 * elem;
                    let file = safs
                        .create_bytes(&safs.unique_name("fm"), part_bytes, total)
                        .expect("EM output create failed");
                    file.set_delete_on_drop(true);
                    TallState { storage: t.storage, file: Some(file), parts: Mutex::new(Vec::new()) }
                }
            }
        })
        .collect();

    let cums: HashMap<u64, CumCoord> =
        plan.cum_nodes.iter().map(|n| (n.id, CumCoord::default())).collect();

    let nparts = plan.nparts;
    let nthreads = ctx.cfg().nthreads.min(nparts as usize).max(1);
    let nnodes = ctx.cfg().numa_nodes.min(nparts as usize).max(1);
    // NUMA-affine claiming needs a worker per node class, and cum carries
    // need globally sequential dispatch.
    let use_affinity = plan.cum_nodes.is_empty() && nthreads >= nnodes && nnodes > 1;

    let any_em = plan.leaves.iter().any(|(_, m)| m.is_em())
        || tall_states.iter().any(|t| t.file.is_some());
    let batch = if any_em {
        ctx.safs().map(|s| s.dispatch_batch()).unwrap_or(4) as u64
    } else {
        2
    };

    let shared = Shared {
        ctx,
        plan: &plan,
        talls: &tall_states,
        cums: &cums,
        node_cursors: (0..nnodes).map(|_| AtomicU64::new(0)).collect(),
        global_cursor: AtomicU64::new(0),
        use_affinity,
        nnodes,
        batch,
        merged: Mutex::new((0..plan.nparts as usize).map(|_| None).collect()),
        trace: agg.as_ref(),
        timeline: tracer.timeline().map(|t| t.as_ref()),
        flight: ctx.flight_recorder(),
        pass_id,
    };

    // The whole parallel section is one "pass" span on the coordinator
    // lane; the critical-path analyzer windows task spans by it.
    let coord = shared.timeline.map(|tl| tl.named_lane("coordinator"));
    if let Some(l) = coord.as_ref() {
        l.begin("exec", "pass", [("pass", pass_id), ("nparts", nparts)]);
    }
    let pass_begin_ns = now_nanos();
    std::thread::scope(|scope| {
        for tid in 0..nthreads {
            let shared = &shared;
            // Workers carry stable names so timeline lanes are reused
            // across passes (and SAFS cache spans taken on a worker
            // thread land on the same lane as its task spans).
            std::thread::Builder::new()
                .name(format!("flashr-w{tid}"))
                .spawn_scoped(scope, move || worker(tid, shared))
                .expect("spawn worker thread");
        }
    });
    if let Some(l) = coord.as_ref() {
        l.end("exec", "pass");
    }
    shared.flight.named_lane("coordinator").complete(
        "exec",
        "pass",
        pass_begin_ns,
        now_nanos(),
        [("pass", pass_id), ("nparts", nparts)],
    );

    // Finalize. Sink partials are folded in partition order — never in
    // worker-finish order — so floating-point reductions are
    // bit-identical run to run even under dynamic partition claiming.
    let mut results: Vec<Option<TargetResult>> = (0..targets.len()).map(|_| None).collect();
    if !plan.sinks.is_empty() {
        let mut merged = shared.merged.lock();
        let mut finals: Vec<Option<SinkAcc>> = (0..plan.sinks.len()).map(|_| None).collect();
        for part_accs in merged.iter_mut() {
            let accs = part_accs.take().expect("partition sinks never accumulated");
            for (i, acc) in accs.into_iter().enumerate() {
                match &mut finals[i] {
                    slot @ None => *slot = Some(acc),
                    Some(existing) => existing.merge(acc),
                }
            }
        }
        for (i, (slot, _)) in plan.sinks.iter().enumerate() {
            let acc = finals[i].take().expect("sink never accumulated");
            results[*slot] = Some(TargetResult::Dense(acc.finalize()));
        }
    }
    for (t, state) in plan.talls.iter().zip(tall_states) {
        let mat = match state.storage {
            StorageClass::InMem => {
                let parts: Vec<Arc<IoBuf>> = state
                    .parts
                    .into_inner()
                    .into_iter()
                    .map(|p| p.expect("partition never produced"))
                    .collect();
                TasMat::assemble_in_mem_pooled(
                    plan.nrows,
                    t.node.ncols,
                    t.node.dtype,
                    Layout::ColMajor,
                    plan.parter,
                    parts,
                    Some(ctx.part_buf_pool().clone()),
                )
            }
            StorageClass::Em => TasMat::from_em_file(
                plan.nrows,
                t.node.ncols,
                t.node.dtype,
                Layout::ColMajor,
                plan.parter,
                state.file.expect("EM state without file"),
            ),
        };
        if t.is_cache {
            let (cached, pin) = ctx.admit_cache(mat.clone());
            t.node.install_cache_pinned(cached, pin);
        }
        if let Some(slot) = t.slot {
            results[slot] = Some(TargetResult::Mat(mat));
        }
    }

    stats.add(&stats.exec_nanos, started.elapsed().as_nanos() as u64);

    if let Some(agg) = agg {
        let mut workers = agg.workers.into_inner();
        workers.sort_by_key(|w| w.tid);
        let mut ops: Vec<OpProfile> = agg
            .ops
            .into_inner()
            .into_iter()
            .map(|(node_id, a)| OpProfile {
                node_id,
                label: a.label,
                chunks: a.chunks,
                nanos: a.nanos,
                chain_len: a.chain_len,
                saved_bytes: a.saved_bytes,
            })
            .collect();
        ops.sort_by_key(|o| o.node_id);
        tracer.record_pass(PassProfile {
            pass_id,
            engine,
            mode: match ctx.cfg().mode {
                ExecMode::Eager => "Eager",
                ExecMode::MemFuse => "MemFuse",
                ExecMode::CacheFuse => "CacheFuse",
            },
            nodes: plan.nnodes,
            nodes_pre_cse: nodes_pre_cse.unwrap_or(plan.nnodes),
            nparts: plan.nparts,
            pcache_step: plan.pcache_step,
            sinks: plan.sinks.len(),
            talls: plan.talls.len(),
            wall_nanos: started.elapsed().as_nanos() as u64,
            cache: cache_before
                .map(|before| before.delta(&ctx.safs().expect("had safs").stats_snapshot().cache))
                .unwrap_or_default(),
            workers,
            ops,
            optimizer: Vec::new(),
            simd: ops::simd::SimdLevel::active().name(),
        });
    }

    results.into_iter().map(|r| r.expect("target produced no result")).collect()
}

/// Claim the next batch of partitions. Returns the partitions and whether
/// they came from the worker's own NUMA node.
fn claim(shared: &Shared<'_>, my_node: usize) -> (Vec<u64>, bool) {
    let nparts = shared.plan.nparts;
    if shared.use_affinity {
        for offset in 0..shared.nnodes {
            let node = (my_node + offset) % shared.nnodes;
            let k0 = shared.node_cursors[node].fetch_add(shared.batch, Ordering::Relaxed);
            let parts: Vec<u64> = (k0..k0 + shared.batch)
                .map(|k| node as u64 + k * shared.nnodes as u64)
                .filter(|&p| p < nparts)
                .collect();
            if !parts.is_empty() {
                return (parts, offset == 0);
            }
        }
        (Vec::new(), true)
    } else {
        let p0 = shared.global_cursor.fetch_add(shared.batch, Ordering::Relaxed);
        ((p0..p0 + shared.batch).filter(|&p| p < nparts).collect(), true)
    }
}

fn worker(tid: usize, shared: &Shared<'_>) {
    let my_node = tid % shared.nnodes;
    let mut pool = BufPool::new();
    let mut pending_writes: Vec<IoTicket> = Vec::new();
    let max_pending = shared.ctx.cfg().max_pending_writes.max(1);
    let stats = shared.ctx.stats();
    // `wp` is None unless the tracer is at `pass` level; the time
    // breakdown itself is always taken (two clock reads per phase) and
    // feeds the `ExecStats` nanos counters and the flight recorder.
    let mut wp = shared.trace.map(|_| WorkerProfile { tid, ..WorkerProfile::default() });
    // Timeline lane for this worker, resolved once by thread name.
    let lane = shared.timeline.map(|tl| tl.lane());
    let lane = lane.as_deref();
    // Always-on bounded ring for the same thread name.
    let flane = shared.flight.lane();

    loop {
        let (parts, local) = claim(shared, my_node);
        if parts.is_empty() {
            break;
        }
        if local {
            stats.add(&stats.local_parts, parts.len() as u64);
        } else {
            stats.add(&stats.remote_parts, parts.len() as u64);
        }
        if let Some(wp) = wp.as_mut() {
            wp.parts += parts.len() as u64;
            if local {
                wp.local_parts += parts.len() as u64;
            } else {
                wp.remote_parts += parts.len() as u64;
            }
        }

        // Prefetch EM leaves for the whole batch (async, overlaps compute).
        let mut fetches: Vec<HashMap<u64, PartFetch>> = parts
            .iter()
            .map(|&part| {
                shared
                    .plan
                    .leaves
                    .iter()
                    .filter(|(_, m)| m.is_em())
                    .map(|(nid, m)| (*nid, m.fetch_part(part)))
                    .collect()
            })
            .collect();

        for (idx, &part) in parts.iter().enumerate() {
            let task_begin_ns = now_nanos();
            if let Some(l) = lane {
                l.begin("exec", "task", [("part", part), ("pass", shared.pass_id)]);
            }
            // Bound the in-flight writes: wait for the *oldest* ticket
            // only, so the remaining slots keep streaming instead of
            // stalling the worker behind every outstanding write.
            if pending_writes.len() >= max_pending {
                let ws_t0 = Instant::now();
                if let Some(l) = lane {
                    l.begin("exec", "write-stall", NO_ARGS);
                }
                while pending_writes.len() >= max_pending {
                    pending_writes.remove(0).wait().expect("EM output write failed");
                }
                if let Some(l) = lane {
                    l.end("exec", "write-stall");
                }
                let nanos = ws_t0.elapsed().as_nanos() as u64;
                stats.add(&stats.write_stall_nanos, nanos);
                if let Some(wp) = wp.as_mut() {
                    wp.write_stall_nanos += nanos;
                }
            }
            let io_t0 = Instant::now();
            if let Some(l) = lane {
                l.begin("exec", "io-wait", NO_ARGS);
            }
            let mut leaf_bufs: HashMap<u64, Arc<IoBuf>> = HashMap::new();
            for (nid, mat) in &shared.plan.leaves {
                let buf = match fetches[idx].remove(nid) {
                    Some(f) => f.wait(),
                    None => mat.read_part(part),
                };
                leaf_bufs.insert(*nid, buf);
            }
            if let Some(l) = lane {
                l.end("exec", "io-wait");
            }
            let nanos = io_t0.elapsed().as_nanos() as u64;
            stats.add(&stats.io_wait_nanos, nanos);
            if let Some(wp) = wp.as_mut() {
                wp.io_wait_nanos += nanos;
            }
            let compute_t0 = Instant::now();
            if let Some(l) = lane {
                l.begin("exec", "compute", NO_ARGS);
            }
            // Fresh accumulators per partition: partials deposit into the
            // partition's slot and fold in partition order at finalize,
            // keeping reductions independent of worker scheduling.
            let mut sink_accs: Vec<SinkAcc> =
                shared.plan.sinks.iter().map(|(_, n)| SinkAcc::new_for(n)).collect();
            let chunks = process_part(
                shared,
                part,
                &leaf_bufs,
                &mut pool,
                &mut sink_accs,
                &mut pending_writes,
                lane,
            );
            if !sink_accs.is_empty() {
                shared.merged.lock()[part as usize] = Some(sink_accs);
            }
            if let Some(l) = lane {
                l.end("exec", "compute");
            }
            let nanos = compute_t0.elapsed().as_nanos() as u64;
            stats.add(&stats.compute_nanos, nanos);
            if let Some(wp) = wp.as_mut() {
                wp.compute_nanos += nanos;
                wp.pcache_chunks += chunks;
            }
            if let Some(l) = lane {
                l.end("exec", "task");
            }
            flane.complete(
                "exec",
                "task",
                task_begin_ns,
                now_nanos(),
                [("part", part), ("pass", shared.pass_id)],
            );
            stats.add(&stats.parts, 1);
        }
    }

    // Drain the remaining EM output writes: a write stall, not leaf-read
    // I/O wait.
    if !pending_writes.is_empty() {
        let ws_t0 = Instant::now();
        if let Some(l) = lane {
            l.begin("exec", "write-stall", NO_ARGS);
        }
        for t in pending_writes {
            t.wait().expect("EM output write failed");
        }
        if let Some(l) = lane {
            l.end("exec", "write-stall");
        }
        let nanos = ws_t0.elapsed().as_nanos() as u64;
        stats.add(&stats.write_stall_nanos, nanos);
        if let Some(wp) = wp.as_mut() {
            wp.write_stall_nanos += nanos;
        }
    }

    if let (Some(agg), Some(wp)) = (shared.trace, wp) {
        agg.workers.lock().push(wp);
    }
}

/// Evaluation environment for one partition.
struct PartEnv<'a> {
    plan: &'a Plan,
    cums: &'a HashMap<u64, CumCoord>,
    leaf_bufs: &'a HashMap<u64, Arc<IoBuf>>,
    part: u64,
    part_rows: usize,
    grow0: u64,
    stats: &'a ExecStats,
    /// Per-node accumulation; `Some` only at `FLASHR_TRACE=op`.
    op_trace: Option<&'a RefCell<OpMap>>,
    /// This worker's timeline lane; `Some` only at `FLASHR_TRACE=timeline`
    /// (per-chunk op spans ride on the op-trace timestamps).
    lane: Option<&'a Lane>,
}

type Memo = HashMap<(u64, usize, usize), Rc<Chunk>>;

/// Returns the number of Pcache chunk ranges evaluated.
fn process_part(
    shared: &Shared<'_>,
    part: u64,
    leaf_bufs: &HashMap<u64, Arc<IoBuf>>,
    pool: &mut BufPool,
    sink_accs: &mut [SinkAcc],
    pending_writes: &mut Vec<IoTicket>,
    lane: Option<&Lane>,
) -> u64 {
    let plan = shared.plan;
    let part_rows = plan.parter.part_rows(part, plan.nrows);
    let grow0 = part * plan.parter.rows_per_part();
    let op_cell = shared
        .trace
        .filter(|agg| agg.trace_ops)
        .map(|_| RefCell::new(OpMap::new()));
    let stats = shared.ctx.stats();
    let env = PartEnv {
        plan,
        cums: shared.cums,
        leaf_bufs,
        part,
        part_rows,
        grow0,
        stats,
        op_trace: op_cell.as_ref(),
        lane,
    };
    let mut nchunks = 0u64;

    // Output partition buffers for tall targets (column-major). Every
    // byte is overwritten below (Pcache ranges tile the partition and
    // chains/write_rows cover every column), so we take recycled buffers
    // with unspecified contents instead of paying the allocator's zeroing
    // — on steady-state passes this is the difference between the pass
    // being compute-bound and memset-bound.
    let mut tall_bufs: Vec<IoBuf> = plan
        .talls
        .iter()
        .map(|t| {
            shared
                .ctx
                .part_buf_pool()
                .take_for_overwrite(part_rows * t.node.ncols * t.node.dtype.size())
        })
        .collect();

    let mut memo: Memo = HashMap::new();
    let step = plan.pcache_step;
    for (r0, r1) in pcache_ranges(part_rows, step) {
        stats.add(&stats.pcache_chunks, 1);
        nchunks += 1;
        // Per-range consumer counters (paper §3.5.1): once every consumer
        // of a node's chunk has run, the buffer recycles immediately so
        // the next operation writes into cache-hot memory.
        let mut remaining = plan.consumers.clone();

        for (i, (_, sink)) in plan.sinks.iter().enumerate() {
            match &sink.kind {
                NodeKind::SinkFull { input, .. } | NodeKind::SinkCol { input, .. } => {
                    let c = eval(&env, &mut memo, &mut remaining, pool, input, r0, r1);
                    sink_accs[i].update(&[&c]);
                    drop(c);
                    consume(&mut memo, &mut remaining, pool, input, r0, r1);
                }
                NodeKind::SinkGramian { a, b } => {
                    let ca = eval(&env, &mut memo, &mut remaining, pool, a, r0, r1);
                    let cb = eval(&env, &mut memo, &mut remaining, pool, b, r0, r1);
                    sink_accs[i].update(&[&ca, &cb]);
                    drop((ca, cb));
                    consume(&mut memo, &mut remaining, pool, a, r0, r1);
                    consume(&mut memo, &mut remaining, pool, b, r0, r1);
                }
                NodeKind::SinkGroupBy { data, labels, .. } => {
                    let cd = eval(&env, &mut memo, &mut remaining, pool, data, r0, r1);
                    let cl = eval(&env, &mut memo, &mut remaining, pool, labels, r0, r1);
                    sink_accs[i].update(&[&cd, &cl]);
                    drop((cd, cl));
                    consume(&mut memo, &mut remaining, pool, data, r0, r1);
                    consume(&mut memo, &mut remaining, pool, labels, r0, r1);
                }
                other => panic!("not a sink: {other:?}"),
            }
        }

        for (ti, t) in plan.talls.iter().enumerate() {
            // A chain root that nothing else reads writes straight into
            // the tall output buffer — even the root's chunk is skipped.
            if !memo.contains_key(&(t.node.id, r0, r1))
                && remaining.get(&t.node.id).copied() == Some(1)
            {
                if let Some(chain) = plan.chains.get(&t.node.id) {
                    let t0 = env.op_trace.map(|_| Instant::now());
                    let auxes: Vec<Rc<Chunk>> = chain
                        .aux
                        .iter()
                        .map(|a| eval(&env, &mut memo, &mut remaining, pool, a, r0, r1))
                        .collect();
                    let aux_refs: Vec<&Chunk> = auxes.iter().map(|c| c.as_ref()).collect();
                    if let Some((bytes, stride, off)) = chain_base_stride(&env, &chain.base, r0, r1)
                    {
                        chain.kernel.run_strided_into(
                            bytes,
                            stride,
                            off,
                            r1 - r0,
                            t.node.ncols,
                            &aux_refs,
                            &mut tall_bufs[ti],
                            part_rows,
                            r0,
                            pool,
                        );
                    } else {
                        let base = eval(&env, &mut memo, &mut remaining, pool, &chain.base, r0, r1);
                        chain.kernel.run_into(
                            &base,
                            &aux_refs,
                            &mut tall_bufs[ti],
                            part_rows,
                            r0,
                            pool,
                        );
                    }
                    let rows = (r1 - r0) as u64;
                    let root_bytes = rows * (t.node.ncols * t.node.dtype.size()) as u64;
                    let saved = rows * chain.saved_bytes_per_row + root_bytes;
                    stats.add(&stats.fused_chains, 1);
                    stats.add(&stats.fused_saved_bytes, saved);
                    if let (Some(cell), Some(t0)) = (env.op_trace, t0) {
                        let mut ops = cell.borrow_mut();
                        let e = ops.entry(t.node.id).or_insert_with(|| OpAgg {
                            label: chain.label.clone(),
                            ..OpAgg::default()
                        });
                        e.chunks += 1;
                        let nanos = t0.elapsed().as_nanos() as u64;
                        e.nanos += nanos;
                        e.chain_len = chain.len as u64;
                        e.saved_bytes += saved;
                        if let Some(l) = env.lane {
                            let end = now_nanos();
                            l.complete(
                                "exec",
                                e.label.clone(),
                                end.saturating_sub(nanos),
                                end,
                                [("node", t.node.id), ("", 0)],
                            );
                        }
                    }
                    consume(&mut memo, &mut remaining, pool, &t.node, r0, r1);
                    continue;
                }
            }
            let c = eval(&env, &mut memo, &mut remaining, pool, &t.node, r0, r1);
            write_rows(&mut tall_bufs[ti], t.node.dtype, part_rows, r0, &c);
            drop(c);
            consume(&mut memo, &mut remaining, pool, &t.node, r0, r1);
        }

        // Recycle this range's intermediates (full-partition entries for
        // cum nodes persist until the partition completes).
        let keys: Vec<_> = memo
            .keys()
            .filter(|(_, a, b)| (*a, *b) == (r0, r1) && !(r0 == 0 && r1 == part_rows))
            .copied()
            .collect();
        for k in keys {
            if let Some(rc) = memo.remove(&k) {
                if let Ok(chunk) = Rc::try_unwrap(rc) {
                    chunk.recycle(pool);
                }
            }
        }
    }

    // Drain everything else (covers the full-partition entries).
    for (_, rc) in memo.drain() {
        if let Ok(chunk) = Rc::try_unwrap(rc) {
            chunk.recycle(pool);
        }
    }

    // Publish tall outputs.
    for (ti, buf) in tall_bufs.into_iter().enumerate() {
        match shared.talls[ti].storage {
            StorageClass::InMem => {
                shared.talls[ti].parts.lock()[part as usize] = Some(Arc::new(buf));
            }
            StorageClass::Em => {
                let file = shared.talls[ti].file.as_ref().expect("EM state without file");
                pending_writes
                    .push(file.write_part_async(part, buf).expect("EM output submit failed"));
            }
        }
    }

    // Merge this partition's op timings into the pass aggregate.
    if let (Some(agg), Some(cell)) = (shared.trace, op_cell) {
        let mut ops = agg.ops.lock();
        for (id, a) in cell.into_inner() {
            let e = ops.entry(id).or_insert_with(|| OpAgg { label: a.label, ..OpAgg::default() });
            e.chunks += a.chunks;
            e.nanos += a.nanos;
            e.chain_len = e.chain_len.max(a.chain_len);
            e.saved_bytes += a.saved_bytes;
        }
    }

    nchunks
}

/// Copy a chunk into a column-major partition buffer at row offset `r0`.
fn write_rows(buf: &mut IoBuf, dtype: crate::dtype::DType, part_rows: usize, r0: usize, chunk: &Chunk) {
    let rows = chunk.rows();
    // A chunk covering the whole partition has the destination's exact
    // column-major layout: one flat copy instead of a copy per column.
    if r0 == 0 && rows == part_rows {
        buf.as_mut_bytes().copy_from_slice(chunk.as_bytes());
        return;
    }
    crate::dispatch!(dtype, T, {
        let dst = buf.typed_mut::<T>();
        for c in 0..chunk.cols() {
            dst[c * part_rows + r0..c * part_rows + r0 + rows].copy_from_slice(chunk.col::<T>(c));
        }
    });
}

/// The strided in-place view of a chain's base over `[r0, r1)` when the
/// base is a prefetched column-major materialized leaf: `(bytes,
/// col_stride_rows, row_off)` into the partition buffer. The kernel
/// then reads the leaf directly and the executor never copies a base
/// chunk out of it. Row-major leaves and bases outside the prefetch set
/// return `None` and take the Pcache-chunk path.
fn chain_base_stride<'a>(
    env: &PartEnv<'a>,
    base: &Arc<Node>,
    r0: usize,
    r1: usize,
) -> Option<(&'a [u8], usize, usize)> {
    let mat = env.plan.leaf_mat(base)?;
    let (stride, off) = mat.pcache_stride(env.part, r0, r1)?;
    let buf = env.leaf_bufs.get(&base.id)?;
    Some((buf.as_bytes(), stride, off))
}

/// Decrement a node's per-range consumer counter; when it reaches zero,
/// drop the memo entry and recycle its buffer (paper §3.5.1).
fn consume(
    memo: &mut Memo,
    remaining: &mut HashMap<u64, usize>,
    pool: &mut BufPool,
    node: &Arc<Node>,
    r0: usize,
    r1: usize,
) {
    // Cumulative columns memoize at partition granularity and must
    // survive until the partition completes.
    if matches!(node.kind, NodeKind::CumCol { .. }) {
        return;
    }
    if let Some(count) = remaining.get_mut(&node.id) {
        *count = count.saturating_sub(1);
        if *count == 0 {
            if let Some(rc) = memo.remove(&(node.id, r0, r1)) {
                if let Ok(chunk) = Rc::try_unwrap(rc) {
                    chunk.recycle(pool);
                }
            }
        }
    }
}

/// Depth-first, memoized evaluation of one node over a Pcache row range.
///
/// When op tracing is on, the time to produce each fresh (non-memoized)
/// chunk accrues to its node — *inclusive* of any inputs computed on the
/// way (see [`crate::trace::OpProfile`]).
fn eval(
    env: &PartEnv<'_>,
    memo: &mut Memo,
    remaining: &mut HashMap<u64, usize>,
    pool: &mut BufPool,
    node: &Arc<Node>,
    r0: usize,
    r1: usize,
) -> Rc<Chunk> {
    let key = (node.id, r0, r1);
    if let Some(c) = memo.get(&key) {
        return c.clone();
    }
    let t0 = env.op_trace.map(|_| Instant::now());
    let chunk = eval_uncached(env, memo, remaining, pool, node, r0, r1);
    env.stats.add(&env.stats.node_chunks, 1);
    env.stats.add(
        &env.stats.node_chunk_bytes,
        (chunk.rows() * chunk.cols() * chunk.dtype().size()) as u64,
    );
    if let (Some(cell), Some(t0)) = (env.op_trace, t0) {
        let mut ops = cell.borrow_mut();
        let chain = env.plan.chains.get(&node.id);
        let e = ops.entry(node.id).or_insert_with(|| OpAgg {
            label: chain.map_or_else(|| node.label(), |c| c.label.clone()),
            ..OpAgg::default()
        });
        e.chunks += 1;
        let nanos = t0.elapsed().as_nanos() as u64;
        e.nanos += nanos;
        if let Some(c) = chain {
            e.chain_len = c.len as u64;
            e.saved_bytes += (r1 - r0) as u64 * c.saved_bytes_per_row;
        }
        if let Some(l) = env.lane {
            // Per-chunk op span (inclusive of inputs computed on the way,
            // like the aggregate above).
            let end = now_nanos();
            l.complete(
                "exec",
                e.label.clone(),
                end.saturating_sub(nanos),
                end,
                [("node", node.id), ("", 0)],
            );
        }
    }
    chunk
}

/// [`eval`] minus memo hit and tracing: compute the chunk.
fn eval_uncached(
    env: &PartEnv<'_>,
    memo: &mut Memo,
    remaining: &mut HashMap<u64, usize>,
    pool: &mut BufPool,
    node: &Arc<Node>,
    r0: usize,
    r1: usize,
) -> Rc<Chunk> {
    let key = (node.id, r0, r1);
    // Materialized data (leaf / cached / eager-resolved)?
    if let Some(mat) = env.plan.leaf_mat(node) {
        let chunk = match env.leaf_bufs.get(&node.id) {
            Some(buf) => Rc::new(mat.pcache_chunk(buf, env.part, r0, r1, pool)),
            // A leaf outside the prefetch set (e.g. discovered through a
            // rewrite the planner didn't anticipate): degrade to a
            // synchronous read — which still goes through the page cache
            // and the typed SafsError path — instead of panicking.
            None => {
                let buf = mat.read_part(env.part);
                Rc::new(mat.pcache_chunk(&buf, env.part, r0, r1, pool))
            }
        };
        memo.insert(key, chunk.clone());
        return chunk;
    }

    // A compiled map chain: evaluate the base and aux inputs, then run
    // the whole fused program in one strip-mined sweep. The chain's
    // interior nodes are never evaluated and never allocate chunks.
    if let Some(chain) = env.plan.chains.get(&node.id) {
        let auxes: Vec<Rc<Chunk>> = chain
            .aux
            .iter()
            .map(|a| eval(env, memo, remaining, pool, a, r0, r1))
            .collect();
        let aux_refs: Vec<&Chunk> = auxes.iter().map(|c| c.as_ref()).collect();
        let out = if let Some((bytes, stride, off)) = chain_base_stride(env, &chain.base, r0, r1) {
            Rc::new(chain.kernel.run_strided(
                bytes,
                stride,
                off,
                r1 - r0,
                node.ncols,
                &aux_refs,
                pool,
            ))
        } else {
            let base = eval(env, memo, remaining, pool, &chain.base, r0, r1);
            Rc::new(chain.kernel.run(&base, &aux_refs, pool))
        };
        env.stats.add(&env.stats.fused_chains, 1);
        env.stats
            .add(&env.stats.fused_saved_bytes, (r1 - r0) as u64 * chain.saved_bytes_per_row);
        memo.insert(key, out.clone());
        return out;
    }

    let chunk = match &node.kind {
        NodeKind::Leaf(_) => unreachable!("handled by leaf_mat"),
        NodeKind::Gen(spec) => {
            Rc::new(spec.fill_chunk_as(node.dtype, env.grow0 + r0 as u64, r1 - r0, node.ncols, pool))
        }
        NodeKind::Map { op, inputs } => {
            let out = match op {
                MapOp::Unary(u) => {
                    let input = eval_input(env, memo, remaining, pool, &inputs[0], r0, r1);
                    ops::apply_unary(*u, &input, pool)
                }
                MapOp::Binary { op, swapped } => {
                    let a = eval_input(env, memo, remaining, pool, &inputs[0], r0, r1);
                    match &inputs[1] {
                        MapInput::Node(bn) => {
                            let b = eval(env, memo, remaining, pool, bn, r0, r1);
                            ops::apply_binary(*op, &a, ops::BinOperand::Chunk(&b), *swapped, pool)
                        }
                        MapInput::Scalar(s) => {
                            ops::apply_binary(*op, &a, ops::BinOperand::Scalar(*s), *swapped, pool)
                        }
                        MapInput::RowVec(v) => {
                            ops::apply_binary(*op, &a, ops::BinOperand::RowVec(v), *swapped, pool)
                        }
                    }
                }
                MapOp::Cast(to) => {
                    let input = eval_input(env, memo, remaining, pool, &inputs[0], r0, r1);
                    ops::cast_chunk(&input, *to, pool)
                }
                MapOp::MatMul(b) => {
                    let input = eval_input(env, memo, remaining, pool, &inputs[0], r0, r1);
                    ops::matmul_chunk(&input, b, pool)
                }
                MapOp::InnerProd { b, f1, f2 } => {
                    let input = eval_input(env, memo, remaining, pool, &inputs[0], r0, r1);
                    ops::inner_prod_chunk(&input, b, *f1, *f2, pool)
                }
                MapOp::Select(idx) => {
                    let input = eval_input(env, memo, remaining, pool, &inputs[0], r0, r1);
                    ops::select_cols(&input, idx, pool)
                }
                MapOp::GroupCols { labels, op, ngroups } => {
                    let input = eval_input(env, memo, remaining, pool, &inputs[0], r0, r1);
                    ops::group_cols(&input, labels, *op, *ngroups, pool)
                }
                MapOp::Bind => {
                    let chunks: Vec<Rc<Chunk>> = inputs
                        .iter()
                        .map(|i| eval_input(env, memo, remaining, pool, i, r0, r1))
                        .collect();
                    let refs: Vec<&Chunk> = chunks.iter().map(|c| c.as_ref()).collect();
                    ops::bind_cols(&refs, pool)
                }
            };
            Rc::new(out)
        }
        NodeKind::AggRow { op, input } => {
            let c = eval(env, memo, remaining, pool, input, r0, r1);
            Rc::new(ops::agg_row(*op, &c, pool))
        }
        NodeKind::CumRow { op, input } => {
            let c = eval(env, memo, remaining, pool, input, r0, r1);
            Rc::new(ops::cum_row_chunk(*op, &c, pool))
        }
        NodeKind::CumCol { op, input } => {
            // Pipeline breaker: evaluate at partition granularity, chain
            // the carry, then slice the requested range.
            let full_key = (node.id, 0usize, env.part_rows);
            if !memo.contains_key(&full_key) {
                let input_full = eval(env, memo, remaining, pool, input, 0, env.part_rows);
                let coord = &env.cums[&node.id];
                let carry = coord.wait_carry(env.part);
                let (out, new_carry) =
                    ops::cum_col_chunk(*op, &input_full, carry.as_deref(), pool);
                coord.publish(env.part, new_carry);
                memo.insert(full_key, Rc::new(out));
            }
            let full = memo.get(&full_key).expect("just inserted").clone();
            if r0 == 0 && r1 == env.part_rows {
                return full; // already memoized under full_key == key
            }
            Rc::new(full.slice_rows(r0, r1, pool))
        }
        sink @ (NodeKind::SinkFull { .. }
        | NodeKind::SinkCol { .. }
        | NodeKind::SinkGramian { .. }
        | NodeKind::SinkGroupBy { .. }) => {
            panic!("sink node reached tall evaluation: {sink:?}")
        }
    };
    memo.insert(key, chunk.clone());
    chunk
}

/// Evaluate a map input that must be a node.
fn eval_input(
    env: &PartEnv<'_>,
    memo: &mut Memo,
    remaining: &mut HashMap<u64, usize>,
    pool: &mut BufPool,
    input: &MapInput,
    r0: usize,
    r1: usize,
) -> Rc<Chunk> {
    match input {
        MapInput::Node(n) => eval(env, memo, remaining, pool, n, r0, r1),
        other => panic!("first map input must be a matrix, got {other:?}"),
    }
}
