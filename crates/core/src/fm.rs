//! The user-facing FlashR matrix type: [`FM`].
//!
//! `FM` mirrors the R `base` matrix surface FlashR overrides (paper
//! Tables 2 and 3). Operations on tall matrices are lazy — they extend
//! the DAG — and nothing computes until [`FM::materialize`] /
//! [`FM::materialize_multi`] / a value extraction runs, matching the
//! paper's materialization triggers (§3.4): `materialize`, `as.vector` /
//! `as.matrix`, element access on a sink, and `unique`/`table`.
//!
//! Three value states:
//! * `Tall` — a virtual (or leaf) tall matrix, possibly a transposed
//!   *view* (transpose never copies, §3.1);
//! * `Sink` — a lazy aggregation result (paper's sink matrices);
//! * `Small` — a materialized small dense matrix held in memory (what
//!   sink matrices become, and the currency of p×p math).

use crate::analysis::{AnalysisReport, PlanError, PlanErrorKind};
use crate::dag::{MapInput, Node, NodeKind};
use crate::dtype::{DType, Scalar};
use crate::exec::{self, Target, TargetStorage};
use crate::gen::GenSpec;
use crate::mat::TasMat;
use crate::ops::{AggOp, BinaryOp, UnaryOp};
use crate::session::FlashCtx;
use flashr_linalg::Dense;
use std::collections::HashMap;
use std::sync::Arc;

/// A FlashR matrix handle (cheap to clone).
#[derive(Clone)]
pub enum FM {
    /// Tall virtual matrix; `transposed` makes it a wide *view*.
    Tall { node: Arc<Node>, transposed: bool },
    /// A lazy sink (not yet materialized aggregation result).
    Sink { node: Arc<Node> },
    /// A small materialized matrix.
    Small(Dense),
}

impl std::fmt::Debug for FM {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FM::Tall { node, transposed } => write!(
                f,
                "FM::Tall({}x{} {:?}{})",
                node.nrows,
                node.ncols,
                node.dtype,
                if *transposed { ", transposed" } else { "" }
            ),
            FM::Sink { node } => write!(f, "FM::Sink({}x{})", node.nrows, node.ncols),
            FM::Small(d) => write!(f, "FM::Small({}x{})", d.rows(), d.cols()),
        }
    }
}

// ---------------------------------------------------------------------
// Creation (paper Table 3)
// ---------------------------------------------------------------------

impl FM {
    /// `runif.matrix`: uniform random matrix on `[lo, hi)` (lazy).
    pub fn runif(_ctx: &FlashCtx, nrows: u64, ncols: usize, lo: f64, hi: f64, seed: u64) -> FM {
        FM::Tall { node: Node::gen(GenSpec::Runif { seed, lo, hi }, nrows, ncols), transposed: false }
    }

    /// `rnorm.matrix`: normal random matrix (lazy).
    pub fn rnorm(_ctx: &FlashCtx, nrows: u64, ncols: usize, mean: f64, sd: f64, seed: u64) -> FM {
        FM::Tall { node: Node::gen(GenSpec::Rnorm { seed, mean, sd }, nrows, ncols), transposed: false }
    }

    /// Constant-filled tall matrix (lazy).
    pub fn constant(nrows: u64, ncols: usize, value: f64) -> FM {
        FM::Tall { node: Node::gen(GenSpec::Const { value }, nrows, ncols), transposed: false }
    }

    /// `rep.int(1, n)` as a column.
    pub fn ones(nrows: u64, ncols: usize) -> FM {
        FM::constant(nrows, ncols, 1.0)
    }

    /// All-zero tall matrix.
    pub fn zeros(nrows: u64, ncols: usize) -> FM {
        FM::constant(nrows, ncols, 0.0)
    }

    /// `seq(start, by=step)` as an n×1 column (lazy).
    pub fn seq(nrows: u64, start: f64, step: f64) -> FM {
        FM::Tall { node: Node::gen(GenSpec::Seq { start, step }, nrows, 1), transposed: false }
    }

    /// Wrap a materialized tall matrix.
    pub fn from_tas(mat: TasMat) -> FM {
        FM::Tall { node: Node::leaf(mat), transposed: false }
    }

    /// An n×1 column from an f64 vector.
    pub fn from_vec(ctx: &FlashCtx, data: &[f64]) -> FM {
        FM::from_tas(TasMat::from_col_major::<f64>(data.len() as u64, 1, ctx.parter(), data))
    }

    /// A tall matrix from column-major f64 data.
    pub fn from_col_major(ctx: &FlashCtx, nrows: u64, ncols: usize, data: &[f64]) -> FM {
        FM::from_tas(TasMat::from_col_major::<f64>(nrows, ncols, ctx.parter(), data))
    }

    /// A tall matrix from row-major f64 data (kept row-major physically —
    /// exercises the row-major leaf path).
    pub fn from_row_major(ctx: &FlashCtx, nrows: u64, ncols: usize, data: &[f64]) -> FM {
        FM::from_tas(TasMat::from_row_major::<f64>(nrows, ncols, ctx.parter(), data))
    }

    /// A small in-memory matrix.
    pub fn from_dense(d: Dense) -> FM {
        FM::Small(d)
    }
}

// ---------------------------------------------------------------------
// Metadata
// ---------------------------------------------------------------------

impl FM {
    /// Rows (`dim(x)[1]`).
    pub fn nrow(&self) -> u64 {
        match self {
            FM::Tall { node, transposed: false } => node.nrows,
            FM::Tall { node, transposed: true } => node.ncols as u64,
            FM::Sink { node } => node.nrows,
            FM::Small(d) => d.rows() as u64,
        }
    }

    /// Columns (`dim(x)[2]`).
    pub fn ncol(&self) -> u64 {
        match self {
            FM::Tall { node, transposed: false } => node.ncols as u64,
            FM::Tall { node, transposed: true } => node.nrows,
            FM::Sink { node } => node.ncols as u64,
            FM::Small(d) => d.cols() as u64,
        }
    }

    /// `length(x)`.
    pub fn len(&self) -> u64 {
        self.nrow() * self.ncol()
    }

    /// Whether the matrix holds zero elements (never true; R semantics
    /// keep at least one row). Present for clippy's `len` convention.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element dtype.
    pub fn dtype(&self) -> DType {
        match self {
            FM::Tall { node, .. } | FM::Sink { node } => node.dtype,
            FM::Small(_) => DType::F64,
        }
    }

    /// Whether this handle is a small materialized matrix.
    pub fn is_small(&self) -> bool {
        matches!(self, FM::Small(_))
    }

    /// Whether this is a (possibly virtual) tall matrix.
    pub fn is_tall(&self) -> bool {
        matches!(self, FM::Tall { .. })
    }

    /// The [`PlanError`] describing an operation applied to a sink that
    /// must be materialized first.
    fn sink_misuse(node: &Node, what: &str) -> PlanError {
        PlanError::new(
            node,
            PlanErrorKind::NotMaterialized,
            format!("{what} on an unmaterialized sink; call materialize() first"),
        )
    }

    fn tall_node(&self, what: &str) -> (&Arc<Node>, bool) {
        match self {
            FM::Tall { node, transposed } => (node, *transposed),
            FM::Sink { node } => panic!("{}", FM::sink_misuse(node, what)),
            other => panic!("{what} requires a tall matrix, got {other:?}"),
        }
    }

    fn untransposed(&self, what: &str) -> &Arc<Node> {
        let (node, transposed) = self.tall_node(what);
        assert!(!transposed, "{what} on a transposed matrix: transpose back or materialize first");
        node
    }

    /// `t(x)`: transpose without copying (view flip on talls).
    /// Panics on an unmaterialized sink; see [`FM::try_t`].
    pub fn t(&self) -> FM {
        self.try_t().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FM::t`]: transposing an unmaterialized sink is a
    /// [`PlanError`] instead of a panic.
    pub fn try_t(&self) -> Result<FM, PlanError> {
        match self {
            FM::Tall { node, transposed } => {
                Ok(FM::Tall { node: node.clone(), transposed: !transposed })
            }
            FM::Sink { node } => Err(FM::sink_misuse(node, "t()")),
            FM::Small(d) => Ok(FM::Small(d.transpose())),
        }
    }

    /// `set.cache`: keep this virtual matrix's data when it is next
    /// computed, so later DAGs reuse it (paper §3.5).
    pub fn set_cache(&self, v: bool) -> &FM {
        if let FM::Tall { node, .. } = self {
            node.set_cache(v);
        }
        self
    }
}

// ---------------------------------------------------------------------
// Element-wise operations (paper Table 2: sapply/mapply overrides)
// ---------------------------------------------------------------------

macro_rules! unary_method {
    ($name:ident, $op:expr) => {
        /// Element-wise; lazy on tall matrices.
        pub fn $name(&self) -> FM {
            self.unary($op)
        }
    };
}

impl FM {
    /// Generic `sapply` with a predefined unary function.
    /// Panics on an unmaterialized sink; see [`FM::try_unary`].
    pub fn unary(&self, op: UnaryOp) -> FM {
        self.try_unary(op).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FM::unary`]: applying an element-wise op to an
    /// unmaterialized sink is a [`PlanError`] instead of a panic.
    pub fn try_unary(&self, op: UnaryOp) -> Result<FM, PlanError> {
        match self {
            FM::Tall { node, transposed } => {
                Ok(FM::Tall { node: Node::map_unary(op, node.clone()), transposed: *transposed })
            }
            FM::Sink { node } => Err(FM::sink_misuse(node, "element-wise op")),
            FM::Small(d) => {
                let mut out = d.clone();
                for v in out.as_mut_slice().iter_mut() {
                    *v = unary_f64(op, *v);
                }
                Ok(FM::Small(out))
            }
        }
    }

    unary_method!(sqrt, UnaryOp::Sqrt);
    unary_method!(exp, UnaryOp::Exp);
    unary_method!(ln, UnaryOp::Ln);
    unary_method!(log2, UnaryOp::Log2);
    unary_method!(log10, UnaryOp::Log10);
    unary_method!(log1p, UnaryOp::Log1p);
    unary_method!(abs, UnaryOp::Abs);
    unary_method!(floor, UnaryOp::Floor);
    unary_method!(ceil, UnaryOp::Ceil);
    unary_method!(round, UnaryOp::Round);
    unary_method!(sign, UnaryOp::Sign);
    unary_method!(recip, UnaryOp::Recip);
    unary_method!(square, UnaryOp::Square);
    unary_method!(sigmoid, UnaryOp::Sigmoid);
    unary_method!(not, UnaryOp::Not);

    /// Generic `mapply` with a predefined binary function and R-style
    /// broadcasting (`other` may be same-shape, one column, 1×p small, or
    /// effectively scalar).
    /// Panics on unmaterialized sink operands; see [`FM::try_binary`].
    pub fn binary(&self, op: BinaryOp, other: &FM, swapped: bool) -> FM {
        self.try_binary(op, other, swapped).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FM::binary`]: a sink operand is a [`PlanError`]
    /// instead of a panic.
    pub fn try_binary(&self, op: BinaryOp, other: &FM, swapped: bool) -> Result<FM, PlanError> {
        if let FM::Sink { node } = self {
            return Err(FM::sink_misuse(node, "element-wise op"));
        }
        if let FM::Sink { node } = other {
            return Err(FM::sink_misuse(node, "element-wise op"));
        }
        Ok(match (self, other) {
            (FM::Tall { node: a, transposed: ta }, FM::Tall { node: b, transposed: tb }) => {
                assert_eq!(
                    ta, tb,
                    "element-wise op between differently oriented matrices; transpose one first"
                );
                // Column recycling: allow b with one (untransposed) column.
                FM::Tall {
                    node: Node::map_binary(op, a.clone(), MapInput::Node(b.clone()), swapped),
                    transposed: *ta,
                }
            }
            (FM::Tall { node, transposed }, FM::Small(d)) => {
                let input = small_to_input(d, node, *transposed);
                FM::Tall { node: Node::map_binary(op, node.clone(), input, swapped), transposed: *transposed }
            }
            (FM::Small(d), FM::Tall { node, transposed }) => {
                // a ⊕ B with small a: swap operand order.
                let input = small_to_input(d, node, *transposed);
                FM::Tall {
                    node: Node::map_binary(op, node.clone(), input, !swapped),
                    transposed: *transposed,
                }
            }
            (FM::Small(a), FM::Small(b)) => FM::Small(small_binary(op, a, b, swapped)),
            _ => unreachable!("sink operands rejected above"),
        })
    }

    /// Element-wise with a scalar.
    /// Panics on an unmaterialized sink; see [`FM::try_binary_scalar`].
    pub fn binary_scalar(&self, op: BinaryOp, s: f64, swapped: bool) -> FM {
        self.try_binary_scalar(op, s, swapped).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FM::binary_scalar`]: an unmaterialized sink is a
    /// [`PlanError`] instead of a panic.
    pub fn try_binary_scalar(&self, op: BinaryOp, s: f64, swapped: bool) -> Result<FM, PlanError> {
        match self {
            FM::Tall { node, transposed } => Ok(FM::Tall {
                node: Node::map_binary(op, node.clone(), MapInput::Scalar(Scalar::F64(s)), swapped),
                transposed: *transposed,
            }),
            FM::Sink { node } => Err(FM::sink_misuse(node, "element-wise op")),
            FM::Small(d) => {
                let sd = Dense::filled(d.rows(), d.cols(), s);
                Ok(FM::Small(small_binary(op, d, &sd, swapped)))
            }
        }
    }

    /// `pmin`.
    pub fn pmin(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Min, other, false)
    }

    /// `pmax`.
    pub fn pmax(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Max, other, false)
    }

    /// `x > y` and friends (yield logical/U8 matrices).
    pub fn gt(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Gt, other, false)
    }
    pub fn ge(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Ge, other, false)
    }
    pub fn lt(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Lt, other, false)
    }
    pub fn le(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Le, other, false)
    }
    pub fn eq(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Eq, other, false)
    }
    pub fn ne(&self, other: &FM) -> FM {
        self.binary(BinaryOp::Ne, other, false)
    }

    /// dtype conversion.
    /// Panics on an unmaterialized sink; see [`FM::try_cast`].
    pub fn cast(&self, to: DType) -> FM {
        self.try_cast(to).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FM::cast`]: casting an unmaterialized sink is a
    /// [`PlanError`] instead of a panic.
    pub fn try_cast(&self, to: DType) -> Result<FM, PlanError> {
        match self {
            FM::Tall { node, transposed } => {
                Ok(FM::Tall { node: Node::cast(node.clone(), to), transposed: *transposed })
            }
            FM::Small(d) => Ok(FM::Small(d.clone())),
            FM::Sink { node } => Err(FM::sink_misuse(node, "cast")),
        }
    }

    /// `sweep(x, 2, stats, op)`: apply `op` column-wise with a per-column
    /// statistic.
    pub fn sweep_cols(&self, stats: &[f64], op: BinaryOp) -> FM {
        let node = self.untransposed("sweep");
        assert_eq!(stats.len(), node.ncols, "sweep stats length mismatch");
        FM::Tall {
            node: Node::map_binary(op, node.clone(), MapInput::RowVec(Arc::new(stats.to_vec())), false),
            transposed: false,
        }
    }
}

fn unary_f64(op: UnaryOp, x: f64) -> f64 {
    use crate::chunk::BufPool;
    // Reuse the chunk kernel on a 1×1 chunk for exact parity.
    let mut pool = BufPool::new();
    let c = crate::chunk::Chunk::from_slice::<f64>(1, 1, &[x]);
    let out = crate::ops::apply_unary(op, &c, &mut pool);
    out.get_f64(0, 0)
}

fn small_binary(op: BinaryOp, a: &Dense, b: &Dense, swapped: bool) -> Dense {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "small matrix shape mismatch");
    use crate::chunk::{BufPool, Chunk};
    let n = a.rows() * a.cols();
    let mut pool = BufPool::new();
    let ca = Chunk::from_slice::<f64>(n, 1, a.as_slice());
    let cb = Chunk::from_slice::<f64>(n, 1, b.as_slice());
    let out = crate::ops::apply_binary(op, &ca, crate::ops::BinOperand::Chunk(&cb), swapped, &mut pool);
    let vals: Vec<f64> = if out.dtype() == DType::U8 {
        out.slice::<u8>().iter().map(|&v| v as f64).collect()
    } else {
        out.slice::<f64>().to_vec()
    };
    Dense::from_vec(a.rows(), a.cols(), vals)
}

/// Interpret a small operand against a tall one: 1×p (row vector) sweeps
/// columns, 1×1 is a scalar.
fn small_to_input(d: &Dense, tall: &Arc<Node>, transposed: bool) -> MapInput {
    assert!(!transposed, "element-wise op with small operand on a transposed matrix");
    if d.rows() == 1 && d.cols() == 1 {
        MapInput::Scalar(Scalar::F64(d.at(0, 0)))
    } else if d.rows() == 1 && d.cols() == tall.ncols {
        MapInput::RowVec(Arc::new(d.row(0).to_vec()))
    } else {
        panic!(
            "small operand {}x{} does not broadcast against tall {}x{}",
            d.rows(),
            d.cols(),
            tall.nrows,
            tall.ncols
        )
    }
}

// ---------------------------------------------------------------------
// Aggregations (lazy sinks and per-row talls)
// ---------------------------------------------------------------------

impl FM {
    fn sink_full(&self, op: AggOp) -> FM {
        match self {
            FM::Tall { node, .. } => FM::Sink { node: Node::sink_full(op, node.clone()) },
            FM::Small(d) => {
                let mut acc = op.identity();
                for v in d.as_slice() {
                    acc = op.fold(acc, *v);
                }
                if op == AggOp::Mean {
                    acc /= d.as_slice().len() as f64;
                }
                FM::Small(Dense::from_vec(1, 1, vec![acc]))
            }
            FM::Sink { node } => panic!("{}", FM::sink_misuse(node, "aggregation")),
        }
    }

    /// `sum(x)` (lazy sink).
    pub fn sum(&self) -> FM {
        self.sink_full(AggOp::Sum)
    }
    /// `min(x)`.
    pub fn min_all(&self) -> FM {
        self.sink_full(AggOp::Min)
    }
    /// `max(x)`.
    pub fn max_all(&self) -> FM {
        self.sink_full(AggOp::Max)
    }
    /// `mean(x)`.
    pub fn mean_all(&self) -> FM {
        self.sink_full(AggOp::Mean)
    }
    /// `any(x != 0)`.
    pub fn any_nz(&self) -> FM {
        self.sink_full(AggOp::Any)
    }
    /// `all(x != 0)`.
    pub fn all_nz(&self) -> FM {
        self.sink_full(AggOp::All)
    }

    fn agg_cols(&self, op: AggOp) -> FM {
        // colSums of a transposed view is rowSums of the underlying.
        match self {
            FM::Tall { node, transposed: false } => {
                FM::Sink { node: Node::sink_col(op, node.clone()) }
            }
            FM::Tall { node, transposed: true } => {
                FM::Tall { node: Node::agg_row(op, node.clone()), transposed: false }
            }
            FM::Small(d) => {
                let mut out = Dense::zeros(1, d.cols());
                for c in 0..d.cols() {
                    let mut acc = op.identity();
                    for r in 0..d.rows() {
                        acc = op.fold(acc, d.at(r, c));
                    }
                    if op == AggOp::Mean {
                        acc /= d.rows() as f64;
                    }
                    out.set(0, c, acc);
                }
                FM::Small(out)
            }
            FM::Sink { node } => panic!("{}", FM::sink_misuse(node, "aggregation")),
        }
    }

    fn agg_rows(&self, op: AggOp) -> FM {
        match self {
            FM::Tall { node, transposed: false } => {
                FM::Tall { node: Node::agg_row(op, node.clone()), transposed: false }
            }
            FM::Tall { node, transposed: true } => {
                // rowSums of a transposed view = colSums of the tall.
                FM::Sink { node: Node::sink_col(op, node.clone()) }
            }
            FM::Small(d) => {
                let mut out = Dense::zeros(d.rows(), 1);
                for r in 0..d.rows() {
                    let mut acc = op.identity();
                    for c in 0..d.cols() {
                        acc = op.fold(acc, d.at(r, c));
                    }
                    if op == AggOp::Mean {
                        acc /= d.cols() as f64;
                    }
                    out.set(r, 0, acc);
                }
                FM::Small(out)
            }
            FM::Sink { node } => panic!("{}", FM::sink_misuse(node, "aggregation")),
        }
    }

    /// `colSums(x)` (lazy sink on talls).
    pub fn col_sums(&self) -> FM {
        self.agg_cols(AggOp::Sum)
    }
    /// `colMeans(x)`.
    pub fn col_means(&self) -> FM {
        self.agg_cols(AggOp::Mean)
    }
    /// Per-column minimum.
    pub fn col_min(&self) -> FM {
        self.agg_cols(AggOp::Min)
    }
    /// Per-column maximum.
    pub fn col_max(&self) -> FM {
        self.agg_cols(AggOp::Max)
    }

    /// `rowSums(x)` (lazy tall n×1).
    pub fn row_sums(&self) -> FM {
        self.agg_rows(AggOp::Sum)
    }
    /// `rowMeans(x)`.
    pub fn row_means(&self) -> FM {
        self.agg_rows(AggOp::Mean)
    }
    /// Per-row minimum.
    pub fn row_min(&self) -> FM {
        self.agg_rows(AggOp::Min)
    }
    /// Per-row maximum.
    pub fn row_max(&self) -> FM {
        self.agg_rows(AggOp::Max)
    }
    /// Per-row `which.min` (0-based column index), as the paper's k-means
    /// uses to assign points to clusters.
    pub fn row_which_min(&self) -> FM {
        self.agg_rows(AggOp::WhichMin)
    }
    /// Per-row `which.max`.
    pub fn row_which_max(&self) -> FM {
        self.agg_rows(AggOp::WhichMax)
    }

    /// `crossprod(x)` = `t(x) %*% x` (lazy p×p sink).
    pub fn crossprod(&self) -> FM {
        let node = self.untransposed("crossprod");
        FM::Sink { node: Node::sink_gramian(node.clone(), node.clone()) }
    }

    /// `crossprod(x, y)` = `t(x) %*% y` (lazy p×k sink).
    pub fn crossprod_with(&self, other: &FM) -> FM {
        let a = self.untransposed("crossprod");
        let b = other.untransposed("crossprod");
        FM::Sink { node: Node::sink_gramian(a.clone(), b.clone()) }
    }

    /// `groupby.col(x, labels, op)`: reduce column groups per row
    /// (lazy n×k tall; paper Table 1). `labels[c]` assigns column `c` to
    /// a group in `[0, ngroups)`.
    pub fn groupby_col(&self, labels: &[usize], op: AggOp, ngroups: usize) -> FM {
        let node = self.untransposed("groupby.col");
        FM::Tall {
            node: Node::group_cols(node.clone(), labels.to_vec(), op, ngroups),
            transposed: false,
        }
    }

    /// `groupby.row(x, labels, op)` → lazy k×p sink. `labels` is an n×1
    /// integer matrix with values in `[0, ngroups)`.
    pub fn groupby_row(&self, labels: &FM, op: AggOp, ngroups: usize) -> FM {
        let data = self.untransposed("groupby.row");
        let lab = labels.untransposed("groupby labels");
        FM::Sink { node: Node::sink_groupby(data.clone(), lab.clone(), op, ngroups) }
    }
}

// ---------------------------------------------------------------------
// Matrix multiplication and structural ops
// ---------------------------------------------------------------------

impl FM {
    /// `x %*% y`. Supported shapes (paper's usage patterns):
    /// * tall `%*%` small → lazy tall (Fig. 5 e/f);
    /// * `t(tall) %*% tall` → lazy Gramian sink (Fig. 5 g/h/i);
    /// * small `%*%` small → immediate dense multiply.
    pub fn matmul(&self, other: &FM) -> FM {
        match (self, other) {
            (FM::Tall { node, transposed: false }, FM::Small(b)) => {
                FM::Tall { node: Node::matmul_small(node.clone(), b.clone()), transposed: false }
            }
            (FM::Tall { node: a, transposed: true }, FM::Tall { node: b, transposed: false }) => {
                FM::Sink { node: Node::sink_gramian(a.clone(), b.clone()) }
            }
            (FM::Small(a), FM::Small(b)) => FM::Small(flashr_linalg::matmul(a, b)),
            (FM::Small(a), FM::Tall { node, transposed: true }) => {
                // (k×n_small is impossible unless a is 1×n... ) Support
                // small %*% t(tall) via (tall %*% t(small))ᵀ when small is
                // a row vector: a (m×p) with tall (n×p) → m×n is huge.
                panic!(
                    "small ({}x{}) %*% t(tall {}x{}) would be a wide result; restructure the expression",
                    a.rows(),
                    a.cols(),
                    node.nrows,
                    node.ncols
                )
            }
            (a, b) => panic!("unsupported %*% shapes: {a:?} %*% {b:?}"),
        }
    }

    /// Generalized `inner.prod(x, b, f1, f2)` with a small dense `b`.
    pub fn inner_prod(&self, b: Dense, f1: BinaryOp, f2: BinaryOp) -> FM {
        let node = self.untransposed("inner.prod");
        FM::Tall { node: Node::inner_prod_small(node.clone(), b, f1, f2), transposed: false }
    }

    /// Column selection `x[, idx]` (lazy).
    pub fn cols(&self, idx: &[usize]) -> FM {
        let node = self.untransposed("column selection");
        FM::Tall { node: Node::select(node.clone(), idx.to_vec()), transposed: false }
    }

    /// Single column `x[, j]` (lazy).
    pub fn col(&self, j: usize) -> FM {
        self.cols(&[j])
    }

    /// `cbind(...)` (lazy).
    pub fn cbind(parts: &[&FM]) -> FM {
        let nodes: Vec<Arc<Node>> =
            parts.iter().map(|p| p.untransposed("cbind").clone()).collect();
        FM::Tall { node: Node::bind_cols(nodes), transposed: false }
    }

    /// `rbind(a, b)`: eager (repartitions), returns a leaf-backed tall.
    pub fn rbind(ctx: &FlashCtx, a: &FM, b: &FM) -> FM {
        let am = a.materialize(ctx).tall_mat(ctx);
        let bm = b.materialize(ctx).tall_mat(ctx);
        assert_eq!(am.ncols(), bm.ncols(), "rbind column mismatch");
        let n = am.nrows() + bm.nrows();
        let p = am.ncols();
        let da = am.to_dense_f64();
        let db = bm.to_dense_f64();
        let mat = TasMat::from_fn::<f64>(n, p, ctx.parter(), |r, c| {
            if r < am.nrows() {
                da.at(r as usize, c)
            } else {
                db.at((r - am.nrows()) as usize, c)
            }
        });
        FM::from_tas(mat)
    }

    /// `cumsum` down each column (lazy; single-pass cross-partition).
    pub fn cumsum_col(&self) -> FM {
        let node = self.untransposed("cumsum");
        FM::Tall { node: Node::cum_col(BinaryOp::Add, node.clone()), transposed: false }
    }

    /// `cumprod` down each column.
    pub fn cumprod_col(&self) -> FM {
        let node = self.untransposed("cumprod");
        FM::Tall { node: Node::cum_col(BinaryOp::Mul, node.clone()), transposed: false }
    }

    /// Cumulative min down each column.
    pub fn cummin_col(&self) -> FM {
        let node = self.untransposed("cummin");
        FM::Tall { node: Node::cum_col(BinaryOp::Min, node.clone()), transposed: false }
    }

    /// Cumulative max down each column.
    pub fn cummax_col(&self) -> FM {
        let node = self.untransposed("cummax");
        FM::Tall { node: Node::cum_col(BinaryOp::Max, node.clone()), transposed: false }
    }

    /// `cum.row`: cumulative across the columns of each row.
    pub fn cum_row(&self, op: BinaryOp) -> FM {
        let node = self.untransposed("cum.row");
        FM::Tall { node: Node::cum_row(op, node.clone()), transposed: false }
    }
}

// ---------------------------------------------------------------------
// Materialization and extraction (paper §3.4 triggers)
// ---------------------------------------------------------------------

impl FM {
    /// Force computation of this matrix (R's `materialize`). Sinks become
    /// small matrices; talls become leaf-backed.
    pub fn materialize(&self, ctx: &FlashCtx) -> FM {
        FM::materialize_multi(ctx, &[self]).pop().expect("one input, one output")
    }

    /// Materialize several virtual matrices in a *single* fused pass over
    /// the data — how the paper's k-means computes assignments, counts
    /// and new centers together.
    pub fn materialize_multi(ctx: &FlashCtx, fms: &[&FM]) -> Vec<FM> {
        let mut targets = Vec::new();
        let mut mapping: Vec<Option<usize>> = Vec::with_capacity(fms.len());
        for fm in fms {
            match fm {
                FM::Small(_) => mapping.push(None),
                FM::Sink { node } => {
                    mapping.push(Some(targets.len()));
                    targets.push(Target::Sink(node.clone()));
                }
                FM::Tall { node, .. } => {
                    if matches!(node.kind, NodeKind::Leaf(_)) || node.cached().is_some() {
                        mapping.push(None); // already materialized
                    } else {
                        mapping.push(Some(targets.len()));
                        targets.push(Target::Tall { node: node.clone(), storage: TargetStorage::Default });
                    }
                }
            }
        }
        let mut results = exec::materialize(ctx, &targets).into_iter();
        let mut taken: HashMap<usize, exec::TargetResult> = HashMap::new();
        let mut out = Vec::with_capacity(fms.len());
        for (fm, slot) in fms.iter().zip(mapping) {
            match slot {
                None => out.push((*fm).clone()),
                Some(idx) => {
                    let r = taken
                        .remove(&idx)
                        .unwrap_or_else(|| results.next().expect("result count mismatch"));
                    match (fm, r) {
                        (FM::Sink { .. }, exec::TargetResult::Dense(d)) => out.push(FM::Small(d)),
                        (FM::Tall { transposed, .. }, exec::TargetResult::Mat(m)) => {
                            out.push(FM::Tall { node: Node::leaf(m), transposed: *transposed });
                        }
                        _ => unreachable!("target kind mismatch"),
                    }
                }
            }
        }
        out
    }

    /// The exec target this matrix's pending computation would run as.
    /// `None` for already-materialized data (small dense results, leaves,
    /// cached nodes) — there is nothing to plan.
    pub(crate) fn pending_target(&self) -> Option<Target> {
        match self {
            FM::Small(_) => None,
            FM::Sink { node } => Some(Target::Sink(node.clone())),
            FM::Tall { node, .. } => {
                if matches!(node.kind, NodeKind::Leaf(_)) || node.cached().is_some() {
                    return None;
                }
                Some(Target::Tall { node: node.clone(), storage: TargetStorage::Default })
            }
        }
    }

    /// The plan the engine would run to materialize this matrix, without
    /// running it.
    fn pending_plan(&self, ctx: &FlashCtx) -> Option<exec::Plan> {
        let target = self.pending_target()?;
        Some(exec::Plan::build(ctx, &[target], &HashMap::new()))
    }

    /// Run the static analyzer over the pending DAG without executing
    /// anything: shape/dtype verification, then the CSE rewrite and the
    /// lint pass on the rewritten plan. An inconsistent DAG (mismatched
    /// `mapply` dims, bad `inner.prod` inner dimension, ...) comes back
    /// as a typed [`PlanError`] naming the offending node — before any
    /// partition is read. Already-materialized matrices return an empty
    /// report.
    pub fn check(&self, ctx: &FlashCtx) -> Result<AnalysisReport, PlanError> {
        match self.pending_target() {
            None => Ok(AnalysisReport::default()),
            Some(t) => {
                let analysis = crate::analysis::analyze(ctx, std::slice::from_ref(&t))?;
                let exempt = if ctx.cfg().cost_optimize {
                    // Dry-run the optimizer: a lint it would fix (an
                    // auto-cached W001/W004 node) is not a deniable
                    // offence under FLASHR_DENY_LINTS.
                    let run_targets: &[Target] =
                        if ctx.cfg().optimize { &analysis.targets } else { std::slice::from_ref(&t) };
                    let cost = crate::analysis::cost::estimate(ctx, run_targets);
                    crate::analysis::optimize::plan(ctx, run_targets, &cost).auto_cache
                } else {
                    Default::default()
                };
                crate::analysis::deny_gate(&analysis.report.lints, &exempt)?;
                Ok(analysis.report)
            }
        }
    }

    /// Machine-readable form of [`FM::check`] plus the cost model's
    /// estimate, as one JSON object:
    /// `{"ok":true,"report":{...},"cost":{...}}` on success,
    /// `{"ok":false,"error":{...}}` when verification fails or
    /// `FLASHR_DENY_LINTS` promotes a lint. Already-materialized
    /// matrices report `{"ok":true,"report":null,"cost":null}`.
    pub fn check_json(&self, ctx: &FlashCtx) -> String {
        let Some(t) = self.pending_target() else {
            return "{\"ok\":true,\"report\":null,\"cost\":null}".to_string();
        };
        let analysis = match crate::analysis::analyze(ctx, std::slice::from_ref(&t)) {
            Ok(a) => a,
            Err(e) => return format!("{{\"ok\":false,\"error\":{}}}", e.to_json()),
        };
        let run_targets: &[Target] =
            if ctx.cfg().optimize { &analysis.targets } else { std::slice::from_ref(&t) };
        let cost = crate::analysis::cost::estimate(ctx, run_targets);
        let exempt = if ctx.cfg().cost_optimize {
            crate::analysis::optimize::plan(ctx, run_targets, &cost).auto_cache
        } else {
            Default::default()
        };
        if let Err(e) = crate::analysis::deny_gate(&analysis.report.lints, &exempt) {
            return format!("{{\"ok\":false,\"error\":{}}}", e.to_json());
        }
        format!(
            "{{\"ok\":true,\"report\":{},\"cost\":{}}}",
            analysis.report.to_json(),
            cost.to_json()
        )
    }

    /// Render the pending DAG as an indented text tree (R's `explain()`):
    /// the fused pass the engine would run, with per-node shapes, dtypes
    /// and materialization markers, followed by the analyzer's summary
    /// (CSE node counts, footprint estimate, lints).
    pub fn explain(&self, ctx: &FlashCtx) -> String {
        match self.pending_plan(ctx) {
            Some(plan) => {
                let mut out = plan.explain();
                match self.check(ctx) {
                    Ok(report) => out.push_str(&report.summary()),
                    Err(e) => out.push_str(&format!("analysis: FAILED — {e}\n")),
                }
                out
            }
            None => "already materialized (no pending DAG)\n".to_string(),
        }
    }

    /// Render the pending DAG as Graphviz DOT, with the fused pass as a
    /// cluster and materialized inputs outside it.
    pub fn explain_dot(&self, ctx: &FlashCtx) -> String {
        match self.pending_plan(ctx) {
            Some(plan) => plan.explain_dot(),
            None => "digraph flashr_plan {\n}\n".to_string(),
        }
    }

    /// The backing [`TasMat`] if this tall matrix is already materialized
    /// (leaf or cached), without forcing computation.
    pub fn leaf_mat_opt(&self) -> Option<TasMat> {
        match self {
            FM::Tall { node, .. } => {
                if let Some(m) = node.cached() {
                    return Some(m.clone());
                }
                match &node.kind {
                    NodeKind::Leaf(m) => Some(m.clone()),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// The backing [`TasMat`] of a materialized tall matrix.
    pub fn tall_mat(&self, ctx: &FlashCtx) -> TasMat {
        match self {
            FM::Tall { node, .. } => {
                if let Some(m) = node.cached() {
                    return m.clone();
                }
                if let NodeKind::Leaf(m) = &node.kind {
                    return m.clone();
                }
                match &self.materialize(ctx) {
                    FM::Tall { node, .. } => match &node.kind {
                        NodeKind::Leaf(m) => m.clone(),
                        _ => unreachable!("materialize returns leaves"),
                    },
                    _ => unreachable!(),
                }
            }
            other => panic!("tall_mat on {other:?}"),
        }
    }

    /// Extract a 1×1 result (`as.vector` on a scalar sink).
    pub fn value(&self, ctx: &FlashCtx) -> f64 {
        let d = self.to_dense(ctx);
        assert_eq!((d.rows(), d.cols()), (1, 1), "value() needs a 1x1 result");
        d.at(0, 0)
    }

    /// Materialize into a small dense matrix (`as.matrix`). Talls are
    /// copied wholesale — intended for small-ish matrices and tests.
    pub fn to_dense(&self, ctx: &FlashCtx) -> Dense {
        match self {
            FM::Small(d) => d.clone(),
            FM::Sink { .. } => match self.materialize(ctx) {
                FM::Small(d) => d,
                _ => unreachable!(),
            },
            FM::Tall { transposed, .. } => {
                let d = self.tall_mat(ctx).to_dense_f64();
                if *transposed {
                    d.transpose()
                } else {
                    d
                }
            }
        }
    }

    /// Flatten to an f64 vector (`as.vector`): column-major like R.
    pub fn to_vec(&self, ctx: &FlashCtx) -> Vec<f64> {
        let d = self.to_dense(ctx);
        let mut out = Vec::with_capacity(d.rows() * d.cols());
        for c in 0..d.cols() {
            for r in 0..d.rows() {
                out.push(d.at(r, c));
            }
        }
        out
    }

    /// One element (forces computation of its partition).
    pub fn get(&self, ctx: &FlashCtx, r: u64, c: u64) -> f64 {
        match self {
            FM::Small(d) => d.at(r as usize, c as usize),
            FM::Sink { .. } => self.to_dense(ctx).at(r as usize, c as usize),
            FM::Tall { transposed, .. } => {
                let (rr, cc) = if *transposed { (c, r) } else { (r, c) };
                self.tall_mat(ctx).get(rr, cc as usize).to_f64()
            }
        }
    }

    /// `unique(x)` on a column: materializes immediately (output size is
    /// data-dependent, paper §3.4), returns sorted distinct values.
    pub fn unique(&self, ctx: &FlashCtx) -> Vec<f64> {
        let mut vals: Vec<f64> = self.table(ctx).into_iter().map(|(v, _)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals
    }

    /// `table(x)`: value → count, sorted by value. Materializes
    /// immediately.
    pub fn table(&self, ctx: &FlashCtx) -> Vec<(f64, u64)> {
        let mat = match self {
            FM::Small(d) => {
                let mut counts: HashMap<u64, (f64, u64)> = HashMap::new();
                for v in d.as_slice() {
                    let e = counts.entry(v.to_bits()).or_insert((*v, 0));
                    e.1 += 1;
                }
                let mut out: Vec<(f64, u64)> = counts.into_values().collect();
                out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                return out;
            }
            _ => self.materialize(ctx).tall_mat(ctx),
        };
        let mut counts: HashMap<u64, (f64, u64)> = HashMap::new();
        let mut pool = crate::chunk::BufPool::new();
        for part in 0..mat.nparts() {
            let rows = mat.parter().part_rows(part, mat.nrows());
            let buf = mat.read_part(part);
            let chunk = mat.pcache_chunk(&buf, part, 0, rows, &mut pool);
            for c in 0..chunk.cols() {
                for r in 0..rows {
                    let v = chunk.get_f64(r, c);
                    let e = counts.entry(v.to_bits()).or_insert((v, 0));
                    e.1 += 1;
                }
            }
        }
        let mut out: Vec<(f64, u64)> = counts.into_values().collect();
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        out
    }
}

// ---------------------------------------------------------------------
// Statistics and row access conveniences
// ---------------------------------------------------------------------

impl FM {
    /// `prod(x)` (lazy sink).
    pub fn prod_all(&self) -> FM {
        self.sink_full(AggOp::Prod)
    }

    /// Per-column population variances (one fused pass).
    pub fn col_vars(&self, ctx: &FlashCtx) -> Vec<f64> {
        let n = self.nrow() as f64;
        let out = FM::materialize_multi(ctx, &[&self.col_sums(), &self.square().col_sums()]);
        let s = out[0].to_dense(ctx);
        let s2 = out[1].to_dense(ctx);
        (0..s.cols()).map(|j| (s2.at(0, j) / n - (s.at(0, j) / n).powi(2)).max(0.0)).collect()
    }

    /// Per-column standard deviations (one fused pass).
    pub fn col_sds(&self, ctx: &FlashCtx) -> Vec<f64> {
        self.col_vars(ctx).into_iter().map(f64::sqrt).collect()
    }

    /// R's `scale(x, center, scale)`: subtract column means and/or divide
    /// by column standard deviations. One pass for the statistics; the
    /// normalization itself stays lazy.
    pub fn scale(&self, ctx: &FlashCtx, center: bool, scale: bool) -> FM {
        let n = self.nrow() as f64;
        let out = FM::materialize_multi(ctx, &[&self.col_sums(), &self.square().col_sums()]);
        let s = out[0].to_dense(ctx);
        let s2 = out[1].to_dense(ctx);
        let means: Vec<f64> = (0..s.cols()).map(|j| s.at(0, j) / n).collect();
        let sds: Vec<f64> = (0..s.cols())
            .map(|j| (s2.at(0, j) / n - means[j] * means[j]).max(0.0).sqrt().max(1e-300))
            .collect();
        let mut cur = self.clone();
        if center {
            cur = cur.sweep_cols(&means, BinaryOp::Sub);
        }
        if scale {
            cur = cur.sweep_cols(&sds, BinaryOp::Div);
        }
        cur
    }

    /// Gather specific rows into a small dense matrix (reads each I/O
    /// partition at most once). Intended for sampling-style access, not
    /// bulk reshuffles.
    pub fn gather_rows(&self, ctx: &FlashCtx, rows: &[u64]) -> Dense {
        let p = self.ncol() as usize;
        let mat = self.materialize(ctx).tall_mat(ctx);
        let parter = mat.parter();
        let mut by_part: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < mat.nrows(), "row {r} out of range");
            by_part.entry(r / parter.rows_per_part()).or_default().push(i);
        }
        let mut out = Dense::zeros(rows.len(), p);
        let mut pool = crate::chunk::BufPool::new();
        for (part, idxs) in by_part {
            let buf = mat.read_part(part);
            let part_rows = parter.part_rows(part, mat.nrows());
            let chunk = mat.pcache_chunk(&buf, part, 0, part_rows, &mut pool);
            for i in idxs {
                let local = (rows[i] - part * parter.rows_per_part()) as usize;
                for j in 0..p {
                    out.set(i, j, chunk.get_f64(local, j));
                }
            }
        }
        out
    }

    /// The first `n` rows as a dense matrix (R's `head`).
    pub fn head(&self, ctx: &FlashCtx, n: u64) -> Dense {
        let n = n.min(self.nrow());
        let rows: Vec<u64> = (0..n).collect();
        self.gather_rows(ctx, &rows)
    }
}

// ---------------------------------------------------------------------
// Operator overloading (R's `+`, `-`, `*`, `/` overrides)
// ---------------------------------------------------------------------

macro_rules! fm_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl std::ops::$trait<&FM> for &FM {
            type Output = FM;
            fn $method(self, rhs: &FM) -> FM {
                self.binary($op, rhs, false)
            }
        }
        impl std::ops::$trait<f64> for &FM {
            type Output = FM;
            fn $method(self, rhs: f64) -> FM {
                self.binary_scalar($op, rhs, false)
            }
        }
        impl std::ops::$trait<&FM> for f64 {
            type Output = FM;
            fn $method(self, rhs: &FM) -> FM {
                rhs.binary_scalar($op, self, true)
            }
        }
    };
}

fm_binop!(Add, add, BinaryOp::Add);
fm_binop!(Sub, sub, BinaryOp::Sub);
fm_binop!(Mul, mul, BinaryOp::Mul);
fm_binop!(Div, div, BinaryOp::Div);

impl std::ops::Neg for &FM {
    type Output = FM;
    fn neg(self) -> FM {
        self.unary(UnaryOp::Neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(
            CtxConfig { rows_per_part: 64, nthreads: 4, ..Default::default() },
            None,
        )
    }

    #[test]
    fn runif_materializes_in_range() {
        let ctx = ctx();
        let x = FM::runif(&ctx, 500, 3, -1.0, 2.0, 7);
        let d = x.to_dense(&ctx);
        for r in 0..500 {
            for c in 0..3 {
                let v = d.at(r, c);
                assert!((-1.0..2.0).contains(&v));
            }
        }
    }

    #[test]
    fn elementwise_pipeline() {
        let ctx = ctx();
        let x = FM::from_vec(&ctx, &[1.0, 4.0, 9.0, 16.0]);
        let y = (&x.sqrt() * 2.0).materialize(&ctx);
        assert_eq!(y.to_vec(&ctx), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn scalar_ops_and_swapped() {
        let ctx = ctx();
        let x = FM::from_vec(&ctx, &[1.0, 2.0, 4.0]);
        let r = (8.0 / &x).to_vec(&ctx);
        assert_eq!(r, vec![8.0, 4.0, 2.0]);
        let s = (&x - 1.0).to_vec(&ctx);
        assert_eq!(s, vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn sums_and_means() {
        let ctx = ctx();
        let x = FM::seq(100, 1.0, 1.0); // 1..=100
        assert_eq!(x.sum().value(&ctx), 5050.0);
        assert_eq!(x.mean_all().value(&ctx), 50.5);
        assert_eq!(x.min_all().value(&ctx), 1.0);
        assert_eq!(x.max_all().value(&ctx), 100.0);
    }

    #[test]
    fn col_and_row_aggregates() {
        let ctx = ctx();
        // 100×2: col0 = 1..100, col1 = all 2
        let mut data = Vec::new();
        data.extend((1..=100).map(|v| v as f64));
        data.extend(std::iter::repeat_n(2.0, 100));
        let x = FM::from_col_major(&ctx, 100, 2, &data);
        let cs = x.col_sums().to_vec(&ctx);
        assert_eq!(cs, vec![5050.0, 200.0]);
        let rs = x.row_sums().to_vec(&ctx);
        assert_eq!(rs[0], 3.0);
        assert_eq!(rs[99], 102.0);
        let cm = x.col_means().to_vec(&ctx);
        assert_eq!(cm, vec![50.5, 2.0]);
    }

    #[test]
    fn transpose_swaps_aggregates() {
        let ctx = ctx();
        let x = FM::from_col_major(&ctx, 80, 2, &(0..160).map(|v| v as f64).collect::<Vec<_>>());
        let t = x.t();
        assert_eq!(t.nrow(), 2);
        assert_eq!(t.ncol(), 80);
        // rowSums of the transpose == colSums of x
        let a = t.row_sums().to_vec(&ctx);
        let b = x.col_sums().to_vec(&ctx);
        assert_eq!(a, b);
        // double transpose is identity
        let d = t.t().to_dense(&ctx);
        assert_eq!(d.at(5, 1), x.to_dense(&ctx).at(5, 1));
    }

    #[test]
    fn crossprod_matches_dense() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 300, 4, 0.0, 1.0, 3);
        let g = x.crossprod().to_dense(&ctx);
        let d = x.to_dense(&ctx);
        let want = flashr_linalg::syrk(&d);
        assert!(g.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn tall_times_small() {
        let ctx = ctx();
        let x = FM::seq(70, 0.0, 1.0); // 70×1
        let b = Dense::from_vec(1, 2, vec![2.0, -1.0]);
        let y = x.matmul(&FM::Small(b));
        assert_eq!(y.ncol(), 2);
        let d = y.to_dense(&ctx);
        assert_eq!(d.at(10, 0), 20.0);
        assert_eq!(d.at(10, 1), -10.0);
    }

    #[test]
    fn gramian_via_transposed_matmul() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 200, 3, 0.0, 1.0, 11);
        let g1 = x.t().matmul(&x).to_dense(&ctx);
        let g2 = x.crossprod().to_dense(&ctx);
        assert!(g1.max_abs_diff(&g2) < 1e-12);
    }

    #[test]
    fn groupby_row_sums() {
        let ctx = ctx();
        let x = FM::constant(90, 2, 1.0);
        let labels = FM::seq(90, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 3.0, false).cast(DType::I64);
        let g = x.groupby_row(&labels, AggOp::Sum, 3).to_dense(&ctx);
        for grp in 0..3 {
            assert_eq!(g.at(grp, 0), 30.0);
            assert_eq!(g.at(grp, 1), 30.0);
        }
    }

    #[test]
    fn multi_sink_single_pass() {
        let ctx = ctx();
        let x = FM::runif(&ctx, 1000, 2, 0.0, 1.0, 5);
        let before = ctx.stats().snapshot();
        let s = x.sum();
        let cs = x.col_sums();
        let out = FM::materialize_multi(&ctx, &[&s, &cs]);
        let after = ctx.stats().snapshot();
        assert_eq!(before.delta(&after).passes, 1, "multi-sink must fuse into one pass");
        let total = out[0].value(&ctx);
        let per_col = out[1].to_vec(&ctx);
        assert!((total - (per_col[0] + per_col[1])).abs() < 1e-9);
    }

    #[test]
    fn set_cache_reuses_data() {
        let ctx = ctx();
        let x = FM::runif(&ctx, 500, 2, 0.0, 1.0, 1);
        let y = &x * 3.0;
        y.set_cache(true);
        let s1 = y.sum().value(&ctx);
        // Second DAG over y should reuse the cache (node is now a leaf).
        match &y {
            FM::Tall { node, .. } => assert!(node.cached().is_some(), "cache not installed"),
            _ => unreachable!(),
        }
        let s2 = y.sum().value(&ctx);
        // Thread-partial merge order is nondeterministic → tolerance.
        assert!((s1 - s2).abs() < 1e-9);
    }

    #[test]
    fn cumsum_across_partitions() {
        let ctx = ctx();
        let x = FM::constant(200, 1, 1.0);
        let c = x.cumsum_col().to_dense(&ctx);
        assert_eq!(c.at(0, 0), 1.0);
        assert_eq!(c.at(63, 0), 64.0);
        assert_eq!(c.at(64, 0), 65.0); // crosses the partition boundary
        assert_eq!(c.at(199, 0), 200.0);
    }

    #[test]
    fn select_and_bind() {
        let ctx = ctx();
        let x = FM::from_col_major(&ctx, 70, 2, &(0..140).map(|v| v as f64).collect::<Vec<_>>());
        let c1 = x.col(1);
        assert_eq!(c1.ncol(), 1);
        assert_eq!(c1.to_vec(&ctx)[0], 70.0);
        let both = FM::cbind(&[&c1, &x.col(0)]);
        assert_eq!(both.ncol(), 2);
        let d = both.to_dense(&ctx);
        assert_eq!(d.at(0, 0), 70.0);
        assert_eq!(d.at(0, 1), 0.0);
    }

    #[test]
    fn comparisons_produce_logical() {
        let ctx = ctx();
        let x = FM::seq(10, 0.0, 1.0);
        let y = FM::constant(10, 1, 5.0);
        let gt = x.gt(&y);
        assert_eq!(gt.dtype(), DType::U8);
        let v = gt.to_vec(&ctx);
        assert_eq!(v.iter().sum::<f64>(), 4.0); // 6,7,8,9
        assert_eq!(x.ne(&y).sum().value(&ctx), 9.0);
    }

    #[test]
    fn unique_and_table() {
        let ctx = ctx();
        let x = FM::seq(90, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 3.0, false);
        let u = x.unique(&ctx);
        assert_eq!(u, vec![0.0, 1.0, 2.0]);
        let t = x.table(&ctx);
        assert_eq!(t, vec![(0.0, 30), (1.0, 30), (2.0, 30)]);
    }

    #[test]
    fn sweep_divides_columns() {
        let ctx = ctx();
        let x = FM::constant(50, 2, 10.0);
        let s = x.sweep_cols(&[2.0, 5.0], BinaryOp::Div).to_dense(&ctx);
        assert_eq!(s.at(0, 0), 5.0);
        assert_eq!(s.at(0, 1), 2.0);
    }

    #[test]
    fn small_matrix_ops() {
        let a = FM::from_dense(Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let b = FM::from_dense(Dense::eye(2));
        let s = (&a + &b).to_dense(&FlashCtx::in_memory());
        assert_eq!(s.at(0, 0), 2.0);
        assert_eq!(s.at(1, 1), 5.0);
        let total = a.sum();
        assert_eq!(total.value(&FlashCtx::in_memory()), 10.0);
    }

    #[test]
    fn which_min_rows() {
        let ctx = ctx();
        // col0 = seq, col1 = constant 50 → argmin is 0 for rows < 50.
        let mut data: Vec<f64> = (0..100).map(|v| v as f64).collect();
        data.extend(std::iter::repeat_n(50.0, 100));
        let x = FM::from_col_major(&ctx, 100, 2, &data);
        let w = x.row_which_min().to_vec(&ctx);
        assert_eq!(w[10], 0.0);
        assert_eq!(w[60], 1.0);
    }

    #[test]
    fn inner_prod_euclidean() {
        let ctx = ctx();
        let x = FM::from_col_major(&ctx, 3, 1, &[0.0, 1.0, 2.0]);
        // one center at 1.0 → squared distances 1, 0, 1
        let centers = Dense::from_vec(1, 1, vec![1.0]);
        let d = x.inner_prod(centers, BinaryOp::EuclidSq, BinaryOp::Add).to_vec(&ctx);
        assert_eq!(d, vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn row_major_leaves_work() {
        let ctx = ctx();
        let data: Vec<f64> = (0..120).map(|v| v as f64).collect();
        let rm = FM::from_row_major(&ctx, 60, 2, &data);
        let cm = FM::from_col_major(
            &ctx,
            60,
            2,
            &(0..60)
                .map(|r| (r * 2) as f64)
                .chain((0..60).map(|r| (r * 2 + 1) as f64))
                .collect::<Vec<_>>(),
        );
        assert_eq!(rm.col_sums().to_vec(&ctx), cm.col_sums().to_vec(&ctx));
        let d = (&rm - &cm).abs().sum().value(&ctx);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn groupby_col_reduces_column_groups() {
        let ctx = ctx();
        // 4 columns: constants 1, 2, 3, 4; group evens/odds.
        let x = FM::cbind(&[
            &FM::constant(100, 1, 1.0),
            &FM::constant(100, 1, 2.0),
            &FM::constant(100, 1, 3.0),
            &FM::constant(100, 1, 4.0),
        ]);
        let g = x.groupby_col(&[0, 1, 0, 1], AggOp::Sum, 2);
        assert_eq!(g.ncol(), 2);
        let d = g.to_dense(&ctx);
        assert_eq!(d.at(0, 0), 4.0); // 1 + 3
        assert_eq!(d.at(0, 1), 6.0); // 2 + 4
        // Fuses: one pass with a downstream sink.
        let before = ctx.stats().snapshot();
        let total = x.groupby_col(&[0, 0, 1, 1], AggOp::Max, 2).sum().value(&ctx);
        assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
        assert_eq!(total, 100.0 * (2.0 + 4.0));
    }

    #[test]
    fn scale_standardizes_columns() {
        let ctx = ctx();
        let x = &(&FM::rnorm(&ctx, 20_000, 2, 0.0, 1.0, 31) * 3.0) + 7.0;
        let z = x.scale(&ctx, true, true);
        let means = z.col_means().to_vec(&ctx);
        let vars = z.col_vars(&ctx);
        for m in means {
            assert!(m.abs() < 1e-9, "mean {m}");
        }
        for v in vars {
            assert!((v - 1.0).abs() < 1e-9, "var {v}");
        }
    }

    #[test]
    fn col_vars_match_construction() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 40_000, 2, 5.0, 2.0, 8);
        let v = x.col_vars(&ctx);
        assert!((v[0] - 4.0).abs() < 0.15, "var {}", v[0]);
        let sd = x.col_sds(&ctx);
        assert!((sd[1] - 2.0).abs() < 0.05);
    }

    #[test]
    fn gather_rows_and_head() {
        let ctx = ctx();
        let x = FM::seq(500, 0.0, 1.0);
        let g = x.gather_rows(&ctx, &[0, 64, 499, 7]);
        assert_eq!(g.at(0, 0), 0.0);
        assert_eq!(g.at(1, 0), 64.0);
        assert_eq!(g.at(2, 0), 499.0);
        assert_eq!(g.at(3, 0), 7.0);
        let h = x.head(&ctx, 3);
        assert_eq!(h.rows(), 3);
        assert_eq!(h.at(2, 0), 2.0);
    }

    #[test]
    fn prod_all_multiplies() {
        let ctx = ctx();
        let x = FM::from_vec(&ctx, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x.prod_all().value(&ctx), 24.0);
    }

    #[test]
    fn rbind_concatenates() {
        let ctx = ctx();
        let a = FM::constant(70, 1, 1.0);
        let b = FM::constant(30, 1, 2.0);
        let ab = FM::rbind(&ctx, &a, &b);
        assert_eq!(ab.nrow(), 100);
        assert_eq!(ab.sum().value(&ctx), 130.0);
    }
}
